//! The durable monitoring service, end to end in one process: simulate
//! a buggy mutual-exclusion run, host the WAL-backed server, stream the
//! true states into it over real TCP with the retrying client, and
//! check the verdict against the offline detector — then kill the
//! server, restart it over the same write-ahead log, and watch the
//! verdict survive.
//!
//! Run with: `cargo run --example online_service`

use gpd::conjunctive::possibly_conjunctive;
use gpd_computation::ProcessId;
use gpd_server::client::{ClientConfig, FeedClient};
use gpd_server::server::{self, ServerConfig};
use gpd_server::wal::{FsyncPolicy, WalConfig};
use gpd_sim::protocols::RicartAgrawala;
use gpd_sim::{SimConfig, Simulation};

fn main() {
    let n = 3;
    let trace = Simulation::new(
        RicartAgrawala::group_with_bug(n, 2, true),
        SimConfig::new(6),
    )
    .run();
    let comp = &trace.computation;
    let in_cs = trace.bool_var("in_cs").unwrap();

    // The event stream the service will see: every true local state,
    // stamped with its vector clock, delivered per-process FIFO.
    let initial: Vec<bool> = (0..n).map(|p| in_cs.true_initially(p)).collect();
    let mut events: Vec<(usize, Vec<u32>)> = Vec::new();
    for p in 0..n {
        for k in in_cs.true_states(p) {
            if k == 0 {
                continue; // covered by the initial-state vector
            }
            let e = comp.event_at(p, k).unwrap();
            events.push((p, comp.clock(e).as_slice().to_vec()));
        }
    }

    let wal_dir = std::env::temp_dir().join(format!("gpd-example-wal-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&wal_dir);

    // First life: serve, feed the whole stream, shut down cleanly.
    let config = ServerConfig::new(WalConfig::new(&wal_dir).with_fsync(FsyncPolicy::Always));
    let handle = server::start("127.0.0.1:0", config).unwrap();
    let client = FeedClient::new(ClientConfig::new(handle.local_addr().to_string()));
    let report = client.feed(&initial, &events).unwrap();
    let witness = client.shutdown().unwrap();
    let summary = handle.wait();
    println!(
        "live run: {} events accepted, verdict {}",
        report.accepted,
        if witness.is_some() { "TRUE" } else { "false" }
    );
    assert_eq!(summary.witness, witness);

    // The offline detector over the complete trace must agree.
    let watched: Vec<ProcessId> = (0..n).map(ProcessId::new).collect();
    let offline = possibly_conjunctive(comp, in_cs, &watched);
    assert_eq!(
        witness.is_some(),
        offline.is_some(),
        "online and offline detectors disagree"
    );
    println!("offline detector agrees: {}", offline.is_some());

    // Second life: a fresh server over the same WAL recovers the very
    // same verdict before a single event arrives, and redelivering the
    // whole stream (at-least-once) changes nothing.
    let config = ServerConfig::new(WalConfig::new(&wal_dir).with_fsync(FsyncPolicy::Always));
    let handle = server::start("127.0.0.1:0", config).unwrap();
    let client = FeedClient::new(ClientConfig::new(handle.local_addr().to_string()));
    let report = client.feed(&initial, &events).unwrap();
    let recovered = client.shutdown().unwrap();
    handle.wait();
    println!(
        "after restart: {} redelivered events skipped or screened, verdict {}",
        report.duplicates + report.stale + report.resumed_past,
        if recovered.is_some() { "TRUE" } else { "false" }
    );
    assert_eq!(
        recovered, witness,
        "recovery must reproduce the uninterrupted verdict"
    );
    assert_eq!(report.accepted, 0, "nothing new to apply after recovery");

    let _ = std::fs::remove_dir_all(&wal_dir);
    println!("the verdict survived kill-and-restart byte for byte");
}
