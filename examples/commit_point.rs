//! The paper's `Definitely` example: verifying the **commit point of a
//! transaction**.
//!
//! When two-phase commit decides to commit, every execution must pass
//! through a global state where all participants are simultaneously
//! prepared — `Definitely(⋀ prepared)` — because each vote causally
//! precedes every decision delivery. When any participant votes no, that
//! state never materializes. The polynomial Garg–Waldecker strong
//! conjunctive algorithm checks this on recorded traces.
//!
//! Run with: `cargo run --example commit_point`

use gpd::conjunctive::{definitely_conjunctive, possibly_conjunctive};
use gpd_computation::ProcessId;
use gpd_sim::protocols::TwoPhaseCommit;
use gpd_sim::{SimConfig, Simulation};

fn main() {
    let n = 5; // coordinator + 4 participants
    let participants: Vec<ProcessId> = (1..n).map(ProcessId::new).collect();

    println!("--- committing transactions (everyone votes yes) ---");
    for seed in [1, 2, 3] {
        let (trace, procs) =
            Simulation::new(TwoPhaseCommit::transaction(n, 0.0), SimConfig::new(seed))
                .run_with_processes();
        assert!(procs.iter().all(|p| p.committed()));
        let prepared = trace.bool_var("prepared").unwrap();
        let definite = definitely_conjunctive(&trace.computation, prepared, &participants);
        println!("seed {seed}: committed; Definitely(all participants prepared) = {definite}");
        assert!(
            definite,
            "a committed transaction must have an unavoidable commit point"
        );
    }

    println!("\n--- aborting transactions (everyone votes no) ---");
    for seed in [1, 2, 3] {
        let (trace, procs) =
            Simulation::new(TwoPhaseCommit::transaction(n, 1.0), SimConfig::new(seed))
                .run_with_processes();
        assert!(procs.iter().all(|p| p.aborted()));
        let prepared = trace.bool_var("prepared").unwrap();
        let possible = possibly_conjunctive(&trace.computation, prepared, &participants).is_some();
        println!("seed {seed}: aborted; Possibly(all participants prepared) = {possible}");
        assert!(
            !possible,
            "an aborted transaction has no commit point at all"
        );
    }

    println!("\n--- mixed votes ---");
    let mut outcomes = (0, 0);
    for seed in 0..12 {
        let (trace, procs) =
            Simulation::new(TwoPhaseCommit::transaction(n, 0.4), SimConfig::new(seed))
                .run_with_processes();
        let committed = procs.iter().all(|p| p.committed());
        let prepared = trace.bool_var("prepared").unwrap();
        let definite = definitely_conjunctive(&trace.computation, prepared, &participants);
        // The detection verdict *is* the transaction outcome.
        assert_eq!(definite, committed, "seed {seed}");
        if committed {
            outcomes.0 += 1;
        } else {
            outcomes.1 += 1;
        }
    }
    println!(
        "12 mixed runs: {} committed, {} aborted — Definitely(all prepared) matched the outcome every time",
        outcomes.0, outcomes.1
    );
}
