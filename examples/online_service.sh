#!/usr/bin/env bash
# End-to-end drill for the online monitoring service, from the shell:
#
#   1. record a buggy-mutex trace;
#   2. start `gpd serve` with a write-ahead log;
#   3. replay the trace into it with `gpd feed --shutdown` and keep the
#      verdict;
#   4. repeat the run through `gpd chaos` — frame loss, duplication,
#      delay, and one forced connection reset — and require the same
#      verdict, proving the retry/resume machinery absorbs the faults.
#
# Usage: examples/online_service.sh [path-to-gpd-binary]
set -euo pipefail

GPD=${1:-target/release/gpd}
WORK=$(mktemp -d)
trap 'kill $(jobs -p) 2>/dev/null || true; rm -rf "$WORK"' EXIT

"$GPD" simulate mutex --n 3 --buggy --seed 5 -o "$WORK/mutex.trace"

wait_addr() { # file -> prints the address once the server wrote it
    for _ in $(seq 1 200); do
        if [ -s "$1" ]; then cat "$1"; return 0; fi
        sleep 0.05
    done
    echo "timed out waiting for $1" >&2
    return 1
}

verdict_of() { grep '^final verdict:' "$1" || grep '^verdict:' "$1"; }

# --- Fault-free leg -------------------------------------------------
"$GPD" serve --addr 127.0.0.1:0 --wal-dir "$WORK/wal-clean" \
    --addr-file "$WORK/clean.addr" >"$WORK/serve-clean.out" &
ADDR=$(wait_addr "$WORK/clean.addr")
"$GPD" feed "$WORK/mutex.trace" --addr "$ADDR" --var in_cs --shutdown \
    >"$WORK/feed-clean.out"
wait # for serve to drain and exit
CLEAN=$(verdict_of "$WORK/feed-clean.out" | tail -n 1)
echo "fault-free: $CLEAN"

# --- Chaos leg ------------------------------------------------------
"$GPD" serve --addr 127.0.0.1:0 --wal-dir "$WORK/wal-chaos" \
    --addr-file "$WORK/chaos-srv.addr" >"$WORK/serve-chaos.out" &
SERVE_PID=$!
UPSTREAM=$(wait_addr "$WORK/chaos-srv.addr")
"$GPD" chaos --upstream "$UPSTREAM" --listen 127.0.0.1:0 \
    --drop 0.12 --duplicate 0.25 --jitter 0.2 --reset-after 5 --seed 42 \
    --addr-file "$WORK/chaos.addr" >"$WORK/chaos.out" &
CHAOS_PID=$!
PROXY=$(wait_addr "$WORK/chaos.addr")

# Short timeouts + a deep retry budget: the client must out-stubborn
# the fault plan. --shutdown goes through the proxy too.
"$GPD" feed "$WORK/mutex.trace" --addr "$PROXY" --var in_cs \
    --io-timeout-ms 300 --retries 100 --backoff-ms 2 --backoff-cap-ms 50 \
    --seed 7 --shutdown >"$WORK/feed-chaos.out"
wait "$SERVE_PID"
kill "$CHAOS_PID" 2>/dev/null || true
CHAOS=$(verdict_of "$WORK/feed-chaos.out" | tail -n 1)
echo "through chaos proxy: $CHAOS"

if [ "$CLEAN" != "$CHAOS" ]; then
    echo "FAIL: chaos verdict diverged from the fault-free verdict" >&2
    exit 1
fi
grep -E '^server stats:' "$WORK/serve-chaos.out"
grep -E 'reconnects' "$WORK/feed-chaos.out"
# The forced reset must actually have driven the client through a
# reconnect-with-resume, visible on both sides of the wire.
grep -qE '[1-9][0-9]* reconnects' "$WORK/feed-chaos.out" || {
    echo "FAIL: the forced reset never drove a reconnect" >&2
    exit 1
}
grep -qE '[1-9][0-9]* resumes' "$WORK/serve-chaos.out" || {
    echo "FAIL: the server never saw a session resume" >&2
    exit 1
}
echo "OK: verdicts agree through loss, duplication, delay, and a reset"
