//! Monitoring token conservation with exact-sum predicates (§4.2/§4.3).
//!
//! A token ring should hold exactly K tokens at every global state —
//! except that tokens in flight are invisible, so the *observable* count
//! ranges over an interval. The §4.2 polynomial algorithm answers
//! `Possibly(Σ tokens = j)` for every j; an injected duplication bug
//! shows up as `Possibly(Σ > K)`.
//!
//! Run with: `cargo run --example token_count`

use gpd::relational::{max_sum_cut, min_sum_cut, possibly_exact_sum};
use gpd_sim::protocols::TokenRing;
use gpd_sim::{SimConfig, SimTrace, Simulation};

fn report(label: &str, trace: &SimTrace, expected: i64) {
    let tokens = trace.int_var("tokens").expect("protocol exposes tokens");
    assert!(tokens.is_unit_step(), "token counts change by at most 1");
    let comp = &trace.computation;
    let (min, _) = min_sum_cut(comp, tokens);
    let (max, _) = max_sum_cut(comp, tokens);
    println!(
        "[{label}] {} events; observable token count ranges {min}..={max} (dispatched {expected})",
        comp.event_count()
    );
    for j in 0..=(max + 1) {
        let witness = possibly_exact_sum(comp, tokens, j).expect("unit step");
        println!(
            "[{label}]   Possibly(Σ tokens = {j}) = {}",
            witness.is_some()
        );
    }
    if max > expected {
        println!("[{label}]   ⚠ conservation violated: more tokens visible than dispatched!");
    }
}

fn main() {
    let correct = Simulation::new(TokenRing::ring(6, 3), SimConfig::new(42)).run();
    report("correct ring", &correct, 3);

    let buggy = Simulation::new(TokenRing::ring_with_bug(6, 3, 2), SimConfig::new(42)).run();
    report("buggy ring", &buggy, 3);

    // Sanity: the bug is observable, the correct ring is not over-full.
    let t_ok = correct.int_var("tokens").unwrap();
    let t_bad = buggy.int_var("tokens").unwrap();
    assert!(max_sum_cut(&correct.computation, t_ok).0 <= 3);
    assert!(max_sum_cut(&buggy.computation, t_bad).0 > 3);
    println!("\nconclusion: exact-sum monitoring separates the correct ring from the buggy one");
}
