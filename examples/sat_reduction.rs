//! The Theorem 1 gadget, materialized: a SAT formula becomes a
//! computation plus a singular 2-CNF predicate, and detection becomes a
//! SAT solver.
//!
//! Run with: `cargo run --example sat_reduction`

use gpd::hardness::reduce_sat;
use gpd::singular::possibly_singular_chains;
use gpd_computation::to_dot;
use gpd_sat::{solve, to_non_monotone, Cnf, Lit};

fn main() {
    // The paper's Figure 3 formula family: (x ∨ y) ∧ (¬x ∨ ¬y) —
    // "exactly one of x, y", satisfiable two ways.
    let formula = Cnf::new(
        2,
        vec![
            vec![Lit::pos(0), Lit::pos(1)].into(),
            vec![Lit::neg(0), Lit::neg(1)].into(),
        ],
    );
    demonstrate("figure 3", &formula);

    // An unsatisfiable formula: x ∧ ¬x.
    let unsat = Cnf::new(1, vec![vec![Lit::pos(0)].into(), vec![Lit::neg(0)].into()]);
    demonstrate("x ∧ ¬x", &unsat);

    // A monotone 3-clause needs the paper's non-monotonization first.
    let monotone = Cnf::new(
        3,
        vec![
            vec![Lit::pos(0), Lit::pos(1), Lit::pos(2)].into(),
            vec![Lit::neg(0), Lit::neg(1), Lit::neg(2)].into(),
        ],
    );
    let nm = to_non_monotone(&monotone);
    println!(
        "non-monotonization: {} clauses / {} vars → {} clauses / {} vars\n",
        monotone.clauses().len(),
        monotone.num_vars(),
        nm.clauses().len(),
        nm.num_vars()
    );
    demonstrate("monotone (transformed)", &nm);
}

fn demonstrate(label: &str, formula: &Cnf) {
    println!("=== {label}: {formula:?}");
    let gadget = reduce_sat(formula).expect("non-monotone 3-CNF");
    println!(
        "gadget: {} processes, {} events, {} conflict arrows",
        gadget.computation.process_count(),
        gadget.computation.event_count(),
        gadget.computation.messages().len()
    );

    let dpll = solve(formula);
    let detected =
        possibly_singular_chains(&gadget.computation, &gadget.variable, &gadget.predicate);
    println!(
        "DPLL: {} | detection: {}",
        if dpll.is_some() { "SAT" } else { "UNSAT" },
        if detected.is_some() {
            "Possibly"
        } else {
            "impossible"
        },
    );
    assert_eq!(dpll.is_some(), detected.is_some(), "Theorem 1 equivalence");

    if let Some(cut) = detected {
        let assignment = gadget.assignment_from_cut(&cut);
        println!(
            "witness cut {:?} decodes to assignment {assignment:?}",
            cut.frontier()
        );
        assert!(formula.eval(&assignment));
    }
    if gadget.computation.event_count() <= 12 {
        println!(
            "space-time diagram:\n{}",
            to_dot(&gadget.computation, Some(&gadget.variable))
        );
    }
    println!();
}
