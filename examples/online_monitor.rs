//! Online monitoring: detect a conjunctive predicate *while the system
//! runs*, from vector-clock-stamped notifications, instead of analysing
//! a complete trace afterwards.
//!
//! We replay a recorded buggy-mutex computation as a stream of true-state
//! notifications into [`gpd::online::ConjunctiveMonitor`] and report the
//! earliest point in the stream at which the violation became detectable.
//!
//! Run with: `cargo run --example online_monitor`

use gpd::conjunctive::possibly_conjunctive;
use gpd::online::ConjunctiveMonitor;
use gpd_computation::ProcessId;
use gpd_sim::protocols::RicartAgrawala;
use gpd_sim::{SimConfig, Simulation};

fn main() {
    let n = 3;
    for (label, buggy) in [("correct", false), ("buggy", true)] {
        let trace = Simulation::new(
            RicartAgrawala::group_with_bug(n, 2, buggy),
            SimConfig::new(6),
        )
        .run();
        let comp = &trace.computation;
        let in_cs = trace.bool_var("in_cs").unwrap();

        // Monitor the pair (p0, p1); the monitor sees a 2-process world.
        let watched = [0usize, 1];
        let mut monitor = ConjunctiveMonitor::with_initial(&[
            in_cs.true_initially(watched[0]),
            in_cs.true_initially(watched[1]),
        ]);

        // Replay true states in a global order (by event id — any causal
        // order works), projecting clocks onto the watched pair.
        let mut notified = 0usize;
        let mut detected_after = None;
        'replay: for e in comp.events() {
            let p = comp.process_of(e).index();
            let Some(slot) = watched.iter().position(|&w| w == p) else {
                continue;
            };
            if !in_cs.is_true_event(comp, e) {
                continue;
            }
            let full = comp.clock(e);
            let projected = gpd_computation::VectorClock::from(vec![
                full.get(watched[0]),
                full.get(watched[1]),
            ]);
            monitor.observe(slot, projected);
            notified += 1;
            if monitor.witness().is_some() {
                detected_after = Some(notified);
                break 'replay;
            }
        }

        let offline = possibly_conjunctive(
            comp,
            in_cs,
            &[ProcessId::new(watched[0]), ProcessId::new(watched[1])],
        );
        match detected_after {
            Some(k) => println!(
                "[{label}] violation detectable online after {k} true-state notification(s) \
                 (offline agrees: {})",
                offline.is_some()
            ),
            None => println!(
                "[{label}] no violation in the whole stream (offline agrees: {})",
                offline.is_none()
            ),
        }
        assert_eq!(detected_after.is_some(), offline.is_some());
    }
}
