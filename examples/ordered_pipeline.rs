//! The §3.2 special case on a realistic shape: a staged pipeline where
//! each stage has one collector process, so the computation is
//! receive-ordered and singular k-CNF detection is polynomial.
//!
//! Run with: `cargo run --example ordered_pipeline`

use std::time::Instant;

use gpd::enumerate::possibly_by_enumeration;
use gpd::singular::{possibly_singular_chains, possibly_singular_ordered};
use gpd::{CnfClause, SingularCnf};
use gpd_computation::{gen, OrderingKind, ProcessId};
use rand::SeedableRng;

fn main() {
    // Two pipeline stages of three processes; all messages are received
    // by each stage's collector (p0, p3).
    let stages = 2;
    let width = 3;
    let n = stages * width;
    let collectors: Vec<usize> = (0..stages).map(|s| s * width).collect();

    // Predicate: per stage, "some worker is idle or the collector is
    // backlogged" — a 3-literal clause per stage, mixed polarities.
    let phi = SingularCnf::new(
        (0..stages)
            .map(|s| {
                CnfClause::new(vec![
                    (ProcessId::new(s * width), true),
                    (ProcessId::new(s * width + 1), false),
                    (ProcessId::new(s * width + 2), true),
                ])
            })
            .collect(),
    );
    let grouping = phi.grouping();

    for events in [5usize, 20, 100, 400] {
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        let comp = gen::random_computation_with_receivers(
            &mut rng,
            n,
            events,
            (n * events) / 4,
            Some(&collectors),
        );
        assert!(grouping.is_ordered(&comp, OrderingKind::ReceiveOrdered));
        let x = gen::random_bool_variable(&mut rng, &comp, 0.3);

        let t0 = Instant::now();
        let fast = possibly_singular_ordered(&comp, &x, &phi).expect("receive-ordered");
        let t_fast = t0.elapsed();

        let t0 = Instant::now();
        let general = possibly_singular_chains(&comp, &x, &phi);
        let t_general = t0.elapsed();
        assert_eq!(fast.is_some(), general.is_some());

        print!(
            "{} events/process: ordered scan {:>10?} | chain-cover {:>10?}",
            events, t_fast, t_general
        );
        if events <= 5 {
            let t0 = Instant::now();
            let slow = possibly_by_enumeration(&comp, |cut| phi.eval(&x, cut));
            println!(" | lattice enumeration {:>10?}", t0.elapsed());
            assert_eq!(fast.is_some(), slow.is_some());
        } else {
            println!(" | lattice enumeration: skipped (exponential)");
        }
        if let Some(cut) = fast {
            assert!(phi.eval(&x, &cut));
        }
    }
    println!(
        "\nthe ordered scan is a single left-to-right pass — polynomial —\n\
         while general algorithms multiply scans per clause and plain\n\
         enumeration explodes with the lattice."
    );
}
