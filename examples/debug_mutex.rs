//! The paper's motivating scenario: debugging a distributed mutual
//! exclusion algorithm by detecting *possible* concurrent accesses.
//!
//! We simulate Ricart–Agrawala twice — correct, and with an injected
//! grant-while-in-CS bug — and run conjunctive detection
//! `Possibly(in_cs_i ∧ in_cs_j)` on the recorded computations. The point
//! of predicate detection: the buggy run is flagged even when the
//! *observed* interleaving never actually had two processes in the
//! critical section simultaneously.
//!
//! Run with: `cargo run --example debug_mutex`

use gpd::conjunctive::possibly_conjunctive;
use gpd_computation::ProcessId;
use gpd_sim::protocols::RicartAgrawala;
use gpd_sim::{SimConfig, SimTrace, Simulation};

fn analyse(label: &str, trace: &SimTrace) -> bool {
    let n = trace.computation.process_count();
    let in_cs = trace.bool_var("in_cs").expect("protocol exposes in_cs");
    println!(
        "[{label}] recorded {} events, {} messages",
        trace.computation.event_count(),
        trace.computation.messages().len()
    );
    let mut any = false;
    for i in 0..n {
        for j in (i + 1)..n {
            if let Some(cut) = possibly_conjunctive(
                &trace.computation,
                in_cs,
                &[ProcessId::new(i), ProcessId::new(j)],
            ) {
                any = true;
                println!(
                    "[{label}]   VIOLATION possible: p{i} and p{j} both in CS at cut {:?}",
                    cut.frontier()
                );
            }
        }
    }
    if !any {
        println!("[{label}]   mutual exclusion holds in every consistent cut");
    }
    any
}

fn main() {
    let mut buggy_caught = 0;
    let mut correct_flagged = 0;
    let seeds = 0..8;
    for seed in seeds.clone() {
        let correct = Simulation::new(RicartAgrawala::group(3, 2), SimConfig::new(seed)).run();
        if analyse(&format!("correct seed={seed}"), &correct) {
            correct_flagged += 1;
        }
        let buggy = Simulation::new(
            RicartAgrawala::group_with_bug(3, 2, true),
            SimConfig::new(seed),
        )
        .run();
        if analyse(&format!("buggy   seed={seed}"), &buggy) {
            buggy_caught += 1;
        }
    }
    println!(
        "\nsummary over {} seeds: correct flagged {correct_flagged} times (expect 0), buggy caught {buggy_caught} times (expect > 0)",
        seeds.count()
    );
    assert_eq!(correct_flagged, 0, "false positive on the correct protocol");
    assert!(buggy_caught > 0, "the bug escaped detection on every seed");
}
