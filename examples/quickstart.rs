//! Quickstart: build a small computation by hand and ask the detection
//! questions from the paper's introduction.
//!
//! Run with: `cargo run --example quickstart`

use gpd::conjunctive::possibly_conjunctive;
use gpd::enumerate::definitely_by_enumeration;
use gpd::relational::possibly_exact_sum;
use gpd::singular::possibly_singular;
use gpd::{CnfClause, SingularCnf};
use gpd_computation::{to_dot, BoolVariable, ComputationBuilder, IntVariable};

fn main() {
    // A 3-process computation: p0 sends to p1, p1 sends to p2.
    //
    //   p0: a1 ──a2
    //         ╲
    //   p1:    b1 ──b2
    //                ╲
    //   p2:           c1
    let mut b = ComputationBuilder::new(3);
    let a1 = b.append(0);
    let _a2 = b.append(0);
    let b1 = b.append(1);
    let b2 = b.append(1);
    let c1 = b.append(2);
    b.message(a1, b1).unwrap();
    b.message(b2, c1).unwrap();
    let comp = b.build().unwrap();

    println!(
        "computation: {} processes, {} events, {} messages",
        comp.process_count(),
        comp.event_count(),
        comp.messages().len()
    );
    println!("consistent cuts: {}", comp.consistent_cuts().count());

    // Per-process booleans: "phase flag" that flips at various events.
    let flag = BoolVariable::new(
        &comp,
        vec![
            vec![false, true, false], // p0: true only after a1
            vec![false, false, true], // p1: true only after b2
            vec![false, true],        // p2: true after c1
        ],
    );

    // Possibly(flag0 ∧ flag1 ∧ flag2)? CPDHB answers in polynomial time.
    match possibly_conjunctive(&comp, &flag, &[0.into(), 1.into(), 2.into()]) {
        Some(cut) => println!("conjunction possible at cut {cut:?}"),
        None => println!("conjunction impossible: flag0 dies before flag2 can rise"),
    }

    // A singular 2-CNF: (flag0 ∨ ¬flag1) ∧ (flag2).
    let phi = SingularCnf::new(vec![
        CnfClause::new(vec![(0.into(), true), (1.into(), false)]),
        CnfClause::new(vec![(2.into(), true)]),
    ]);
    match possibly_singular(&comp, &flag, &phi) {
        Some(cut) => println!("singular 2-CNF possible at cut {cut:?}"),
        None => println!("singular 2-CNF impossible"),
    }

    // An exact-sum question: tokens held per process, ±1 per event.
    let tokens = IntVariable::new(&comp, vec![vec![1, 0, 0], vec![0, 1, 0], vec![0, 1]]);
    for k in 0..=2 {
        let witness = possibly_exact_sum(&comp, &tokens, k).expect("±1 steps");
        println!(
            "Possibly(Σ tokens = {k}): {}",
            witness.map_or("no".to_string(), |c| format!("yes, e.g. {c:?}")),
        );
    }

    // Definitely: must every run pass through a state with exactly one
    // token? (Exact check via the lattice.)
    let definitely_one = definitely_by_enumeration(&comp, |cut| tokens.sum_at(cut) == 1);
    println!("Definitely(Σ tokens = 1): {definitely_one}");

    // Export the space-time diagram.
    println!(
        "\nGraphviz (pipe into `dot -Tsvg`):\n{}",
        to_dot(&comp, Some(&flag))
    );
}
