//! Symmetric predicates over a distributed vote (§4.3).
//!
//! Every voter broadcasts a yes/no ballot. The paper's symmetric
//! predicates — absence of a simple majority, exclusive-or, not-all-equal
//! — are disjunctions of exact counts, so `Possibly` is polynomial even
//! though the vote interleavings are exponential.
//!
//! Run with: `cargo run --example majority_vote`

use gpd::symmetric::{possibly_symmetric, SymmetricPredicate};
use gpd_sim::protocols::Voter;
use gpd_sim::{SimConfig, Simulation};

fn main() {
    let n: usize = 6;
    for seed in [1, 2, 3] {
        let (trace, voters) =
            Simulation::new(Voter::electorate(n, 0.5), SimConfig::new(seed)).run_with_processes();
        let yes: usize = voters.iter().filter(|v| v.ballot() == Some(true)).count();
        println!(
            "seed {seed}: final tally {yes} yes / {} no over {} recorded events",
            n - yes,
            trace.computation.event_count()
        );

        let voted_yes = trace.bool_var("voted_yes").expect("recorded");
        let questions = [
            (
                "absence of simple majority (exactly 3/6 yes)",
                SymmetricPredicate::absence_of_simple_majority(n as u32),
            ),
            (
                "absence of two-thirds majority",
                SymmetricPredicate::absence_of_two_thirds_majority(n as u32),
            ),
            (
                "odd number of yes votes (xor)",
                SymmetricPredicate::exclusive_or(n as u32),
            ),
            ("not all equal", SymmetricPredicate::not_all_equal(n as u32)),
            (
                "unanimity (all equal)",
                SymmetricPredicate::all_equal(n as u32),
            ),
        ];
        for (name, phi) in &questions {
            let witness = possibly_symmetric(&trace.computation, voted_yes, phi);
            match witness {
                Some(cut) => println!(
                    "  Possibly({name}) = yes   e.g. at cut {:?}",
                    cut.frontier()
                ),
                None => println!("  Possibly({name}) = no"),
            }
        }
        println!();
    }
    println!(
        "note: ballots start false, so counts sweep 0 → final tally; any\n\
         intermediate count is a possible global observation — exactly the\n\
         kind of transient state the paper's monitoring detects."
    );
}
