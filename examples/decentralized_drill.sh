#!/usr/bin/env bash
# Decentralized chaos drill, from the shell:
#
#   1. record a 16-process voting trace ("voted" goes true at every
#      process, so the 16-way conjunction has a real witness);
#   2. centralized fault-free leg: `gpd feed --shutdown`, keep the
#      verdict AND witness;
#   3. decentralized chaos leg: 16 `gpd slicer` agents — one OS process
#      each — stream through `gpd chaos` (frame loss, duplication, one
#      forced reset) into a fresh server; slicer 0 is killed with
#      SIGKILL mid-run and restarted, resuming through the epoch
#      handshake;
#   4. require the decentralized verdict and witness to be
#      byte-identical to the centralized leg.
#
# Usage: examples/decentralized_drill.sh [path-to-gpd-binary]
set -euo pipefail

GPD=${1:-target/release/gpd}
WORK=$(mktemp -d)
trap 'kill $(jobs -p) 2>/dev/null || true; rm -rf "$WORK"' EXIT

N=16
"$GPD" simulate voting --n $N --seed 11 -o "$WORK/vote.trace"

wait_addr() {
    for _ in $(seq 1 200); do
        if [ -s "$1" ]; then cat "$1"; return 0; fi
        sleep 0.05
    done
    echo "timed out waiting for $1" >&2
    return 1
}

# Final verdict + witness lines, "final " prefix stripped so the
# centralized and decentralized legs compare byte for byte.
verdict_of() {
    grep -E '^(final )?(verdict|witness clocks):' "$1" | sed 's/^final //' | tail -n 2
}

# --- Centralized fault-free leg -------------------------------------
"$GPD" serve --addr 127.0.0.1:0 --wal-dir "$WORK/wal-central" \
    --addr-file "$WORK/central.addr" >"$WORK/serve-central.out" &
ADDR=$(wait_addr "$WORK/central.addr")
"$GPD" feed "$WORK/vote.trace" --addr "$ADDR" --var voted --shutdown \
    >"$WORK/feed-central.out"
wait # for serve to drain and exit
CENTRAL=$(verdict_of "$WORK/feed-central.out")
echo "centralized: $CENTRAL"

# --- Decentralized chaos leg ----------------------------------------
"$GPD" serve --addr 127.0.0.1:0 --wal-dir "$WORK/wal-dec" \
    --decentralized --heartbeat-timeout-ms 3000 \
    --addr-file "$WORK/dec-srv.addr" >"$WORK/serve-dec.out" &
SERVE_PID=$!
UPSTREAM=$(wait_addr "$WORK/dec-srv.addr")
"$GPD" chaos --upstream "$UPSTREAM" --listen 127.0.0.1:0 \
    --drop 0.05 --duplicate 0.1 --reset-after 50 --seed 42 \
    --addr-file "$WORK/chaos.addr" >"$WORK/chaos.out" &
CHAOS_PID=$!
PROXY=$(wait_addr "$WORK/chaos.addr")

SLICER_FLAGS=(--var voted --io-timeout-ms 300 --retries 100
    --backoff-ms 2 --backoff-cap-ms 50 --heartbeat-ms 50)

# Slicers 1..N-1: one OS process each, through the proxy.
PIDS=()
for p in $(seq 1 $((N - 1))); do
    "$GPD" slicer "$WORK/vote.trace" --addr "$PROXY" "${SLICER_FLAGS[@]}" \
        --process "$p" --seed "$p" >"$WORK/slicer-$p.out" &
    PIDS+=($!)
done

# Slicer 0: started, SIGKILLed mid-run (the crash), restarted below.
"$GPD" slicer "$WORK/vote.trace" --addr "$PROXY" "${SLICER_FLAGS[@]}" \
    --process 0 --seed 100 >"$WORK/slicer-0-killed.out" &
VICTIM=$!
sleep 0.3
kill -9 "$VICTIM" 2>/dev/null || true
echo "killed slicer 0 mid-run"

for pid in "${PIDS[@]}"; do wait "$pid"; done

# The restart: resyncs through the epoch handshake, replays only what
# is missing, then queries the decentralized verdict and shuts down.
"$GPD" slicer "$WORK/vote.trace" --addr "$PROXY" "${SLICER_FLAGS[@]}" \
    --process 0 --seed 101 --status --shutdown >"$WORK/slicer-0-restart.out"
wait "$SERVE_PID"
kill "$CHAOS_PID" 2>/dev/null || true

DEC=$(verdict_of "$WORK/slicer-0-restart.out")
echo "decentralized: $DEC"

if [ "$CENTRAL" != "$DEC" ]; then
    echo "FAIL: decentralized verdict/witness diverged from the centralized leg" >&2
    echo "centralized:   $CENTRAL" >&2
    echo "decentralized: $DEC" >&2
    exit 1
fi
if grep -q DEGRADED "$WORK/slicer-0-restart.out"; then
    echo "FAIL: tenant still degraded after the restart completed" >&2
    exit 1
fi
grep -E '^slicer 0:' "$WORK/slicer-0-restart.out"
grep -E '^tenant .*slicers' "$WORK/serve-dec.out" || true
echo "OK: decentralized verdict and witness match the centralized leg"
echo "    through loss, duplication, a reset, and a slicer kill/restart"
