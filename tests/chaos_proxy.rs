//! End-to-end fault drill: a feed through the chaos proxy — frame
//! loss, duplication, and one forced connection reset — must reach the
//! same verdict as a fault-free feed, with the retries and resumes
//! observable in the server's counters.

use std::path::PathBuf;
use std::time::Duration;

use gpd_server::chaos::{self, ChaosConfig};
use gpd_server::client::{ClientConfig, FeedClient};
use gpd_server::server::{self, ServerConfig};
use gpd_server::wal::{FsyncPolicy, WalConfig};
use gpd_sim::FaultPlan;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const N: usize = 3;

fn tmp_dir(tag: &str) -> PathBuf {
    static UNIQUE: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let k = UNIQUE.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("gpd-chaos-{tag}-{}-{k}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Same deterministic event stream as `tests/crash_recovery.rs`.
fn generated_events() -> Vec<(usize, Vec<u32>)> {
    let mut rng = StdRng::seed_from_u64(0x5eed);
    let mut clocks = vec![vec![0u32; N]; N];
    let mut events = Vec::new();
    for round in 0..12 {
        for p in 0..N {
            if round > 0 && rng.gen_bool(0.4) {
                let q = rng.gen_range(0..N - 1);
                let q = if q >= p { q + 1 } else { q };
                let other = clocks[q].clone();
                for (mine, theirs) in clocks[p].iter_mut().zip(other) {
                    *mine = (*mine).max(theirs);
                }
            }
            clocks[p][p] += 1;
            events.push((p, clocks[p].clone()));
        }
    }
    events
}

fn start_server(dir: &PathBuf) -> gpd_server::ServerHandle {
    let mut config = ServerConfig::new(WalConfig::new(dir).with_fsync(FsyncPolicy::Always));
    config.shards = 2;
    config.io_timeout = Duration::from_secs(5);
    server::start("127.0.0.1:0", config).unwrap()
}

fn chaos_client(addr: std::net::SocketAddr) -> FeedClient {
    let mut config = ClientConfig::new(addr.to_string());
    // Short timeouts so a lost ack is detected quickly; a generous
    // retry budget so the fault rate cannot outlast the client.
    config.io_timeout = Duration::from_millis(300);
    config.max_retries = 100;
    config.backoff_base = Duration::from_millis(2);
    config.backoff_cap = Duration::from_millis(50);
    config.jitter_seed = 7;
    FeedClient::new(config)
}

#[test]
fn lossy_duplicating_resetting_path_matches_fault_free_verdict() {
    let events = generated_events();

    // Fault-free reference run.
    let clean_dir = tmp_dir("clean");
    let clean_server = start_server(&clean_dir);
    let clean_client = chaos_client(clean_server.local_addr());
    let clean = clean_client.feed(&[false; N], &events).unwrap();
    clean_client.shutdown().unwrap();
    clean_server.wait();
    assert!(clean.witness.is_some(), "reference run must find a witness");

    // Chaos run: loss + duplication + jitter + one forced reset.
    let chaos_dir = tmp_dir("faulty");
    let chaos_server = start_server(&chaos_dir);
    let mut chaos_config = ChaosConfig::new(chaos_server.local_addr().to_string());
    chaos_config.faults = FaultPlan {
        drop_prob: 0.12,
        duplicate_prob: 0.25,
        jitter_prob: 0.2,
        jitter_range: (1, 5),
        crashes: Vec::new(),
    };
    chaos_config.reset_after = Some(15);
    chaos_config.seed = 42;
    let proxy = chaos::start("127.0.0.1:0", chaos_config).unwrap();

    let client = chaos_client(proxy.local_addr());
    let report = client
        .feed(&[false; N], &events)
        .expect("retry budget must outlast the fault plan");

    assert_eq!(
        report.witness, clean.witness,
        "chaos path diverged from the fault-free verdict"
    );

    // The faults actually bit, and the machinery visibly absorbed them.
    let proxy_report = proxy.stop();
    assert!(proxy_report.dropped >= 1, "{proxy_report:?}");
    assert!(proxy_report.duplicated >= 1, "{proxy_report:?}");
    assert_eq!(proxy_report.resets, 1, "{proxy_report:?}");
    assert!(
        report.reconnects >= 1,
        "the forced reset must drive the client through reconnect: {report:?}"
    );

    // Server-side counters tell the same story (query directly, past
    // the now-stopped proxy).
    let direct = chaos_client(chaos_server.local_addr());
    let stats = direct.query_stats().unwrap();
    assert!(
        stats.resumes >= 1,
        "reconnects must resume the session: {stats:?}"
    );
    assert!(
        stats.duplicates + stats.stale >= 1,
        "duplicated/replayed frames must be screened: {stats:?}"
    );
    assert_eq!(
        stats.observed,
        events.len() as u64,
        "every distinct event applied exactly once: {stats:?}"
    );

    direct.shutdown().unwrap();
    chaos_server.wait();
    let _ = std::fs::remove_dir_all(&clean_dir);
    let _ = std::fs::remove_dir_all(&chaos_dir);
}

/// Resets are schedulable and repeatable: first after 5 forwarded
/// frames, then every 10, capped at 3 — and the client out-stubborns
/// all of them.
#[test]
fn scheduled_repeating_resets_are_all_absorbed() {
    let events = generated_events();
    let dir = tmp_dir("resets");
    let server = start_server(&dir);
    let mut config = ChaosConfig::new(server.local_addr().to_string());
    config.reset_after = Some(5);
    config.reset_every = Some(10);
    config.reset_limit = 3;
    let proxy = chaos::start("127.0.0.1:0", config).unwrap();

    let client = chaos_client(proxy.local_addr());
    let report = client
        .feed(&[false; N], &events)
        .expect("the retry budget must outlast the reset storm");
    let proxy_report = proxy.stop();
    assert_eq!(proxy_report.resets, 3, "{proxy_report:?}");
    assert!(
        report.reconnects >= 3,
        "every reset must force a reconnect: {report:?}"
    );

    let direct = chaos_client(server.local_addr());
    let stats = direct.query_stats().unwrap();
    assert!(stats.resumes >= 3, "{stats:?}");
    assert_eq!(stats.observed, events.len() as u64, "{stats:?}");
    direct.shutdown().unwrap();
    server.wait();
    let _ = std::fs::remove_dir_all(&dir);
}

/// The multi-tenant chaos smoke: 16 tenants storm one proxy
/// concurrently — loss, duplication, jitter, and repeating resets —
/// and every tenant's verdict matches its fault-free leg.
#[test]
fn sixteen_tenants_through_chaos_match_fault_free_verdicts() {
    let events = generated_events();

    // Fault-free reference: one tenant, one clean run. Every tenant
    // feeds the same stream, so the expected witness is shared.
    let clean_dir = tmp_dir("mt-clean");
    let clean_server = start_server(&clean_dir);
    let clean_client = chaos_client(clean_server.local_addr());
    let expected = clean_client.feed(&[false; N], &events).unwrap().witness;
    clean_client.shutdown().unwrap();
    clean_server.wait();
    assert!(expected.is_some());

    // Chaos leg: sharded server under group commit, faulty proxy with
    // a repeating reset schedule shared by all connections.
    let dir = tmp_dir("mt-chaos");
    let mut server_config = ServerConfig::new(WalConfig::new(&dir).with_fsync(FsyncPolicy::Group));
    server_config.shards = 4;
    server_config.io_timeout = Duration::from_secs(5);
    server_config.snapshot_every = Some(16);
    let server = server::start("127.0.0.1:0", server_config).unwrap();

    let mut chaos_config = ChaosConfig::new(server.local_addr().to_string());
    chaos_config.faults = FaultPlan {
        drop_prob: 0.08,
        duplicate_prob: 0.15,
        jitter_prob: 0.1,
        jitter_range: (1, 3),
        crashes: Vec::new(),
    };
    chaos_config.reset_after = Some(40);
    chaos_config.reset_every = Some(120);
    chaos_config.reset_limit = 4;
    chaos_config.seed = 42;
    let proxy = chaos::start("127.0.0.1:0", chaos_config).unwrap();
    let proxy_addr = proxy.local_addr();

    let feeds: Vec<_> = (0..16)
        .map(|i| {
            let events = events.clone();
            std::thread::spawn(move || {
                let mut config =
                    ClientConfig::new(proxy_addr.to_string()).with_tenant(format!("tenant-{i:02}"));
                config.io_timeout = Duration::from_millis(500);
                config.max_retries = 100;
                config.backoff_base = Duration::from_millis(2);
                config.backoff_cap = Duration::from_millis(50);
                config.jitter_seed = 7 + i;
                FeedClient::new(config)
                    .feed(&[false; N], &events)
                    .expect("retry budget must outlast the fault plan")
            })
        })
        .collect();
    for (i, feed) in feeds.into_iter().enumerate() {
        let report = feed.join().unwrap();
        assert_eq!(
            report.witness, expected,
            "tenant-{i:02} diverged from the fault-free verdict"
        );
    }

    let proxy_report = proxy.stop();
    assert!(proxy_report.dropped >= 1, "{proxy_report:?}");
    assert!(proxy_report.resets >= 1, "{proxy_report:?}");
    assert!(proxy_report.connections >= 16, "{proxy_report:?}");

    // Per-tenant counters: every tenant applied every event exactly
    // once, duplicates screened, despite sharing the fault schedule.
    let direct = chaos_client(server.local_addr());
    let rows = direct.query_tenant_stats().unwrap();
    assert_eq!(rows.len(), 16, "{rows:?}");
    for row in &rows {
        assert_eq!(row.observed, events.len() as u64, "{row:?}");
        assert!(row.witness_found, "{row:?}");
        assert!(!row.quarantined, "{row:?}");
    }
    direct.shutdown().unwrap();
    server.wait();
    let _ = std::fs::remove_dir_all(&clean_dir);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn transparent_proxy_is_invisible() {
    let events = generated_events();
    let dir = tmp_dir("transparent");
    let server = start_server(&dir);
    let proxy = chaos::start(
        "127.0.0.1:0",
        ChaosConfig::new(server.local_addr().to_string()),
    )
    .unwrap();
    let client = chaos_client(proxy.local_addr());
    let report = client.feed(&[false; N], &events).unwrap();
    assert_eq!(report.reconnects, 0);
    assert_eq!(report.accepted, events.len() as u64);
    let proxy_report = proxy.stop();
    assert_eq!(proxy_report.dropped, 0);
    assert_eq!(proxy_report.duplicated, 0);
    let direct = chaos_client(server.local_addr());
    direct.shutdown().unwrap();
    server.wait();
    let _ = std::fs::remove_dir_all(&dir);
}
