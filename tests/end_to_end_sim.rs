//! End-to-end: simulate a protocol, record its computation, run the
//! paper's detection algorithms on the trace — the full workflow a user
//! of this library would follow when debugging a distributed system.

use gpd::conjunctive::possibly_conjunctive;
use gpd::enumerate::possibly_by_enumeration;
use gpd::relational::{possibly_exact_sum, possibly_sum};
use gpd::symmetric::{indicator_variable, possibly_symmetric, SymmetricPredicate};
use gpd::Relop;
use gpd_computation::ProcessId;
use gpd_sim::protocols::{BankBranch, ChangRoberts, RicartAgrawala, TokenRing, Voter};
use gpd_sim::{SimConfig, Simulation};

#[test]
fn correct_mutex_has_no_possible_violation() {
    for seed in 0..5 {
        let trace = Simulation::new(RicartAgrawala::group(3, 2), SimConfig::new(seed)).run();
        let in_cs = trace.bool_var("in_cs").unwrap();
        // Check every pair of processes with the polynomial algorithm.
        for i in 0..3 {
            for j in (i + 1)..3 {
                let witness = possibly_conjunctive(
                    &trace.computation,
                    in_cs,
                    &[ProcessId::new(i), ProcessId::new(j)],
                );
                assert!(
                    witness.is_none(),
                    "seed {seed}: pair ({i},{j}) could violate mutual exclusion"
                );
            }
        }
    }
}

#[test]
fn buggy_mutex_violation_is_detected_and_witnessed() {
    let mut found = false;
    for seed in 0..10 {
        let trace = Simulation::new(
            RicartAgrawala::group_with_bug(3, 1, true),
            SimConfig::new(seed),
        )
        .run();
        let in_cs = trace.bool_var("in_cs").unwrap();
        for i in 0..3 {
            for j in (i + 1)..3 {
                if let Some(cut) = possibly_conjunctive(
                    &trace.computation,
                    in_cs,
                    &[ProcessId::new(i), ProcessId::new(j)],
                ) {
                    // The witness is a real consistent global state with
                    // both processes inside the critical section.
                    assert!(trace.computation.is_consistent(&cut));
                    assert!(in_cs.value_at(&cut, i) && in_cs.value_at(&cut, j));
                    found = true;
                }
            }
        }
    }
    assert!(
        found,
        "the injected bug never produced a detectable violation"
    );
}

#[test]
fn token_conservation_and_loss_detection() {
    let trace = Simulation::new(TokenRing::ring(5, 2), SimConfig::new(7)).run();
    let tokens = trace.int_var("tokens").unwrap();
    assert!(tokens.is_unit_step());

    // "Exactly 2 tokens held" is possible (e.g. the initial cut).
    let w = possibly_exact_sum(&trace.computation, tokens, 2).unwrap();
    assert!(w.is_some());
    // More tokens than exist is impossible.
    assert!(possibly_exact_sum(&trace.computation, tokens, 3)
        .unwrap()
        .is_none());
    // With tokens in flight, some cut holds fewer than 2.
    let dip = possibly_sum(&trace.computation, tokens, Relop::Lt, 2);
    let slow = possibly_by_enumeration(&trace.computation, |c| tokens.sum_at(c) < 2);
    assert_eq!(dip.is_some(), slow.is_some());
}

#[test]
fn duplication_bug_shows_up_as_excess_tokens() {
    let trace = Simulation::new(TokenRing::ring_with_bug(5, 2, 2), SimConfig::new(7)).run();
    let tokens = trace.int_var("tokens").unwrap();
    // Conservation violated: some cut holds more than 2 tokens.
    assert!(
        possibly_sum(&trace.computation, tokens, Relop::Gt, 2).is_some(),
        "duplicated tokens must be observable at some cut"
    );
}

#[test]
fn election_yields_exactly_one_leader() {
    let trace = Simulation::new(ChangRoberts::ring(&[4, 9, 2, 7, 5]), SimConfig::new(3)).run();
    let leader = trace.bool_var("is_leader").unwrap();
    // "Exactly one leader" eventually holds.
    let one = possibly_symmetric(&trace.computation, leader, &SymmetricPredicate::exactly(1));
    assert!(one.is_some());
    // "Two or more leaders" never: counts 2..=5 are all impossible.
    let many = SymmetricPredicate::new(2..=5);
    assert!(possibly_symmetric(&trace.computation, leader, &many).is_none());
}

#[test]
fn voting_majority_analysis_matches_ballots() {
    let n = 4;
    let (trace, voters) =
        Simulation::new(Voter::electorate(n, 0.5), SimConfig::new(11)).run_with_processes();
    let voted_yes = trace.bool_var("voted_yes").unwrap();
    let yes_total = voters.iter().filter(|v| v.ballot() == Some(true)).count() as i64;

    // The final tally is reachable as an exact sum.
    let indicator = indicator_variable(&trace.computation, voted_yes);
    assert!(
        possibly_exact_sum(&trace.computation, &indicator, yes_total)
            .unwrap()
            .is_some()
    );

    // Absence of simple majority (= exactly 2 of 4 yes) possible iff the
    // exhaustive baseline says so.
    let phi = SymmetricPredicate::absence_of_simple_majority(n as u32);
    let fast = possibly_symmetric(&trace.computation, voted_yes, &phi);
    let slow = possibly_by_enumeration(&trace.computation, |c| {
        phi.eval(&trace.computation, voted_yes, c)
    });
    assert_eq!(fast.is_some(), slow.is_some());
}

#[test]
fn bank_solvency_questions_are_polynomial() {
    let trace = Simulation::new(BankBranch::network(4, 100, 3, 50), SimConfig::new(19)).run();
    let balance = trace.int_var("balance").unwrap();
    let total = 400;

    // Visible money never exceeds the grand total (transfers only hide
    // money in flight).
    assert!(possibly_sum(&trace.computation, balance, Relop::Gt, total).is_none());
    // It can dip below when transfers are in flight (if any happened).
    if !trace.computation.messages().is_empty() {
        assert!(possibly_sum(&trace.computation, balance, Relop::Lt, total).is_some());
    }
    // The minimum visible amount matches the exhaustive baseline.
    let (min, cut) = gpd::relational::min_sum_cut(&trace.computation, balance);
    let brute = trace
        .computation
        .consistent_cuts()
        .map(|c| balance.sum_at(&c))
        .min()
        .unwrap();
    assert_eq!(min, brute);
    assert_eq!(balance.sum_at(&cut), min);
}
