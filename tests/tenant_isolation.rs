//! Tenant isolation for the multi-tenant sharded service: one
//! tenant's backpressure overflow, panicking predicate, or torn WAL
//! segment must not change any other tenant's verdict or counters.

use std::path::PathBuf;
use std::time::Duration;

use gpd_server::client::{ClientConfig, ClientError, FeedClient};
use gpd_server::server::{self, ServerConfig};
use gpd_server::wal::{FsyncPolicy, WalConfig};

fn tmp_dir(tag: &str) -> PathBuf {
    static UNIQUE: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let k = UNIQUE.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("gpd-tenant-{tag}-{}-{k}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn server_config(dir: &PathBuf) -> ServerConfig {
    let mut config = ServerConfig::new(WalConfig::new(dir).with_fsync(FsyncPolicy::Always));
    config.shards = 4;
    config.io_timeout = Duration::from_secs(5);
    config
}

fn client_for(addr: std::net::SocketAddr, tenant: &str) -> FeedClient {
    let mut config = ClientConfig::new(addr.to_string()).with_tenant(tenant);
    config.io_timeout = Duration::from_secs(5);
    config.max_retries = 4;
    config.backoff_base = Duration::from_millis(2);
    config.backoff_cap = Duration::from_millis(20);
    FeedClient::new(config)
}

/// A 2-process stream where both processes report true states that
/// are mutually concurrent, so the conjunction holds.
fn witnessed_events() -> Vec<(usize, Vec<u32>)> {
    vec![
        (0, vec![1, 0]),
        (1, vec![0, 1]),
        (0, vec![2, 0]),
        (1, vec![0, 2]),
    ]
}

/// Only process 0 ever reports a true state: no witness, and the
/// monitor queue for process 0 grows without bound.
fn one_sided_events(len: u32) -> Vec<(usize, Vec<u32>)> {
    (1..=len).map(|k| (0, vec![k, 0])).collect()
}

fn row_for<'a>(
    rows: &'a [gpd_server::TenantStatsRow],
    tenant: &str,
) -> &'a gpd_server::TenantStatsRow {
    rows.iter()
        .find(|r| r.tenant == tenant)
        .unwrap_or_else(|| panic!("no stats row for tenant {tenant:?}"))
}

#[test]
fn tenants_get_independent_verdicts_and_counters() {
    let dir = tmp_dir("verdicts");
    let handle = server::start("127.0.0.1:0", server_config(&dir)).unwrap();
    let addr = handle.local_addr();

    // Even tenants see the conjunction hold; odd tenants never do.
    // Feed concurrently so shard pinning and migration are exercised.
    let feeds: Vec<_> = (0..8)
        .map(|i| {
            std::thread::spawn(move || {
                let tenant = format!("tenant-{i}");
                let client = client_for(addr, &tenant);
                let events = if i % 2 == 0 {
                    witnessed_events()
                } else {
                    one_sided_events(4)
                };
                let report = client.feed(&[false, false], &events).unwrap();
                (i, report)
            })
        })
        .collect();
    for feed in feeds {
        let (i, report) = feed.join().unwrap();
        assert_eq!(
            report.witness.is_some(),
            i % 2 == 0,
            "tenant-{i} got the wrong verdict: {report:?}"
        );
    }

    let rows = client_for(addr, "tenant-0").query_tenant_stats().unwrap();
    assert_eq!(rows.len(), 8, "{rows:?}");
    for i in 0..8u32 {
        let row = row_for(&rows, &format!("tenant-{i}"));
        assert_eq!(row.observed, 4, "tenant-{i}: {row:?}");
        assert_eq!(row.witness_found, i % 2 == 0, "tenant-{i}: {row:?}");
        assert!(!row.quarantined, "tenant-{i}: {row:?}");
        assert!(row.wal_bytes > 0, "tenant-{i}: {row:?}");
    }

    client_for(addr, "tenant-0").shutdown().unwrap();
    let summary = handle.wait();
    assert_eq!(summary.stats.tenants, 8);
    assert_eq!(summary.tenants.len(), 8);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn queue_overflow_in_one_tenant_leaves_others_untouched() {
    let dir = tmp_dir("overflow");
    let mut config = server_config(&dir);
    config.queue_cap = Some(2);
    let handle = server::start("127.0.0.1:0", config).unwrap();
    let addr = handle.local_addr();

    // "hog" streams one-sided events past the cap: after 2 queued
    // states every further event is Rejected, and the client's retry
    // budget eventually gives up.
    let hog = client_for(addr, "hog");
    let err = hog
        .feed(&[false, false], &one_sided_events(10))
        .expect_err("the overflowing feed must exhaust its retries");
    assert!(
        matches!(err, ClientError::RetriesExhausted { .. }),
        "{err:?}"
    );

    // "quiet" is unaffected: same server, full verdict.
    let quiet = client_for(addr, "quiet");
    let report = quiet.feed(&[false, false], &witnessed_events()).unwrap();
    assert!(report.witness.is_some(), "{report:?}");
    assert_eq!(report.rejected_retries, 0, "{report:?}");

    let rows = quiet.query_tenant_stats().unwrap();
    let hog_row = row_for(&rows, "hog");
    assert!(hog_row.rejected >= 1, "{hog_row:?}");
    assert_eq!(hog_row.observed, 2, "cap admits exactly 2: {hog_row:?}");
    let quiet_row = row_for(&rows, "quiet");
    assert_eq!(quiet_row.rejected, 0, "{quiet_row:?}");
    assert_eq!(quiet_row.observed, 4, "{quiet_row:?}");

    quiet.shutdown().unwrap();
    handle.wait();
    let _ = std::fs::remove_dir_all(&dir);
}

/// The fault-injection hook: panics while applying any event of the
/// tenant named "evil" — a stand-in for a predicate whose evaluation
/// crashes.
fn evil_predicate(tenant: &str) {
    assert!(tenant != "evil", "injected predicate crash");
}

#[test]
fn panicking_predicate_quarantines_only_its_tenant() {
    let dir = tmp_dir("quarantine");
    let mut config = server_config(&dir);
    config.fault_injection = Some(evil_predicate);
    let handle = server::start("127.0.0.1:0", config).unwrap();
    let addr = handle.local_addr();

    // The evil tenant's first event trips the panic; the server
    // answers with a protocol error instead of dying.
    let evil = client_for(addr, "evil");
    let err = evil
        .feed(&[false, false], &witnessed_events())
        .expect_err("the quarantined tenant cannot make progress");
    let quarantined_error = |e: &ClientError| match e {
        ClientError::Server(m) => m.contains("quarantined"),
        ClientError::RetriesExhausted { last, .. } => last.contains("quarantined"),
        ClientError::Protocol(_) => false,
    };
    assert!(quarantined_error(&err), "{err:?}");

    // A fresh session for the same tenant is refused too.
    let again = client_for(addr, "evil");
    let err = again
        .feed(&[false, false], &witnessed_events())
        .expect_err("quarantine outlives the connection");
    assert!(quarantined_error(&err), "{err:?}");

    // Every other tenant still works, even one on the same shard.
    for name in ["innocent", "bystander"] {
        let client = client_for(addr, name);
        let report = client.feed(&[false, false], &witnessed_events()).unwrap();
        assert!(report.witness.is_some(), "tenant {name}: {report:?}");
    }

    let rows = client_for(addr, "innocent").query_tenant_stats().unwrap();
    assert!(row_for(&rows, "evil").quarantined);
    assert!(!row_for(&rows, "innocent").quarantined);
    assert!(!row_for(&rows, "bystander").quarantined);

    client_for(addr, "innocent").shutdown().unwrap();
    handle.wait();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_wal_segment_in_one_tenant_does_not_poison_recovery() {
    let dir = tmp_dir("torn");

    // First life: two healthy tenants.
    let handle = server::start("127.0.0.1:0", server_config(&dir)).unwrap();
    let addr = handle.local_addr();
    for name in ["healthy", "doomed"] {
        let client = client_for(addr, name);
        let report = client.feed(&[false, false], &witnessed_events()).unwrap();
        assert!(report.witness.is_some());
    }
    client_for(addr, "healthy").shutdown().unwrap();
    handle.wait();

    // Tear the doomed tenant's log mid-frame and drop garbage into a
    // third tenant's namespace.
    let doomed = dir.join("tenants").join("doomed").join("00000000.wal");
    let bytes = std::fs::read(&doomed).unwrap();
    std::fs::write(&doomed, &bytes[..bytes.len() / 2]).unwrap();
    let garbage = dir.join("tenants").join("garbage");
    std::fs::create_dir_all(&garbage).unwrap();
    std::fs::write(garbage.join("00000000.wal"), [0xFFu8; 37]).unwrap();

    // Second life: recovery truncates the torn tails per tenant; the
    // healthy tenant's verdict is untouched.
    let handle = server::start("127.0.0.1:0", server_config(&dir)).unwrap();
    let addr = handle.local_addr();
    let healthy = client_for(addr, "healthy");
    assert!(
        healthy.query_verdict().unwrap().is_some(),
        "healthy tenant's recovered verdict lost"
    );
    let rows = healthy.query_tenant_stats().unwrap();
    assert!(row_for(&rows, "healthy").witness_found);
    assert!(!row_for(&rows, "garbage").witness_found);

    // The doomed tenant accepts a fresh session and redelivery
    // converges to the same verdict (at-least-once semantics).
    let doomed_client = client_for(addr, "doomed");
    let report = doomed_client
        .feed(&[false, false], &witnessed_events())
        .unwrap();
    assert!(report.witness.is_some(), "{report:?}");

    healthy.shutdown().unwrap();
    handle.wait();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn tenant_quota_refuses_new_tenants_but_not_existing_ones() {
    let dir = tmp_dir("quota");
    let mut config = server_config(&dir);
    config.max_tenants = 2;
    let handle = server::start("127.0.0.1:0", config).unwrap();
    let addr = handle.local_addr();

    let a = client_for(addr, "a");
    let b = client_for(addr, "b");
    assert!(a.feed(&[false, false], &witnessed_events()).is_ok());
    assert!(b.feed(&[false, false], &witnessed_events()).is_ok());

    let crowd = client_for(addr, "crowd");
    let err = crowd
        .feed(&[false, false], &witnessed_events())
        .expect_err("the quota must hold");
    let quota_error = |e: &ClientError| match e {
        ClientError::Server(m) => m.contains("quota"),
        ClientError::RetriesExhausted { last, .. } => last.contains("quota"),
        ClientError::Protocol(_) => false,
    };
    assert!(quota_error(&err), "{err:?}");

    // Existing tenants still resume fine.
    let report = a.feed(&[false, false], &witnessed_events()).unwrap();
    assert!(report.witness.is_some());

    a.shutdown().unwrap();
    handle.wait();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn invalid_tenant_names_are_refused() {
    let dir = tmp_dir("names");
    let handle = server::start("127.0.0.1:0", server_config(&dir)).unwrap();
    let addr = handle.local_addr();
    for bad in ["", ".hidden", "a/b", "name with spaces"] {
        let client = client_for(addr, bad);
        assert!(
            client.feed(&[false, false], &witnessed_events()).is_err(),
            "tenant name {bad:?} must be refused"
        );
    }
    let ok = client_for(addr, "A-ok_name.v2");
    assert!(ok.feed(&[false, false], &witnessed_events()).is_ok());
    ok.shutdown().unwrap();
    handle.wait();
    let _ = std::fs::remove_dir_all(&dir);
}
