//! The witness-minimality contract of the scan engine: a conjunctive
//! witness is built by `cut_through` — the least consistent cut through
//! the scan's surviving candidates — so it must sit on the *minimum*
//! satisfying level, the same level as the breadth-first enumeration's
//! first witness, and lie pointwise below every other witness at that
//! level.

use gpd::conjunctive::possibly_conjunctive;
use gpd::enumerate::possibly_by_enumeration;
use gpd_computation::{gen, ProcessId};
use proptest::prelude::*;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn conjunctive_witness_is_the_minimum_level_witness(
        seed in any::<u64>(),
        n in 1usize..5,
        m in 1usize..5,
        msgs in 0usize..8,
        density in 0.2f64..0.7,
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        // A single process cannot exchange messages.
        let msgs = if n > 1 { msgs } else { 0 };
        let comp = gen::random_computation(&mut rng, n, m, msgs);
        let x = gen::random_bool_variable(&mut rng, &comp, density);
        let procs: Vec<ProcessId> = (0..n).map(ProcessId::new).collect();
        let holds = |c: &gpd_computation::Cut| procs.iter().all(|&p| x.value_at(c, p.index()));

        let fast = possibly_conjunctive(&comp, &x, &procs);
        let slow = possibly_by_enumeration(&comp, holds);
        prop_assert_eq!(fast.is_some(), slow.is_some());
        if let (Some(w), Some(min)) = (fast, slow) {
            prop_assert!(holds(&w));
            // The scan's cut is the infimum of all satisfying cuts: its
            // level equals the BFS minimum and its frontier is pointwise
            // ≤ the minimum-level witness enumeration found.
            prop_assert_eq!(w.event_count(), min.event_count());
            for p in 0..n {
                prop_assert!(w.state_of(ProcessId::new(p)) <= min.state_of(ProcessId::new(p)));
            }
        }
    }
}
