//! End-to-end validation of the NP-hardness reductions (Theorems 1 & 2):
//! formula/instance oracles must agree with predicate detection on the
//! gadget computations, through the full transformation pipeline.

use gpd::enumerate::possibly_by_enumeration;
use gpd::hardness::{brute_force_subset_sum, reduce_sat, reduce_subset_sum};
use gpd::singular::{possibly_singular_chains, possibly_singular_subsets};
use gpd_sat::{brute_force, random_cnf, solve, to_non_monotone, to_three_cnf};
use proptest::prelude::*;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn sat_reduction_equivalence_through_full_pipeline(
        seed in any::<u64>(),
        n in 2u32..6,
        clauses in 1usize..4,
        width in 2usize..5,
    ) {
        // Arbitrary k-CNF → 3-CNF → non-monotone 3-CNF → gadget.
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let width = width.min(n as usize);
        let raw = random_cnf(&mut rng, n, clauses, width);
        let three = to_three_cnf(&raw);
        let nm = to_non_monotone(&three);
        prop_assert!(nm.is_non_monotone());
        prop_assert!(nm.max_clause_len() <= 3);

        let gadget = reduce_sat(&nm).expect("pipeline output is valid input");
        let sat = solve(&raw).is_some();
        // Both general detection algorithms must agree with SAT.
        let detected = possibly_singular_chains(
            &gadget.computation, &gadget.variable, &gadget.predicate,
        );
        prop_assert_eq!(detected.is_some(), sat);
        let via_subsets = possibly_singular_subsets(
            &gadget.computation, &gadget.variable, &gadget.predicate,
        );
        prop_assert_eq!(via_subsets.is_some(), sat);

        // A witness converts back into a model of the *transformed*
        // formula (whose restriction satisfies the original).
        if let Some(cut) = detected {
            let assignment = gadget.assignment_from_cut(&cut);
            prop_assert!(nm.eval(&assignment));
            prop_assert!(raw.eval(&assignment[..n as usize]));
        }
    }

    #[test]
    fn sat_gadget_lattice_agrees_with_dpll(
        seed in any::<u64>(),
        n in 2u32..5,
        clauses in 1usize..4,
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let raw = random_cnf(&mut rng, n, clauses, 2);
        let nm = to_non_monotone(&raw);
        let gadget = reduce_sat(&nm).expect("non-monotone");
        let slow = possibly_by_enumeration(&gadget.computation, |cut| {
            gadget.predicate.eval(&gadget.variable, cut)
        });
        prop_assert_eq!(slow.is_some(), brute_force(&nm).is_some());
    }

    #[test]
    fn subset_sum_reduction_equivalence(
        sizes in proptest::collection::vec(1i64..15, 1..9),
        target in 1i64..40,
    ) {
        let gadget = reduce_subset_sum(&sizes, target);
        let oracle = brute_force_subset_sum(&sizes, target);
        let detected = possibly_by_enumeration(&gadget.computation, |c| {
            gadget.variable.sum_at(c) == gadget.target
        });
        prop_assert_eq!(oracle.is_some(), detected.is_some());
        if let Some(cut) = detected {
            let subset = gadget.subset_from_cut(&cut);
            let sum: i64 = subset.iter().map(|&i| sizes[i]).sum();
            prop_assert_eq!(sum, target);
        }
    }

    #[test]
    fn inequalities_stay_polynomial_on_subset_sum_gadgets(
        sizes in proptest::collection::vec(1i64..15, 1..9),
        target in 1i64..40,
    ) {
        // Theorem 2 bites equality only: the ≥/≤ questions are answered
        // by the flow algorithm and must match the trivial extremes.
        use gpd::relational::{max_sum_cut, min_sum_cut};
        let gadget = reduce_subset_sum(&sizes, target);
        let total: i64 = sizes.iter().sum();
        prop_assert_eq!(max_sum_cut(&gadget.computation, &gadget.variable).0, total);
        prop_assert_eq!(min_sum_cut(&gadget.computation, &gadget.variable).0, 0);
    }
}
