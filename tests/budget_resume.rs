//! Graceful degradation end-to-end: budgeted engines interrupted by a
//! deadline or node cap return `Unknown` with a checkpoint, and resuming
//! from that checkpoint reproduces the uninterrupted verdict — and
//! witness — **byte-for-byte**, at every thread count. Partial bounds
//! carried by `Unknown` verdicts are sound.

use std::time::Duration;

use gpd::enumerate::{possibly_by_enumeration, possibly_by_enumeration_budgeted};
use gpd::singular::{possibly_singular_subsets, possibly_singular_subsets_budgeted};
use gpd::{Budget, BudgetMeter, Checkpoint, CnfClause, DetectError, SingularCnf, Verdict};
use gpd_computation::{BoolVariable, Computation, ComputationBuilder, Cut, ProcessId};

/// The E5 "wide unsat" workload shape from the benchmark harness
/// (`gpd_bench::wide_unsat_singular_workload` with `groups = 0`),
/// rebuilt locally: a 4-process conflict gadget whose only candidate
/// true-states are mutually inconsistent through one message, padded
/// with `pad` internal events per process so the cut lattice is large
/// enough that a short deadline reliably interrupts the sweep.
fn wide_unsat(pad: usize) -> (Computation, BoolVariable, SingularCnf) {
    let mut b = ComputationBuilder::new(4);
    let _u1 = b.append(2);
    let u2 = b.append(2);
    let _e01 = b.append(0);
    let e02 = b.append(0);
    b.message(u2, e02).expect("distinct processes");
    for p in 0..4 {
        for _ in 0..pad {
            b.append(p);
        }
    }
    let comp = b.build().expect("single forward message");
    let mut tracks: Vec<Vec<bool>> = (0..4).map(|p| vec![false; comp.events_on(p) + 1]).collect();
    tracks[0][2] = true; // after e02
    tracks[2][1] = true; // after u1
    let var = BoolVariable::new(&comp, tracks);
    let predicate = SingularCnf::new(vec![
        CnfClause::new(vec![(ProcessId::new(0), true)]),
        CnfClause::new(vec![(ProcessId::new(2), true)]),
    ]);
    (comp, var, predicate)
}

/// Drives a budgeted enumeration to completion by resuming from each
/// checkpoint with the same per-leg budget, counting the legs.
fn resume_to_completion<F: Fn(&Cut) -> bool + Sync>(
    comp: &Computation,
    predicate: &F,
    threads: usize,
    leg_budget: &Budget,
    first: Verdict<Option<Cut>>,
) -> (Verdict<Option<Cut>>, usize) {
    let mut verdict = first;
    let mut legs = 1;
    while let Some(cp) = verdict.checkpoint().cloned() {
        let meter = BudgetMeter::new();
        verdict = possibly_by_enumeration_budgeted(
            comp,
            predicate,
            threads,
            leg_budget,
            &meter,
            Some(&cp),
        )
        .expect("resume succeeds");
        legs += 1;
        assert!(legs < 10_000, "resume chain must terminate");
    }
    (verdict, legs)
}

#[test]
fn deadline_interrupt_then_unlimited_resume_is_byte_identical() {
    let (comp, var, phi) = wide_unsat(18);
    let predicate = |cut: &Cut| phi.eval(&var, cut);
    for threads in [1usize, 2, 4] {
        // Uninterrupted reference run.
        let meter = BudgetMeter::new();
        let reference = possibly_by_enumeration_budgeted(
            &comp,
            predicate,
            threads,
            &Budget::unlimited(),
            &meter,
            None,
        )
        .unwrap();
        assert!(reference.is_decided());
        assert_eq!(reference.value(), Some(&None), "the gadget is unsat");

        // Interrupted run: 10ms on a ~160k-cut lattice stops mid-sweep.
        let tight = Budget::unlimited().with_deadline(Duration::from_millis(10));
        let meter = BudgetMeter::new();
        let interrupted =
            possibly_by_enumeration_budgeted(&comp, predicate, threads, &tight, &meter, None)
                .unwrap();
        let Verdict::Unknown(partial) = &interrupted else {
            panic!("10ms deadline must interrupt the sweep (threads={threads})");
        };
        assert!(partial.progress.levels_swept.is_some());

        // Unlimited resume must land on the identical outcome.
        let meter = BudgetMeter::new();
        let resumed = possibly_by_enumeration_budgeted(
            &comp,
            predicate,
            threads,
            &Budget::unlimited(),
            &meter,
            Some(&partial.checkpoint),
        )
        .unwrap();
        assert_eq!(resumed.value(), reference.value(), "threads={threads}");
    }
}

#[test]
fn node_cap_resume_chain_reaches_the_uninterrupted_witness() {
    // Satisfiable: the padded gadget with the conflict edge removed.
    let mut b = ComputationBuilder::new(3);
    for p in 0..3 {
        for _ in 0..5 {
            b.append(p);
        }
    }
    let comp = b.build().unwrap();
    let predicate = |cut: &Cut| cut.frontier().iter().all(|&f| f >= 3);

    for threads in [1usize, 2, 4] {
        let meter = BudgetMeter::new();
        let reference = possibly_by_enumeration_budgeted(
            &comp,
            predicate,
            threads,
            &Budget::unlimited(),
            &meter,
            None,
        )
        .unwrap();
        let expected = reference.value().unwrap().clone().expect("satisfiable");

        let leg = Budget::unlimited().with_max_nodes(40);
        let meter = BudgetMeter::new();
        let first = possibly_by_enumeration_budgeted(&comp, predicate, threads, &leg, &meter, None)
            .unwrap();
        let (final_verdict, legs) = resume_to_completion(&comp, &predicate, threads, &leg, first);
        assert!(legs > 1, "a 40-node leg cannot finish in one go");
        let witness = final_verdict.value().unwrap().clone().expect("satisfiable");
        // Byte-identical witness: same frontier on every process.
        assert_eq!(witness, expected, "threads={threads}");
    }
}

#[test]
fn unknown_bounds_are_sound() {
    // levels_swept from an interrupted run can never reach the level of
    // the minimal witness — those levels were probed witness-free.
    let mut b = ComputationBuilder::new(3);
    for p in 0..3 {
        for _ in 0..6 {
            b.append(p);
        }
    }
    let comp = b.build().unwrap();
    let predicate = |cut: &Cut| cut.frontier().iter().all(|&f| f >= 4);
    let meter = BudgetMeter::new();
    let full =
        possibly_by_enumeration_budgeted(&comp, predicate, 2, &Budget::unlimited(), &meter, None)
            .unwrap();
    let min_level = full.value().unwrap().as_ref().unwrap().event_count() as u32;

    for cap in [1u64, 10, 50, 120] {
        let budget = Budget::unlimited().with_max_nodes(cap);
        let meter = BudgetMeter::new();
        let verdict =
            possibly_by_enumeration_budgeted(&comp, predicate, 2, &budget, &meter, None).unwrap();
        if let Verdict::Unknown(partial) = verdict {
            let swept = partial.progress.levels_swept.expect("levelwise bound");
            assert!(
                swept <= min_level,
                "cap {cap}: swept {swept} past the minimal witness level {min_level}"
            );
            assert!(partial.progress.nodes_explored > 0 || cap == 1);
        }
    }
}

#[test]
fn odometer_engine_resumes_to_the_unbudgeted_verdict() {
    let (comp, var, phi) = wide_unsat(2);
    let unbudgeted = possibly_singular_subsets(&comp, &var, &phi);
    assert!(unbudgeted.is_none());

    for threads in [1usize, 2, 4] {
        let leg = Budget::unlimited().with_max_nodes(3);
        let meter = BudgetMeter::new();
        let mut verdict =
            possibly_singular_subsets_budgeted(&comp, &var, &phi, threads, &leg, &meter, None)
                .unwrap();
        let mut legs = 1;
        let mut last_eliminated = 0u64;
        while let Some(cp) = verdict.checkpoint().cloned() {
            // Progress is monotone: each leg eliminates combinations.
            let eliminated = verdict
                .progress()
                .combinations_eliminated
                .expect("odometer bound");
            assert!(eliminated >= last_eliminated, "threads={threads}");
            last_eliminated = eliminated;
            let meter = BudgetMeter::new();
            verdict = possibly_singular_subsets_budgeted(
                &comp,
                &var,
                &phi,
                threads,
                &leg,
                &meter,
                Some(&cp),
            )
            .unwrap();
            legs += 1;
            assert!(legs < 10_000, "resume chain must terminate");
        }
        assert_eq!(verdict.value(), Some(&None), "threads={threads}");
        assert_eq!(
            verdict.progress().combinations_eliminated,
            verdict.progress().combinations_total,
            "a finished sweep eliminated the whole space"
        );
    }
}

#[test]
fn panicking_predicate_is_contained_at_every_thread_count() {
    let mut b = ComputationBuilder::new(2);
    for p in 0..2 {
        for _ in 0..4 {
            b.append(p);
        }
    }
    let comp = b.build().unwrap();
    let bomb = |cut: &Cut| {
        if cut.event_count() == 3 {
            panic!("predicate bomb");
        }
        false
    };
    for threads in [1usize, 2, 4] {
        let meter = BudgetMeter::new();
        let err = possibly_by_enumeration_budgeted(
            &comp,
            bomb,
            threads,
            &Budget::unlimited(),
            &meter,
            None,
        )
        .unwrap_err();
        assert!(
            matches!(&err, DetectError::PredicatePanicked(m) if m.contains("predicate bomb")),
            "threads={threads}: {err:?}"
        );
        // The process — and the engine — are still healthy afterwards.
        let after = possibly_by_enumeration(&comp, |cut: &Cut| cut.event_count() == 8);
        assert!(after.is_some(), "threads={threads}");
    }
}

#[test]
fn checkpoints_roundtrip_and_reject_tampering() {
    let (comp, var, phi) = wide_unsat(4);
    let predicate = |cut: &Cut| phi.eval(&var, cut);
    let budget = Budget::unlimited().with_max_nodes(5);
    let meter = BudgetMeter::new();
    let verdict =
        possibly_by_enumeration_budgeted(&comp, predicate, 2, &budget, &meter, None).unwrap();
    let cp = verdict.checkpoint().expect("5 nodes cannot finish").clone();

    // Text roundtrip is the identity.
    let text = cp.to_text();
    let back = Checkpoint::from_text(&text).expect("own output parses");
    assert_eq!(back, cp);
    assert_eq!(back.digest(), cp.digest());

    // Tampering with the payload breaks the digest.
    let tampered = text.replace("level ", "level 9");
    assert_ne!(tampered, text);
    assert!(Checkpoint::from_text(&tampered).is_err());

    // A checkpoint from one computation is rejected by another.
    let (other, other_var, other_phi) = wide_unsat(5);
    let other_pred = |cut: &Cut| other_phi.eval(&other_var, cut);
    let meter = BudgetMeter::new();
    let err = possibly_by_enumeration_budgeted(
        &other,
        other_pred,
        2,
        &Budget::unlimited(),
        &meter,
        Some(&cp),
    )
    .unwrap_err();
    assert!(matches!(err, DetectError::CheckpointMismatch(_)), "{err:?}");

    // A level checkpoint handed to the odometer engine is rejected too.
    let meter = BudgetMeter::new();
    let err = possibly_singular_subsets_budgeted(
        &comp,
        &var,
        &phi,
        2,
        &Budget::unlimited(),
        &meter,
        Some(&cp),
    )
    .unwrap_err();
    assert!(matches!(err, DetectError::CheckpointMismatch(_)), "{err:?}");
}

#[test]
fn width_cap_reports_width_exhaustion() {
    let (comp, var, phi) = wide_unsat(8);
    let predicate = |cut: &Cut| phi.eval(&var, cut);
    let budget = Budget::unlimited().with_max_width(4);
    let meter = BudgetMeter::new();
    let verdict =
        possibly_by_enumeration_budgeted(&comp, predicate, 2, &budget, &meter, None).unwrap();
    let Verdict::Unknown(partial) = verdict else {
        panic!("a 4-cut width cap cannot cover a 4-process lattice");
    };
    assert_eq!(partial.reason, gpd::ExhaustReason::Width);
}
