//! Crash-tolerance of the decentralized mode, over the wire: a killed
//! slicer degrades its tenant to `Unknown` (with sound progress
//! bounds) within the heartbeat timeout, other tenants are untouched,
//! a restarted slicer heals the verdict without double-counting, and
//! rapid kill/restart loops only ever move the epoch forward.

use std::net::TcpStream;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use gpd::abstraction::LocalRelevance;
use gpd::online::ConjunctiveMonitor;
use gpd_computation::{gen, BoolVariable, Computation, ProcessId};
use gpd_server::client::{ClientConfig, FeedClient};
use gpd_server::protocol::{read_message, write_message, Message, SlicerVerdict};
use gpd_server::server::{self, ServerConfig};
use gpd_server::slicer::SlicerAgent;
use gpd_server::wal::{FsyncPolicy, WalConfig};
use gpd_sim::{local_streams, LocalStreams};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const HEARTBEAT_TIMEOUT: Duration = Duration::from_millis(250);

fn tmp_dir(tag: &str) -> PathBuf {
    static UNIQUE: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let k = UNIQUE.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("gpd-live-{tag}-{}-{k}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn start_server(dir: &PathBuf) -> gpd_server::ServerHandle {
    let mut config = ServerConfig::new(WalConfig::new(dir).with_fsync(FsyncPolicy::Always));
    config.shards = 2;
    config.io_timeout = Duration::from_secs(5);
    config.heartbeat_timeout = HEARTBEAT_TIMEOUT;
    server::start("127.0.0.1:0", config).unwrap()
}

/// A satisfiable 3-process workload: final states all true, initial
/// states all false (so a silent process provably blocks the
/// witness), plus sparse random trues in between.
fn workload(seed: u64) -> (Computation, BoolVariable) {
    let mut rng = StdRng::seed_from_u64(seed);
    let comp = gen::random_computation(&mut rng, 3, 36, 18);
    let values: Vec<Vec<bool>> = (0..3)
        .map(|p| {
            let states = comp.events_of(ProcessId::new(p)).len() + 1;
            (0..states)
                .map(|k| k == states - 1 || (k > 0 && rng.gen_bool(0.2)))
                .collect()
        })
        .collect();
    let x = BoolVariable::new(&comp, values);
    (comp, x)
}

fn reference_witness(comp: &Computation, x: &BoolVariable) -> Option<Vec<Vec<u32>>> {
    let n = comp.process_count();
    let initial: Vec<bool> = (0..n).map(|p| x.true_initially(p)).collect();
    let mut monitor = ConjunctiveMonitor::with_initial(&initial);
    for p in 0..n {
        for k in 1..=comp.events_of(ProcessId::new(p)).len() as u32 {
            if x.value_in_state(p, k) {
                let e = comp.event_at(p, k).unwrap();
                monitor.observe(p, comp.clock(e).to_owned());
            }
        }
    }
    monitor
        .witness()
        .map(|w| w.iter().map(|c| c.as_slice().to_vec()).collect())
}

fn client_config(addr: &str, tenant: Option<&str>, seed: u64) -> ClientConfig {
    let mut config = ClientConfig::new(addr.to_string());
    if let Some(t) = tenant {
        config = config.with_tenant(t.to_string());
    }
    config.io_timeout = Duration::from_millis(500);
    config.max_retries = 50;
    config.backoff_base = Duration::from_millis(2);
    config.backoff_cap = Duration::from_millis(50);
    config.jitter_seed = seed;
    config
}

/// Registers `process` as a slicer for `tenant` and then drops the
/// connection without a `SlicerDone` — a crash right after the
/// handshake, with nothing forwarded.
fn register_then_crash(addr: &str, tenant: &str, process: u32, initial: &[bool]) {
    let mut stream = TcpStream::connect(addr).unwrap();
    write_message(
        &mut stream,
        &Message::SlicerHello {
            tenant: tenant.to_string(),
            process,
            epoch: 0,
            initial: initial.to_vec(),
        },
    )
    .unwrap();
    match read_message(&mut stream).unwrap() {
        Message::SlicerHelloAck { .. } => {}
        other => panic!("expected SlicerHelloAck, got {other:?}"),
    }
    // Dropping the stream here is the crash.
}

fn run_agent(addr: &str, tenant: Option<&str>, p: u32, streams: &LocalStreams) {
    let agent = SlicerAgent::new(
        client_config(addr, tenant, 7 + u64::from(p)),
        p,
        LocalRelevance::Conjunctive,
    )
    .with_summary_every(8)
    .with_heartbeat_interval(Duration::from_millis(20));
    agent
        .run(&streams.initial, &streams.streams[p as usize])
        .unwrap();
}

/// Polls the slicer status until `accept` or the deadline; returns the
/// last verdict either way.
fn poll_status(
    client: &FeedClient,
    deadline: Duration,
    accept: impl Fn(&SlicerVerdict) -> bool,
) -> SlicerVerdict {
    let end = Instant::now() + deadline;
    loop {
        let verdict = client.query_slicer_status().unwrap();
        if accept(&verdict) || Instant::now() >= end {
            return verdict;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// A slicer that registers and then falls silent is declared dead
/// within the heartbeat timeout; the tenant's verdict degrades to
/// `Unknown` with sound progress bounds; restarting the slicer heals
/// it to the exact centralized verdict without double-counting.
#[test]
fn killed_slicer_degrades_then_restart_heals() {
    let (comp, x) = workload(0x11fe);
    let expected = reference_witness(&comp, &x);
    assert!(expected.is_some());
    let streams = local_streams(&comp, &x);
    let dir = tmp_dir("degrade");
    let server = start_server(&dir);
    let addr = server.local_addr().to_string();

    // Process 0 crashes right after registering; 1 and 2 complete.
    register_then_crash(&addr, "default", 0, &streams.initial);
    run_agent(&addr, None, 1, &streams);
    run_agent(&addr, None, 2, &streams);

    let client = FeedClient::new(client_config(&addr, None, 99));
    let degraded = poll_status(&client, 4 * HEARTBEAT_TIMEOUT, |v| v.degraded);
    assert!(
        degraded.degraded,
        "tenant must degrade within the heartbeat timeout: {degraded:?}"
    );
    assert_eq!(degraded.dead, vec![0], "{degraded:?}");
    assert!(
        degraded.witness.is_none(),
        "no witness can be claimed without process 0: {degraded:?}"
    );
    // Sound progress bounds: nothing was applied for the dead process,
    // and the explored frontier never exceeds the computation.
    assert_eq!(degraded.applied.len(), 3);
    assert_eq!(degraded.applied[0], None, "{degraded:?}");
    for p in 0..3 {
        if let Some(clock) = &degraded.explored[p] {
            for (q, &c) in clock.iter().enumerate() {
                let total = comp.events_of(ProcessId::new(q)).len() as u32;
                assert!(c <= total, "explored clock beyond the computation");
            }
        }
    }

    // Restart process 0: resync replays only what is missing, and the
    // verdict heals to the exact centralized witness.
    run_agent(&addr, None, 0, &streams);
    let healed = poll_status(&client, 4 * HEARTBEAT_TIMEOUT, |v| {
        !v.degraded && v.witness.is_some()
    });
    assert!(!healed.degraded, "{healed:?}");
    assert_eq!(healed.witness, expected);

    client.shutdown().unwrap();
    server.wait();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A dead slicer in one tenant leaves every other tenant untouched.
#[test]
fn dead_slicer_is_isolated_to_its_tenant() {
    let (comp, x) = workload(0xab5);
    let expected = reference_witness(&comp, &x);
    assert!(expected.is_some());
    let streams = local_streams(&comp, &x);
    let dir = tmp_dir("isolate");
    let server = start_server(&dir);
    let addr = server.local_addr().to_string();

    // Tenant "flaky": process 0 crashes after registering.
    register_then_crash(&addr, "flaky", 0, &streams.initial);
    run_agent(&addr, Some("flaky"), 1, &streams);
    run_agent(&addr, Some("flaky"), 2, &streams);
    // Tenant "steady": all three complete.
    for p in 0..3 {
        run_agent(&addr, Some("steady"), p, &streams);
    }

    let flaky = FeedClient::new(client_config(&addr, Some("flaky"), 99));
    let steady = FeedClient::new(client_config(&addr, Some("steady"), 99));
    let flaky_verdict = poll_status(&flaky, 4 * HEARTBEAT_TIMEOUT, |v| v.degraded);
    assert!(flaky_verdict.degraded, "{flaky_verdict:?}");
    assert_eq!(flaky_verdict.dead, vec![0]);

    let steady_verdict = steady.query_slicer_status().unwrap();
    assert!(!steady_verdict.degraded, "{steady_verdict:?}");
    assert!(steady_verdict.dead.is_empty(), "{steady_verdict:?}");
    assert_eq!(steady_verdict.witness, expected);

    steady.shutdown().unwrap();
    server.wait();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Rapid kill/restart loops: every re-registration adopts a strictly
/// larger epoch, zombie frames from older epochs are fenced, and the
/// final verdict applies every event exactly once.
#[test]
fn rapid_kill_restart_loops_monotonic_epochs_no_double_counting() {
    let (comp, x) = workload(0x100b);
    let expected = reference_witness(&comp, &x);
    let streams = local_streams(&comp, &x);
    let dir = tmp_dir("rapid");
    let server = start_server(&dir);
    let addr = server.local_addr().to_string();

    // Four rapid register-crash cycles for process 0, then a real run.
    for _ in 0..4 {
        register_then_crash(&addr, "default", 0, &streams.initial);
    }
    let agent = SlicerAgent::new(
        client_config(&addr, None, 7),
        0,
        LocalRelevance::Conjunctive,
    )
    .with_summary_every(8)
    .with_heartbeat_interval(Duration::from_millis(20));
    let report = agent.run(&streams.initial, &streams.streams[0]).unwrap();
    assert!(
        report.epoch >= 5,
        "each rapid restart must bump the epoch: {report:?}"
    );
    run_agent(&addr, None, 1, &streams);
    run_agent(&addr, None, 2, &streams);

    let client = FeedClient::new(client_config(&addr, None, 99));
    let verdict = poll_status(&client, 4 * HEARTBEAT_TIMEOUT, |v| !v.degraded);
    assert!(
        !verdict.degraded,
        "the final run supersedes the crashed epochs: {verdict:?}"
    );
    assert_eq!(verdict.witness, expected);

    // No double-counting: the monitor applied each distinct true state
    // exactly once.
    let trues: u64 = streams
        .streams
        .iter()
        .map(|s| s.iter().filter(|(_, t)| *t).count() as u64)
        .sum();
    let rows = client.query_tenant_stats().unwrap();
    let row = rows.iter().find(|r| r.tenant == "default").unwrap();
    assert_eq!(row.observed, trues, "{row:?}");

    client.shutdown().unwrap();
    server.wait();
    let _ = std::fs::remove_dir_all(&dir);
}
