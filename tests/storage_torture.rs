//! Storage torture: the WAL on a fault-injecting in-memory disk.
//!
//! The tentpole is the exhaustive power-loss simulator: one fixed
//! workload (appends over 3 processes, a mid-way compaction, small
//! segments so rotation happens) is cut at *every* disk op, the
//! surviving image is taken under several crash styles, and recovery
//! must (a) never panic or error, (b) retain every acked event, and
//! (c) after redelivering the full stream, reach a verdict
//! byte-identical to the fault-free run.
//!
//! Around it: proptests over random fault schedules (EIO / ENOSPC /
//! short writes / fsyncgate), an ENOSPC-during-compaction regression
//! proving old segments survive, and two server-level tests — fsync
//! failure withholds acks and quarantines rather than retries, and the
//! background scrub self-heals bit rot from the live monitor.

use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};

use gpd::online::{ConjunctiveMonitor, MonitorSnapshot};
use gpd_computation::VectorClock;
use gpd_server::client::{ClientConfig, FeedClient};
use gpd_server::protocol::{read_message, write_message, AckStatus, Message};
use gpd_server::server::{self, ServerConfig};
use gpd_server::vfs::{CrashStyle, Fault, FaultVfs, OpKind};
use gpd_server::wal::{FsyncPolicy, Recovery, Wal, WalConfig, WalRecord};

use proptest::prelude::*;

const PROCS: usize = 3;
const WAL_DIR: &str = "/wal";

/// The fixed workload stream: 8 rounds of one concurrent true state
/// per process. The conjunction holds from the first round, so the
/// fault-free witness is the all-ones cut.
fn events() -> Vec<(u32, Vec<u32>)> {
    let mut evs = Vec::new();
    for k in 1..=8u32 {
        for p in 0..PROCS as u32 {
            let mut clock = vec![0u32; PROCS];
            clock[p as usize] = k;
            evs.push((p, clock));
        }
    }
    evs
}

fn wal_config(vfs: &FaultVfs) -> WalConfig {
    WalConfig::new(WAL_DIR)
        .with_vfs(Arc::new(vfs.clone()))
        .with_fsync(FsyncPolicy::Always)
        .with_segment_bytes(96)
}

/// The server-side snapshot encoding (mirrors `Tenant::compact`).
fn snapshot_record(monitor: &ConjunctiveMonitor, initial: &[bool]) -> WalRecord {
    let snapshot = monitor.snapshot();
    WalRecord::Snapshot {
        initial: initial.to_vec(),
        latest: snapshot.latest,
        queues: snapshot
            .queues
            .into_iter()
            .map(|q| q.into_iter().map(|c| c.as_slice().to_vec()).collect())
            .collect(),
        witness: snapshot
            .witness
            .map(|w| w.into_iter().map(|c| c.as_slice().to_vec()).collect()),
    }
}

/// Replays recovered records exactly the way `Tenant::open` does.
fn recover_monitor(recovery: &Recovery) -> Option<ConjunctiveMonitor> {
    let mut monitor = None;
    for record in &recovery.records {
        match record {
            WalRecord::Init { initial } => {
                monitor = Some(ConjunctiveMonitor::with_initial(initial));
            }
            WalRecord::Event { process, clock } => {
                if let Some(m) = monitor.as_mut() {
                    let _ = m.try_observe(*process as usize, VectorClock::from(clock.clone()));
                }
            }
            WalRecord::Snapshot {
                latest,
                queues,
                witness,
                ..
            } => {
                monitor = Some(ConjunctiveMonitor::restore(MonitorSnapshot {
                    latest: latest.clone(),
                    queues: queues
                        .iter()
                        .map(|q| q.iter().cloned().map(VectorClock::from).collect())
                        .collect(),
                    witness: witness
                        .as_ref()
                        .map(|w| w.iter().cloned().map(VectorClock::from).collect()),
                }));
            }
        }
    }
    monitor
}

fn witness_of(monitor: &ConjunctiveMonitor) -> Option<Vec<Vec<u32>>> {
    monitor
        .witness()
        .map(|cut| cut.iter().map(|c| c.as_slice().to_vec()).collect())
}

/// Runs the workload against `vfs`, compacting after event 9, and
/// returns the per-process acked high-water marks. Under
/// [`FsyncPolicy::Always`] an `Ok` append *is* the ack — the frame is
/// on the platter when `append` returns. A failed append is skipped
/// (reject-and-continue, like the server); a poisoned log stops the
/// run (the server quarantines there).
fn run_workload(vfs: &FaultVfs) -> Vec<Option<u32>> {
    let mut acked: Vec<Option<u32>> = vec![None; PROCS];
    let initial = vec![false; PROCS];
    let Ok((mut wal, _)) = Wal::open(wal_config(vfs)) else {
        return acked;
    };
    if wal
        .append(&WalRecord::Init {
            initial: initial.clone(),
        })
        .is_err()
    {
        return acked;
    }
    // Shadow monitor so the mid-way compaction snapshots real state.
    let mut monitor = ConjunctiveMonitor::with_initial(&initial);
    for (i, (p, clock)) in events().into_iter().enumerate() {
        if i == 9 {
            let _ = wal.compact(&snapshot_record(&monitor, &initial));
            if wal.poisoned().is_some() {
                return acked;
            }
        }
        let seq = clock[p as usize];
        match wal.append(&WalRecord::Event {
            process: p,
            clock: clock.clone(),
        }) {
            Ok(()) => {
                acked[p as usize] = Some(seq);
                let _ = monitor.try_observe(p as usize, VectorClock::from(clock));
            }
            Err(_) => {
                if wal.poisoned().is_some() {
                    return acked;
                }
            }
        }
    }
    acked
}

/// Recovers from `image`, checks the acked prefix survived, then
/// redelivers the full stream and checks the verdict matches the
/// fault-free run. `tag` labels the failure context.
fn check_recovery(
    image: &FaultVfs,
    acked: &[Option<u32>],
    reference: &Option<Vec<Vec<u32>>>,
    tag: &str,
) {
    let (_, recovery) =
        Wal::open(wal_config(image)).unwrap_or_else(|e| panic!("{tag}: recovery errored: {e}"));
    let monitor = recover_monitor(&recovery);
    for (p, &want) in acked.iter().enumerate() {
        if want.is_none() {
            continue;
        }
        let got = monitor.as_ref().and_then(|m| m.high_water(p));
        assert!(
            got >= want,
            "{tag}: acked event lost — process {p} acked up to {want:?}, recovered {got:?} \
             (recovery: {} records, {}B truncated, {} segments dropped)",
            recovery.records.len(),
            recovery.truncated_bytes,
            recovery.dropped_segments,
        );
    }
    // At-least-once redelivery of the whole stream: the verdict must
    // be byte-identical to the uninterrupted run.
    let mut monitor = monitor.unwrap_or_else(|| ConjunctiveMonitor::with_initial(&[false; PROCS]));
    for (p, clock) in events() {
        let _ = monitor.try_observe(p as usize, VectorClock::from(clock));
    }
    assert_eq!(
        &witness_of(&monitor),
        reference,
        "{tag}: verdict diverged after redelivery"
    );
}

/// The fault-free reference verdict: every event through one monitor.
fn reference_witness() -> Option<Vec<Vec<u32>>> {
    let mut monitor = ConjunctiveMonitor::with_initial(&[false; PROCS]);
    for (p, clock) in events() {
        let _ = monitor.try_observe(p as usize, VectorClock::from(clock));
    }
    witness_of(&monitor)
}

/// The tentpole: cut the power at every single disk op (16-byte write
/// blocks, so frames tear mid-write too), crash under four styles, and
/// recovery must hold the acked-prefix and redelivery-determinism
/// invariants at every point. Zero panics allowed.
#[test]
fn power_loss_at_every_op_preserves_acked_events_and_verdict() {
    let reference = reference_witness();
    let clean = FaultVfs::new().with_block_bytes(16);
    let acked_clean = run_workload(&clean);
    let total_ops = clean.op_count();
    assert!(
        total_ops > 100,
        "workload too small to be interesting: {total_ops} ops"
    );
    assert!(
        acked_clean.iter().all(|hw| *hw == Some(8)),
        "fault-free run must ack everything: {acked_clean:?}"
    );
    check_recovery(
        &clean.crash(CrashStyle::Strict),
        &acked_clean,
        &reference,
        "clean",
    );

    for cut in 0..=total_ops {
        let vfs = FaultVfs::new().with_block_bytes(16);
        vfs.power_off_after(cut);
        let acked = run_workload(&vfs);
        for style in [
            CrashStyle::Strict,
            CrashStyle::WriteThrough,
            CrashStyle::Sampled(0xA5A5_5A5A),
            CrashStyle::Sampled(cut.wrapping_mul(7) + 1),
        ] {
            let tag = format!("cut at op {cut}/{total_ops}, {style:?}");
            check_recovery(&vfs.crash(style), &acked, &reference, &tag);
        }
    }
}

/// ENOSPC while compaction writes its snapshot must leave the full
/// pre-compaction history on disk and the log healthy (not poisoned):
/// a failed compaction is a no-op plus an empty rotated segment, never
/// data loss.
#[test]
fn enospc_during_compaction_retains_old_segments() {
    let vfs = FaultVfs::new();
    let initial = vec![false; PROCS];
    let (mut wal, _) = Wal::open(wal_config(&vfs)).unwrap();
    wal.append(&WalRecord::Init {
        initial: initial.clone(),
    })
    .unwrap();
    let mut monitor = ConjunctiveMonitor::with_initial(&initial);
    for (p, clock) in events().into_iter().take(12) {
        wal.append(&WalRecord::Event {
            process: p,
            clock: clock.clone(),
        })
        .unwrap();
        let _ = monitor.try_observe(p as usize, VectorClock::from(clock));
    }
    let segments_before = wal.segment_count();
    assert!(segments_before > 1, "workload must span segments");

    // The next write op is compaction's snapshot frame: disk full.
    vfs.fail_kind(OpKind::Write, vfs.ops_of(OpKind::Write), Fault::Enospc);
    let snapshot = snapshot_record(&monitor, &initial);
    let err = wal.compact(&snapshot).expect_err("compaction must fail");
    assert_eq!(err.kind(), std::io::ErrorKind::StorageFull, "{err}");
    assert!(wal.poisoned().is_none(), "ENOSPC must not poison the log");
    assert!(
        wal.segment_count() >= segments_before,
        "old segments must survive a failed compaction"
    );

    // The full history is still recoverable, byte for byte.
    let (_, recovery) = Wal::open(wal_config(&vfs)).unwrap();
    assert_eq!(recovery.records.len(), 13, "init + 12 events");
    assert_eq!(recovery.truncated_bytes, 0);

    // And the log keeps working: appends land, and a retried
    // compaction (space freed) succeeds.
    let (p, clock) = events()[12].clone();
    wal.append(&WalRecord::Event {
        process: p,
        clock: clock.clone(),
    })
    .unwrap();
    let _ = monitor.try_observe(p as usize, VectorClock::from(clock));
    wal.compact(&snapshot_record(&monitor, &initial)).unwrap();
    assert_eq!(
        wal.segment_count(),
        1,
        "retry compacts down to the snapshot"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random fault schedules — EIO / ENOSPC / short writes on the
    /// data path, EIO / fsyncgate on the sync paths — must never
    /// panic, and a [`CrashStyle::Strict`] image taken afterwards must
    /// still recover every acked event. The fsyncgate case is the
    /// sharp one: if the log retried a failed fsync instead of
    /// poisoning itself, later "successful" syncs would persist
    /// nothing and this invariant would break.
    #[test]
    fn random_fault_schedules_never_lose_acked_events(
        schedule in proptest::collection::vec((0u8..6, 0u64..60), 1..4),
        block_sel in 0u8..3,
    ) {
        let block = [16usize, 64, 4096][block_sel as usize];
        let vfs = FaultVfs::new().with_block_bytes(block);
        for &(sel, nth) in &schedule {
            let (kind, fault) = match sel {
                0 => (OpKind::Write, Fault::Eio),
                1 => (OpKind::Write, Fault::Enospc),
                2 => (OpKind::Write, Fault::ShortWrite),
                3 => (OpKind::SyncData, Fault::SyncFail),
                4 => (OpKind::SyncDir, Fault::Eio),
                _ => (OpKind::SyncData, Fault::Eio),
            };
            vfs.fail_kind(kind, nth, fault);
        }
        let acked = run_workload(&vfs);
        let (_, recovery) = Wal::open(wal_config(&vfs.crash(CrashStyle::Strict)))
            .expect("recovery must not error");
        let monitor = recover_monitor(&recovery);
        for (p, &want) in acked.iter().enumerate() {
            if want.is_none() { continue; }
            let got = monitor.as_ref().and_then(|m| m.high_water(p));
            prop_assert!(
                got >= want,
                "schedule {schedule:?}: process {p} acked {want:?}, recovered {got:?}"
            );
        }
    }
}

// ---------------------------------------------------------------------
// Server-level: fsync failure withholds acks; scrub self-heals bit rot
// ---------------------------------------------------------------------

fn server_config(vfs: &FaultVfs) -> ServerConfig {
    let mut config = ServerConfig::new(
        WalConfig::new("/srv")
            .with_vfs(Arc::new(vfs.clone()))
            .with_fsync(FsyncPolicy::Always),
    );
    config.shards = 1;
    config.io_timeout = Duration::from_secs(5);
    config
}

fn client_for(addr: std::net::SocketAddr, tenant: &str) -> FeedClient {
    let mut config = ClientConfig::new(addr.to_string()).with_tenant(tenant);
    config.io_timeout = Duration::from_secs(5);
    config.max_retries = 4;
    config.backoff_base = Duration::from_millis(2);
    config.backoff_cap = Duration::from_millis(20);
    FeedClient::new(config)
}

/// An injected fsync failure mid-stream: the event whose sync failed
/// gets **no ack** (the connection is dropped unflushed), the tenant
/// is quarantined — never silently retried — and a strict power-loss
/// image still holds every event that *was* acked.
#[test]
fn fsync_failure_withholds_acks_and_quarantines() {
    use std::io::ErrorKind;
    use std::net::TcpStream;

    let vfs = FaultVfs::new();
    // SyncData ops for tenant "acme": #0 = Init append, #1 = event 1,
    // #2 = event 2 — the fsyncgate adversary strikes at event 2.
    vfs.fail_kind(OpKind::SyncData, 2, Fault::SyncFail);
    let handle = server::start("127.0.0.1:0", server_config(&vfs)).unwrap();
    let addr = handle.local_addr();

    // Raw protocol (not FeedClient: its retry loop hides per-event
    // acks on error paths, and here the missing ack *is* the test).
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    write_message(
        &mut stream,
        &Message::Hello {
            tenant: "acme".into(),
            initial: vec![false, false],
        },
    )
    .unwrap();
    assert!(matches!(
        read_message(&mut stream).unwrap(),
        Message::HelloAck { .. }
    ));
    let mut accepted: Vec<u32> = Vec::new();
    for k in 1..=4u32 {
        if write_message(
            &mut stream,
            &Message::Event {
                process: 0,
                clock: vec![k, 0],
            },
        )
        .is_err()
        {
            break;
        }
        match read_message(&mut stream) {
            Ok(Message::Ack {
                process: 0,
                seq,
                status: AckStatus::Accepted,
            }) => accepted.push(seq),
            Ok(other) => panic!("unexpected reply: {other:?}"),
            // Connection dropped unflushed: the poisoned tenant's
            // pending acks are withheld, not retried.
            Err(e) => {
                assert!(
                    matches!(
                        e.kind(),
                        ErrorKind::UnexpectedEof
                            | ErrorKind::ConnectionReset
                            | ErrorKind::ConnectionAborted
                            | ErrorKind::BrokenPipe
                    ),
                    "{e}"
                );
                break;
            }
        }
    }
    assert_eq!(accepted, vec![1], "only the pre-failure event is acked");

    let rows = client_for(addr, "acme").query_tenant_stats().unwrap();
    let row = rows.iter().find(|r| r.tenant == "acme").unwrap();
    assert!(row.quarantined, "{row:?}");
    assert!(
        row.quarantine_reason.contains("poisoned") || row.quarantine_reason.contains("fsync"),
        "{row:?}"
    );
    assert!(
        row.degraded,
        "no witness + no durable log = Unknown: {row:?}"
    );

    client_for(addr, "acme").shutdown().unwrap();
    handle.wait();

    // Even losing all unsynced state, the acked event survives.
    let image = vfs.crash(CrashStyle::Strict);
    let config = WalConfig::new("/srv/tenants/acme").with_vfs(Arc::new(image));
    let (_, recovery) = Wal::open(config).unwrap();
    let monitor = recover_monitor(&recovery).expect("init must have survived");
    assert_eq!(monitor.high_water(0), Some(1), "acked event lost");
}

/// Background scrub detects flipped bits in a cold segment and heals
/// by compacting from the live monitor: the corrupt segment is
/// superseded and deleted, the verdict survives, no quarantine.
#[test]
fn background_scrub_heals_bit_rot_from_the_live_monitor() {
    let vfs = FaultVfs::new();
    let mut config = server_config(&vfs);
    config.wal = config.wal.with_segment_bytes(128);
    config.scrub_every = Some(Duration::from_millis(25));
    let handle = server::start("127.0.0.1:0", config).unwrap();
    let addr = handle.local_addr();

    // Enough events to rotate past segment 0, and a witness to keep.
    let mut events: Vec<(usize, Vec<u32>)> = Vec::new();
    for k in 1..=8u32 {
        events.push((0, vec![k, 0]));
        events.push((1, vec![0, k]));
    }
    let client = client_for(addr, "acme");
    let report = client.feed(&[false, false], &events).unwrap();
    assert!(report.witness.is_some(), "{report:?}");
    let rows = client.query_tenant_stats().unwrap();
    let row = rows.iter().find(|r| r.tenant == "acme").unwrap();
    assert!(row.wal_segments > 1, "need a cold segment: {row:?}");

    // Bit rot in segment 0 (cold — the live head is a later segment):
    // flip a byte of the first frame's CRC.
    vfs.flip_byte(Path::new("/srv/tenants/acme/00000000.wal"), 4)
        .unwrap();

    let deadline = Instant::now() + Duration::from_secs(10);
    let healed = loop {
        let rows = client.query_tenant_stats().unwrap();
        let row = rows.iter().find(|r| r.tenant == "acme").unwrap().clone();
        assert!(
            !row.quarantined,
            "healable rot must not quarantine: {row:?}"
        );
        if row.scrub_healed > 0 {
            break row;
        }
        assert!(Instant::now() < deadline, "scrub never healed: {row:?}");
        std::thread::sleep(Duration::from_millis(10));
    };
    assert!(healed.scrub_passes > 0, "{healed:?}");
    assert_eq!(healed.scrub_corruptions, 1, "{healed:?}");
    assert_eq!(healed.scrub_healed, 1, "{healed:?}");
    assert!(
        healed.witness_found,
        "healing must keep the verdict: {healed:?}"
    );

    let final_witness = client.shutdown().unwrap();
    assert!(final_witness.is_some(), "verdict lost across healing");
    handle.wait();

    // The healed log stands on its own: recovery from the compacted
    // snapshot reproduces the witness with no corrupt bytes left.
    let (_, recovery) =
        Wal::open(WalConfig::new("/srv/tenants/acme").with_vfs(Arc::new(vfs))).unwrap();
    let monitor = recover_monitor(&recovery).expect("snapshot must recover");
    assert!(monitor.witness().is_some());
}
