//! Detection under degraded channels, end-to-end: the simulator's
//! [`FaultPlan`] injects loss, duplication, jitter-aggravated reordering
//! and crashes; the resulting computations still persist through the
//! trace format and still yield consistent verdicts, and the online
//! monitor shrugs off the duplicated/reordered deliveries a lossy
//! monitoring channel would produce.

use gpd::conjunctive::possibly_conjunctive;
use gpd::online::{ConjunctiveMonitor, Observation};
use gpd_computation::trace::{read_trace, write_trace};
use gpd_computation::{ProcessId, VectorClock};
use gpd_sim::protocols::{RicartAgrawala, TokenRing};
use gpd_sim::{FaultPlan, SimConfig, Simulation};

fn faulty_config(seed: u64) -> SimConfig {
    SimConfig::new(seed).with_faults(
        FaultPlan::none()
            .with_message_loss(0.2)
            .with_duplication(0.2)
            .with_jitter(0.5, 1, 40)
            .with_crash(1, 30),
    )
}

#[test]
fn faulty_traces_survive_the_text_format() {
    for seed in [3u64, 11, 42] {
        let trace = Simulation::new(TokenRing::ring(4, 2), faulty_config(seed)).run();
        let tokens = trace.int_var("tokens").unwrap();
        let has = trace.bool_var("has_token").unwrap();
        let text = write_trace(
            &trace.computation,
            &[("has_token", has)],
            &[("tokens", tokens)],
        );
        let back = read_trace(&text).expect("faulty trace parses");
        assert_eq!(
            back.computation.event_count(),
            trace.computation.event_count(),
            "seed {seed}"
        );
        assert_eq!(
            back.computation.messages().len(),
            trace.computation.messages().len(),
            "seed {seed}"
        );
    }
}

#[test]
fn fault_injection_is_reproducible() {
    let run = |seed| {
        let trace = Simulation::new(TokenRing::ring(4, 2), faulty_config(seed)).run();
        let tokens = trace.int_var("tokens").unwrap();
        write_trace(&trace.computation, &[], &[("tokens", tokens)])
    };
    assert_eq!(run(9), run(9));
    assert_ne!(run(9), run(10), "different seeds take different paths");
}

#[test]
fn crashed_process_cannot_witness_conjunctive_truth() {
    // Crash p1 at time zero: it never executes, so its `in_cs` stays
    // false and no pair involving p1 can possibly be in the critical
    // section together — even with the safety bug armed.
    let config = SimConfig::new(21).with_faults(FaultPlan::none().with_crash(1, 0));
    let trace = Simulation::new(RicartAgrawala::group_with_bug(3, 2, true), config).run();
    let in_cs = trace.bool_var("in_cs").unwrap();
    for other in [0usize, 2] {
        let procs = [ProcessId::new(1), ProcessId::new(other)];
        assert!(
            possibly_conjunctive(&trace.computation, in_cs, &procs).is_none(),
            "crashed p1 paired with p{other}"
        );
    }
}

#[test]
fn monitor_verdict_survives_an_at_least_once_channel() {
    // Stream every true state to the monitor twice (duplication) and
    // replay an old one after each (reordering): the verdict must equal
    // the offline answer on a fault-free delivery of the same states.
    let trace = Simulation::new(
        RicartAgrawala::group_with_bug(3, 1, true),
        SimConfig::new(4),
    )
    .run();
    let comp = &trace.computation;
    let in_cs = trace.bool_var("in_cs").unwrap();
    let n = comp.process_count();

    let initial: Vec<bool> = (0..n).map(|p| in_cs.true_initially(p)).collect();
    let mut monitor = ConjunctiveMonitor::with_initial(&initial);
    let mut delivered: Vec<Vec<VectorClock>> = vec![Vec::new(); n];
    for (p, seen) in delivered.iter_mut().enumerate() {
        for k in in_cs.true_states(p) {
            if k == 0 {
                continue;
            }
            let clock = comp.clock(comp.event_at(p, k).unwrap()).to_owned();
            assert_eq!(monitor.observe(p, clock.clone()), Observation::Accepted);
            assert_eq!(monitor.observe(p, clock.clone()), Observation::Duplicate);
            if let Some(old) = seen.last() {
                assert_eq!(monitor.observe(p, old.clone()), Observation::Stale);
            }
            seen.push(clock);
        }
    }

    let procs: Vec<ProcessId> = (0..n).map(ProcessId::new).collect();
    let offline = possibly_conjunctive(comp, in_cs, &procs);
    assert_eq!(monitor.witness().is_some(), offline.is_some());
}

#[test]
fn total_loss_still_yields_a_detectable_computation() {
    // With every message dropped the ring degenerates to isolated
    // processes; detection still runs and the trace format still holds.
    let config = SimConfig::new(7).with_faults(FaultPlan::none().with_message_loss(1.0));
    let trace = Simulation::new(TokenRing::ring(3, 1), config).run();
    assert!(trace.computation.messages().is_empty());
    let tokens = trace.int_var("tokens").unwrap();
    let text = write_trace(&trace.computation, &[], &[("tokens", tokens)]);
    assert!(read_trace(&text).is_ok());
}
