//! Cross-crate validation: the vector-clock order implemented in
//! `gpd-computation` must coincide exactly with the transitive closure of
//! the event DAG computed independently by `gpd-order` — the two crates
//! implement the same mathematical object through different algorithms.

use gpd_computation::{gen, Computation, EventId};
use gpd_order::{Dag, TransitiveClosure};
use proptest::prelude::*;
use rand::SeedableRng;

fn closure_of(comp: &Computation) -> TransitiveClosure {
    let mut dag = Dag::new(comp.event_count());
    for p in 0..comp.process_count() {
        for w in comp.events_of(p).windows(2) {
            dag.add_edge(w[0].index(), w[1].index());
        }
    }
    for &(s, r) in comp.messages() {
        dag.add_edge(s.index(), r.index());
    }
    dag.transitive_closure().expect("computations are acyclic")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn happened_before_equals_reachability(
        seed in any::<u64>(),
        n in 1usize..6,
        m in 1usize..8,
        msgs in 0usize..12,
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let msgs = if n > 1 { msgs } else { 0 };
        let comp = gen::random_computation(&mut rng, n, m, msgs);
        let closure = closure_of(&comp);
        for e in comp.events() {
            for f in comp.events() {
                prop_assert_eq!(
                    comp.happened_before(e, f),
                    closure.precedes(e.index(), f.index()),
                    "{:?} vs {:?}", e, f
                );
                prop_assert_eq!(
                    comp.concurrent(e, f),
                    closure.concurrent(e.index(), f.index())
                );
            }
        }
    }

    #[test]
    fn leq_equals_reflexive_reachability(
        seed in any::<u64>(),
        n in 1usize..6,
        m in 1usize..8,
        msgs in 0usize..12,
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let msgs = if n > 1 { msgs } else { 0 };
        let comp = gen::random_computation(&mut rng, n, m, msgs);
        let closure = closure_of(&comp);
        for e in comp.events() {
            for f in comp.events() {
                prop_assert_eq!(
                    comp.leq(e, f),
                    e == f || closure.precedes(e.index(), f.index()),
                    "{:?} ≤ {:?}", e, f
                );
            }
        }
    }

    #[test]
    fn is_consistent_equals_down_closedness_on_arbitrary_frontiers(
        seed in any::<u64>(),
        n in 1usize..5,
        m in 1usize..5,
        msgs in 0usize..8,
    ) {
        use gpd_computation::Cut;
        use rand::Rng;

        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let msgs = if n > 1 { msgs } else { 0 };
        let comp = gen::random_computation(&mut rng, n, m, msgs);
        let closure = closure_of(&comp);
        // Sample arbitrary frontiers — consistent or not — and check the
        // flat dominance kernel against independent down-closedness.
        for _ in 0..40 {
            let frontier: Vec<u32> = (0..comp.process_count())
                .map(|p| rng.gen_range(0..=comp.events_on(p) as u32))
                .collect();
            let cut = Cut::from_frontier(frontier);
            let members: Vec<EventId> = comp
                .events()
                .filter(|&e| cut.contains(&comp, e))
                .collect();
            let down_closed = members.iter().all(|&e| {
                comp.events()
                    .filter(|&g| closure.precedes(g.index(), e.index()))
                    .all(|g| cut.contains(&comp, g))
            });
            prop_assert_eq!(
                comp.is_consistent(&cut),
                down_closed,
                "frontier {:?}", cut.frontier()
            );
        }
    }

    #[test]
    fn cut_consistency_equals_down_closedness(
        seed in any::<u64>(),
        n in 1usize..5,
        m in 1usize..5,
        msgs in 0usize..8,
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let msgs = if n > 1 { msgs } else { 0 };
        let comp = gen::random_computation(&mut rng, n, m, msgs);
        let closure = closure_of(&comp);
        // Every consistent cut's event set is downward closed under the
        // independently computed closure, and vice versa for a sample of
        // frontiers.
        for cut in comp.consistent_cuts() {
            let members: Vec<EventId> = comp
                .events()
                .filter(|&e| cut.contains(&comp, e))
                .collect();
            for &e in &members {
                for g in comp.events() {
                    if closure.precedes(g.index(), e.index()) {
                        prop_assert!(cut.contains(&comp, g));
                    }
                }
            }
        }
    }

    #[test]
    fn stats_width_matches_brute_force_antichain(
        seed in any::<u64>(),
        n in 1usize..4,
        m in 1usize..4,
        msgs in 0usize..5,
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let msgs = if n > 1 { msgs } else { 0 };
        let comp = gen::random_computation(&mut rng, n, m, msgs);
        let st = gpd_computation::stats(&comp);
        // Brute-force the maximum antichain over all event subsets.
        let events: Vec<EventId> = comp.events().collect();
        let mut best = 0;
        for mask in 0u32..(1 << events.len()) {
            let chosen: Vec<EventId> = events
                .iter()
                .enumerate()
                .filter(|&(i, _)| mask >> i & 1 == 1)
                .map(|(_, &e)| e)
                .collect();
            let antichain = chosen
                .iter()
                .enumerate()
                .all(|(i, &e)| chosen[i + 1..].iter().all(|&f| comp.concurrent(e, f)));
            if antichain {
                best = best.max(chosen.len());
            }
        }
        prop_assert_eq!(st.width, best);
    }
}
