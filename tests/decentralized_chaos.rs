//! The decentralized fault drill: per-process slicer agents streaming
//! through the chaos proxy — loss, duplication, jitter, forced resets,
//! and a mid-run slicer kill/restart — must reach a verdict and
//! witness **byte-identical** to the centralized fault-free leg, at
//! every server shard count.
//!
//! This is the paper's distributed-abstraction claim made executable:
//! the merged slice (only abstraction-relevant events, delivered
//! at-least-once, out of order across processes) decides exactly the
//! predicate the full computation decides, and the unique-minimal
//! witness property (`docs/ALGORITHMS.md` §11, §15) makes the witness
//! bit-for-bit reproducible however the faults interleave.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use gpd::abstraction::LocalRelevance;
use gpd::online::ConjunctiveMonitor;
use gpd_computation::{gen, BoolVariable, Computation, ProcessId};
use gpd_server::chaos::{self, ChaosConfig};
use gpd_server::client::{ClientConfig, FeedClient};
use gpd_server::server::{self, ServerConfig};
use gpd_server::slicer::SlicerAgent;
use gpd_server::wal::{FsyncPolicy, WalConfig};
use gpd_sim::{local_streams, FaultPlan, LocalStreams};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn tmp_dir(tag: &str) -> PathBuf {
    static UNIQUE: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let k = UNIQUE.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("gpd-dec-{tag}-{}-{k}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A random computation plus a sparse local predicate that is
/// **guaranteed satisfiable**: every process's final state is true
/// (the final cut is consistent), plus random sparse trues elsewhere.
fn satisfiable_workload(
    seed: u64,
    n: usize,
    events: usize,
    messages: usize,
    density: f64,
) -> (Computation, BoolVariable) {
    let mut rng = StdRng::seed_from_u64(seed);
    let comp = gen::random_computation(&mut rng, n, events, messages);
    let values: Vec<Vec<bool>> = (0..n)
        .map(|p| {
            let states = comp.events_of(ProcessId::new(p)).len() + 1;
            (0..states)
                .map(|k| k == states - 1 || rng.gen_bool(density))
                .collect()
        })
        .collect();
    let x = BoolVariable::new(&comp, values);
    (comp, x)
}

/// The centralized reference: the exact monitor the server runs,
/// fed every true state in canonical order, fault-free, in-process.
fn centralized_witness(comp: &Computation, x: &BoolVariable) -> Option<Vec<Vec<u32>>> {
    let n = comp.process_count();
    let initial: Vec<bool> = (0..n).map(|p| x.true_initially(p)).collect();
    let mut monitor = ConjunctiveMonitor::with_initial(&initial);
    let mut trues: Vec<(u32, usize)> = Vec::new();
    for p in 0..n {
        for k in 1..=comp.events_of(ProcessId::new(p)).len() as u32 {
            if x.value_in_state(p, k) {
                trues.push((k, p));
            }
        }
    }
    trues.sort_unstable();
    for (k, p) in trues {
        let e = comp.event_at(p, k).expect("true state beyond the trace");
        monitor.observe(p, comp.clock(e).to_owned());
    }
    monitor
        .witness()
        .map(|w| w.iter().map(|c| c.as_slice().to_vec()).collect())
}

fn agent_config(addr: &str, p: u32) -> ClientConfig {
    let mut config = ClientConfig::new(addr.to_string());
    config.io_timeout = Duration::from_millis(500);
    config.max_retries = 300;
    config.backoff_base = Duration::from_millis(2);
    config.backoff_cap = Duration::from_millis(50);
    config.jitter_seed = 7 + u64::from(p);
    config
}

/// Runs one slicer agent per process against `addr`, killing and
/// restarting `kill_restart` mid-run when given. Returns the summed
/// (reconnects, retransmits, restarts-that-actually-killed).
fn run_fleet(addr: &str, streams: &LocalStreams, kill_restart: Option<u32>) -> (u64, u64, u64) {
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..streams.initial.len() as u32)
            .map(|p| {
                scope.spawn(move || {
                    let build = |with_kill: Option<Arc<AtomicBool>>| {
                        let mut agent =
                            SlicerAgent::new(agent_config(addr, p), p, LocalRelevance::Conjunctive)
                                .with_summary_every(16)
                                .with_heartbeat_interval(Duration::from_millis(25));
                        if let Some(kill) = with_kill {
                            agent = agent.with_kill_switch(kill);
                        }
                        agent
                    };
                    let mut reconnects = 0;
                    let mut retransmits = 0;
                    let mut killed = 0;
                    if kill_restart == Some(p) {
                        // Crash this agent shortly into its run, then
                        // restart it from scratch: the epoch handshake
                        // plus the high-water resync must absorb both.
                        let kill = Arc::new(AtomicBool::new(false));
                        let killer = {
                            let kill = Arc::clone(&kill);
                            scope.spawn(move || {
                                std::thread::sleep(Duration::from_millis(40));
                                kill.store(true, Ordering::SeqCst);
                            })
                        };
                        let report = build(Some(kill))
                            .run(&streams.initial, &streams.streams[p as usize])
                            .expect("killed leg must not error");
                        killer.join().unwrap();
                        reconnects += report.reconnects;
                        retransmits += report.retransmits;
                        killed += u64::from(report.killed);
                    }
                    let report = build(None)
                        .run(&streams.initial, &streams.streams[p as usize])
                        .expect("retry budget must outlast the fault plan");
                    assert!(!report.killed);
                    (
                        reconnects + report.reconnects,
                        retransmits + report.retransmits,
                        killed,
                    )
                })
            })
            .collect();
        let mut totals = (0, 0, 0);
        for h in handles {
            let (rc, rt, k) = h.join().unwrap();
            totals.0 += rc;
            totals.1 += rt;
            totals.2 += k;
        }
        totals
    })
}

fn start_server(dir: &PathBuf, shards: usize) -> gpd_server::ServerHandle {
    let mut config = ServerConfig::new(WalConfig::new(dir).with_fsync(FsyncPolicy::Group));
    config.shards = shards;
    config.io_timeout = Duration::from_secs(5);
    config.heartbeat_timeout = Duration::from_secs(5);
    server::start("127.0.0.1:0", config).unwrap()
}

/// The committed drill: 64 processes, loss + duplication + jitter +
/// forced resets + one slicer killed and restarted mid-run, sharded
/// server — and the verdict and witness are byte-identical to the
/// centralized fault-free reference.
#[test]
fn decentralized_drill_matches_centralized_witness() {
    let (comp, x) = satisfiable_workload(0xdec1, 64, 640, 300, 0.08);
    let expected = centralized_witness(&comp, &x);
    assert!(expected.is_some(), "workload must be satisfiable");
    let streams = local_streams(&comp, &x);

    let dir = tmp_dir("drill");
    let server = start_server(&dir, 2);
    let mut chaos_config = ChaosConfig::new(server.local_addr().to_string());
    chaos_config.faults = FaultPlan {
        drop_prob: 0.04,
        duplicate_prob: 0.08,
        jitter_prob: 0.05,
        jitter_range: (1, 3),
        crashes: Vec::new(),
    };
    chaos_config.reset_after = Some(150);
    chaos_config.reset_every = Some(400);
    chaos_config.reset_limit = 3;
    chaos_config.seed = 42;
    let proxy = chaos::start("127.0.0.1:0", chaos_config).unwrap();

    let (reconnects, _retransmits, killed) =
        run_fleet(&proxy.local_addr().to_string(), &streams, Some(0));
    assert_eq!(killed, 1, "the kill switch must have fired mid-run");

    let direct = FeedClient::new(agent_config(&server.local_addr().to_string(), 999));
    let verdict = direct.query_slicer_status().unwrap();
    assert_eq!(
        verdict.witness, expected,
        "decentralized witness diverged from the centralized fault-free leg"
    );
    assert!(!verdict.degraded, "all slicers completed: {verdict:?}");
    assert!(verdict.dead.is_empty(), "{verdict:?}");

    let proxy_report = proxy.stop();
    assert!(proxy_report.dropped >= 1, "{proxy_report:?}");
    assert!(proxy_report.duplicated >= 1, "{proxy_report:?}");
    assert!(proxy_report.resets >= 1, "{proxy_report:?}");
    assert!(
        reconnects >= 1,
        "resets and the kill/restart must drive reconnects"
    );

    direct.shutdown().unwrap();
    server.wait();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Witness identity holds at 1, 2, and 4 shards under the same chaos
/// plan: sharding is invisible to the decentralized verdict.
#[test]
fn witness_identical_across_shard_counts_under_chaos() {
    let (comp, x) = satisfiable_workload(0x5ca1e, 16, 160, 80, 0.12);
    let expected = centralized_witness(&comp, &x);
    assert!(expected.is_some());
    let streams = local_streams(&comp, &x);

    for shards in [1usize, 2, 4] {
        let dir = tmp_dir(&format!("shards{shards}"));
        let server = start_server(&dir, shards);
        let mut chaos_config = ChaosConfig::new(server.local_addr().to_string());
        chaos_config.faults = FaultPlan {
            drop_prob: 0.05,
            duplicate_prob: 0.1,
            jitter_prob: 0.0,
            jitter_range: (0, 0),
            crashes: Vec::new(),
        };
        chaos_config.reset_after = Some(60);
        chaos_config.reset_every = Some(200);
        chaos_config.reset_limit = 2;
        chaos_config.seed = 1000 + shards as u64;
        let proxy = chaos::start("127.0.0.1:0", chaos_config).unwrap();

        run_fleet(&proxy.local_addr().to_string(), &streams, None);
        let direct = FeedClient::new(agent_config(&server.local_addr().to_string(), 999));
        let verdict = direct.query_slicer_status().unwrap();
        assert_eq!(
            verdict.witness, expected,
            "witness diverged at {shards} shard(s)"
        );
        assert!(!verdict.degraded, "{verdict:?}");

        proxy.stop();
        direct.shutdown().unwrap();
        server.wait();
        let _ = std::fs::remove_dir_all(&dir);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random small workloads, fault-free, every shard count: the
    /// decentralized verdict and witness equal the centralized
    /// in-process reference byte for byte.
    #[test]
    fn decentralized_equals_centralized_at_every_shard_count(
        seed in 0u64..1_000_000,
        n in 3usize..8,
        density in 0.05f64..0.6,
    ) {
        let (comp, x) = satisfiable_workload(seed, n, n * 8, n * 4, density);
        let expected = centralized_witness(&comp, &x);
        let streams = local_streams(&comp, &x);
        for shards in [1usize, 2, 4] {
            let dir = tmp_dir(&format!("prop{shards}"));
            let server = start_server(&dir, shards);
            run_fleet(&server.local_addr().to_string(), &streams, None);
            let direct = FeedClient::new(agent_config(&server.local_addr().to_string(), 999));
            let verdict = direct.query_slicer_status().unwrap();
            prop_assert_eq!(
                &verdict.witness, &expected,
                "witness diverged at {} shard(s)", shards
            );
            direct.shutdown().unwrap();
            server.wait();
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}
