//! Integration tests pinned to the flat causality kernel: CSR adjacency
//! edge cases (empty processes, zero events, zero processes), thread-count
//! invariance of the parallel enumerator over the shared kernels, the
//! Theorem 4 walk's witness cut, and the no-per-event-heap-allocation
//! guarantee of the row-major clock matrix.
//!
//! The allocation test asserts an **exact** zero delta on the process-wide
//! `vclock_allocs` counter, so every test in this binary must stay free of
//! `VectorClock` construction (`clock(e).to_owned()`, `VectorClock::from`,
//! clones) — tests run concurrently in one process.

use gpd::enumerate::{possibly_by_enumeration, possibly_by_enumeration_par};
use gpd::relational::possibly_exact_sum;
use gpd_computation::{gen, ComputationBuilder, IntVariable};
use rand::SeedableRng;

#[test]
fn csr_handles_empty_middle_process() {
    // Processes with 2, 0, 3 events: the middle CSR row is empty.
    let mut b = ComputationBuilder::new(3);
    b.append(0);
    b.append(0);
    b.append(2);
    b.append(2);
    b.append(2);
    let comp = b.build().unwrap();
    assert_eq!(comp.events_on(0), 2);
    assert_eq!(comp.events_on(1), 0);
    assert_eq!(comp.events_on(2), 3);
    assert!(comp.events_of(1).is_empty());
    assert_eq!(comp.final_cut().frontier(), &[2, 0, 3]);
    // Without messages every frontier is consistent: 3 · 1 · 4 cuts.
    assert_eq!(comp.consistent_cuts().count(), 12);
    // Enabled moves from the initial cut skip the empty process.
    let succs = comp.cut_successors(&comp.initial_cut());
    let frontiers: Vec<&[u32]> = succs.iter().map(|c| c.frontier()).collect();
    assert_eq!(frontiers, vec![&[1, 0, 0][..], &[0, 0, 1][..]]);
}

#[test]
fn csr_handles_zero_events_and_zero_processes() {
    let comp = ComputationBuilder::new(2).build().unwrap();
    assert_eq!(comp.event_count(), 0);
    assert_eq!(comp.initial_cut(), comp.final_cut());
    assert_eq!(comp.consistent_cuts().count(), 1);
    assert!(comp.cut_successors(&comp.initial_cut()).is_empty());

    let empty = ComputationBuilder::new(0).build().unwrap();
    assert_eq!(empty.process_count(), 0);
    assert_eq!(empty.event_count(), 0);
    assert_eq!(empty.consistent_cuts().count(), 1);
    assert!(empty.is_consistent(&empty.initial_cut()));
}

#[test]
fn parallel_enumeration_verdicts_are_thread_count_invariant() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(31337);
    for round in 0..20 {
        let comp = gen::random_computation(&mut rng, 4, 5, 6);
        // A middling predicate: some frontier entries strictly ordered.
        let pred = |c: &gpd_computation::Cut| {
            let f = c.frontier();
            f[0] > f[1] && f[2] >= f[3] && f.iter().sum::<u32>() % 3 == 0
        };
        let seq = possibly_by_enumeration(&comp, pred);
        for threads in [1, 2, 4] {
            let par = possibly_by_enumeration_par(&comp, pred, threads);
            assert_eq!(
                seq.is_some(),
                par.is_some(),
                "round {round}, {threads} threads"
            );
            if let (Some(s), Some(p)) = (&seq, &par) {
                // Same lowest satisfying level, and a genuine witness.
                assert_eq!(
                    s.event_count(),
                    p.event_count(),
                    "round {round}, {threads} threads"
                );
                assert!(pred(p) && comp.is_consistent(p));
            }
        }
    }
}

#[test]
fn exact_sum_walk_witness_is_pinned() {
    // p0: a1, a2 (each +1) where a2 receives from p1's f1; p1: f1 (+0),
    // f2 (+1). The Theorem 4 walk from ⟨0,0⟩ must detour through f1
    // before a2 becomes enabled, so the k = 2 witness is exactly ⟨2,1⟩.
    let mut b = ComputationBuilder::new(2);
    let _a1 = b.append(0);
    let a2 = b.append(0);
    let f1 = b.append(1);
    b.append(1);
    b.message(f1, a2).unwrap();
    let comp = b.build().unwrap();
    let x = IntVariable::new(&comp, vec![vec![0, 1, 2], vec![0, 0, 1]]);
    let witness = possibly_exact_sum(&comp, &x, 2).unwrap().unwrap();
    assert_eq!(witness.frontier(), &[2, 1]);
    assert_eq!(x.sum_at(&witness), 2);
}

#[test]
fn no_vector_clock_heap_allocation_in_build_or_queries() {
    let before = gpd_computation::kernel_counters();
    let mut rng = rand::rngs::StdRng::seed_from_u64(2001);
    let comp = gen::random_computation(&mut rng, 5, 8, 12);
    // Exercise every hot path: clock views, pair orders, the lattice
    // sweep, and successor generation into a reused buffer.
    for e in comp.events() {
        let view = comp.clock(e);
        assert_eq!(view.len(), comp.process_count());
        for f in comp.events() {
            let _ = comp.leq(e, f);
        }
    }
    let mut succs = Vec::new();
    for cut in comp.consistent_cuts() {
        assert!(comp.is_consistent(&cut));
        comp.cut_successors_into(&cut, &mut succs);
    }
    let delta = gpd_computation::kernel_counters().since(&before);
    assert_eq!(
        delta.vclock_allocs, 0,
        "flat kernel must not allocate owned VectorClocks"
    );
    assert!(delta.clock_row_reads > 0, "row reads must be metered");
}
