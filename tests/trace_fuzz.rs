//! Adversarial trace-parser fuzzing: no input — truncated, duplicated,
//! reordered, or garbage — may panic, abort, or exhaust memory. Every
//! failure must surface as a `TraceError`.
//!
//! A committed regression corpus under `tests/corpus/trace/` pins inputs
//! that once exposed (or guard against) parser weaknesses; file names
//! encode the expected outcome (`ok_*` parses, `err_*` is rejected).

use std::panic::{catch_unwind, AssertUnwindSafe};

use gpd_computation::trace::read_trace;

/// Runs the parser under a panic guard; a panic is a test failure no
/// matter what the input looked like.
fn parse_must_not_panic(input: &str) -> Result<(), String> {
    match catch_unwind(AssertUnwindSafe(|| read_trace(input))) {
        Ok(Ok(_)) => Ok(()),
        Ok(Err(e)) => Err(e.to_string()),
        Err(_) => panic!("parser panicked on input:\n{input}"),
    }
}

#[test]
fn regression_corpus_parses_or_errors_as_named() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/corpus/trace");
    let mut entries: Vec<_> = std::fs::read_dir(dir)
        .expect("corpus directory exists")
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "trace"))
        .collect();
    entries.sort();
    assert!(!entries.is_empty(), "corpus must not be empty");
    for path in entries {
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let text = std::fs::read_to_string(&path).unwrap();
        let outcome = parse_must_not_panic(&text);
        if name.starts_with("ok_") {
            assert!(outcome.is_ok(), "{name} should parse: {outcome:?}");
        } else if name.starts_with("err_") {
            assert!(outcome.is_err(), "{name} should be rejected");
        } else {
            panic!("corpus file {name} must start with ok_ or err_");
        }
    }
}

mod property {
    use super::*;
    use gpd_computation::gen;
    use gpd_computation::trace::write_trace;
    use proptest::prelude::*;
    use rand::{Rng, SeedableRng};

    /// A structurally valid trace to mutate, with shape drawn from the
    /// same generator the roundtrip tests use.
    fn seed_trace(seed: u64, n: usize, m: usize, msgs: usize) -> String {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let msgs = if n > 1 && m > 0 { msgs } else { 0 };
        let comp = gen::random_computation(&mut rng, n, m, msgs);
        let bv = gen::random_bool_variable(&mut rng, &comp, 0.5);
        let iv = gen::random_unit_int_variable(&mut rng, &comp);
        write_trace(&comp, &[("b", &bv)], &[("x", &iv)])
    }

    /// A run of printable ASCII noise (the vendored proptest has no
    /// regex strategies, so garbage is drawn from a seeded rng).
    fn garbage(seed: u64, len: usize) -> String {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..len)
            .map(|_| char::from(rng.gen_range(0x20u8..0x7f)))
            .collect()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// Truncating a valid trace anywhere never panics.
        #[test]
        fn truncation_never_panics(
            seed in any::<u64>(),
            n in 1usize..5,
            m in 0usize..6,
            msgs in 0usize..8,
            frac in 0.0f64..1.0,
        ) {
            let text = seed_trace(seed, n, m, msgs);
            let cut = ((text.len() as f64) * frac) as usize;
            let cut = (0..=cut).rev().find(|&c| text.is_char_boundary(c)).unwrap_or(0);
            let _ = parse_must_not_panic(&text[..cut]);
        }

        /// Duplicating, deleting, or swapping whole lines never panics,
        /// and duplicated variable lines are *rejected*, not merged.
        #[test]
        fn line_shuffles_never_panic(
            seed in any::<u64>(),
            n in 1usize..5,
            m in 0usize..6,
            msgs in 0usize..8,
            op in 0usize..3,
            ai in 0usize..1024,
            bi in 0usize..1024,
        ) {
            let text = seed_trace(seed, n, m, msgs);
            let mut lines: Vec<&str> = text.lines().collect();
            let (a, b) = (ai % lines.len(), bi % lines.len());
            match op {
                0 => lines.insert(a, lines[b]),
                1 => { lines.remove(a); }
                _ => lines.swap(a, b),
            }
            let mutated = lines.join("\n");
            let outcome = parse_must_not_panic(&mutated);
            let end_pos = lines.iter().position(|l| *l == "end").unwrap_or(0);
            if op == 0 && a < end_pos && lines[a].starts_with("boolvar") {
                prop_assert!(outcome.is_err(), "duplicate boolvar must be rejected");
            }
        }

        /// Splicing arbitrary garbage into a valid trace never panics.
        #[test]
        fn garbage_splices_never_panic(
            seed in any::<u64>(),
            n in 1usize..5,
            m in 0usize..6,
            noise_seed in any::<u64>(),
            noise_len in 0usize..40,
            at in 0usize..1024,
        ) {
            let text = seed_trace(seed, n, m, 4);
            let noise = garbage(noise_seed, noise_len);
            let mut lines: Vec<&str> = text.lines().collect();
            lines.insert(at % lines.len(), &noise);
            let _ = parse_must_not_panic(&lines.join("\n"));
        }

        /// Whole-cloth adversarial documents: printable noise (with
        /// newlines sprinkled in) wrapped in just enough header to reach
        /// the body parser.
        #[test]
        fn arbitrary_bodies_never_panic(
            noise_seed in any::<u64>(),
            noise_len in 0usize..300,
        ) {
            let mut body = garbage(noise_seed, noise_len);
            // Turn some noise into line structure.
            body = body.replace('|', "\n");
            let _ = parse_must_not_panic(&body);
            let framed = format!("gpd-trace 1\nprocesses 2\ncounts 1 1\n{body}\nend\n");
            let _ = parse_must_not_panic(&framed);
        }

        /// Numeric fields at the extremes (u64/usize boundaries) must be
        /// rejected by arithmetic checks, never overflow.
        #[test]
        fn extreme_numbers_never_overflow(
            procs in any::<u64>(),
            c1 in any::<u64>(),
            c2 in any::<u64>(),
            k in any::<u32>(),
        ) {
            let doc = format!(
                "gpd-trace 1\nprocesses {procs}\ncounts {c1} {c2}\nmessage 0.{k} 1.{k}\nend\n"
            );
            let _ = parse_must_not_panic(&doc);
        }
    }
}
