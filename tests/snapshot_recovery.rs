//! Snapshot + compaction recovery: replay work is O(live monitor
//! state) rather than O(event history), and the kill-at-any-byte
//! recovery invariant survives the snapshot boundary — truncating the
//! log anywhere (including mid-snapshot-frame), restarting, and
//! redelivering always converges to the uninterrupted verdict.

use std::path::PathBuf;
use std::sync::OnceLock;
use std::time::Duration;

use gpd_server::client::{ClientConfig, FeedClient};
use gpd_server::server::{self, ServerConfig};
use gpd_server::wal::{self, FsyncPolicy, WalConfig};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const N: usize = 3;
/// Compact after this many logged records.
const SNAPSHOT_EVERY: u64 = 8;

fn tmp_dir(tag: &str) -> PathBuf {
    static UNIQUE: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let k = UNIQUE.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("gpd-snap-{tag}-{}-{k}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Same deterministic stream shape as `tests/crash_recovery.rs`, but
/// longer, so several compactions fire mid-feed.
fn generated_events() -> Vec<(usize, Vec<u32>)> {
    let mut rng = StdRng::seed_from_u64(0xc0ffee);
    let mut clocks = vec![vec![0u32; N]; N];
    let mut events = Vec::new();
    for round in 0..16 {
        for p in 0..N {
            if round > 0 && rng.gen_bool(0.4) {
                let q = rng.gen_range(0..N - 1);
                let q = if q >= p { q + 1 } else { q };
                let other = clocks[q].clone();
                for (mine, theirs) in clocks[p].iter_mut().zip(other) {
                    *mine = (*mine).max(theirs);
                }
            }
            clocks[p][p] += 1;
            events.push((p, clocks[p].clone()));
        }
    }
    events
}

fn server_config(dir: &PathBuf, fsync: FsyncPolicy) -> ServerConfig {
    let mut config = ServerConfig::new(
        WalConfig::new(dir)
            // Small segments so compaction spans several files.
            .with_segment_bytes(256)
            .with_fsync(fsync),
    );
    config.shards = 2;
    config.io_timeout = Duration::from_secs(5);
    config.snapshot_every = Some(SNAPSHOT_EVERY);
    config
}

fn client_config(addr: std::net::SocketAddr) -> ClientConfig {
    let mut config = ClientConfig::new(addr.to_string());
    config.io_timeout = Duration::from_secs(5);
    config.max_retries = 5;
    config.backoff_base = Duration::from_millis(2);
    config.backoff_cap = Duration::from_millis(50);
    config
}

struct Baseline {
    witness: Option<Vec<Vec<u32>>>,
    /// The default tenant's compacted log: snapshot frame first, then
    /// the post-snapshot suffix.
    wal_bytes: Vec<u8>,
    snapshots: u64,
}

fn baseline() -> &'static Baseline {
    static BASELINE: OnceLock<Baseline> = OnceLock::new();
    BASELINE.get_or_init(|| {
        let dir = tmp_dir("baseline");
        let handle =
            server::start("127.0.0.1:0", server_config(&dir, FsyncPolicy::Always)).unwrap();
        let client = FeedClient::new(client_config(handle.local_addr()));
        let report = client.feed(&[false; N], &generated_events()).unwrap();
        let witness = client.shutdown().unwrap();
        assert_eq!(report.witness, witness);
        assert!(witness.is_some(), "the all-true stream must find a witness");
        let summary = handle.wait();
        let row = &summary.tenants[0];
        assert!(
            row.snapshots >= 2,
            "48 events at snapshot-every={SNAPSHOT_EVERY} must compact repeatedly: {row:?}"
        );
        let wal_bytes = wal::concatenated_bytes(&dir.join("tenants").join("default")).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
        Baseline {
            witness,
            wal_bytes,
            snapshots: row.snapshots,
        }
    })
}

/// Restarting over a compacted log replays O(live state): the snapshot
/// record plus the short post-compaction suffix — not the 48-event
/// history.
#[test]
fn post_compaction_replay_is_bounded_by_live_state() {
    let base = baseline();
    let total = generated_events().len() as u64;

    let dir = tmp_dir("replay");
    let tenant_dir = dir.join("tenants").join("default");
    std::fs::create_dir_all(&tenant_dir).unwrap();
    std::fs::write(tenant_dir.join("00000000.wal"), &base.wal_bytes).unwrap();

    let handle = server::start("127.0.0.1:0", server_config(&dir, FsyncPolicy::Always)).unwrap();
    let replayed = handle.replayed_records();
    let (_, records) = replayed
        .iter()
        .find(|(name, _)| name == "default")
        .expect("default tenant recovered");
    assert!(
        *records < total / 2,
        "replay must be proportional to live state, not history: \
         {records} records replayed for {total} events fed ({} snapshots)",
        base.snapshots
    );

    // The recovered verdict is immediately correct, before any client
    // reconnects or redelivers.
    let client = FeedClient::new(client_config(handle.local_addr()));
    assert_eq!(client.query_verdict().unwrap(), base.witness);
    client.shutdown().unwrap();
    handle.wait();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Kills the server after `keep` bytes of the compacted baseline log
/// reached disk, restarts, redelivers everything, and requires the
/// uninterrupted verdict.
fn crash_recover_redeliver(keep: usize) {
    let base = baseline();
    let dir = tmp_dir("kill");
    let tenant_dir = dir.join("tenants").join("default");
    std::fs::create_dir_all(&tenant_dir).unwrap();
    std::fs::write(tenant_dir.join("00000000.wal"), &base.wal_bytes[..keep]).unwrap();

    let handle = server::start("127.0.0.1:0", server_config(&dir, FsyncPolicy::Always)).unwrap();
    let client = FeedClient::new(client_config(handle.local_addr()));
    let report = client
        .feed(&[false; N], &generated_events())
        .expect("redelivery feed succeeds");
    let witness = client.shutdown().expect("shutdown succeeds");
    let summary = handle.wait();

    assert_eq!(
        witness, base.witness,
        "recovered verdict diverges (keep={keep})"
    );
    assert_eq!(summary.witness, base.witness);
    // At-least-once accounting: every event is applied exactly once,
    // whether it survived in the log, was redelivered, or was skipped
    // by the resume high-water marks.
    let total = generated_events().len() as u64;
    assert_eq!(
        report.accepted + report.duplicates + report.stale + report.resumed_past,
        total,
        "event accounting broken at keep={keep}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Every truncation offset across the head of the log — which is the
/// snapshot frame itself — recovers. A torn snapshot must degrade to
/// an empty (or shorter) replay, never to a wrong verdict.
#[test]
fn every_offset_through_the_snapshot_frame_recovers() {
    let len = baseline().wal_bytes.len();
    // The snapshot frame sits at byte 0; 64 bytes comfortably covers
    // its header and the start of its payload, plus edges.
    for keep in (0..64.min(len)).chain([len - 1, len]) {
        crash_recover_redeliver(keep);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Sampled offsets over the whole compacted log (snapshot frame,
    /// suffix events, segment boundaries).
    #[test]
    fn any_truncation_offset_across_compaction_recovers(offset_seed in any::<u64>()) {
        let wal_len = baseline().wal_bytes.len();
        let keep = (offset_seed % (wal_len as u64 + 1)) as usize;
        crash_recover_redeliver(keep);
    }
}

/// Group-commit fsync batching is a durability/performance policy, not
/// a semantics change: the verdict matches the `Always` policy run,
/// and compaction keeps working under it.
#[test]
fn group_commit_policy_preserves_the_verdict() {
    let base = baseline();
    let dir = tmp_dir("group");
    let handle = server::start("127.0.0.1:0", server_config(&dir, FsyncPolicy::Group)).unwrap();
    let client = FeedClient::new(client_config(handle.local_addr()));
    let report = client.feed(&[false; N], &generated_events()).unwrap();
    assert_eq!(report.witness, base.witness);
    client.shutdown().unwrap();
    let summary = handle.wait();
    assert_eq!(summary.witness, base.witness);
    assert!(summary.tenants[0].snapshots >= 1, "{:?}", summary.tenants);
    let _ = std::fs::remove_dir_all(&dir);
}
