//! Cross-algorithm agreement: relational and exact-sum detection versus
//! the exhaustive baseline.

use gpd::enumerate::{definitely_by_enumeration, possibly_by_enumeration};
use gpd::relational::{
    definitely_exact_sum, definitely_sum, max_sum_cut, min_sum_cut, possibly_exact_sum,
    possibly_sum,
};
use gpd::symmetric::{possibly_symmetric, SymmetricPredicate};
use gpd::Relop;
use gpd_computation::gen;
use proptest::prelude::*;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn flow_extremes_match_enumeration(
        seed in any::<u64>(),
        n in 1usize..5,
        m in 1usize..6,
        amplitude in 1i64..6,
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let msgs = if n > 1 { (n * m) / 3 } else { 0 };
        let comp = gen::random_computation(&mut rng, n, m, msgs);
        let x = gen::random_int_variable(&mut rng, &comp, amplitude);
        let (bmin, bmax) = comp
            .consistent_cuts()
            .map(|c| x.sum_at(&c))
            .fold((i64::MAX, i64::MIN), |(lo, hi), s| (lo.min(s), hi.max(s)));
        let (max, cmax) = max_sum_cut(&comp, &x);
        let (min, cmin) = min_sum_cut(&comp, &x);
        prop_assert_eq!(max, bmax);
        prop_assert_eq!(min, bmin);
        prop_assert_eq!(x.sum_at(&cmax), max);
        prop_assert_eq!(x.sum_at(&cmin), min);
    }

    #[test]
    fn possibly_sum_agrees_for_all_relops(
        seed in any::<u64>(),
        n in 1usize..5,
        m in 1usize..5,
        k in -6i64..6,
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let msgs = if n > 1 { n } else { 0 };
        let comp = gen::random_computation(&mut rng, n, m, msgs);
        let x = gen::random_int_variable(&mut rng, &comp, 4);
        for relop in [Relop::Lt, Relop::Le, Relop::Gt, Relop::Ge] {
            let fast = possibly_sum(&comp, &x, relop, k);
            let slow = possibly_by_enumeration(&comp, |c| relop.eval(x.sum_at(c), k));
            prop_assert_eq!(fast.is_some(), slow.is_some());
            if let Some(cut) = fast {
                prop_assert!(relop.eval(x.sum_at(&cut), k));
            }
        }
    }

    #[test]
    fn exact_sum_possibly_and_definitely_agree(
        seed in any::<u64>(),
        n in 1usize..4,
        m in 1usize..5,
        k in -3i64..4,
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let msgs = if n > 1 { n } else { 0 };
        let comp = gen::random_computation(&mut rng, n, m, msgs);
        let x = gen::random_unit_int_variable(&mut rng, &comp);

        let fast = possibly_exact_sum(&comp, &x, k).expect("unit step");
        let slow = possibly_by_enumeration(&comp, |c| x.sum_at(c) == k);
        prop_assert_eq!(fast.is_some(), slow.is_some());
        if let Some(cut) = fast {
            prop_assert_eq!(x.sum_at(&cut), k);
        }

        let dfast = definitely_exact_sum(&comp, &x, k).expect("unit step");
        let dslow = definitely_by_enumeration(&comp, |c| x.sum_at(c) == k);
        prop_assert_eq!(dfast, dslow);
    }

    #[test]
    fn definitely_sum_agrees_with_enumeration(
        seed in any::<u64>(),
        n in 1usize..4,
        m in 1usize..4,
        k in -4i64..5,
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let msgs = if n > 1 { n / 2 } else { 0 };
        let comp = gen::random_computation(&mut rng, n, m, msgs);
        let x = gen::random_int_variable(&mut rng, &comp, 3);
        for relop in [Relop::Lt, Relop::Le, Relop::Gt, Relop::Ge] {
            let fast = definitely_sum(&comp, &x, relop, k);
            let slow = definitely_by_enumeration(&comp, |c| relop.eval(x.sum_at(c), k));
            prop_assert_eq!(fast, slow);
        }
    }

    #[test]
    fn symmetric_detection_agrees_with_enumeration(
        seed in any::<u64>(),
        n in 2usize..5,
        m in 1usize..4,
        density in 0.2f64..0.8,
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let comp = gen::random_computation(&mut rng, n, m, n / 2);
        let x = gen::random_bool_variable(&mut rng, &comp, density);
        let predicates = [
            SymmetricPredicate::exclusive_or(n as u32),
            SymmetricPredicate::not_all_equal(n as u32),
            SymmetricPredicate::all_equal(n as u32),
            SymmetricPredicate::absence_of_simple_majority(n as u32),
            SymmetricPredicate::absence_of_two_thirds_majority(n as u32),
        ];
        for phi in &predicates {
            let fast = possibly_symmetric(&comp, &x, phi);
            let slow = possibly_by_enumeration(&comp, |c| phi.eval(&comp, &x, c));
            prop_assert_eq!(fast.is_some(), slow.is_some());
            if let Some(cut) = fast {
                prop_assert!(phi.eval(&comp, &x, &cut));
            }
        }
    }
}
