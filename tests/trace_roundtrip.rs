//! Trace persistence: a recorded simulation survives a round trip through
//! the text trace format with identical detection results.

use gpd::conjunctive::possibly_conjunctive;
use gpd::relational::{max_sum_cut, min_sum_cut};
use gpd_computation::trace::{read_trace, write_trace};
use gpd_computation::ProcessId;
use gpd_sim::protocols::{RicartAgrawala, TokenRing};
use gpd_sim::{SimConfig, Simulation};

#[test]
fn token_ring_trace_roundtrip_preserves_detection() {
    let trace = Simulation::new(TokenRing::ring(4, 2), SimConfig::new(77)).run();
    let tokens = trace.int_var("tokens").unwrap();
    let has = trace.bool_var("has_token").unwrap();

    let text = write_trace(
        &trace.computation,
        &[("has_token", has)],
        &[("tokens", tokens)],
    );
    let back = read_trace(&text).expect("trace parses");

    assert_eq!(
        back.computation.event_count(),
        trace.computation.event_count()
    );
    // Event ids are renumbered on reload; compare messages by their
    // (process, local index) endpoints, which are the stable identity.
    let endpoints = |comp: &gpd_computation::Computation| {
        let mut v: Vec<_> = comp
            .messages()
            .iter()
            .map(|&(s, r)| {
                (
                    (comp.process_of(s).index(), comp.local_index(s)),
                    (comp.process_of(r).index(), comp.local_index(r)),
                )
            })
            .collect();
        v.sort_unstable();
        v
    };
    assert_eq!(endpoints(&back.computation), endpoints(&trace.computation));

    let tokens2 = &back.int_vars.iter().find(|(n, _)| n == "tokens").unwrap().1;
    assert_eq!(
        max_sum_cut(&back.computation, tokens2),
        max_sum_cut(&trace.computation, tokens)
    );
    assert_eq!(
        min_sum_cut(&back.computation, tokens2),
        min_sum_cut(&trace.computation, tokens)
    );
}

#[test]
fn mutex_trace_roundtrip_preserves_conjunctive_verdicts() {
    let trace = Simulation::new(
        RicartAgrawala::group_with_bug(3, 1, true),
        SimConfig::new(4),
    )
    .run();
    let in_cs = trace.bool_var("in_cs").unwrap();
    let requesting = trace.bool_var("requesting").unwrap();

    let text = write_trace(
        &trace.computation,
        &[("in_cs", in_cs), ("requesting", requesting)],
        &[],
    );
    let back = read_trace(&text).expect("trace parses");
    let in_cs2 = &back.bool_vars.iter().find(|(n, _)| n == "in_cs").unwrap().1;

    for i in 0..3 {
        for j in (i + 1)..3 {
            let procs = [ProcessId::new(i), ProcessId::new(j)];
            let before = possibly_conjunctive(&trace.computation, in_cs, &procs);
            let after = possibly_conjunctive(&back.computation, in_cs2, &procs);
            assert_eq!(before, after, "pair ({i},{j})");
        }
    }
}

mod property {
    use gpd_computation::gen;
    use gpd_computation::trace::{read_trace, write_trace};
    use proptest::prelude::*;
    use rand::SeedableRng;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn random_computations_roundtrip(
            seed in any::<u64>(),
            n in 1usize..6,
            m in 0usize..8,
            msgs in 0usize..10,
            density in 0.0f64..1.0,
        ) {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let msgs = if n > 1 && m > 0 { msgs } else { 0 };
            let comp = gen::random_computation(&mut rng, n, m, msgs);
            let bv = gen::random_bool_variable(&mut rng, &comp, density);
            let iv = gen::random_unit_int_variable(&mut rng, &comp);

            let text = write_trace(&comp, &[("b", &bv)], &[("x", &iv)]);
            let back = read_trace(&text).expect("own output parses");

            prop_assert_eq!(back.computation.process_count(), comp.process_count());
            prop_assert_eq!(back.computation.event_count(), comp.event_count());
            prop_assert_eq!(back.bool_vars[0].1.tracks(), bv.tracks());
            prop_assert_eq!(back.int_vars[0].1.tracks(), iv.tracks());
            // The causal order is preserved (compare by local coordinates).
            for p in 0..n {
                for q in 0..n {
                    for k in 1..=comp.events_on(p) as u32 {
                        for l in 1..=comp.events_on(q) as u32 {
                            let e1 = comp.event_at(p, k).unwrap();
                            let f1 = comp.event_at(q, l).unwrap();
                            let e2 = back.computation.event_at(p, k).unwrap();
                            let f2 = back.computation.event_at(q, l).unwrap();
                            prop_assert_eq!(
                                comp.happened_before(e1, f1),
                                back.computation.happened_before(e2, f2)
                            );
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn double_roundtrip_is_identity() {
    let trace = Simulation::new(TokenRing::ring(3, 1), SimConfig::new(5)).run();
    let tokens = trace.int_var("tokens").unwrap();
    let text1 = write_trace(&trace.computation, &[], &[("tokens", tokens)]);
    let back1 = read_trace(&text1).unwrap();
    let text2 = write_trace(&back1.computation, &[], &[("tokens", &back1.int_vars[0].1)]);
    assert_eq!(text1, text2);
}
