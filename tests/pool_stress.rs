//! Stress coverage for the persistent worker pool behind `gpd::par`.
//!
//! The pool spawns its threads once per process and parks them between
//! fan-outs, so `par_threads_spawned` must stay O(1) no matter how many
//! detection runs execute — that is the whole point of replacing the
//! per-wave `std::thread::scope` spawns. These tests hammer the pool
//! with hundreds of tiny lattices, concurrent detections (exercising
//! the busy-slot solo fallback) and repeatedly panicking predicates,
//! and assert the spawn counter, verdicts and pool health afterwards.

use gpd::counters;
use gpd::enumerate::{definitely_levelwise_budgeted, possibly_by_enumeration_par};
use gpd::{Budget, BudgetMeter, DetectError, Verdict};
use gpd_computation::{gen, Computation, Cut};
use rand::{Rng, SeedableRng};

/// The pool's hard thread cap: twice the hardware parallelism.
fn spawn_cap() -> u64 {
    let hw = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1) as u64;
    hw * 2
}

fn random_comps(seed: u64, rounds: usize) -> Vec<Computation> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    (0..rounds)
        .map(|_| {
            let n = rng.gen_range(1..4);
            let m = rng.gen_range(1..5);
            let msgs = if n > 1 { rng.gen_range(0..n) } else { 0 };
            gen::random_computation(&mut rng, n, m, msgs)
        })
        .collect()
}

#[test]
fn hundreds_of_runs_spawn_o1_threads() {
    let before = counters::snapshot();
    // 300 tiny lattices, alternating thread counts, both engines. Under
    // the old per-wave scopes this spawned thousands of threads.
    for (i, comp) in random_comps(4242, 300).iter().enumerate() {
        let threads = [1, 2, 4, 8][i % 4];
        let events = comp.final_cut().event_count();
        let hit = possibly_by_enumeration_par(comp, |c: &Cut| c.event_count() >= events, threads);
        assert!(hit.is_some(), "the final cut always satisfies the bound");
        let meter = BudgetMeter::new();
        let verdict = definitely_levelwise_budgeted(
            comp,
            |c: &Cut| c.event_count() == 1,
            threads,
            &Budget::unlimited(),
            &meter,
            None,
        )
        .unwrap();
        assert!(matches!(verdict, Verdict::Decided(..)));
    }
    let spawned = counters::snapshot().since(&before).par_threads_spawned;
    assert!(
        spawned <= spawn_cap(),
        "persistent pool must spawn O(1) threads per process, \
         got {spawned} across 300 runs (cap {})",
        spawn_cap()
    );
}

#[test]
fn concurrent_detections_share_the_pool_and_agree() {
    // Eight OS threads each run full detections in a loop while the
    // single job slot forces most fan-outs into the solo fallback.
    // Verdicts must match the sequential reference regardless of which
    // submitter wins the slot.
    let comps = random_comps(99, 24);
    let expected: Vec<Option<Cut>> = comps
        .iter()
        .map(|c| {
            let n = c.process_count();
            possibly_by_enumeration_par(
                c,
                |cut: &Cut| cut.frontier().iter().sum::<u32>() as usize >= n,
                1,
            )
        })
        .collect();
    std::thread::scope(|scope| {
        for _ in 0..8 {
            scope.spawn(|| {
                for (comp, want) in comps.iter().zip(&expected) {
                    let n = comp.process_count();
                    let got = possibly_by_enumeration_par(
                        comp,
                        |cut: &Cut| cut.frontier().iter().sum::<u32>() as usize >= n,
                        4,
                    );
                    assert_eq!(&got, want, "concurrent run must be byte-identical");
                }
            });
        }
    });
}

#[test]
fn panicking_predicates_leave_the_pool_healthy() {
    let comps = random_comps(7, 40);
    for comp in &comps {
        let meter = BudgetMeter::new();
        let result = definitely_levelwise_budgeted(
            comp,
            |_: &Cut| panic!("predicate blew up"),
            4,
            &Budget::unlimited(),
            &meter,
            None,
        );
        assert!(
            matches!(result, Err(DetectError::PredicatePanicked(_))),
            "panic must surface as a detect error, not unwind"
        );
    }
    // After 40 panicking fan-outs the pool still answers correctly.
    for comp in &comps {
        let hit = possibly_by_enumeration_par(comp, |_: &Cut| true, 4);
        assert_eq!(
            hit.map(|c| c.event_count()),
            Some(0),
            "initial cut satisfies the trivial predicate"
        );
    }
}
