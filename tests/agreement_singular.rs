//! Cross-algorithm agreement: all three singular-CNF algorithms versus
//! the exhaustive baseline, on random computations and random singular
//! predicates.

use gpd::enumerate::possibly_by_enumeration;
use gpd::singular::{
    possibly_singular, possibly_singular_chains, possibly_singular_ordered,
    possibly_singular_subsets,
};
use gpd::{CnfClause, SingularCnf};
use gpd_computation::{gen, ProcessId};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};

/// A random singular CNF carving the processes into clauses of size 1–3.
fn random_singular<R: Rng>(rng: &mut R, n: usize, max_clauses: usize) -> SingularCnf {
    let mut procs: Vec<usize> = (0..n).collect();
    for i in (1..procs.len()).rev() {
        procs.swap(i, rng.gen_range(0..=i));
    }
    let mut clauses = Vec::new();
    let mut rest = procs.as_slice();
    while !rest.is_empty() && clauses.len() < max_clauses {
        let k = rng.gen_range(1..=rest.len().min(3));
        let (now, later) = rest.split_at(k);
        clauses.push(CnfClause::new(
            now.iter()
                .map(|&p| (ProcessId::new(p), rng.gen_bool(0.5)))
                .collect(),
        ));
        rest = later;
    }
    SingularCnf::new(clauses)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn general_algorithms_agree_with_enumeration(
        seed in any::<u64>(),
        n in 2usize..6,
        m in 1usize..5,
        msgs in 0usize..8,
        density in 0.2f64..0.6,
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let comp = gen::random_computation(&mut rng, n, m, msgs);
        let x = gen::random_bool_variable(&mut rng, &comp, density);
        let phi = random_singular(&mut rng, n, 3);

        let slow = possibly_by_enumeration(&comp, |cut| phi.eval(&x, cut));
        let subsets = possibly_singular_subsets(&comp, &x, &phi);
        let chains = possibly_singular_chains(&comp, &x, &phi);
        let auto = possibly_singular(&comp, &x, &phi);

        prop_assert_eq!(subsets.is_some(), slow.is_some());
        prop_assert_eq!(chains.is_some(), slow.is_some());
        prop_assert_eq!(auto.is_some(), slow.is_some());
        for cut in [subsets, chains, auto].into_iter().flatten() {
            prop_assert!(comp.is_consistent(&cut));
            prop_assert!(phi.eval(&x, &cut));
        }
    }

    #[test]
    fn ordered_special_case_agrees_with_enumeration(
        seed in any::<u64>(),
        m in 1usize..5,
        msgs in 0usize..8,
        density in 0.2f64..0.6,
    ) {
        // Receives restricted to one process per group ⇒ receive-ordered.
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let comp = gen::random_computation_with_receivers(&mut rng, 6, m, msgs, Some(&[0, 3]));
        let x = gen::random_bool_variable(&mut rng, &comp, density);
        let phi = SingularCnf::new(vec![
            CnfClause::new(vec![
                (ProcessId::new(0), rng.gen_bool(0.5)),
                (ProcessId::new(1), rng.gen_bool(0.5)),
                (ProcessId::new(2), rng.gen_bool(0.5)),
            ]),
            CnfClause::new(vec![
                (ProcessId::new(3), rng.gen_bool(0.5)),
                (ProcessId::new(4), rng.gen_bool(0.5)),
                (ProcessId::new(5), rng.gen_bool(0.5)),
            ]),
        ]);

        let fast = possibly_singular_ordered(&comp, &x, &phi)
            .expect("receive-ordered by construction");
        let slow = possibly_by_enumeration(&comp, |cut| phi.eval(&x, cut));
        prop_assert_eq!(fast.is_some(), slow.is_some());
        if let Some(cut) = fast {
            prop_assert!(phi.eval(&x, &cut));
        }
    }

    #[test]
    fn property_p_holds_on_receive_ordered_computations(
        seed in any::<u64>(),
        m in 1usize..5,
        msgs in 0usize..10,
    ) {
        // The §3.2 scan is sound because of Property P: if succ(e) ≤ f
        // for events e, f on different meta-processes, then succ(e) ≤ g
        // for every event g of f's meta-process that is σ-later than f.
        use gpd_computation::OrderingKind;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let comp = gen::random_computation_with_receivers(&mut rng, 6, m, msgs, Some(&[0, 3]));
        let grouping = gpd_computation::Grouping::new(vec![
            vec![0.into(), 1.into(), 2.into()],
            vec![3.into(), 4.into(), 5.into()],
        ]);
        prop_assert!(grouping.is_ordered(&comp, OrderingKind::ReceiveOrdered));
        let lin = grouping.linearize(&comp, OrderingKind::ReceiveOrdered).unwrap();

        for e in comp.events() {
            let Some(se) = comp.successor_on_process(e) else { continue };
            let ge = grouping.group_of(comp.process_of(e));
            for gi in 0..grouping.group_count() {
                if Some(gi) == ge {
                    continue;
                }
                let events = grouping.events_of_group(&comp, gi);
                for &f in &events {
                    if !comp.leq(se, f) {
                        continue;
                    }
                    for &g in &events {
                        if lin.position(g) > lin.position(f) {
                            prop_assert!(
                                comp.leq(se, g),
                                "Property P violated: succ({e:?}) ≤ {f:?} but not ≤ {g:?}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn chain_combinations_never_exceed_subset_combinations(
        seed in any::<u64>(),
        n in 2usize..6,
        m in 1usize..5,
        msgs in 0usize..8,
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let comp = gen::random_computation(&mut rng, n, m, msgs);
        let x = gen::random_bool_variable(&mut rng, &comp, 0.5);
        let phi = random_singular(&mut rng, n, 3);
        let cover = gpd::singular::chain_cover_sizes(&comp, &x, &phi);
        for (c, clause) in cover.iter().zip(phi.clauses()) {
            // A clause's states split into ≤ one chain per process, but
            // only when each process actually has true states; an empty
            // cover (unsatisfiable clause) is also fine.
            prop_assert!(*c <= clause.literals().len());
        }
    }
}
