//! The parallel execution layer's determinism contract (see
//! `gpd::par`): for every detector, the `Some`/`None` verdict is
//! identical at every thread count, and any witness a parallel run
//! returns satisfies the predicate — plus regression coverage for
//! predicates whose clauses have no true states (empty slots / empty
//! chain covers), which must reject cleanly rather than panic.

use gpd::enumerate::{possibly_by_enumeration, possibly_by_enumeration_par};
use gpd::singular::{
    possibly_singular, possibly_singular_chains, possibly_singular_chains_par,
    possibly_singular_ordered, possibly_singular_par, possibly_singular_subsets,
    possibly_singular_subsets_par,
};
use gpd::{CnfClause, SingularCnf};
use gpd_computation::{gen, BoolVariable, ComputationBuilder, ProcessId};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};

/// A random singular CNF carving the processes into clauses of size 1–3.
fn random_singular<R: Rng>(rng: &mut R, n: usize, max_clauses: usize) -> SingularCnf {
    let mut procs: Vec<usize> = (0..n).collect();
    for i in (1..procs.len()).rev() {
        procs.swap(i, rng.gen_range(0..=i));
    }
    let mut clauses = Vec::new();
    let mut rest = procs.as_slice();
    while !rest.is_empty() && clauses.len() < max_clauses {
        let k = rng.gen_range(1..=rest.len().min(3));
        let (now, later) = rest.split_at(k);
        clauses.push(CnfClause::new(
            now.iter()
                .map(|&p| (ProcessId::new(p), rng.gen_bool(0.5)))
                .collect(),
        ));
        rest = later;
    }
    SingularCnf::new(clauses)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn singular_verdicts_are_thread_count_invariant(
        seed in any::<u64>(),
        n in 2usize..6,
        m in 1usize..5,
        msgs in 0usize..8,
        density in 0.2f64..0.6,
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let comp = gen::random_computation(&mut rng, n, m, msgs);
        let x = gen::random_bool_variable(&mut rng, &comp, density);
        let phi = random_singular(&mut rng, n, 3);

        let seq_subsets = possibly_singular_subsets(&comp, &x, &phi);
        let seq_chains = possibly_singular_chains(&comp, &x, &phi);
        let seq_auto = possibly_singular(&comp, &x, &phi);
        for threads in [1usize, 2, 4] {
            let subsets = possibly_singular_subsets_par(&comp, &x, &phi, threads);
            let chains = possibly_singular_chains_par(&comp, &x, &phi, threads);
            let auto = possibly_singular_par(&comp, &x, &phi, threads);
            prop_assert_eq!(subsets.is_some(), seq_subsets.is_some());
            prop_assert_eq!(chains.is_some(), seq_chains.is_some());
            prop_assert_eq!(auto.is_some(), seq_auto.is_some());
            // A parallel witness may differ from the sequential one, but
            // it must be a consistent cut that satisfies Φ.
            for cut in [subsets, chains, auto].into_iter().flatten() {
                prop_assert!(comp.is_consistent(&cut));
                prop_assert!(phi.eval(&x, &cut));
            }
        }
    }

    #[test]
    fn parallel_enumeration_witness_is_byte_identical_across_threads(
        seed in any::<u64>(),
        n in 1usize..4,
        m in 1usize..5,
        msgs in 0usize..4,
        density in 0.2f64..0.6,
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        // A single process cannot exchange messages.
        let msgs = if n > 1 { msgs } else { 0 };
        let comp = gen::random_computation(&mut rng, n, m, msgs);
        let x = gen::random_bool_variable(&mut rng, &comp, density);
        let phi = random_singular(&mut rng, n, 2);
        let pred = |c: &gpd_computation::Cut| phi.eval(&x, c);

        let seq = possibly_by_enumeration(&comp, pred);
        // One worker runs the sweeps in exact sequential order; that is
        // the deterministic reference every thread count must reproduce.
        let reference = possibly_by_enumeration_par(&comp, pred, 1);
        prop_assert_eq!(reference.is_some(), seq.is_some());
        if let (Some(p), Some(s)) = (&reference, &seq) {
            // The witness sits on the minimum satisfying level.
            prop_assert_eq!(p.event_count(), s.event_count());
            prop_assert!(pred(p));
        }
        for threads in [2usize, 4] {
            let par = possibly_by_enumeration_par(&comp, pred, threads);
            // Work-stealing sweeps canonicalize on the lowest sorted
            // cut of the lowest level: byte-identical witnesses.
            prop_assert_eq!(&par, &reference);
        }
    }
}

/// A computation with a clause that has **no** true states anywhere: the
/// subset algorithm gets an empty slot, the chain algorithm an empty
/// cover. Both must return `None` without panicking, at every thread
/// count — as must the §3.2 ordered scan (the no-message computation is
/// trivially receive-ordered).
#[test]
fn empty_cover_rejects_cleanly_at_every_thread_count() {
    let mut b = ComputationBuilder::new(2);
    b.append(0);
    b.append(1);
    let comp = b.build().unwrap();
    // p1 is false in every state, so the clause (x₁) is never satisfied.
    let x = BoolVariable::new(&comp, vec![vec![false, true], vec![false, false]]);
    let phi = SingularCnf::new(vec![
        CnfClause::new(vec![(ProcessId::new(0), true)]),
        CnfClause::new(vec![(ProcessId::new(1), true)]),
    ]);

    assert_eq!(
        possibly_singular_ordered(&comp, &x, &phi),
        Ok(None),
        "no-message computations are trivially ordered"
    );
    for threads in [0usize, 4] {
        assert_eq!(
            possibly_singular_subsets_par(&comp, &x, &phi, threads),
            None
        );
        assert_eq!(possibly_singular_chains_par(&comp, &x, &phi, threads), None);
        assert_eq!(possibly_singular_par(&comp, &x, &phi, threads), None);
    }
}

/// Same regression with *every* literal empty — the degenerate
/// all-slots-empty case.
#[test]
fn all_literals_empty_rejects_cleanly() {
    let mut b = ComputationBuilder::new(2);
    b.append(0);
    let comp = b.build().unwrap();
    let x = BoolVariable::new(&comp, vec![vec![false, false], vec![false]]);
    let phi = SingularCnf::new(vec![CnfClause::new(vec![
        (ProcessId::new(0), true),
        (ProcessId::new(1), true),
    ])]);
    for threads in [0usize, 4] {
        assert_eq!(
            possibly_singular_subsets_par(&comp, &x, &phi, threads),
            None
        );
        assert_eq!(possibly_singular_chains_par(&comp, &x, &phi, threads), None);
        assert_eq!(possibly_singular_par(&comp, &x, &phi, threads), None);
    }
}
