//! Cross-algorithm agreement: conjunctive detection (CPDHB) versus the
//! exhaustive lattice baseline, driven by proptest.

use gpd::conjunctive::{possibly_conjunctive, possibly_conjunctive_literals};
use gpd::enumerate::possibly_by_enumeration;
use gpd_computation::{gen, ProcessId};
use proptest::prelude::*;
use rand::SeedableRng;

/// Parameters compact enough that the lattice stays enumerable.
fn params() -> impl Strategy<Value = (u64, usize, usize, usize, f64)> {
    (any::<u64>(), 2usize..5, 1usize..6, 0usize..8, 0.2f64..0.7)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cpdhb_agrees_with_enumeration((seed, n, m, msgs, density) in params()) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let comp = gen::random_computation(&mut rng, n, m, msgs);
        let x = gen::random_bool_variable(&mut rng, &comp, density);
        let processes: Vec<ProcessId> = (0..n).map(ProcessId::new).collect();

        let fast = possibly_conjunctive(&comp, &x, &processes);
        let slow = possibly_by_enumeration(&comp, |cut| {
            (0..n).all(|p| x.value_at(cut, p))
        });
        prop_assert_eq!(fast.is_some(), slow.is_some());
        if let Some(cut) = fast {
            prop_assert!(comp.is_consistent(&cut));
            prop_assert!((0..n).all(|p| x.value_at(&cut, p)));
        }
    }

    #[test]
    fn literal_form_agrees_with_enumeration((seed, n, m, msgs, density) in params()) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let comp = gen::random_computation(&mut rng, n, m, msgs);
        let x = gen::random_bool_variable(&mut rng, &comp, density);
        // Alternate polarities across processes.
        let literals: Vec<(ProcessId, bool)> =
            (0..n).map(|p| (ProcessId::new(p), p % 2 == 0)).collect();

        let fast = possibly_conjunctive_literals(&comp, &x, &literals);
        let slow = possibly_by_enumeration(&comp, |cut| {
            literals.iter().all(|&(p, pos)| x.value_at(cut, p) == pos)
        });
        prop_assert_eq!(fast.is_some(), slow.is_some());
        if let Some(cut) = fast {
            prop_assert!(literals.iter().all(|&(p, pos)| x.value_at(&cut, p) == pos));
        }
    }

    #[test]
    fn witness_is_the_least_one((seed, n, m, msgs, density) in params()) {
        // CPDHB's witness passes through the *earliest* viable true
        // states; in particular no witness cut can be strictly below it.
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let comp = gen::random_computation(&mut rng, n, m, msgs);
        let x = gen::random_bool_variable(&mut rng, &comp, density);
        let processes: Vec<ProcessId> = (0..n).map(ProcessId::new).collect();

        if let Some(cut) = possibly_conjunctive(&comp, &x, &processes) {
            let smaller = possibly_by_enumeration(&comp, |c| {
                (0..n).all(|p| x.value_at(c, p)) && c.leq(&cut) && *c != cut
            });
            prop_assert!(smaller.is_none(), "found a smaller witness than CPDHB's");
        }
    }
}
