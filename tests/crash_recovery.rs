//! Crash-recovery determinism for the online monitoring service.
//!
//! The contract under test (ISSUE 5, `docs/ALGORITHMS.md` §11): kill
//! the server at **any byte offset** of its write-ahead log, recover,
//! let the client re-deliver everything (at-least-once), and the final
//! verdict and witness are byte-for-byte the ones an uninterrupted run
//! produces — at 1, 2, or 4 worker threads alike.

use std::path::PathBuf;
use std::sync::OnceLock;
use std::time::Duration;

use gpd_server::client::{ClientConfig, FeedClient};
use gpd_server::server::{self, ServerConfig};
use gpd_server::wal::{self, FsyncPolicy, Wal, WalConfig, WalRecord};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of processes in the generated computation.
const N: usize = 3;

fn tmp_dir(tag: &str) -> PathBuf {
    static UNIQUE: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let k = UNIQUE.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("gpd-crash-{tag}-{}-{k}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A deterministic stream of true states: per-process vector-clock
/// chains with occasional cross-process merges, in a fixed interleaved
/// delivery order. Every state is "true", so the conjunction holds and
/// the unique minimal witness is nontrivial.
fn generated_events() -> Vec<(usize, Vec<u32>)> {
    let mut rng = StdRng::seed_from_u64(0x5eed);
    let mut clocks = vec![vec![0u32; N]; N];
    let mut events = Vec::new();
    for round in 0..12 {
        for p in 0..N {
            // Occasionally learn another process's clock (message
            // receipt) before ticking.
            if round > 0 && rng.gen_bool(0.4) {
                let q = rng.gen_range(0..N - 1);
                let q = if q >= p { q + 1 } else { q };
                let other = clocks[q].clone();
                for (mine, theirs) in clocks[p].iter_mut().zip(other) {
                    *mine = (*mine).max(theirs);
                }
            }
            clocks[p][p] += 1;
            events.push((p, clocks[p].clone()));
        }
    }
    events
}

fn server_config(dir: &PathBuf, workers: usize) -> ServerConfig {
    let mut config = ServerConfig::new(
        WalConfig::new(dir)
            // Small segments so truncation offsets cross rotation
            // boundaries.
            .with_segment_bytes(256)
            .with_fsync(FsyncPolicy::Always),
    );
    config.shards = workers;
    config.io_timeout = Duration::from_secs(5);
    config
}

fn client_config(addr: std::net::SocketAddr) -> ClientConfig {
    let mut config = ClientConfig::new(addr.to_string());
    config.io_timeout = Duration::from_secs(5);
    config.max_retries = 5;
    config.backoff_base = Duration::from_millis(2);
    config.backoff_cap = Duration::from_millis(50);
    config
}

/// Runs the full feed against a fresh server over `dir` and returns
/// (witness, concatenated WAL bytes).
fn run_feed(dir: &PathBuf, workers: usize) -> (Option<Vec<Vec<u32>>>, Vec<u8>) {
    let handle = server::start("127.0.0.1:0", server_config(dir, workers)).unwrap();
    let client = FeedClient::new(client_config(handle.local_addr()));
    let report = client
        .feed(&[false; N], &generated_events())
        .expect("fault-free feed succeeds");
    let witness = client.shutdown().expect("shutdown succeeds");
    assert_eq!(report.witness, witness, "feed and shutdown verdicts agree");
    let summary = handle.wait();
    assert_eq!(summary.witness, witness);
    // Tenant logs live under `tenants/<name>/`; the fault-free feed
    // uses the default tenant.
    let bytes = wal::concatenated_bytes(&dir.join("tenants").join("default")).unwrap();
    (witness, bytes)
}

struct Baseline {
    witness: Option<Vec<Vec<u32>>>,
    wal_bytes: Vec<u8>,
}

fn baseline() -> &'static Baseline {
    static BASELINE: OnceLock<Baseline> = OnceLock::new();
    BASELINE.get_or_init(|| {
        let dir = tmp_dir("baseline");
        let (witness, wal_bytes) = run_feed(&dir, 1);
        assert!(
            witness.is_some(),
            "the all-true stream must produce a witness"
        );
        let _ = std::fs::remove_dir_all(&dir);
        Baseline { witness, wal_bytes }
    })
}

#[test]
fn uninterrupted_verdict_is_worker_count_invariant() {
    let expected = &baseline().witness;
    for workers in [2, 4] {
        let dir = tmp_dir("workers");
        let (witness, _) = run_feed(&dir, workers);
        assert_eq!(
            &witness, expected,
            "witness differs at {workers} worker threads"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Simulates `kill -9` after `keep` bytes of the baseline WAL reached
/// disk, restarts, re-delivers everything, and checks the verdict.
fn crash_recover_redeliver(keep: usize, workers: usize) {
    let base = baseline();
    let dir = tmp_dir("recover");
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("00000000.wal"), &base.wal_bytes[..keep]).unwrap();

    let handle = server::start("127.0.0.1:0", server_config(&dir, workers)).unwrap();
    let client = FeedClient::new(client_config(handle.local_addr()));
    let report = client
        .feed(&[false; N], &generated_events())
        .expect("redelivery feed succeeds");
    let witness = client.shutdown().expect("shutdown succeeds");
    let summary = handle.wait();

    assert_eq!(
        witness, base.witness,
        "recovered verdict diverges (keep={keep}, workers={workers})"
    );
    assert_eq!(summary.witness, base.witness);
    // Redelivered events the recovered log already held are screened,
    // not re-applied: the monitor saw each state exactly once.
    let total = generated_events().len() as u64;
    assert_eq!(
        report.accepted + report.duplicates + report.stale + report.resumed_past,
        total,
        "every event is accounted for exactly once (keep={keep})"
    );
    // The server's live counters mirror the client's view: events the
    // resume marks skipped were never sent at all.
    assert_eq!(summary.stats.observed, report.accepted);
    assert_eq!(summary.stats.duplicates, report.duplicates);
    assert_eq!(summary.stats.stale, report.stale);
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn any_truncation_offset_recovers_the_uninterrupted_verdict(
        offset_seed in any::<u64>(),
        worker_pick in 0usize..3,
    ) {
        let wal_len = baseline().wal_bytes.len();
        let keep = (offset_seed % (wal_len as u64 + 1)) as usize;
        let workers = [1, 2, 4][worker_pick];
        crash_recover_redeliver(keep, workers);
    }
}

#[test]
fn edge_truncations_recover() {
    let wal_len = baseline().wal_bytes.len();
    // Empty log, one byte (torn length header), everything-but-one-byte
    // (torn final record), and the complete log.
    for keep in [0, 1, wal_len - 1, wal_len] {
        crash_recover_redeliver(keep, 2);
    }
}

/// The committed regression corpus: hand-torn logs that recovery must
/// cut at exactly the right byte.
#[test]
fn fixed_corpus_recovers_expected_prefixes() {
    let corpus = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/corpus/wal");
    let init = WalRecord::Init {
        initial: vec![false, false],
    };
    let event = WalRecord::Event {
        process: 1,
        clock: vec![0, 1],
    };

    let torn_header = {
        let mut bytes = wal::frame(&init);
        bytes.extend_from_slice(&[0x11, 0x22, 0x33]); // half a length field
        bytes
    };
    let torn_payload = {
        let mut bytes = wal::frame(&init);
        let whole = wal::frame(&event);
        bytes.extend_from_slice(&whole[..whole.len() - 4]); // payload cut short
        bytes
    };
    let bad_crc = {
        let mut bytes = wal::frame(&init);
        let mut corrupt = wal::frame(&event);
        let last = corrupt.len() - 1;
        corrupt[last] ^= 0x01; // bit rot in the payload
        bytes.extend_from_slice(&corrupt);
        bytes
    };
    let cases: [(&str, &[u8], usize); 3] = [
        ("torn_header.wal", &torn_header, 1),
        ("torn_payload.wal", &torn_payload, 1),
        ("bad_crc.wal", &bad_crc, 1),
    ];

    for (name, expected_bytes, expected_records) in cases {
        let committed = std::fs::read(corpus.join(name))
            .unwrap_or_else(|e| panic!("missing corpus file {name}: {e}"));
        assert_eq!(
            committed, expected_bytes,
            "{name} drifted from the generator — regenerate deliberately or fix the framing"
        );
        let dir = tmp_dir("corpus");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("00000000.wal"), &committed).unwrap();
        let (_, recovery) = Wal::open(WalConfig::new(&dir)).unwrap();
        assert_eq!(recovery.records.len(), expected_records, "{name}");
        assert_eq!(recovery.records[0], init, "{name}");
        assert!(recovery.truncated_bytes > 0, "{name} must report a cut");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
