//! Equivalence contract of the incremental scan pipeline (see
//! `gpd::scan`): the queue-driven fixpoint, the prefix-sharing
//! combination walk, and the parallel snapshot-splitting layer must all
//! return exactly what the seed's restart-from-scratch loop returned.
//! The confluence argument (docs/ALGORITHMS.md §1a) makes this a
//! byte-identity claim for sequential runs, not just verdict agreement,
//! and these tests hold the implementations to it.

use gpd::singular::{
    possibly_singular_subsets, possibly_singular_subsets_par, possibly_singular_subsets_reference,
};
use gpd::{counters, CnfClause, SingularCnf};
use gpd_computation::{gen, BoolVariable, Computation, ComputationBuilder, ProcessId};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};

/// A random singular CNF carving the processes into clauses of size 1–3.
fn random_singular<R: Rng>(rng: &mut R, n: usize, max_clauses: usize) -> SingularCnf {
    let mut procs: Vec<usize> = (0..n).collect();
    for i in (1..procs.len()).rev() {
        procs.swap(i, rng.gen_range(0..=i));
    }
    let mut clauses = Vec::new();
    let mut rest = procs.as_slice();
    while !rest.is_empty() && clauses.len() < max_clauses {
        let k = rng.gen_range(1..=rest.len().min(3));
        let (now, later) = rest.split_at(k);
        clauses.push(CnfClause::new(
            now.iter()
                .map(|&p| (ProcessId::new(p), rng.gen_bool(0.5)))
                .collect(),
        ));
        rest = later;
    }
    SingularCnf::new(clauses)
}

/// A local copy of the bench crate's E5 conflict gadget (the bench crate
/// is not a dependency of these tests): `groups` wide clauses over
/// always-true processes plus a two-clause gadget whose only true states
/// are mutually inconsistent, so every `2² · widthᵍ` literal combination
/// must be scanned before rejecting.
fn wide_unsat(pad: usize, groups: usize, width: usize) -> (Computation, BoolVariable, SingularCnf) {
    let n = 4 + groups * width;
    let mut b = ComputationBuilder::new(n);
    let _u1 = b.append(2);
    let u2 = b.append(2);
    let _e01 = b.append(0);
    let e02 = b.append(0);
    b.message(u2, e02).expect("distinct processes");
    for p in 0..n {
        for _ in 0..pad {
            b.append(p);
        }
    }
    let comp = b.build().expect("single forward message");
    let mut tracks: Vec<Vec<bool>> = (0..n)
        .map(|p| vec![p >= 4; comp.events_on(p) + 1])
        .collect();
    tracks[0][2] = true;
    tracks[2][1] = true;
    let var = BoolVariable::new(&comp, tracks);
    let mut clauses = vec![
        CnfClause::new(vec![(ProcessId::new(0), true), (ProcessId::new(1), true)]),
        CnfClause::new(vec![(ProcessId::new(2), true), (ProcessId::new(3), true)]),
    ];
    for g in 0..groups {
        clauses.push(CnfClause::new(
            (0..width)
                .map(|i| (ProcessId::new(4 + g * width + i), true))
                .collect(),
        ));
    }
    (comp, var, SingularCnf::new(clauses))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Sequential prefix-shared detection returns the *byte-identical*
    /// `Option<Cut>` of the retained restart-loop reference.
    #[test]
    fn incremental_subsets_match_the_reference_byte_for_byte(
        seed in any::<u64>(),
        n in 2usize..7,
        m in 1usize..5,
        msgs in 0usize..8,
        density in 0.2f64..0.7,
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let comp = gen::random_computation(&mut rng, n, m, msgs);
        let x = gen::random_bool_variable(&mut rng, &comp, density);
        let phi = random_singular(&mut rng, n, 3);

        let reference = possibly_singular_subsets_reference(&comp, &x, &phi);
        prop_assert_eq!(&possibly_singular_subsets(&comp, &x, &phi), &reference);
        prop_assert_eq!(
            &possibly_singular_subsets_par(&comp, &x, &phi, 0),
            &reference
        );
    }

    /// The snapshot-resuming parallel walk agrees with the reference
    /// verdict at every thread count, and its witnesses satisfy Φ.
    #[test]
    fn snapshot_resume_agrees_at_every_thread_count(
        seed in any::<u64>(),
        n in 2usize..7,
        m in 1usize..5,
        msgs in 0usize..8,
        density in 0.2f64..0.7,
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let comp = gen::random_computation(&mut rng, n, m, msgs);
        let x = gen::random_bool_variable(&mut rng, &comp, density);
        let phi = random_singular(&mut rng, n, 3);

        let reference = possibly_singular_subsets_reference(&comp, &x, &phi);
        for threads in [1usize, 2, 4] {
            let par = possibly_singular_subsets_par(&comp, &x, &phi, threads);
            prop_assert_eq!(par.is_some(), reference.is_some(), "threads {}", threads);
            if let Some(cut) = par {
                prop_assert!(comp.is_consistent(&cut));
                prop_assert!(phi.eval(&x, &cut));
            }
        }
    }
}

/// On the E5-style wide-clause unsat workload — where every literal
/// combination must be scanned — the incremental walk rejects like the
/// reference at every thread count, and sequentially it does so with
/// strictly fewer `forces` evaluations.
#[test]
fn wide_unsat_workload_rejects_identically_and_cheaper() {
    let (comp, var, phi) = wide_unsat(4, 2, 4);

    let before = counters::snapshot();
    let reference = possibly_singular_subsets_reference(&comp, &var, &phi);
    let reference_work = counters::snapshot().since(&before);
    assert!(reference.is_none());

    let before = counters::snapshot();
    let incremental = possibly_singular_subsets(&comp, &var, &phi);
    let incremental_work = counters::snapshot().since(&before);
    assert!(incremental.is_none());

    // Concurrent tests in this process can only inflate the incremental
    // side's delta, so this inequality is conservative.
    assert!(
        incremental_work.forces_evals < reference_work.forces_evals,
        "incremental {} vs reference {} forces evaluations",
        incremental_work.forces_evals,
        reference_work.forces_evals
    );

    for threads in [1usize, 2, 4] {
        assert!(possibly_singular_subsets_par(&comp, &var, &phi, threads).is_none());
    }
}
