//! Equivalence contract of the computation-slicing engine (`gpd::slice`):
//! the exact regular-predicate detectors must agree with the exhaustive
//! oracles, and the *SliceReduce* pre-pass must leave verdicts and
//! witnesses **byte-identical** to the unsliced canonical engines at
//! every thread count — the slice may only shrink the work, never bend
//! the answer (docs/ALGORITHMS.md §12).

use gpd::enumerate::{
    definitely_levelwise, definitely_levelwise_budgeted, possibly_by_enumeration,
    possibly_by_enumeration_budgeted,
};
use gpd::singular::possibly_singular_budgeted;
use gpd::slice::{
    cnf_envelope, definitely_levelwise_sliced_budgeted, definitely_slice,
    possibly_by_enumeration_sliced_budgeted, possibly_singular_sliced_budgeted, possibly_slice,
    ChannelOp, RegularPredicate, Slice,
};
use gpd::{Budget, BudgetMeter, CnfClause, SingularCnf};
use gpd_computation::{gen, Computation, ProcessId};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};

/// A random regular predicate: per-process allowed-state sets on ~70% of
/// the processes, plus a bound on a real channel half the time.
fn random_regular<R: Rng>(rng: &mut R, comp: &Computation, density: f64) -> RegularPredicate {
    let mut pred = RegularPredicate::unconstrained(comp);
    for p in 0..comp.process_count() {
        if rng.gen_bool(0.7) {
            let allowed: Vec<bool> = (0..=comp.events_on(p))
                .map(|_| rng.gen_bool(density))
                .collect();
            pred = pred.require_states(p, allowed);
        }
    }
    if rng.gen_bool(0.5) {
        if let Some(&(s, r)) = comp.messages().first() {
            let op = if rng.gen_bool(0.5) {
                ChannelOp::AtMost
            } else {
                ChannelOp::AtLeast
            };
            pred = pred.require_channel(
                comp.process_of(s),
                comp.process_of(r),
                op,
                rng.gen_range(0..3),
            );
        }
    }
    pred
}

/// A random singular CNF whose first clause is a **unit** clause, so the
/// pre-pass always has a regular envelope to slice on.
fn random_cnf_with_units<R: Rng>(rng: &mut R, n: usize) -> SingularCnf {
    let mut procs: Vec<usize> = (0..n).collect();
    for i in (1..procs.len()).rev() {
        procs.swap(i, rng.gen_range(0..=i));
    }
    let mut clauses = vec![CnfClause::new(vec![(
        ProcessId::new(procs[0]),
        rng.gen_bool(0.5),
    )])];
    let mut rest = &procs[1..];
    while !rest.is_empty() && clauses.len() < 3 {
        let k = rng.gen_range(1..=rest.len().min(3));
        let (now, later) = rest.split_at(k);
        clauses.push(CnfClause::new(
            now.iter()
                .map(|&p| (ProcessId::new(p), rng.gen_bool(0.5)))
                .collect(),
        ));
        rest = later;
    }
    SingularCnf::new(clauses)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The polynomial fixpoint detectors agree with the exhaustive
    /// oracles on every random regular predicate — and `possibly_slice`
    /// returns the byte-identical least witness.
    #[test]
    fn exact_regular_detection_matches_the_oracles(
        seed in any::<u64>(),
        n in 1usize..5,
        m in 1usize..5,
        msgs in 0usize..6,
        density in 0.3f64..0.8,
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let msgs = if n > 1 { msgs } else { 0 };
        let comp = gen::random_computation(&mut rng, n, m, msgs);
        let pred = random_regular(&mut rng, &comp, density);

        prop_assert_eq!(
            possibly_slice(&comp, &pred),
            possibly_by_enumeration(&comp, |cut| pred.holds(cut))
        );
        prop_assert_eq!(
            definitely_slice(&comp, &pred),
            definitely_levelwise(&comp, |cut| pred.holds(cut))
        );
    }

    /// Slice-then-enumerate is byte-identical to plain enumeration — the
    /// full `Verdict`, witness included — at 1, 2 and 4 threads, for a
    /// CNF Φ sliced on its unit-clause envelope.
    #[test]
    fn sliced_enumeration_is_byte_identical(
        seed in any::<u64>(),
        n in 2usize..6,
        m in 1usize..4,
        msgs in 0usize..6,
        density in 0.2f64..0.7,
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let comp = gen::random_computation(&mut rng, n, m, msgs);
        let x = gen::random_bool_variable(&mut rng, &comp, density);
        let phi = random_cnf_with_units(&mut rng, n);
        let env = cnf_envelope(&comp, &x, &phi).expect("first clause is a unit clause");
        let slice = Slice::build(&comp, &env);

        let plain = possibly_by_enumeration_budgeted(
            &comp, |c| phi.eval(&x, c), 0, &Budget::unlimited(), &BudgetMeter::new(), None,
        ).unwrap();
        let plain_def = definitely_levelwise_budgeted(
            &comp, |c| phi.eval(&x, c), 0, &Budget::unlimited(), &BudgetMeter::new(), None,
        ).unwrap();
        for threads in [1usize, 2, 4] {
            let sliced = possibly_by_enumeration_sliced_budgeted(
                &comp, &slice, |c| phi.eval(&x, c), threads,
                &Budget::unlimited(), &BudgetMeter::new(), None,
            ).unwrap();
            prop_assert_eq!(
                plain.value().unwrap(), sliced.value().unwrap(),
                "possibly witness, threads {}", threads
            );
            let sliced_def = definitely_levelwise_sliced_budgeted(
                &comp, &slice, |c| phi.eval(&x, c), threads,
                &Budget::unlimited(), &BudgetMeter::new(), None,
            ).unwrap();
            prop_assert_eq!(
                plain_def.value().unwrap(), sliced_def.value().unwrap(),
                "definitely verdict, threads {}", threads
            );
        }
    }

    /// The window-pruned singular odometer engines return the
    /// byte-identical witness of the unsliced dispatcher at every thread
    /// count (the prune keeps the combination shape, so the walk order
    /// is untouched).
    #[test]
    fn sliced_singular_dispatch_is_byte_identical(
        seed in any::<u64>(),
        n in 2usize..6,
        m in 1usize..4,
        msgs in 0usize..6,
        density in 0.2f64..0.7,
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let comp = gen::random_computation(&mut rng, n, m, msgs);
        let x = gen::random_bool_variable(&mut rng, &comp, density);
        let phi = random_cnf_with_units(&mut rng, n);
        let env = cnf_envelope(&comp, &x, &phi).expect("first clause is a unit clause");
        let slice = Slice::build(&comp, &env);

        let plain = possibly_singular_budgeted(
            &comp, &x, &phi, 0, &Budget::unlimited(), &BudgetMeter::new(), None,
        ).unwrap();
        for threads in [1usize, 2, 4] {
            let sliced = possibly_singular_sliced_budgeted(
                &comp, &x, &phi, &slice, threads,
                &Budget::unlimited(), &BudgetMeter::new(), None,
            ).unwrap();
            prop_assert_eq!(
                plain.value().unwrap(), sliced.value().unwrap(),
                "threads {}", threads
            );
        }
    }
}
