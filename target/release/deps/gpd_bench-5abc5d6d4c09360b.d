/root/repo/target/release/deps/gpd_bench-5abc5d6d4c09360b.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libgpd_bench-5abc5d6d4c09360b.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libgpd_bench-5abc5d6d4c09360b.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
