/root/repo/target/release/deps/gpd_sim-dacf2772b2565768.d: crates/sim/src/lib.rs crates/sim/src/kernel.rs crates/sim/src/protocols/mod.rs crates/sim/src/protocols/bank.rs crates/sim/src/protocols/election.rs crates/sim/src/protocols/mutex.rs crates/sim/src/protocols/token_ring.rs crates/sim/src/protocols/two_phase_commit.rs crates/sim/src/protocols/voting.rs

/root/repo/target/release/deps/libgpd_sim-dacf2772b2565768.rlib: crates/sim/src/lib.rs crates/sim/src/kernel.rs crates/sim/src/protocols/mod.rs crates/sim/src/protocols/bank.rs crates/sim/src/protocols/election.rs crates/sim/src/protocols/mutex.rs crates/sim/src/protocols/token_ring.rs crates/sim/src/protocols/two_phase_commit.rs crates/sim/src/protocols/voting.rs

/root/repo/target/release/deps/libgpd_sim-dacf2772b2565768.rmeta: crates/sim/src/lib.rs crates/sim/src/kernel.rs crates/sim/src/protocols/mod.rs crates/sim/src/protocols/bank.rs crates/sim/src/protocols/election.rs crates/sim/src/protocols/mutex.rs crates/sim/src/protocols/token_ring.rs crates/sim/src/protocols/two_phase_commit.rs crates/sim/src/protocols/voting.rs

crates/sim/src/lib.rs:
crates/sim/src/kernel.rs:
crates/sim/src/protocols/mod.rs:
crates/sim/src/protocols/bank.rs:
crates/sim/src/protocols/election.rs:
crates/sim/src/protocols/mutex.rs:
crates/sim/src/protocols/token_ring.rs:
crates/sim/src/protocols/two_phase_commit.rs:
crates/sim/src/protocols/voting.rs:
