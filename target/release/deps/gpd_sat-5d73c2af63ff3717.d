/root/repo/target/release/deps/gpd_sat-5d73c2af63ff3717.d: crates/sat/src/lib.rs crates/sat/src/brute.rs crates/sat/src/cnf.rs crates/sat/src/dimacs.rs crates/sat/src/dpll.rs crates/sat/src/gen.rs crates/sat/src/transform.rs

/root/repo/target/release/deps/libgpd_sat-5d73c2af63ff3717.rlib: crates/sat/src/lib.rs crates/sat/src/brute.rs crates/sat/src/cnf.rs crates/sat/src/dimacs.rs crates/sat/src/dpll.rs crates/sat/src/gen.rs crates/sat/src/transform.rs

/root/repo/target/release/deps/libgpd_sat-5d73c2af63ff3717.rmeta: crates/sat/src/lib.rs crates/sat/src/brute.rs crates/sat/src/cnf.rs crates/sat/src/dimacs.rs crates/sat/src/dpll.rs crates/sat/src/gen.rs crates/sat/src/transform.rs

crates/sat/src/lib.rs:
crates/sat/src/brute.rs:
crates/sat/src/cnf.rs:
crates/sat/src/dimacs.rs:
crates/sat/src/dpll.rs:
crates/sat/src/gen.rs:
crates/sat/src/transform.rs:
