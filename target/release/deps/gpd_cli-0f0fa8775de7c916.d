/root/repo/target/release/deps/gpd_cli-0f0fa8775de7c916.d: crates/cli/src/lib.rs crates/cli/src/commands.rs crates/cli/src/predicate.rs

/root/repo/target/release/deps/libgpd_cli-0f0fa8775de7c916.rlib: crates/cli/src/lib.rs crates/cli/src/commands.rs crates/cli/src/predicate.rs

/root/repo/target/release/deps/libgpd_cli-0f0fa8775de7c916.rmeta: crates/cli/src/lib.rs crates/cli/src/commands.rs crates/cli/src/predicate.rs

crates/cli/src/lib.rs:
crates/cli/src/commands.rs:
crates/cli/src/predicate.rs:
