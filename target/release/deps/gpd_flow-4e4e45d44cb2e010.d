/root/repo/target/release/deps/gpd_flow-4e4e45d44cb2e010.d: crates/flow/src/lib.rs crates/flow/src/closure.rs crates/flow/src/dinic.rs

/root/repo/target/release/deps/libgpd_flow-4e4e45d44cb2e010.rlib: crates/flow/src/lib.rs crates/flow/src/closure.rs crates/flow/src/dinic.rs

/root/repo/target/release/deps/libgpd_flow-4e4e45d44cb2e010.rmeta: crates/flow/src/lib.rs crates/flow/src/closure.rs crates/flow/src/dinic.rs

crates/flow/src/lib.rs:
crates/flow/src/closure.rs:
crates/flow/src/dinic.rs:
