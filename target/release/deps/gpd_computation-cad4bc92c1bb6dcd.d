/root/repo/target/release/deps/gpd_computation-cad4bc92c1bb6dcd.d: crates/computation/src/lib.rs crates/computation/src/builder.rs crates/computation/src/computation.rs crates/computation/src/cut.rs crates/computation/src/dot.rs crates/computation/src/event.rs crates/computation/src/fixtures.rs crates/computation/src/gen.rs crates/computation/src/groups.rs crates/computation/src/lattice.rs crates/computation/src/packed.rs crates/computation/src/stats.rs crates/computation/src/trace.rs crates/computation/src/variables.rs crates/computation/src/vclock.rs

/root/repo/target/release/deps/libgpd_computation-cad4bc92c1bb6dcd.rlib: crates/computation/src/lib.rs crates/computation/src/builder.rs crates/computation/src/computation.rs crates/computation/src/cut.rs crates/computation/src/dot.rs crates/computation/src/event.rs crates/computation/src/fixtures.rs crates/computation/src/gen.rs crates/computation/src/groups.rs crates/computation/src/lattice.rs crates/computation/src/packed.rs crates/computation/src/stats.rs crates/computation/src/trace.rs crates/computation/src/variables.rs crates/computation/src/vclock.rs

/root/repo/target/release/deps/libgpd_computation-cad4bc92c1bb6dcd.rmeta: crates/computation/src/lib.rs crates/computation/src/builder.rs crates/computation/src/computation.rs crates/computation/src/cut.rs crates/computation/src/dot.rs crates/computation/src/event.rs crates/computation/src/fixtures.rs crates/computation/src/gen.rs crates/computation/src/groups.rs crates/computation/src/lattice.rs crates/computation/src/packed.rs crates/computation/src/stats.rs crates/computation/src/trace.rs crates/computation/src/variables.rs crates/computation/src/vclock.rs

crates/computation/src/lib.rs:
crates/computation/src/builder.rs:
crates/computation/src/computation.rs:
crates/computation/src/cut.rs:
crates/computation/src/dot.rs:
crates/computation/src/event.rs:
crates/computation/src/fixtures.rs:
crates/computation/src/gen.rs:
crates/computation/src/groups.rs:
crates/computation/src/lattice.rs:
crates/computation/src/packed.rs:
crates/computation/src/stats.rs:
crates/computation/src/trace.rs:
crates/computation/src/variables.rs:
crates/computation/src/vclock.rs:
