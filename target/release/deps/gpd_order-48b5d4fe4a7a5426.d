/root/repo/target/release/deps/gpd_order-48b5d4fe4a7a5426.d: crates/order/src/lib.rs crates/order/src/bitset.rs crates/order/src/chains.rs crates/order/src/dag.rs crates/order/src/ideal.rs crates/order/src/levels.rs crates/order/src/matching.rs

/root/repo/target/release/deps/libgpd_order-48b5d4fe4a7a5426.rlib: crates/order/src/lib.rs crates/order/src/bitset.rs crates/order/src/chains.rs crates/order/src/dag.rs crates/order/src/ideal.rs crates/order/src/levels.rs crates/order/src/matching.rs

/root/repo/target/release/deps/libgpd_order-48b5d4fe4a7a5426.rmeta: crates/order/src/lib.rs crates/order/src/bitset.rs crates/order/src/chains.rs crates/order/src/dag.rs crates/order/src/ideal.rs crates/order/src/levels.rs crates/order/src/matching.rs

crates/order/src/lib.rs:
crates/order/src/bitset.rs:
crates/order/src/chains.rs:
crates/order/src/dag.rs:
crates/order/src/ideal.rs:
crates/order/src/levels.rs:
crates/order/src/matching.rs:
