/root/repo/target/release/deps/gpd-732c98a93f6aea04.d: crates/cli/src/main.rs

/root/repo/target/release/deps/gpd-732c98a93f6aea04: crates/cli/src/main.rs

crates/cli/src/main.rs:
