/root/repo/target/release/deps/report-fd05e0df7338b5e9.d: crates/bench/src/bin/report.rs

/root/repo/target/release/deps/report-fd05e0df7338b5e9: crates/bench/src/bin/report.rs

crates/bench/src/bin/report.rs:
