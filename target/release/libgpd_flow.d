/root/repo/target/release/libgpd_flow.rlib: /root/repo/crates/flow/src/closure.rs /root/repo/crates/flow/src/dinic.rs /root/repo/crates/flow/src/lib.rs
