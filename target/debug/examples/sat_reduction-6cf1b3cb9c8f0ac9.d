/root/repo/target/debug/examples/sat_reduction-6cf1b3cb9c8f0ac9.d: crates/core/../../examples/sat_reduction.rs Cargo.toml

/root/repo/target/debug/examples/libsat_reduction-6cf1b3cb9c8f0ac9.rmeta: crates/core/../../examples/sat_reduction.rs Cargo.toml

crates/core/../../examples/sat_reduction.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
