/root/repo/target/debug/examples/commit_point-3f01f663cee9b0ed.d: crates/core/../../examples/commit_point.rs Cargo.toml

/root/repo/target/debug/examples/libcommit_point-3f01f663cee9b0ed.rmeta: crates/core/../../examples/commit_point.rs Cargo.toml

crates/core/../../examples/commit_point.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
