/root/repo/target/debug/examples/online_monitor-66b82c8e0eef6878.d: crates/core/../../examples/online_monitor.rs

/root/repo/target/debug/examples/online_monitor-66b82c8e0eef6878: crates/core/../../examples/online_monitor.rs

crates/core/../../examples/online_monitor.rs:
