/root/repo/target/debug/examples/sat_reduction-32f873bfa853eacc.d: crates/core/../../examples/sat_reduction.rs

/root/repo/target/debug/examples/sat_reduction-32f873bfa853eacc: crates/core/../../examples/sat_reduction.rs

crates/core/../../examples/sat_reduction.rs:
