/root/repo/target/debug/examples/debug_mutex-3ff11dc0b9946fe9.d: crates/core/../../examples/debug_mutex.rs

/root/repo/target/debug/examples/debug_mutex-3ff11dc0b9946fe9: crates/core/../../examples/debug_mutex.rs

crates/core/../../examples/debug_mutex.rs:
