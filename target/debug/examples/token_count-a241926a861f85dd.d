/root/repo/target/debug/examples/token_count-a241926a861f85dd.d: crates/core/../../examples/token_count.rs

/root/repo/target/debug/examples/token_count-a241926a861f85dd: crates/core/../../examples/token_count.rs

crates/core/../../examples/token_count.rs:
