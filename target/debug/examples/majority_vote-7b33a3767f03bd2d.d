/root/repo/target/debug/examples/majority_vote-7b33a3767f03bd2d.d: crates/core/../../examples/majority_vote.rs Cargo.toml

/root/repo/target/debug/examples/libmajority_vote-7b33a3767f03bd2d.rmeta: crates/core/../../examples/majority_vote.rs Cargo.toml

crates/core/../../examples/majority_vote.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
