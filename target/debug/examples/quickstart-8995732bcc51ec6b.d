/root/repo/target/debug/examples/quickstart-8995732bcc51ec6b.d: crates/core/../../examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-8995732bcc51ec6b: crates/core/../../examples/quickstart.rs

crates/core/../../examples/quickstart.rs:
