/root/repo/target/debug/examples/token_count-37a45dd1e3596a59.d: crates/core/../../examples/token_count.rs Cargo.toml

/root/repo/target/debug/examples/libtoken_count-37a45dd1e3596a59.rmeta: crates/core/../../examples/token_count.rs Cargo.toml

crates/core/../../examples/token_count.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
