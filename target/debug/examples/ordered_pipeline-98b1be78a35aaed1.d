/root/repo/target/debug/examples/ordered_pipeline-98b1be78a35aaed1.d: crates/core/../../examples/ordered_pipeline.rs

/root/repo/target/debug/examples/ordered_pipeline-98b1be78a35aaed1: crates/core/../../examples/ordered_pipeline.rs

crates/core/../../examples/ordered_pipeline.rs:
