/root/repo/target/debug/examples/commit_point-9b7575151466e69d.d: crates/core/../../examples/commit_point.rs

/root/repo/target/debug/examples/commit_point-9b7575151466e69d: crates/core/../../examples/commit_point.rs

crates/core/../../examples/commit_point.rs:
