/root/repo/target/debug/examples/ordered_pipeline-c799a1d05c615c41.d: crates/core/../../examples/ordered_pipeline.rs Cargo.toml

/root/repo/target/debug/examples/libordered_pipeline-c799a1d05c615c41.rmeta: crates/core/../../examples/ordered_pipeline.rs Cargo.toml

crates/core/../../examples/ordered_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
