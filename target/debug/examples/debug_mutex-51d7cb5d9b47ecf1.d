/root/repo/target/debug/examples/debug_mutex-51d7cb5d9b47ecf1.d: crates/core/../../examples/debug_mutex.rs Cargo.toml

/root/repo/target/debug/examples/libdebug_mutex-51d7cb5d9b47ecf1.rmeta: crates/core/../../examples/debug_mutex.rs Cargo.toml

crates/core/../../examples/debug_mutex.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
