/root/repo/target/debug/examples/online_monitor-0991b77298dd34b1.d: crates/core/../../examples/online_monitor.rs Cargo.toml

/root/repo/target/debug/examples/libonline_monitor-0991b77298dd34b1.rmeta: crates/core/../../examples/online_monitor.rs Cargo.toml

crates/core/../../examples/online_monitor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
