/root/repo/target/debug/examples/majority_vote-c37597f7420a5a19.d: crates/core/../../examples/majority_vote.rs

/root/repo/target/debug/examples/majority_vote-c37597f7420a5a19: crates/core/../../examples/majority_vote.rs

crates/core/../../examples/majority_vote.rs:
