/root/repo/target/debug/examples/quickstart-4d5135b3c8d5efd7.d: crates/core/../../examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-4d5135b3c8d5efd7.rmeta: crates/core/../../examples/quickstart.rs Cargo.toml

crates/core/../../examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
