/root/repo/target/debug/deps/reductions-d2153fdd38efc3b8.d: crates/core/../../tests/reductions.rs

/root/repo/target/debug/deps/reductions-d2153fdd38efc3b8: crates/core/../../tests/reductions.rs

crates/core/../../tests/reductions.rs:
