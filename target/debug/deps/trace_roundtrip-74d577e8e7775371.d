/root/repo/target/debug/deps/trace_roundtrip-74d577e8e7775371.d: crates/core/../../tests/trace_roundtrip.rs Cargo.toml

/root/repo/target/debug/deps/libtrace_roundtrip-74d577e8e7775371.rmeta: crates/core/../../tests/trace_roundtrip.rs Cargo.toml

crates/core/../../tests/trace_roundtrip.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
