/root/repo/target/debug/deps/agreement_relational-c469c5490208f220.d: crates/core/../../tests/agreement_relational.rs

/root/repo/target/debug/deps/agreement_relational-c469c5490208f220: crates/core/../../tests/agreement_relational.rs

crates/core/../../tests/agreement_relational.rs:
