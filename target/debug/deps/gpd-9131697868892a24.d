/root/repo/target/debug/deps/gpd-9131697868892a24.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/gpd-9131697868892a24: crates/cli/src/main.rs

crates/cli/src/main.rs:
