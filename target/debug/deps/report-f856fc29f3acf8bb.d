/root/repo/target/debug/deps/report-f856fc29f3acf8bb.d: crates/bench/src/bin/report.rs

/root/repo/target/debug/deps/report-f856fc29f3acf8bb: crates/bench/src/bin/report.rs

crates/bench/src/bin/report.rs:
