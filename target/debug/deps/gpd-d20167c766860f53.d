/root/repo/target/debug/deps/gpd-d20167c766860f53.d: crates/cli/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libgpd-d20167c766860f53.rmeta: crates/cli/src/main.rs Cargo.toml

crates/cli/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
