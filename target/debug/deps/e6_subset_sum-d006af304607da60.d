/root/repo/target/debug/deps/e6_subset_sum-d006af304607da60.d: crates/bench/benches/e6_subset_sum.rs Cargo.toml

/root/repo/target/debug/deps/libe6_subset_sum-d006af304607da60.rmeta: crates/bench/benches/e6_subset_sum.rs Cargo.toml

crates/bench/benches/e6_subset_sum.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
