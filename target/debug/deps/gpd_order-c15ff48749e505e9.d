/root/repo/target/debug/deps/gpd_order-c15ff48749e505e9.d: crates/order/src/lib.rs crates/order/src/bitset.rs crates/order/src/chains.rs crates/order/src/dag.rs crates/order/src/ideal.rs crates/order/src/levels.rs crates/order/src/matching.rs Cargo.toml

/root/repo/target/debug/deps/libgpd_order-c15ff48749e505e9.rmeta: crates/order/src/lib.rs crates/order/src/bitset.rs crates/order/src/chains.rs crates/order/src/dag.rs crates/order/src/ideal.rs crates/order/src/levels.rs crates/order/src/matching.rs Cargo.toml

crates/order/src/lib.rs:
crates/order/src/bitset.rs:
crates/order/src/chains.rs:
crates/order/src/dag.rs:
crates/order/src/ideal.rs:
crates/order/src/levels.rs:
crates/order/src/matching.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
