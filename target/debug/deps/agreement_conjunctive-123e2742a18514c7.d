/root/repo/target/debug/deps/agreement_conjunctive-123e2742a18514c7.d: crates/core/../../tests/agreement_conjunctive.rs Cargo.toml

/root/repo/target/debug/deps/libagreement_conjunctive-123e2742a18514c7.rmeta: crates/core/../../tests/agreement_conjunctive.rs Cargo.toml

crates/core/../../tests/agreement_conjunctive.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
