/root/repo/target/debug/deps/e1_taxonomy-00dfa6dfb323b0f9.d: crates/bench/benches/e1_taxonomy.rs Cargo.toml

/root/repo/target/debug/deps/libe1_taxonomy-00dfa6dfb323b0f9.rmeta: crates/bench/benches/e1_taxonomy.rs Cargo.toml

crates/bench/benches/e1_taxonomy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
