/root/repo/target/debug/deps/gpd_bench-ac98ce47b1f58557.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libgpd_bench-ac98ce47b1f58557.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
