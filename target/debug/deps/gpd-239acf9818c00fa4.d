/root/repo/target/debug/deps/gpd-239acf9818c00fa4.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/gpd-239acf9818c00fa4: crates/cli/src/main.rs

crates/cli/src/main.rs:
