/root/repo/target/debug/deps/gpd_flow-e4cd4fab35f0c256.d: crates/flow/src/lib.rs crates/flow/src/closure.rs crates/flow/src/dinic.rs

/root/repo/target/debug/deps/gpd_flow-e4cd4fab35f0c256: crates/flow/src/lib.rs crates/flow/src/closure.rs crates/flow/src/dinic.rs

crates/flow/src/lib.rs:
crates/flow/src/closure.rs:
crates/flow/src/dinic.rs:
