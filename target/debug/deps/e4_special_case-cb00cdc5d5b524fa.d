/root/repo/target/debug/deps/e4_special_case-cb00cdc5d5b524fa.d: crates/bench/benches/e4_special_case.rs Cargo.toml

/root/repo/target/debug/deps/libe4_special_case-cb00cdc5d5b524fa.rmeta: crates/bench/benches/e4_special_case.rs Cargo.toml

crates/bench/benches/e4_special_case.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
