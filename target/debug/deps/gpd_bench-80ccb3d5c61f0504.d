/root/repo/target/debug/deps/gpd_bench-80ccb3d5c61f0504.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libgpd_bench-80ccb3d5c61f0504.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
