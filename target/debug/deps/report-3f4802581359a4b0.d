/root/repo/target/debug/deps/report-3f4802581359a4b0.d: crates/bench/src/bin/report.rs

/root/repo/target/debug/deps/report-3f4802581359a4b0: crates/bench/src/bin/report.rs

crates/bench/src/bin/report.rs:
