/root/repo/target/debug/deps/reductions-ca23221c453afba1.d: crates/core/../../tests/reductions.rs Cargo.toml

/root/repo/target/debug/deps/libreductions-ca23221c453afba1.rmeta: crates/core/../../tests/reductions.rs Cargo.toml

crates/core/../../tests/reductions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
