/root/repo/target/debug/deps/gpd_flow-b45221a35c8f64e1.d: crates/flow/src/lib.rs crates/flow/src/closure.rs crates/flow/src/dinic.rs Cargo.toml

/root/repo/target/debug/deps/libgpd_flow-b45221a35c8f64e1.rmeta: crates/flow/src/lib.rs crates/flow/src/closure.rs crates/flow/src/dinic.rs Cargo.toml

crates/flow/src/lib.rs:
crates/flow/src/closure.rs:
crates/flow/src/dinic.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
