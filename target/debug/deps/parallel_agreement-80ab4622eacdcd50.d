/root/repo/target/debug/deps/parallel_agreement-80ab4622eacdcd50.d: crates/core/../../tests/parallel_agreement.rs Cargo.toml

/root/repo/target/debug/deps/libparallel_agreement-80ab4622eacdcd50.rmeta: crates/core/../../tests/parallel_agreement.rs Cargo.toml

crates/core/../../tests/parallel_agreement.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
