/root/repo/target/debug/deps/gpd_sat-6a91064b8c2de747.d: crates/sat/src/lib.rs crates/sat/src/brute.rs crates/sat/src/cnf.rs crates/sat/src/dimacs.rs crates/sat/src/dpll.rs crates/sat/src/gen.rs crates/sat/src/transform.rs

/root/repo/target/debug/deps/gpd_sat-6a91064b8c2de747: crates/sat/src/lib.rs crates/sat/src/brute.rs crates/sat/src/cnf.rs crates/sat/src/dimacs.rs crates/sat/src/dpll.rs crates/sat/src/gen.rs crates/sat/src/transform.rs

crates/sat/src/lib.rs:
crates/sat/src/brute.rs:
crates/sat/src/cnf.rs:
crates/sat/src/dimacs.rs:
crates/sat/src/dpll.rs:
crates/sat/src/gen.rs:
crates/sat/src/transform.rs:
