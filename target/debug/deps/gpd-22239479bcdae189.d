/root/repo/target/debug/deps/gpd-22239479bcdae189.d: crates/cli/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libgpd-22239479bcdae189.rmeta: crates/cli/src/main.rs Cargo.toml

crates/cli/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
