/root/repo/target/debug/deps/gpd_bench-59718f449d38bd94.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libgpd_bench-59718f449d38bd94.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libgpd_bench-59718f449d38bd94.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
