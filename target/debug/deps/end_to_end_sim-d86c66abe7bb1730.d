/root/repo/target/debug/deps/end_to_end_sim-d86c66abe7bb1730.d: crates/core/../../tests/end_to_end_sim.rs Cargo.toml

/root/repo/target/debug/deps/libend_to_end_sim-d86c66abe7bb1730.rmeta: crates/core/../../tests/end_to_end_sim.rs Cargo.toml

crates/core/../../tests/end_to_end_sim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
