/root/repo/target/debug/deps/clock_vs_closure-9d5e9c9ac96195a3.d: crates/core/../../tests/clock_vs_closure.rs

/root/repo/target/debug/deps/clock_vs_closure-9d5e9c9ac96195a3: crates/core/../../tests/clock_vs_closure.rs

crates/core/../../tests/clock_vs_closure.rs:
