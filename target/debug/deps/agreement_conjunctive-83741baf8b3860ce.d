/root/repo/target/debug/deps/agreement_conjunctive-83741baf8b3860ce.d: crates/core/../../tests/agreement_conjunctive.rs

/root/repo/target/debug/deps/agreement_conjunctive-83741baf8b3860ce: crates/core/../../tests/agreement_conjunctive.rs

crates/core/../../tests/agreement_conjunctive.rs:
