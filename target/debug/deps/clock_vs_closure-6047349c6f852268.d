/root/repo/target/debug/deps/clock_vs_closure-6047349c6f852268.d: crates/core/../../tests/clock_vs_closure.rs Cargo.toml

/root/repo/target/debug/deps/libclock_vs_closure-6047349c6f852268.rmeta: crates/core/../../tests/clock_vs_closure.rs Cargo.toml

crates/core/../../tests/clock_vs_closure.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
