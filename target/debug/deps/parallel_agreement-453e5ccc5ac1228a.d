/root/repo/target/debug/deps/parallel_agreement-453e5ccc5ac1228a.d: crates/core/../../tests/parallel_agreement.rs

/root/repo/target/debug/deps/parallel_agreement-453e5ccc5ac1228a: crates/core/../../tests/parallel_agreement.rs

crates/core/../../tests/parallel_agreement.rs:
