/root/repo/target/debug/deps/gpd_order-d09c8ead8b222cd2.d: crates/order/src/lib.rs crates/order/src/bitset.rs crates/order/src/chains.rs crates/order/src/dag.rs crates/order/src/ideal.rs crates/order/src/levels.rs crates/order/src/matching.rs

/root/repo/target/debug/deps/libgpd_order-d09c8ead8b222cd2.rlib: crates/order/src/lib.rs crates/order/src/bitset.rs crates/order/src/chains.rs crates/order/src/dag.rs crates/order/src/ideal.rs crates/order/src/levels.rs crates/order/src/matching.rs

/root/repo/target/debug/deps/libgpd_order-d09c8ead8b222cd2.rmeta: crates/order/src/lib.rs crates/order/src/bitset.rs crates/order/src/chains.rs crates/order/src/dag.rs crates/order/src/ideal.rs crates/order/src/levels.rs crates/order/src/matching.rs

crates/order/src/lib.rs:
crates/order/src/bitset.rs:
crates/order/src/chains.rs:
crates/order/src/dag.rs:
crates/order/src/ideal.rs:
crates/order/src/levels.rs:
crates/order/src/matching.rs:
