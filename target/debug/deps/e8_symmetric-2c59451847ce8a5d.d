/root/repo/target/debug/deps/e8_symmetric-2c59451847ce8a5d.d: crates/bench/benches/e8_symmetric.rs Cargo.toml

/root/repo/target/debug/deps/libe8_symmetric-2c59451847ce8a5d.rmeta: crates/bench/benches/e8_symmetric.rs Cargo.toml

crates/bench/benches/e8_symmetric.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
