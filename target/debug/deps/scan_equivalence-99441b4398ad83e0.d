/root/repo/target/debug/deps/scan_equivalence-99441b4398ad83e0.d: crates/core/../../tests/scan_equivalence.rs

/root/repo/target/debug/deps/scan_equivalence-99441b4398ad83e0: crates/core/../../tests/scan_equivalence.rs

crates/core/../../tests/scan_equivalence.rs:
