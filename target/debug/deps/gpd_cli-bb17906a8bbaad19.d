/root/repo/target/debug/deps/gpd_cli-bb17906a8bbaad19.d: crates/cli/src/lib.rs crates/cli/src/commands.rs crates/cli/src/predicate.rs Cargo.toml

/root/repo/target/debug/deps/libgpd_cli-bb17906a8bbaad19.rmeta: crates/cli/src/lib.rs crates/cli/src/commands.rs crates/cli/src/predicate.rs Cargo.toml

crates/cli/src/lib.rs:
crates/cli/src/commands.rs:
crates/cli/src/predicate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
