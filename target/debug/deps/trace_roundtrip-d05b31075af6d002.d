/root/repo/target/debug/deps/trace_roundtrip-d05b31075af6d002.d: crates/core/../../tests/trace_roundtrip.rs

/root/repo/target/debug/deps/trace_roundtrip-d05b31075af6d002: crates/core/../../tests/trace_roundtrip.rs

crates/core/../../tests/trace_roundtrip.rs:
