/root/repo/target/debug/deps/gpd_sat-b485ea8e0ca586a5.d: crates/sat/src/lib.rs crates/sat/src/brute.rs crates/sat/src/cnf.rs crates/sat/src/dimacs.rs crates/sat/src/dpll.rs crates/sat/src/gen.rs crates/sat/src/transform.rs

/root/repo/target/debug/deps/libgpd_sat-b485ea8e0ca586a5.rlib: crates/sat/src/lib.rs crates/sat/src/brute.rs crates/sat/src/cnf.rs crates/sat/src/dimacs.rs crates/sat/src/dpll.rs crates/sat/src/gen.rs crates/sat/src/transform.rs

/root/repo/target/debug/deps/libgpd_sat-b485ea8e0ca586a5.rmeta: crates/sat/src/lib.rs crates/sat/src/brute.rs crates/sat/src/cnf.rs crates/sat/src/dimacs.rs crates/sat/src/dpll.rs crates/sat/src/gen.rs crates/sat/src/transform.rs

crates/sat/src/lib.rs:
crates/sat/src/brute.rs:
crates/sat/src/cnf.rs:
crates/sat/src/dimacs.rs:
crates/sat/src/dpll.rs:
crates/sat/src/gen.rs:
crates/sat/src/transform.rs:
