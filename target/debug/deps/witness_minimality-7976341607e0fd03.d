/root/repo/target/debug/deps/witness_minimality-7976341607e0fd03.d: crates/core/../../tests/witness_minimality.rs

/root/repo/target/debug/deps/witness_minimality-7976341607e0fd03: crates/core/../../tests/witness_minimality.rs

crates/core/../../tests/witness_minimality.rs:
