/root/repo/target/debug/deps/agreement_relational-30996cf123ebb605.d: crates/core/../../tests/agreement_relational.rs Cargo.toml

/root/repo/target/debug/deps/libagreement_relational-30996cf123ebb605.rmeta: crates/core/../../tests/agreement_relational.rs Cargo.toml

crates/core/../../tests/agreement_relational.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
