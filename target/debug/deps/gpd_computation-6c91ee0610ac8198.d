/root/repo/target/debug/deps/gpd_computation-6c91ee0610ac8198.d: crates/computation/src/lib.rs crates/computation/src/builder.rs crates/computation/src/computation.rs crates/computation/src/cut.rs crates/computation/src/dot.rs crates/computation/src/event.rs crates/computation/src/fixtures.rs crates/computation/src/gen.rs crates/computation/src/groups.rs crates/computation/src/lattice.rs crates/computation/src/packed.rs crates/computation/src/stats.rs crates/computation/src/trace.rs crates/computation/src/variables.rs crates/computation/src/vclock.rs

/root/repo/target/debug/deps/libgpd_computation-6c91ee0610ac8198.rlib: crates/computation/src/lib.rs crates/computation/src/builder.rs crates/computation/src/computation.rs crates/computation/src/cut.rs crates/computation/src/dot.rs crates/computation/src/event.rs crates/computation/src/fixtures.rs crates/computation/src/gen.rs crates/computation/src/groups.rs crates/computation/src/lattice.rs crates/computation/src/packed.rs crates/computation/src/stats.rs crates/computation/src/trace.rs crates/computation/src/variables.rs crates/computation/src/vclock.rs

/root/repo/target/debug/deps/libgpd_computation-6c91ee0610ac8198.rmeta: crates/computation/src/lib.rs crates/computation/src/builder.rs crates/computation/src/computation.rs crates/computation/src/cut.rs crates/computation/src/dot.rs crates/computation/src/event.rs crates/computation/src/fixtures.rs crates/computation/src/gen.rs crates/computation/src/groups.rs crates/computation/src/lattice.rs crates/computation/src/packed.rs crates/computation/src/stats.rs crates/computation/src/trace.rs crates/computation/src/variables.rs crates/computation/src/vclock.rs

crates/computation/src/lib.rs:
crates/computation/src/builder.rs:
crates/computation/src/computation.rs:
crates/computation/src/cut.rs:
crates/computation/src/dot.rs:
crates/computation/src/event.rs:
crates/computation/src/fixtures.rs:
crates/computation/src/gen.rs:
crates/computation/src/groups.rs:
crates/computation/src/lattice.rs:
crates/computation/src/packed.rs:
crates/computation/src/stats.rs:
crates/computation/src/trace.rs:
crates/computation/src/variables.rs:
crates/computation/src/vclock.rs:
