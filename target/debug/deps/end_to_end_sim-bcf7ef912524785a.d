/root/repo/target/debug/deps/end_to_end_sim-bcf7ef912524785a.d: crates/core/../../tests/end_to_end_sim.rs

/root/repo/target/debug/deps/end_to_end_sim-bcf7ef912524785a: crates/core/../../tests/end_to_end_sim.rs

crates/core/../../tests/end_to_end_sim.rs:
