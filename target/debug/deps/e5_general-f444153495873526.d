/root/repo/target/debug/deps/e5_general-f444153495873526.d: crates/bench/benches/e5_general.rs Cargo.toml

/root/repo/target/debug/deps/libe5_general-f444153495873526.rmeta: crates/bench/benches/e5_general.rs Cargo.toml

crates/bench/benches/e5_general.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
