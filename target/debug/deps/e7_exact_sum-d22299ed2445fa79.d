/root/repo/target/debug/deps/e7_exact_sum-d22299ed2445fa79.d: crates/bench/benches/e7_exact_sum.rs Cargo.toml

/root/repo/target/debug/deps/libe7_exact_sum-d22299ed2445fa79.rmeta: crates/bench/benches/e7_exact_sum.rs Cargo.toml

crates/bench/benches/e7_exact_sum.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
