/root/repo/target/debug/deps/gpd_flow-cfe6f310067450e6.d: crates/flow/src/lib.rs crates/flow/src/closure.rs crates/flow/src/dinic.rs

/root/repo/target/debug/deps/libgpd_flow-cfe6f310067450e6.rlib: crates/flow/src/lib.rs crates/flow/src/closure.rs crates/flow/src/dinic.rs

/root/repo/target/debug/deps/libgpd_flow-cfe6f310067450e6.rmeta: crates/flow/src/lib.rs crates/flow/src/closure.rs crates/flow/src/dinic.rs

crates/flow/src/lib.rs:
crates/flow/src/closure.rs:
crates/flow/src/dinic.rs:
