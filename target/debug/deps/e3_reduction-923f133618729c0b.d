/root/repo/target/debug/deps/e3_reduction-923f133618729c0b.d: crates/bench/benches/e3_reduction.rs Cargo.toml

/root/repo/target/debug/deps/libe3_reduction-923f133618729c0b.rmeta: crates/bench/benches/e3_reduction.rs Cargo.toml

crates/bench/benches/e3_reduction.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
