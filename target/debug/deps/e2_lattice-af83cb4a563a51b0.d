/root/repo/target/debug/deps/e2_lattice-af83cb4a563a51b0.d: crates/bench/benches/e2_lattice.rs Cargo.toml

/root/repo/target/debug/deps/libe2_lattice-af83cb4a563a51b0.rmeta: crates/bench/benches/e2_lattice.rs Cargo.toml

crates/bench/benches/e2_lattice.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
