/root/repo/target/debug/deps/gpd_sat-876e7b8486f4ee16.d: crates/sat/src/lib.rs crates/sat/src/brute.rs crates/sat/src/cnf.rs crates/sat/src/dimacs.rs crates/sat/src/dpll.rs crates/sat/src/gen.rs crates/sat/src/transform.rs Cargo.toml

/root/repo/target/debug/deps/libgpd_sat-876e7b8486f4ee16.rmeta: crates/sat/src/lib.rs crates/sat/src/brute.rs crates/sat/src/cnf.rs crates/sat/src/dimacs.rs crates/sat/src/dpll.rs crates/sat/src/gen.rs crates/sat/src/transform.rs Cargo.toml

crates/sat/src/lib.rs:
crates/sat/src/brute.rs:
crates/sat/src/cnf.rs:
crates/sat/src/dimacs.rs:
crates/sat/src/dpll.rs:
crates/sat/src/gen.rs:
crates/sat/src/transform.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
