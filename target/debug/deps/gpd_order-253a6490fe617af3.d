/root/repo/target/debug/deps/gpd_order-253a6490fe617af3.d: crates/order/src/lib.rs crates/order/src/bitset.rs crates/order/src/chains.rs crates/order/src/dag.rs crates/order/src/ideal.rs crates/order/src/levels.rs crates/order/src/matching.rs

/root/repo/target/debug/deps/gpd_order-253a6490fe617af3: crates/order/src/lib.rs crates/order/src/bitset.rs crates/order/src/chains.rs crates/order/src/dag.rs crates/order/src/ideal.rs crates/order/src/levels.rs crates/order/src/matching.rs

crates/order/src/lib.rs:
crates/order/src/bitset.rs:
crates/order/src/chains.rs:
crates/order/src/dag.rs:
crates/order/src/ideal.rs:
crates/order/src/levels.rs:
crates/order/src/matching.rs:
