/root/repo/target/debug/deps/gpd_sim-1549400aad8a1f74.d: crates/sim/src/lib.rs crates/sim/src/kernel.rs crates/sim/src/protocols/mod.rs crates/sim/src/protocols/bank.rs crates/sim/src/protocols/election.rs crates/sim/src/protocols/mutex.rs crates/sim/src/protocols/token_ring.rs crates/sim/src/protocols/two_phase_commit.rs crates/sim/src/protocols/voting.rs

/root/repo/target/debug/deps/libgpd_sim-1549400aad8a1f74.rlib: crates/sim/src/lib.rs crates/sim/src/kernel.rs crates/sim/src/protocols/mod.rs crates/sim/src/protocols/bank.rs crates/sim/src/protocols/election.rs crates/sim/src/protocols/mutex.rs crates/sim/src/protocols/token_ring.rs crates/sim/src/protocols/two_phase_commit.rs crates/sim/src/protocols/voting.rs

/root/repo/target/debug/deps/libgpd_sim-1549400aad8a1f74.rmeta: crates/sim/src/lib.rs crates/sim/src/kernel.rs crates/sim/src/protocols/mod.rs crates/sim/src/protocols/bank.rs crates/sim/src/protocols/election.rs crates/sim/src/protocols/mutex.rs crates/sim/src/protocols/token_ring.rs crates/sim/src/protocols/two_phase_commit.rs crates/sim/src/protocols/voting.rs

crates/sim/src/lib.rs:
crates/sim/src/kernel.rs:
crates/sim/src/protocols/mod.rs:
crates/sim/src/protocols/bank.rs:
crates/sim/src/protocols/election.rs:
crates/sim/src/protocols/mutex.rs:
crates/sim/src/protocols/token_ring.rs:
crates/sim/src/protocols/two_phase_commit.rs:
crates/sim/src/protocols/voting.rs:
