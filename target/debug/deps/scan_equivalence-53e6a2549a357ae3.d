/root/repo/target/debug/deps/scan_equivalence-53e6a2549a357ae3.d: crates/core/../../tests/scan_equivalence.rs Cargo.toml

/root/repo/target/debug/deps/libscan_equivalence-53e6a2549a357ae3.rmeta: crates/core/../../tests/scan_equivalence.rs Cargo.toml

crates/core/../../tests/scan_equivalence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
