/root/repo/target/debug/deps/gpd_cli-bf7f65f2730ed96d.d: crates/cli/src/lib.rs crates/cli/src/commands.rs crates/cli/src/predicate.rs

/root/repo/target/debug/deps/libgpd_cli-bf7f65f2730ed96d.rlib: crates/cli/src/lib.rs crates/cli/src/commands.rs crates/cli/src/predicate.rs

/root/repo/target/debug/deps/libgpd_cli-bf7f65f2730ed96d.rmeta: crates/cli/src/lib.rs crates/cli/src/commands.rs crates/cli/src/predicate.rs

crates/cli/src/lib.rs:
crates/cli/src/commands.rs:
crates/cli/src/predicate.rs:
