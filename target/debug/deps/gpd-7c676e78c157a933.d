/root/repo/target/debug/deps/gpd-7c676e78c157a933.d: crates/core/src/lib.rs crates/core/src/conjunctive.rs crates/core/src/conjunctive_definitely.rs crates/core/src/counters.rs crates/core/src/enumerate.rs crates/core/src/hardness/mod.rs crates/core/src/hardness/sat.rs crates/core/src/hardness/subset_sum.rs crates/core/src/linear.rs crates/core/src/online.rs crates/core/src/par.rs crates/core/src/predicate.rs crates/core/src/relational/mod.rs crates/core/src/relational/definitely.rs crates/core/src/relational/exact.rs crates/core/src/relational/optimize.rs crates/core/src/scan.rs crates/core/src/singular/mod.rs crates/core/src/singular/chains.rs crates/core/src/singular/ordered.rs crates/core/src/singular/subsets.rs crates/core/src/stable.rs crates/core/src/symmetric.rs

/root/repo/target/debug/deps/libgpd-7c676e78c157a933.rlib: crates/core/src/lib.rs crates/core/src/conjunctive.rs crates/core/src/conjunctive_definitely.rs crates/core/src/counters.rs crates/core/src/enumerate.rs crates/core/src/hardness/mod.rs crates/core/src/hardness/sat.rs crates/core/src/hardness/subset_sum.rs crates/core/src/linear.rs crates/core/src/online.rs crates/core/src/par.rs crates/core/src/predicate.rs crates/core/src/relational/mod.rs crates/core/src/relational/definitely.rs crates/core/src/relational/exact.rs crates/core/src/relational/optimize.rs crates/core/src/scan.rs crates/core/src/singular/mod.rs crates/core/src/singular/chains.rs crates/core/src/singular/ordered.rs crates/core/src/singular/subsets.rs crates/core/src/stable.rs crates/core/src/symmetric.rs

/root/repo/target/debug/deps/libgpd-7c676e78c157a933.rmeta: crates/core/src/lib.rs crates/core/src/conjunctive.rs crates/core/src/conjunctive_definitely.rs crates/core/src/counters.rs crates/core/src/enumerate.rs crates/core/src/hardness/mod.rs crates/core/src/hardness/sat.rs crates/core/src/hardness/subset_sum.rs crates/core/src/linear.rs crates/core/src/online.rs crates/core/src/par.rs crates/core/src/predicate.rs crates/core/src/relational/mod.rs crates/core/src/relational/definitely.rs crates/core/src/relational/exact.rs crates/core/src/relational/optimize.rs crates/core/src/scan.rs crates/core/src/singular/mod.rs crates/core/src/singular/chains.rs crates/core/src/singular/ordered.rs crates/core/src/singular/subsets.rs crates/core/src/stable.rs crates/core/src/symmetric.rs

crates/core/src/lib.rs:
crates/core/src/conjunctive.rs:
crates/core/src/conjunctive_definitely.rs:
crates/core/src/counters.rs:
crates/core/src/enumerate.rs:
crates/core/src/hardness/mod.rs:
crates/core/src/hardness/sat.rs:
crates/core/src/hardness/subset_sum.rs:
crates/core/src/linear.rs:
crates/core/src/online.rs:
crates/core/src/par.rs:
crates/core/src/predicate.rs:
crates/core/src/relational/mod.rs:
crates/core/src/relational/definitely.rs:
crates/core/src/relational/exact.rs:
crates/core/src/relational/optimize.rs:
crates/core/src/scan.rs:
crates/core/src/singular/mod.rs:
crates/core/src/singular/chains.rs:
crates/core/src/singular/ordered.rs:
crates/core/src/singular/subsets.rs:
crates/core/src/stable.rs:
crates/core/src/symmetric.rs:
