/root/repo/target/debug/deps/gpd_sim-d4e8f86d6f8d6393.d: crates/sim/src/lib.rs crates/sim/src/kernel.rs crates/sim/src/protocols/mod.rs crates/sim/src/protocols/bank.rs crates/sim/src/protocols/election.rs crates/sim/src/protocols/mutex.rs crates/sim/src/protocols/token_ring.rs crates/sim/src/protocols/two_phase_commit.rs crates/sim/src/protocols/voting.rs

/root/repo/target/debug/deps/gpd_sim-d4e8f86d6f8d6393: crates/sim/src/lib.rs crates/sim/src/kernel.rs crates/sim/src/protocols/mod.rs crates/sim/src/protocols/bank.rs crates/sim/src/protocols/election.rs crates/sim/src/protocols/mutex.rs crates/sim/src/protocols/token_ring.rs crates/sim/src/protocols/two_phase_commit.rs crates/sim/src/protocols/voting.rs

crates/sim/src/lib.rs:
crates/sim/src/kernel.rs:
crates/sim/src/protocols/mod.rs:
crates/sim/src/protocols/bank.rs:
crates/sim/src/protocols/election.rs:
crates/sim/src/protocols/mutex.rs:
crates/sim/src/protocols/token_ring.rs:
crates/sim/src/protocols/two_phase_commit.rs:
crates/sim/src/protocols/voting.rs:
