/root/repo/target/debug/deps/agreement_singular-b9088db880d6a611.d: crates/core/../../tests/agreement_singular.rs

/root/repo/target/debug/deps/agreement_singular-b9088db880d6a611: crates/core/../../tests/agreement_singular.rs

crates/core/../../tests/agreement_singular.rs:
