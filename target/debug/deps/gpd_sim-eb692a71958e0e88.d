/root/repo/target/debug/deps/gpd_sim-eb692a71958e0e88.d: crates/sim/src/lib.rs crates/sim/src/kernel.rs crates/sim/src/protocols/mod.rs crates/sim/src/protocols/bank.rs crates/sim/src/protocols/election.rs crates/sim/src/protocols/mutex.rs crates/sim/src/protocols/token_ring.rs crates/sim/src/protocols/two_phase_commit.rs crates/sim/src/protocols/voting.rs Cargo.toml

/root/repo/target/debug/deps/libgpd_sim-eb692a71958e0e88.rmeta: crates/sim/src/lib.rs crates/sim/src/kernel.rs crates/sim/src/protocols/mod.rs crates/sim/src/protocols/bank.rs crates/sim/src/protocols/election.rs crates/sim/src/protocols/mutex.rs crates/sim/src/protocols/token_ring.rs crates/sim/src/protocols/two_phase_commit.rs crates/sim/src/protocols/voting.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/kernel.rs:
crates/sim/src/protocols/mod.rs:
crates/sim/src/protocols/bank.rs:
crates/sim/src/protocols/election.rs:
crates/sim/src/protocols/mutex.rs:
crates/sim/src/protocols/token_ring.rs:
crates/sim/src/protocols/two_phase_commit.rs:
crates/sim/src/protocols/voting.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
