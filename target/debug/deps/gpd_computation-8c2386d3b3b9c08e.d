/root/repo/target/debug/deps/gpd_computation-8c2386d3b3b9c08e.d: crates/computation/src/lib.rs crates/computation/src/builder.rs crates/computation/src/computation.rs crates/computation/src/cut.rs crates/computation/src/dot.rs crates/computation/src/event.rs crates/computation/src/fixtures.rs crates/computation/src/gen.rs crates/computation/src/groups.rs crates/computation/src/lattice.rs crates/computation/src/packed.rs crates/computation/src/stats.rs crates/computation/src/trace.rs crates/computation/src/variables.rs crates/computation/src/vclock.rs

/root/repo/target/debug/deps/gpd_computation-8c2386d3b3b9c08e: crates/computation/src/lib.rs crates/computation/src/builder.rs crates/computation/src/computation.rs crates/computation/src/cut.rs crates/computation/src/dot.rs crates/computation/src/event.rs crates/computation/src/fixtures.rs crates/computation/src/gen.rs crates/computation/src/groups.rs crates/computation/src/lattice.rs crates/computation/src/packed.rs crates/computation/src/stats.rs crates/computation/src/trace.rs crates/computation/src/variables.rs crates/computation/src/vclock.rs

crates/computation/src/lib.rs:
crates/computation/src/builder.rs:
crates/computation/src/computation.rs:
crates/computation/src/cut.rs:
crates/computation/src/dot.rs:
crates/computation/src/event.rs:
crates/computation/src/fixtures.rs:
crates/computation/src/gen.rs:
crates/computation/src/groups.rs:
crates/computation/src/lattice.rs:
crates/computation/src/packed.rs:
crates/computation/src/stats.rs:
crates/computation/src/trace.rs:
crates/computation/src/variables.rs:
crates/computation/src/vclock.rs:
