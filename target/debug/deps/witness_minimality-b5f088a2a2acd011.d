/root/repo/target/debug/deps/witness_minimality-b5f088a2a2acd011.d: crates/core/../../tests/witness_minimality.rs Cargo.toml

/root/repo/target/debug/deps/libwitness_minimality-b5f088a2a2acd011.rmeta: crates/core/../../tests/witness_minimality.rs Cargo.toml

crates/core/../../tests/witness_minimality.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
