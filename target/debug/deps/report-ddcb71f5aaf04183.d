/root/repo/target/debug/deps/report-ddcb71f5aaf04183.d: crates/bench/src/bin/report.rs Cargo.toml

/root/repo/target/debug/deps/libreport-ddcb71f5aaf04183.rmeta: crates/bench/src/bin/report.rs Cargo.toml

crates/bench/src/bin/report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
