/root/repo/target/debug/deps/gpd_order-02241c591375353d.d: crates/order/src/lib.rs crates/order/src/bitset.rs crates/order/src/chains.rs crates/order/src/dag.rs crates/order/src/ideal.rs crates/order/src/levels.rs crates/order/src/matching.rs Cargo.toml

/root/repo/target/debug/deps/libgpd_order-02241c591375353d.rmeta: crates/order/src/lib.rs crates/order/src/bitset.rs crates/order/src/chains.rs crates/order/src/dag.rs crates/order/src/ideal.rs crates/order/src/levels.rs crates/order/src/matching.rs Cargo.toml

crates/order/src/lib.rs:
crates/order/src/bitset.rs:
crates/order/src/chains.rs:
crates/order/src/dag.rs:
crates/order/src/ideal.rs:
crates/order/src/levels.rs:
crates/order/src/matching.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
