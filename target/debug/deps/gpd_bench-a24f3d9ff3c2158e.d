/root/repo/target/debug/deps/gpd_bench-a24f3d9ff3c2158e.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/gpd_bench-a24f3d9ff3c2158e: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
