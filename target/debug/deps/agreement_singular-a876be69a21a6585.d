/root/repo/target/debug/deps/agreement_singular-a876be69a21a6585.d: crates/core/../../tests/agreement_singular.rs Cargo.toml

/root/repo/target/debug/deps/libagreement_singular-a876be69a21a6585.rmeta: crates/core/../../tests/agreement_singular.rs Cargo.toml

crates/core/../../tests/agreement_singular.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
