/root/repo/target/debug/deps/gpd_cli-6b3fcb29fbc93420.d: crates/cli/src/lib.rs crates/cli/src/commands.rs crates/cli/src/predicate.rs

/root/repo/target/debug/deps/gpd_cli-6b3fcb29fbc93420: crates/cli/src/lib.rs crates/cli/src/commands.rs crates/cli/src/predicate.rs

crates/cli/src/lib.rs:
crates/cli/src/commands.rs:
crates/cli/src/predicate.rs:
