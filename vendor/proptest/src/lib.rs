//! Offline stand-in for the `proptest` crate.
//!
//! Covers exactly the surface the workspace's property tests use: the
//! `proptest!` macro with an optional `#![proptest_config(...)]` header,
//! `ProptestConfig::with_cases`, range and `any::<T>()` strategies,
//! `proptest::collection::vec`, and the `prop_assert!`/`prop_assert_eq!`
//! family.
//!
//! Differences from the real crate: no shrinking (a failing case reports
//! its case index and generated inputs instead of a minimized one) and
//! generation is a simple seeded RNG walk. Property tests here are
//! agreement tests against oracles, so reproducibility — which the
//! deterministic per-(test, case) seeding provides — is what matters.

pub mod test_runner {
    /// Runner configuration; only `cases` is consulted.
    #[derive(Debug, Clone)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// A failed property; `prop_assert!` returns this through `Err`.
    #[derive(Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    pub type TestRng = rand::rngs::StdRng;

    /// Deterministic per-(test, case) generator so failures reproduce.
    pub fn rng_for(test_name: &str, case: u32) -> TestRng {
        use rand::SeedableRng;
        // FNV-1a over the test name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng::seed_from_u64(h ^ ((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A value generator. The real crate separates strategies from value
    /// trees to support shrinking; the shim collapses both into one
    /// `generate` call.
    pub trait Strategy {
        type Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! range_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rand::Rng::gen_range(rng, self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rand::Rng::gen_range(rng, self.clone())
                }
            }
        )*};
    }

    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            rand::Rng::gen_range(rng, self.clone())
        }
    }

    impl Strategy for core::ops::Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            rand::Rng::gen_range(rng, self.clone())
        }
    }

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);

    /// Strategy produced by [`crate::any`].
    pub struct Any<T>(core::marker::PhantomData<T>);

    impl<T> Any<T> {
        pub(crate) fn new() -> Self {
            Any(core::marker::PhantomData)
        }
    }

    impl<T: crate::arbitrary::Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod arbitrary {
    use crate::test_runner::TestRng;
    use rand::RngCore;

    /// Types with a canonical unconstrained generator.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! int_arbitrary {
        ($($t:ty),* $(,)?) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// `any::<T>()` — the unconstrained strategy for `T`.
pub fn any<T: arbitrary::Arbitrary>() -> strategy::Any<T> {
    strategy::Any::new()
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    pub struct VecStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    /// `vec(element, len_range)` — a `Vec` whose length is drawn from
    /// `len_range` and whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rand::Rng::gen_range(rng, self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?} == {:?}` ({} == {})",
            l, r, stringify!($left), stringify!($right)
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{:?} != {:?}` ({} != {})",
            l,
            r,
            stringify!($left),
            stringify!($right)
        );
    }};
}

/// The `proptest!` macro: runs each embedded `#[test]` function
/// `config.cases` times with freshly generated inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_tests!($config; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!($crate::test_runner::Config::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ($config:expr; $(
        $(#[$meta:meta])+
        fn $name:ident($($arg:pat_param in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])+
        fn $name() {
            let config: $crate::test_runner::Config = $config;
            for case in 0..config.cases {
                let mut rng = $crate::test_runner::rng_for(stringify!($name), case);
                let mut inputs = String::new();
                $(
                    let value = $crate::strategy::Strategy::generate(&($strat), &mut rng);
                    inputs.push_str(&format!(
                        "\n  {} = {:?}", stringify!($arg), value
                    ));
                    let $arg = value;
                )*
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                if let ::core::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest {}: case {}/{} failed: {}\ninputs:{}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        e,
                        inputs,
                    );
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(
            a in 3usize..9,
            b in -2i64..=2,
            f in 0.25f64..0.75,
        ) {
            prop_assert!((3..9).contains(&a));
            prop_assert!((-2..=2).contains(&b));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn vec_strategy_respects_length(
            xs in crate::collection::vec(1i64..15, 1..9),
        ) {
            prop_assert!(!xs.is_empty() && xs.len() < 9);
            prop_assert!(xs.iter().all(|&x| (1..15).contains(&x)));
        }

        #[test]
        fn any_is_deterministic_per_case(seed in any::<u64>()) {
            // Re-deriving this case's RNG must reproduce the input.
            let _ = seed;
            prop_assert_eq!(1 + 1, 2);
        }
    }

    // Declared with a non-test attribute so it only runs when driven by
    // `failures_report_inputs` below (a `#[test]` inside a fn body would
    // be an unnameable test item).
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(4))]
        #[allow(dead_code)]
        fn always_fails(x in 0usize..10) {
            prop_assert!(x > 100, "x was {x}");
        }
    }

    #[test]
    fn failures_report_inputs() {
        let result = std::panic::catch_unwind(always_fails);
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("always_fails"), "{msg}");
        assert!(msg.contains("inputs:"), "{msg}");
    }
}
