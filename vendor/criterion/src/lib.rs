//! Offline stand-in for the `criterion` crate.
//!
//! Supports the benchmark surface this workspace uses: `Criterion`,
//! `benchmark_group`/`bench_function`/`bench_with_input`/`sample_size`,
//! `BenchmarkId`, `Bencher::iter`, and the `criterion_group!`/
//! `criterion_main!` macros. Instead of criterion's statistical engine it
//! runs a warmup pass plus a bounded measurement loop and prints the mean
//! wall-clock time per iteration, which is enough for the experiment
//! harness to produce comparable numbers offline.
//!
//! Passing `--test` (as `cargo test --benches` does) runs every benchmark
//! body exactly once, as a smoke test.

use std::time::{Duration, Instant};

/// Per-`iter` measurement budget in normal mode.
const MEASURE_BUDGET: Duration = Duration::from_millis(200);
const MAX_SAMPLES: u64 = 1000;

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// A benchmark identifier: function name plus a parameter value.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(name: impl std::fmt::Display, param: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{param}"),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Drives one benchmark body.
pub struct Bencher {
    test_mode: bool,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.test_mode {
            black_box(f());
            println!("  (test mode: 1 iteration)");
            return;
        }
        // Warmup.
        black_box(f());
        let start = Instant::now();
        let mut samples = 0u64;
        while samples < MAX_SAMPLES && start.elapsed() < MEASURE_BUDGET {
            black_box(f());
            samples += 1;
        }
        let mean = start.elapsed() / samples.max(1) as u32;
        println!("  time: {mean:>12.3?}  ({samples} samples)");
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim's sampling is
    /// budget-driven, so the count is ignored.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        println!("{}/{id}", self.name);
        f(&mut Bencher {
            test_mode: self.criterion.test_mode,
        });
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        println!("{}/{id}", self.name);
        f(
            &mut Bencher {
                test_mode: self.criterion.test_mode,
            },
            input,
        );
        self
    }

    pub fn finish(self) {}
}

/// The benchmark harness entry point.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            test_mode: std::env::args().any(|a| a == "--test"),
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        println!("{id}");
        f(&mut Bencher {
            test_mode: self.test_mode,
        });
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(10);
        group.bench_function("add", |b| b.iter(|| black_box(1 + 1)));
        group.bench_with_input(BenchmarkId::new("mul", 3), &3u64, |b, &x| {
            b.iter(|| black_box(x * x))
        });
        group.finish();
    }

    #[test]
    fn group_and_bencher_run() {
        let mut c = Criterion { test_mode: true };
        sample_bench(&mut c);
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn generated_group_fn_exists() {
        // criterion_group! expands to a callable that owns a Criterion;
        // run it in whatever mode the test args imply.
        benches();
    }
}
