//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the minimal slice of `rand`'s 0.8 API it actually
//! uses: `StdRng` + `SeedableRng::seed_from_u64`, the `Rng` extension
//! methods `gen_range`/`gen_bool`, and the `SliceRandom` helpers
//! `shuffle`/`choose`/`choose_multiple`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — not the
//! ChaCha12 stream the real `StdRng` uses, so seeded value streams
//! differ from upstream `rand`. Nothing in this workspace depends on the
//! exact stream; all seeded tests are agreement/property tests.

/// Low-level source of randomness.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators; only the `seed_from_u64` entry point is needed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every source.
pub trait Rng: RngCore {
    /// Uniform sample from a `low..high` or `low..=high` range.
    ///
    /// Panics on empty ranges, like the real crate.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli sample: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of [0,1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Maps a raw `u64` onto `[0, 1)` with 53 bits of precision.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types with a uniform sampler; mirrors the real crate's shape so that
/// type inference flows from the use site into range literals
/// (`v += rng.gen_range(-1..=1)` must infer `i64` from `v`, not fall
/// back to `i32`).
pub trait SampleUniform: Sized {
    /// Uniform sample from `[lo, hi)`, or `[lo, hi]` when `inclusive`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

macro_rules! int_sample_uniform {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: $t,
                hi: $t,
                inclusive: bool,
            ) -> $t {
                if inclusive {
                    assert!(lo <= hi, "cannot sample empty range");
                    let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add((rng.next_u64() % (span + 1)) as $t)
                } else {
                    assert!(lo < hi, "cannot sample empty range");
                    let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                    lo.wrapping_add((rng.next_u64() % span) as $t)
                }
            }
        }
    )*};
}

int_sample_uniform! {
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize,
}

macro_rules! float_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: $t,
                hi: $t,
                inclusive: bool,
            ) -> $t {
                assert!(if inclusive { lo <= hi } else { lo < hi },
                    "cannot sample empty range");
                lo + (unit_f64(rng.next_u64()) as $t) * (hi - lo)
            }
        }
    )*};
}

float_sample_uniform!(f32, f64);

/// Ranges that can produce a uniform sample.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, *self.start(), *self.end(), true)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — splits the difference between statistical quality
    /// and having zero dependencies. Stream differs from upstream
    /// `StdRng` (ChaCha12); see the crate docs.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::Rng;

    /// Slice sampling helpers.
    pub trait SliceRandom {
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// One uniformly chosen element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// `amount` distinct elements in random order (all of them when
        /// `amount` exceeds the length).
        fn choose_multiple<R: Rng + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }

        fn choose_multiple<R: Rng + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&T> {
            let mut indices: Vec<usize> = (0..self.len()).collect();
            indices.shuffle(rng);
            indices.truncate(amount.min(self.len()));
            indices
                .into_iter()
                .map(|i| &self[i])
                .collect::<Vec<_>>()
                .into_iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..10);
            assert!((3..10).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<usize> = (0..20).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn choose_multiple_yields_distinct() {
        let mut rng = StdRng::seed_from_u64(3);
        let v: Vec<usize> = (0..10).collect();
        let picked: Vec<usize> = v.choose_multiple(&mut rng, 4).copied().collect();
        assert_eq!(picked.len(), 4);
        let mut dedup = picked.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 4);
    }
}
