//! The write-ahead event log.
//!
//! Every observation the server accepts is framed, checksummed, and
//! appended to a segment file *before* it is applied to the in-memory
//! [`ConjunctiveMonitor`](gpd::online::ConjunctiveMonitor) and acked to
//! the client. Recovery after a crash — `kill -9` at any byte offset —
//! re-reads the segments, truncates the torn tail (a frame whose length
//! header, payload, or CRC-32 did not make it to disk intact), and
//! replays the surviving records into a fresh monitor. Because the
//! monitor's verdict and witness are order-insensitive under per-process
//! FIFO redelivery (see `docs/ALGORITHMS.md` §11), the recovered service
//! is byte-for-byte indistinguishable from one that never crashed once
//! clients re-deliver the unacked suffix.
//!
//! ## On-disk format
//!
//! A log is a directory of segment files `00000000.wal`, `00000001.wal`,
//! … each at most `segment_bytes` long. A segment is a sequence of
//! frames:
//!
//! ```text
//! +----------------+----------------+------------------+
//! | len: u32 LE    | crc: u32 LE    | payload: len B   |
//! +----------------+----------------+------------------+
//! ```
//!
//! `crc` is the CRC-32 (IEEE) of the payload. The payload's first byte
//! is the record kind: `1` = `Init` (`u32` process count, then that many
//! `0`/`1` bytes for the initially-true variables), `2` = `Event`
//! (`u32` process, `u32` clock length, then the clock components), `3` =
//! `Snapshot` (`u32` process count `n`, `n` initial bytes, `n` `u64`
//! high-water marks with `0` = none and `k+1` = `k`, then per process a
//! `u32` queue length followed by that many `n × u32` clocks, then a
//! witness flag byte followed — when `1` — by `n` clocks). A `Snapshot`
//! *resets* replay to the recorded state; [`Wal::compact`] uses it to
//! shrink recovery from O(event history) to O(live monitor state).
//!
//! ## Durability discipline
//!
//! All I/O goes through a [`Vfs`] so the torture tests can run the log
//! on a fault-injecting in-memory disk. Three rules, each torn from a
//! real-world failure class (see `docs/ALGORITHMS.md` §16):
//!
//! 1. **Directory sync.** Creating, deleting, or truncating a segment
//!    is durable only once the *directory* is fsynced; [`Wal::open`],
//!    rotation, and compaction all sync the directory before trusting
//!    the new layout.
//! 2. **Fsync failure poisons.** A failed fsync may have dropped the
//!    dirty pages; retrying and trusting the second `Ok` silently
//!    loses acked data (fsyncgate). The log goes permanently out of
//!    service instead — see [`Wal::poisoned`].
//! 3. **Write errors roll back.** ENOSPC or EIO mid-frame truncates
//!    the partial frame away; the log stays usable and old segments
//!    stay intact, so the host can reject the one event and continue.

use std::fs::{self, File, OpenOptions};
use std::io::Read;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::crc32::crc32;
use crate::vfs::{RealVfs, Vfs, VfsFile};

/// When appended records reach the disk platter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fsync` before every append returns — an acked event is durable.
    /// The default, and the mode under which the crash-determinism
    /// guarantee holds unconditionally.
    Always,
    /// `fsync` at most once per interval (opportunistically, on the next
    /// append past the deadline) and at shutdown. Faster, but a crash
    /// may lose up to an interval of *acked* events; clients replaying
    /// their unacked suffix cannot fill that gap. Use when the feed can
    /// be replayed from its own durable source.
    Interval(Duration),
    /// Group commit: `append` never syncs; the host calls
    /// [`Wal::sync`] once per batch, after appending every record in
    /// the batch and *before* releasing any of the batch's acks. Many
    /// sessions' log-before-ack writes then share one fsync, and the
    /// acked-is-durable guarantee of [`Always`](Self::Always) still
    /// holds — durability is delayed only until the batch boundary,
    /// never past an ack.
    Group,
}

/// Where and how the log is written.
#[derive(Debug, Clone)]
pub struct WalConfig {
    /// The segment directory (created if missing).
    pub dir: PathBuf,
    /// Rotate to a new segment once the current one reaches this size.
    pub segment_bytes: u64,
    /// Durability policy.
    pub fsync: FsyncPolicy,
    /// The storage the log runs on — the real filesystem by default,
    /// or a [`FaultVfs`](crate::vfs::FaultVfs) under torture tests.
    pub vfs: Arc<dyn Vfs>,
}

impl WalConfig {
    /// Defaults: 1 MiB segments, [`FsyncPolicy::Always`], the real
    /// filesystem.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        WalConfig {
            dir: dir.into(),
            segment_bytes: 1 << 20,
            fsync: FsyncPolicy::Always,
            vfs: Arc::new(RealVfs),
        }
    }

    /// Runs the log on `vfs` instead of the real filesystem.
    pub fn with_vfs(mut self, vfs: Arc<dyn Vfs>) -> Self {
        self.vfs = vfs;
        self
    }

    /// Sets the segment rotation threshold.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` cannot hold even one frame header.
    pub fn with_segment_bytes(mut self, bytes: u64) -> Self {
        assert!(bytes >= FRAME_HEADER as u64, "segment size too small");
        self.segment_bytes = bytes;
        self
    }

    /// Sets the fsync policy.
    pub fn with_fsync(mut self, fsync: FsyncPolicy) -> Self {
        self.fsync = fsync;
        self
    }
}

/// One durable record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// The session header: which processes are monitored and which
    /// variables start true. Always the first record of a log.
    Init {
        /// Per process: whether its variable is true initially.
        initial: Vec<bool>,
    },
    /// One accepted observation: process `process` entered a true state
    /// stamped `clock`.
    Event {
        /// The reporting process.
        process: u32,
        /// The state's vector clock.
        clock: Vec<u32>,
    },
    /// A monitor snapshot: the complete live state of the monitor at
    /// the moment it was taken. Replay semantics: a `Snapshot` record
    /// **resets** the monitor to exactly this state, discarding
    /// whatever earlier records rebuilt — so a compacted log (one
    /// snapshot followed by the events since) and a full-history log
    /// recover byte-identical monitors.
    Snapshot {
        /// Per process: whether its variable is true initially (the
        /// `Init` information, folded in so a compacted log is
        /// self-contained).
        initial: Vec<bool>,
        /// Per process: the high-water mark (`None` before the first
        /// accepted observation).
        latest: Vec<Option<u32>>,
        /// Per process: the pending true-state clocks, oldest first.
        /// Every clock has one component per process.
        queues: Vec<Vec<Vec<u32>>>,
        /// The witness, if detection already succeeded.
        witness: Option<Vec<Vec<u32>>>,
    },
}

const KIND_INIT: u8 = 1;
const KIND_EVENT: u8 = 2;
const KIND_SNAPSHOT: u8 = 3;

/// Frame header bytes (`len` + `crc`).
pub const FRAME_HEADER: usize = 8;

/// Upper bound on a payload — far above any real record (a clock over
/// `MAX_TRACE_PROCESSES` fits), so a torn length header cannot make
/// recovery attempt a huge read.
pub const MAX_PAYLOAD: u32 = 1 << 23;

impl WalRecord {
    fn encode(&self) -> Vec<u8> {
        match self {
            WalRecord::Init { initial } => {
                let mut out = Vec::with_capacity(5 + initial.len());
                out.push(KIND_INIT);
                out.extend_from_slice(&(initial.len() as u32).to_le_bytes());
                out.extend(initial.iter().map(|&b| b as u8));
                out
            }
            WalRecord::Event { process, clock } => {
                let mut out = Vec::with_capacity(9 + 4 * clock.len());
                out.push(KIND_EVENT);
                out.extend_from_slice(&process.to_le_bytes());
                out.extend_from_slice(&(clock.len() as u32).to_le_bytes());
                for &c in clock {
                    out.extend_from_slice(&c.to_le_bytes());
                }
                out
            }
            WalRecord::Snapshot {
                initial,
                latest,
                queues,
                witness,
            } => {
                let n = initial.len();
                let mut out = Vec::new();
                out.push(KIND_SNAPSHOT);
                out.extend_from_slice(&(n as u32).to_le_bytes());
                out.extend(initial.iter().map(|&b| b as u8));
                for &hw in latest {
                    // 0 = None, k+1 = Some(k) — same convention as the
                    // protocol's HelloAck high-water field.
                    let enc: u64 = hw.map_or(0, |k| u64::from(k) + 1);
                    out.extend_from_slice(&enc.to_le_bytes());
                }
                for queue in queues {
                    out.extend_from_slice(&(queue.len() as u32).to_le_bytes());
                    for clock in queue {
                        for &c in clock {
                            out.extend_from_slice(&c.to_le_bytes());
                        }
                    }
                }
                match witness {
                    None => out.push(0),
                    Some(w) => {
                        out.push(1);
                        for clock in w {
                            for &c in clock {
                                out.extend_from_slice(&c.to_le_bytes());
                            }
                        }
                    }
                }
                out
            }
        }
    }

    fn decode(payload: &[u8]) -> Option<WalRecord> {
        let (&kind, rest) = payload.split_first()?;
        match kind {
            KIND_INIT => {
                let (len, rest) = take_u32(rest)?;
                if rest.len() != len as usize {
                    return None;
                }
                let initial = rest
                    .iter()
                    .map(|&b| match b {
                        0 => Some(false),
                        1 => Some(true),
                        _ => None,
                    })
                    .collect::<Option<Vec<bool>>>()?;
                Some(WalRecord::Init { initial })
            }
            KIND_EVENT => {
                let (process, rest) = take_u32(rest)?;
                let (len, rest) = take_u32(rest)?;
                if rest.len() != 4 * len as usize {
                    return None;
                }
                // Fallible like the CRC check: a malformed chunk reads
                // as a corrupt frame, never a panic on the shard thread.
                let clock = rest
                    .chunks_exact(4)
                    .map(|c| Some(u32::from_le_bytes(c.try_into().ok()?)))
                    .collect::<Option<Vec<u32>>>()?;
                Some(WalRecord::Event { process, clock })
            }
            KIND_SNAPSHOT => {
                let (n, mut rest) = take_u32(rest)?;
                let n = n as usize;
                if rest.len() < n {
                    return None;
                }
                let (flags, tail) = rest.split_at(n);
                let initial = flags
                    .iter()
                    .map(|&b| match b {
                        0 => Some(false),
                        1 => Some(true),
                        _ => None,
                    })
                    .collect::<Option<Vec<bool>>>()?;
                rest = tail;
                let mut latest = Vec::with_capacity(n);
                for _ in 0..n {
                    let (head, tail) = rest.split_first_chunk::<8>()?;
                    let enc = u64::from_le_bytes(*head);
                    latest.push(match enc {
                        0 => None,
                        k => Some(u32::try_from(k - 1).ok()?),
                    });
                    rest = tail;
                }
                let take_clock = |rest: &mut &[u8]| -> Option<Vec<u32>> {
                    if rest.len() < 4 * n {
                        return None;
                    }
                    let (raw, tail) = rest.split_at(4 * n);
                    *rest = tail;
                    raw.chunks_exact(4)
                        .map(|c| Some(u32::from_le_bytes(c.try_into().ok()?)))
                        .collect::<Option<Vec<u32>>>()
                };
                let mut queues = Vec::with_capacity(n);
                for _ in 0..n {
                    let (qlen, tail) = take_u32(rest)?;
                    rest = tail;
                    // A corrupt count cannot out-allocate the payload.
                    if (qlen as usize).checked_mul(4 * n)? > rest.len() {
                        return None;
                    }
                    let mut queue = Vec::with_capacity(qlen as usize);
                    for _ in 0..qlen {
                        queue.push(take_clock(&mut rest)?);
                    }
                    queues.push(queue);
                }
                let (&flag, mut rest) = rest.split_first()?;
                let witness = match flag {
                    0 => None,
                    1 => {
                        let mut w = Vec::with_capacity(n);
                        for _ in 0..n {
                            w.push(take_clock(&mut rest)?);
                        }
                        Some(w)
                    }
                    _ => return None,
                };
                if !rest.is_empty() {
                    return None;
                }
                Some(WalRecord::Snapshot {
                    initial,
                    latest,
                    queues,
                    witness,
                })
            }
            _ => None,
        }
    }
}

fn take_u32(bytes: &[u8]) -> Option<(u32, &[u8])> {
    let (head, rest) = bytes.split_first_chunk::<4>()?;
    Some((u32::from_le_bytes(*head), rest))
}

/// What [`Wal::open`] found on disk.
#[derive(Debug, Clone, Default)]
pub struct Recovery {
    /// The surviving records, in append order, ready to replay.
    pub records: Vec<WalRecord>,
    /// Bytes discarded as a torn tail (0 for a clean shutdown).
    pub truncated_bytes: u64,
    /// Whole segments discarded because they followed the torn one
    /// (only possible when the log was tampered with mid-stream; a
    /// crash tears the final segment only).
    pub dropped_segments: u64,
}

/// What [`Wal::scrub`] found: a read-only CRC re-verification of every
/// live segment, catching bit rot before a recovery would.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScrubReport {
    /// Segments scanned.
    pub segments: u64,
    /// Intact frames verified.
    pub frames: u64,
    /// Total bytes read.
    pub bytes_scanned: u64,
    /// Segments whose clean prefix fell short of their length —
    /// bit rot (or an unflushed torn tail, impossible on a live log).
    pub corrupt_segments: u64,
    /// Bytes past the first corruption, summed over corrupt segments.
    pub corrupt_bytes: u64,
}

impl ScrubReport {
    /// Whether any segment failed verification.
    pub fn is_clean(&self) -> bool {
        self.corrupt_segments == 0
    }
}

/// An append-only, CRC-framed, rotating write-ahead log with
/// snapshot-based compaction.
///
/// ## Fsync failure is fatal (fsyncgate)
///
/// A failed `fsync` means the kernel may already have dropped the
/// dirty pages while marking them clean — a retry that then "succeeds"
/// has synced nothing. The log therefore never retries: any sync
/// failure (data or directory) permanently **poisons** the `Wal`; all
/// further mutating calls fail with [`poisoned`](Self::poisoned) set,
/// and the host must withhold every un-flushed ack and quarantine the
/// tenant. Plain write errors (ENOSPC, EIO) are *not* poisonous: the
/// partial frame is rolled back and the log stays usable.
#[derive(Debug)]
pub struct Wal {
    config: WalConfig,
    file: Box<dyn VfsFile>,
    seg_index: u64,
    seg_len: u64,
    /// Live (on-disk) segment files, by index. Compaction shrinks this.
    live: Vec<u64>,
    last_sync: Instant,
    dirty: bool,
    /// Bytes across all live segments (recovered + appended).
    total_bytes: u64,
    /// Set forever by the first failed fsync; see the type docs.
    poisoned: Option<String>,
}

fn segment_path(dir: &Path, index: u64) -> PathBuf {
    dir.join(format!("{index:08}.wal"))
}

impl Wal {
    /// Opens (or creates) the log at `config.dir`, recovering whatever
    /// survives on disk: scans the segments in order, stops at the first
    /// torn or corrupt frame, truncates the file there, and removes any
    /// later segments.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the directory or segments
    /// cannot be created/read/truncated.
    pub fn open(config: WalConfig) -> std::io::Result<(Wal, Recovery)> {
        let vfs = Arc::clone(&config.vfs);
        vfs.create_dir_all(&config.dir)?;
        let mut indices: Vec<u64> = vfs
            .list(&config.dir)?
            .into_iter()
            .filter_map(|name| name.strip_suffix(".wal")?.parse().ok())
            .collect();
        indices.sort_unstable();

        let mut recovery = Recovery::default();
        let mut live: Vec<u64> = Vec::new();
        let mut total_bytes = 0u64;
        let mut tail: Option<(u64, u64)> = None; // (segment index, clean length)
        for (pos, &index) in indices.iter().enumerate() {
            let path = segment_path(&config.dir, index);
            let bytes = vfs.read(&path)?;
            let clean = scan_segment(&bytes, &mut recovery.records);
            live.push(index);
            total_bytes += clean;
            tail = Some((index, clean));
            if clean < bytes.len() as u64 {
                // Torn tail: truncate this segment and drop the rest.
                recovery.truncated_bytes += bytes.len() as u64 - clean;
                vfs.set_len(&path, clean)?;
                for &later in &indices[pos + 1..] {
                    let later_path = segment_path(&config.dir, later);
                    recovery.truncated_bytes += vfs.file_len(&later_path)?;
                    recovery.dropped_segments += 1;
                    vfs.remove(&later_path)?;
                }
                break;
            }
        }

        let (seg_index, seg_len) = tail.unwrap_or((0, 0));
        if live.is_empty() {
            live.push(seg_index);
        }
        // Append mode: writes land at the current end — the recovered
        // clean prefix (the torn tail was already cut by `set_len`).
        let file = vfs.open_append(&segment_path(&config.dir, seg_index), false)?;
        // Make the directory state durable before the first append:
        // segment 0's creation and the recovery-time removals above
        // must survive power loss from here on.
        vfs.sync_dir(&config.dir)?;
        Ok((
            Wal {
                config,
                file,
                seg_index,
                seg_len,
                live,
                last_sync: Instant::now(),
                dirty: false,
                total_bytes,
                poisoned: None,
            },
            recovery,
        ))
    }

    /// The reason this log is permanently out of service (a failed
    /// fsync — see the type docs), or `None` while healthy.
    pub fn poisoned(&self) -> Option<&str> {
        self.poisoned.as_deref()
    }

    fn poison(&mut self, reason: String) -> std::io::Error {
        let err = std::io::Error::other(format!("wal poisoned: {reason}"));
        if self.poisoned.is_none() {
            self.poisoned = Some(reason);
        }
        err
    }

    fn guard(&self) -> std::io::Result<()> {
        match &self.poisoned {
            Some(reason) => Err(std::io::Error::other(format!("wal poisoned: {reason}"))),
            None => Ok(()),
        }
    }

    /// Appends one record. Under [`FsyncPolicy::Always`] the record is
    /// durable when this returns; under `Interval` it is buffered and
    /// synced opportunistically.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error; the record must then be treated
    /// as not logged (do not ack it). A plain write error (ENOSPC, EIO)
    /// rolls the partial frame back and leaves the log usable — the
    /// caller may reject the event and carry on. A sync failure, or a
    /// write error whose rollback also failed, poisons the log (see the
    /// type docs); check [`poisoned`](Self::poisoned) to tell them
    /// apart.
    pub fn append(&mut self, record: &WalRecord) -> std::io::Result<()> {
        self.guard()?;
        let bytes = frame(record);
        if bytes.len() - FRAME_HEADER > MAX_PAYLOAD as usize {
            // A frame recovery would refuse to read must never be
            // written (only reachable via an absurdly large snapshot).
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "wal record exceeds MAX_PAYLOAD",
            ));
        }
        let frame_len = bytes.len() as u64;
        if self.seg_len > 0 && self.seg_len + frame_len > self.config.segment_bytes {
            self.rotate()?;
        }
        self.write_frame(&bytes)?;
        self.seg_len += frame_len;
        self.total_bytes += frame_len;
        self.dirty = true;
        match self.config.fsync {
            FsyncPolicy::Always => self.sync()?,
            FsyncPolicy::Interval(every) => {
                if self.last_sync.elapsed() >= every {
                    self.sync()?;
                }
            }
            // The host owns the batch boundary.
            FsyncPolicy::Group => {}
        }
        Ok(())
    }

    /// Writes one whole frame, rolling a partial write back to the
    /// pre-append length so a failed append (ENOSPC mid-frame) leaves
    /// no torn garbage for the *next* append to bury mid-segment.
    fn write_frame(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        let mut written = 0usize;
        while written < bytes.len() {
            match self.file.write(&bytes[written..]) {
                Ok(0) => {
                    return Err(self.rollback_partial(std::io::Error::new(
                        std::io::ErrorKind::WriteZero,
                        "wal write returned zero",
                    )));
                }
                Ok(n) => written += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(self.rollback_partial(e)),
            }
        }
        Ok(())
    }

    fn rollback_partial(&mut self, cause: std::io::Error) -> std::io::Error {
        let path = segment_path(&self.config.dir, self.seg_index);
        let vfs = Arc::clone(&self.config.vfs);
        if let Err(rollback) = vfs.set_len(&path, self.seg_len) {
            // Can't even restore the segment to its pre-append length:
            // the on-disk tail is unknown, so the log is out of service.
            return self.poison(format!(
                "append failed ({cause}) and rollback failed ({rollback})"
            ));
        }
        cause
    }

    /// Flushes buffered appends to disk (no-op when clean).
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error — and **poisons** the log (a
    /// failed fsync can never be retried; see the type docs).
    pub fn sync(&mut self) -> std::io::Result<()> {
        self.guard()?;
        if self.dirty {
            if let Err(e) = self.file.sync_data() {
                return Err(self.poison(format!("fsync failed: {e}")));
            }
            self.dirty = false;
        }
        self.last_sync = Instant::now();
        Ok(())
    }

    fn rotate(&mut self) -> std::io::Result<()> {
        self.sync()?;
        let next = self.seg_index + 1;
        let vfs = Arc::clone(&self.config.vfs);
        // Create first, commit state after: a failed create (ENOSPC)
        // leaves the current segment writable and the next append
        // simply retries the rotation.
        let file = vfs.open_append(&segment_path(&self.config.dir, next), true)?;
        // The new segment's directory entry must be durable before
        // anything written to it is trusted: a file fsync does not
        // persist the entry, and a segment lost to power loss would
        // silently drop its acked events.
        if let Err(e) = vfs.sync_dir(&self.config.dir) {
            return Err(self.poison(format!("directory fsync failed at rotate: {e}")));
        }
        self.file = file;
        self.seg_index = next;
        self.live.push(next);
        self.seg_len = 0;
        Ok(())
    }

    /// Compacts the log down to (almost) O(live state): rotates to a
    /// fresh segment, writes `snapshot` as its first record, fsyncs it
    /// durable — and only then deletes every older segment. Recovery of
    /// the compacted log replays the snapshot plus whatever events were
    /// appended after it, never the full event history.
    ///
    /// Crash-safe at any byte: until the deletions happen the old
    /// segments are still on disk, so a torn or missing snapshot frame
    /// degrades to the ordinary full-history replay (the scanner cuts
    /// the torn frame and, per the mid-stream rule, drops nothing
    /// before it).
    ///
    /// Returns the number of segments deleted.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error. ENOSPC (or any write error)
    /// while the snapshot is being written rolls the fresh segment
    /// back and keeps **every old segment intact** — the log stays
    /// usable on its full history and a retry simply compacts again.
    /// Only a failed fsync poisons the log.
    pub fn compact(&mut self, snapshot: &WalRecord) -> std::io::Result<u64> {
        self.guard()?;
        self.rotate()?;
        self.append(snapshot)?;
        self.sync()?; // durable before anything is deleted
        let old: Vec<u64> = self
            .live
            .iter()
            .copied()
            .filter(|&index| index != self.seg_index)
            .collect();
        let vfs = Arc::clone(&self.config.vfs);
        let mut removed = 0u64;
        for index in old {
            // Book-keep per deletion so an error mid-loop (EIO) leaves
            // `live` matching the disk; recovery of the partially
            // deleted set still works — the snapshot segment sorts
            // last and resets replay regardless of which older
            // segments survive.
            let path = segment_path(&self.config.dir, index);
            let len = vfs.file_len(&path)?;
            vfs.remove(&path)?;
            self.live.retain(|&i| i != index);
            self.total_bytes = self.total_bytes.saturating_sub(len);
            removed += 1;
        }
        // Make the deletions durable. (Not load-bearing for
        // correctness — resurrected old segments replay before the
        // snapshot that resets them — but an fsync failure is still
        // disqualifying.)
        if let Err(e) = vfs.sync_dir(&self.config.dir) {
            return Err(self.poison(format!("directory fsync failed at compact: {e}")));
        }
        Ok(removed)
    }

    /// Re-verifies every live segment's CRCs without touching replay
    /// state — the background scrub that catches bit rot while the
    /// snapshot needed to heal it still exists. Read-only: healing is
    /// the host's move (compact from the live monitor, which rewrites
    /// the log and deletes the corrupt segments; see
    /// `Tenant::scrub_pass`).
    ///
    /// # Errors
    ///
    /// Returns the underlying read error, or the poisoning error if
    /// the log is out of service.
    pub fn scrub(&self) -> std::io::Result<ScrubReport> {
        self.guard()?;
        let vfs = Arc::clone(&self.config.vfs);
        let mut report = ScrubReport::default();
        for &index in &self.live {
            let bytes = vfs.read(&segment_path(&self.config.dir, index))?;
            let mut records = Vec::new();
            let clean = scan_segment(&bytes, &mut records);
            report.segments += 1;
            report.frames += records.len() as u64;
            report.bytes_scanned += bytes.len() as u64;
            if clean < bytes.len() as u64 {
                report.corrupt_segments += 1;
                report.corrupt_bytes += bytes.len() as u64 - clean;
            }
        }
        Ok(report)
    }

    /// The number of live segment files on disk (compaction shrinks
    /// this back down; rotation grows it).
    pub fn segment_count(&self) -> u64 {
        self.live.len() as u64
    }

    /// Total bytes across all live segments — recovered plus appended,
    /// minus what compaction deleted. The per-tenant disk-footprint
    /// gauge the stats report.
    pub fn bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Whether buffered appends are awaiting a [`sync`](Self::sync) —
    /// under [`FsyncPolicy::Group`], the host checks this at its batch
    /// boundary.
    pub fn needs_sync(&self) -> bool {
        self.dirty
    }

    /// The log directory.
    pub fn dir(&self) -> &Path {
        &self.config.dir
    }
}

/// Scans one segment's bytes, pushing intact records and returning the
/// clean prefix length: the offset of the first torn/corrupt frame (or
/// the full length).
fn scan_segment(bytes: &[u8], records: &mut Vec<WalRecord>) -> u64 {
    let mut offset = 0usize;
    loop {
        let rest = &bytes[offset..];
        if rest.is_empty() {
            return offset as u64;
        }
        let Some((len, rest)) = take_u32(rest) else {
            return offset as u64; // torn length header
        };
        let Some((crc, rest)) = take_u32(rest) else {
            return offset as u64; // torn crc
        };
        if len == 0 || len > MAX_PAYLOAD || rest.len() < len as usize {
            return offset as u64; // nonsense length or torn payload
        }
        let payload = &rest[..len as usize];
        if crc32(payload) != crc {
            return offset as u64; // bit rot or torn payload
        }
        let Some(record) = WalRecord::decode(payload) else {
            return offset as u64; // intact frame, unknown content
        };
        records.push(record);
        offset += FRAME_HEADER + len as usize;
    }
}

/// The exact bytes [`Wal::append`] writes for `record` — length
/// prefix, CRC, payload. Exposed so corpus tests and tools can build
/// or verify log images without a `Wal`.
pub fn frame(record: &WalRecord) -> Vec<u8> {
    let payload = record.encode();
    let mut out = Vec::with_capacity(FRAME_HEADER + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Reads the raw concatenated bytes of all segments in order — what a
/// crash-at-offset test truncates.
///
/// # Errors
///
/// Returns the underlying I/O error.
pub fn concatenated_bytes(dir: &Path) -> std::io::Result<Vec<u8>> {
    let mut indices: Vec<u64> = fs::read_dir(dir)?
        .filter_map(|entry| {
            let name = entry.ok()?.file_name();
            let name = name.to_str()?;
            name.strip_suffix(".wal")?.parse().ok()
        })
        .collect();
    indices.sort_unstable();
    let mut out = Vec::new();
    for index in indices {
        let mut f = File::open(segment_path(dir, index))?;
        f.read_to_end(&mut out)?;
    }
    Ok(out)
}

/// Rewrites `dir` to hold exactly the first `keep` bytes of the
/// concatenated log, preserving the segment boundaries the original had
/// — the moral equivalent of `kill -9` after the `keep`-th byte reached
/// disk.
///
/// # Errors
///
/// Returns the underlying I/O error.
pub fn truncate_at(dir: &Path, segment_bytes_hint: &[u64], keep: u64) -> std::io::Result<()> {
    let mut remaining = keep;
    let mut indices: Vec<u64> = fs::read_dir(dir)?
        .filter_map(|entry| {
            let name = entry.ok()?.file_name();
            let name = name.to_str()?;
            name.strip_suffix(".wal")?.parse().ok()
        })
        .collect();
    indices.sort_unstable();
    let _ = segment_bytes_hint;
    for index in indices {
        let path = segment_path(dir, index);
        let len = fs::metadata(&path)?.len();
        if remaining >= len {
            remaining -= len;
            continue;
        }
        if remaining == 0 {
            fs::remove_file(&path)?;
        } else {
            OpenOptions::new()
                .write(true)
                .open(&path)?
                .set_len(remaining)?;
            remaining = 0;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "gpd-wal-{name}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn event(p: u32, clock: &[u32]) -> WalRecord {
        WalRecord::Event {
            process: p,
            clock: clock.to_vec(),
        }
    }

    #[test]
    fn roundtrip_and_clean_recovery() {
        let dir = tmp_dir("roundtrip");
        let records = vec![
            WalRecord::Init {
                initial: vec![true, false],
            },
            event(0, &[1, 0]),
            event(1, &[0, 3]),
        ];
        {
            let (mut wal, rec) = Wal::open(WalConfig::new(&dir)).unwrap();
            assert!(rec.records.is_empty());
            for r in &records {
                wal.append(r).unwrap();
            }
            wal.sync().unwrap();
        }
        let (_, rec) = Wal::open(WalConfig::new(&dir)).unwrap();
        assert_eq!(rec.records, records);
        assert_eq!(rec.truncated_bytes, 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn appends_survive_reopen_and_continue() {
        let dir = tmp_dir("continue");
        {
            let (mut wal, _) = Wal::open(WalConfig::new(&dir)).unwrap();
            wal.append(&event(0, &[1])).unwrap();
        }
        {
            let (mut wal, rec) = Wal::open(WalConfig::new(&dir)).unwrap();
            assert_eq!(rec.records.len(), 1);
            wal.append(&event(0, &[2])).unwrap();
        }
        let (_, rec) = Wal::open(WalConfig::new(&dir)).unwrap();
        assert_eq!(rec.records, vec![event(0, &[1]), event(0, &[2])]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rotation_spreads_records_over_segments() {
        let dir = tmp_dir("rotate");
        let config = WalConfig::new(&dir).with_segment_bytes(64);
        let (mut wal, _) = Wal::open(config.clone()).unwrap();
        for k in 1..=20u32 {
            wal.append(&event(0, &[k, k, k, k])).unwrap();
        }
        assert!(wal.segment_count() > 1, "64-byte segments must rotate");
        drop(wal);
        let (_, rec) = Wal::open(config).unwrap();
        assert_eq!(rec.records.len(), 20);
        assert_eq!(
            rec.records[19],
            event(0, &[20, 20, 20, 20]),
            "order preserved across segments"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn every_truncation_offset_recovers_a_prefix() {
        let dir = tmp_dir("alloffsets");
        let config = WalConfig::new(&dir).with_segment_bytes(96);
        let (mut wal, _) = Wal::open(config.clone()).unwrap();
        let records: Vec<WalRecord> = (1..=12u32).map(|k| event(k % 3, &[k, k, k])).collect();
        for r in &records {
            wal.append(r).unwrap();
        }
        drop(wal);
        let full = concatenated_bytes(&dir).unwrap();
        let backup = full.clone();
        for keep in 0..=full.len() as u64 {
            // Restore the pristine log, then tear it at `keep`.
            let _ = fs::remove_dir_all(&dir);
            fs::create_dir_all(&dir).unwrap();
            let mut written = 0usize;
            let mut index = 0u64;
            while written < backup.len() {
                let chunk = (backup.len() - written).min(96);
                // Re-split exactly as the writer did: segments close at
                // a frame boundary, so replaying the original segment
                // lengths requires scanning; instead write one big
                // segment — recovery semantics are identical.
                let _ = chunk;
                fs::write(segment_path(&dir, index), &backup[written..]).unwrap();
                written = backup.len();
                index += 1;
            }
            truncate_at(&dir, &[], keep).unwrap();
            let (_, rec) = Wal::open(config.clone()).unwrap();
            // The recovered records are a prefix of the originals.
            assert!(rec.records.len() <= records.len());
            assert_eq!(rec.records[..], records[..rec.records.len()], "keep={keep}");
            // And nothing durable before the tear is lost: every frame
            // fully inside the kept prefix survives.
            let mut durable = 0usize;
            let mut off = 0u64;
            for r in &records {
                off += (FRAME_HEADER + r.encode().len()) as u64;
                if off <= keep {
                    durable += 1;
                }
            }
            assert_eq!(rec.records.len(), durable, "keep={keep}");
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bad_crc_is_cut_at_the_corruption_point() {
        let dir = tmp_dir("badcrc");
        let (mut wal, _) = Wal::open(WalConfig::new(&dir)).unwrap();
        wal.append(&event(0, &[1])).unwrap();
        wal.append(&event(0, &[2])).unwrap();
        drop(wal);
        // Flip one payload bit of the second frame.
        let path = segment_path(&dir, 0);
        let mut bytes = fs::read(&path).unwrap();
        let first_frame = FRAME_HEADER + event(0, &[1]).encode().len();
        let len = bytes.len();
        bytes[len - 1] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        let (_, rec) = Wal::open(WalConfig::new(&dir)).unwrap();
        assert_eq!(rec.records, vec![event(0, &[1])]);
        assert_eq!(
            rec.truncated_bytes,
            (bytes.len() - first_frame) as u64,
            "everything from the corrupt frame on is discarded"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mid_log_corruption_drops_later_segments() {
        let dir = tmp_dir("midlog");
        let config = WalConfig::new(&dir).with_segment_bytes(64);
        let (mut wal, _) = Wal::open(config.clone()).unwrap();
        for k in 1..=9u32 {
            wal.append(&event(0, &[k, k])).unwrap();
        }
        assert!(wal.segment_count() >= 3);
        drop(wal);
        // Corrupt the first byte of segment 0's second frame.
        let path = segment_path(&dir, 0);
        let mut bytes = fs::read(&path).unwrap();
        let frame = FRAME_HEADER + event(0, &[1, 1]).encode().len();
        bytes[frame + FRAME_HEADER] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        let (wal, rec) = Wal::open(config).unwrap();
        assert_eq!(rec.records, vec![event(0, &[1, 1])]);
        assert!(rec.dropped_segments >= 2, "{rec:?}");
        assert_eq!(wal.segment_count(), 1, "appends continue in segment 0");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn interval_fsync_defers_but_shutdown_syncs() {
        let dir = tmp_dir("interval");
        let config =
            WalConfig::new(&dir).with_fsync(FsyncPolicy::Interval(Duration::from_secs(3600)));
        let (mut wal, _) = Wal::open(config.clone()).unwrap();
        wal.append(&event(0, &[1])).unwrap();
        // Nothing forced a sync yet; an explicit one must succeed and
        // make the record recoverable.
        wal.sync().unwrap();
        drop(wal);
        let (_, rec) = Wal::open(config).unwrap();
        assert_eq!(rec.records.len(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    fn sample_snapshot() -> WalRecord {
        WalRecord::Snapshot {
            initial: vec![true, false],
            latest: vec![Some(4), None],
            queues: vec![vec![vec![3, 0], vec![4, 1]], vec![]],
            witness: None,
        }
    }

    #[test]
    fn snapshot_record_roundtrips() {
        for snap in [
            sample_snapshot(),
            WalRecord::Snapshot {
                initial: vec![],
                latest: vec![],
                queues: vec![],
                witness: Some(vec![]),
            },
            WalRecord::Snapshot {
                initial: vec![true, true],
                latest: vec![Some(0), Some(2)],
                queues: vec![vec![], vec![]],
                witness: Some(vec![vec![0, 0], vec![0, 2]]),
            },
        ] {
            assert_eq!(WalRecord::decode(&snap.encode()), Some(snap));
        }
    }

    #[test]
    fn snapshot_decode_rejects_trailing_or_short_payloads() {
        let good = sample_snapshot().encode();
        let mut long = good.clone();
        long.push(0);
        assert_eq!(WalRecord::decode(&long), None, "trailing byte");
        for cut in 1..good.len() {
            assert_eq!(WalRecord::decode(&good[..cut]), None, "cut={cut}");
        }
    }

    #[test]
    fn compaction_shrinks_recovery_to_live_state() {
        let dir = tmp_dir("compact");
        let config = WalConfig::new(&dir).with_segment_bytes(64);
        let (mut wal, _) = Wal::open(config.clone()).unwrap();
        for k in 1..=20u32 {
            wal.append(&event(0, &[k, k])).unwrap();
        }
        assert!(wal.segment_count() > 1);
        let bytes_before = wal.bytes();
        let removed = wal.compact(&sample_snapshot()).unwrap();
        assert!(removed > 1, "old segments deleted");
        assert_eq!(wal.segment_count(), 1, "only the snapshot segment lives");
        assert!(wal.bytes() < bytes_before);
        // Post-compaction appends land after the snapshot.
        wal.append(&event(0, &[21, 21])).unwrap();
        drop(wal);
        let (_, rec) = Wal::open(config).unwrap();
        assert_eq!(
            rec.records,
            vec![sample_snapshot(), event(0, &[21, 21])],
            "replay is snapshot + suffix, not 20 events"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn every_truncation_offset_across_a_compaction_recovers() {
        // Build a log whose history crosses a compaction boundary, then
        // verify the scanner yields a meaningful prefix at every tear
        // point of the *surviving* bytes.
        let dir = tmp_dir("compact-tear");
        let config = WalConfig::new(&dir).with_segment_bytes(128);
        let (mut wal, _) = Wal::open(config.clone()).unwrap();
        for k in 1..=6u32 {
            wal.append(&event(0, &[k, k])).unwrap();
        }
        wal.compact(&sample_snapshot()).unwrap();
        wal.append(&event(0, &[5, 5])).unwrap();
        wal.append(&event(0, &[6, 6])).unwrap();
        drop(wal);
        let backup = concatenated_bytes(&dir).unwrap();
        let first_index = 1; // segment 0 was compacted away
        let expect = [sample_snapshot(), event(0, &[5, 5]), event(0, &[6, 6])];
        for keep in 0..=backup.len() as u64 {
            let _ = fs::remove_dir_all(&dir);
            fs::create_dir_all(&dir).unwrap();
            fs::write(segment_path(&dir, first_index), &backup).unwrap();
            truncate_at(&dir, &[], keep).unwrap();
            let (_, rec) = Wal::open(config.clone()).unwrap();
            assert!(rec.records.len() <= expect.len());
            assert_eq!(rec.records[..], expect[..rec.records.len()], "keep={keep}");
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn group_policy_defers_sync_to_the_host() {
        let dir = tmp_dir("group");
        let config = WalConfig::new(&dir).with_fsync(FsyncPolicy::Group);
        let (mut wal, _) = Wal::open(config.clone()).unwrap();
        assert!(!wal.needs_sync());
        wal.append(&event(0, &[1])).unwrap();
        wal.append(&event(0, &[2])).unwrap();
        assert!(wal.needs_sync(), "appends stay buffered");
        wal.sync().unwrap();
        assert!(!wal.needs_sync());
        drop(wal);
        let (_, rec) = Wal::open(config).unwrap();
        assert_eq!(rec.records.len(), 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bytes_tracks_live_footprint() {
        let dir = tmp_dir("bytes");
        let (mut wal, _) = Wal::open(WalConfig::new(&dir)).unwrap();
        assert_eq!(wal.bytes(), 0);
        wal.append(&event(0, &[1])).unwrap();
        let one = wal.bytes();
        assert!(one > 0);
        drop(wal);
        let (wal, _) = Wal::open(WalConfig::new(&dir)).unwrap();
        assert_eq!(wal.bytes(), one, "recovered bytes counted");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unknown_record_kind_reads_as_torn() {
        let dir = tmp_dir("unknownkind");
        fs::create_dir_all(&dir).unwrap();
        let payload = [99u8, 1, 2, 3];
        let mut frame = Vec::new();
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        fs::write(segment_path(&dir, 0), &frame).unwrap();
        let (_, rec) = Wal::open(WalConfig::new(&dir)).unwrap();
        assert!(rec.records.is_empty());
        assert_eq!(rec.truncated_bytes, frame.len() as u64);
        fs::remove_dir_all(&dir).unwrap();
    }
}
