//! Durable online monitoring service for conjunctive predicate
//! detection.
//!
//! This crate turns the streaming [`ConjunctiveMonitor`](gpd::online)
//! into a crash-recoverable network service:
//!
//! - [`wal`] — a CRC-framed write-ahead log in rotating segment files.
//!   Recovery truncates a torn tail and replays the survivors into a
//!   fresh monitor; combined with at-least-once redelivery the verdict
//!   is byte-for-byte the one an uninterrupted run produces.
//! - [`protocol`] — the std-only, length-prefixed TCP wire protocol
//!   with per-process sequence numbers and durable acks.
//! - [`server`] — the sharded, event-driven listener: nonblocking
//!   sweeps over tenant-pinned connections, per-tenant monitors and
//!   WAL namespaces, group-commit fsync batching, snapshot compaction,
//!   log-before-ack, graceful shutdown that drains every WAL.
//! - [`client`] — the feeding client: timeouts, bounded retries,
//!   exponential backoff with deterministic jitter, and
//!   reconnect-with-resume driven by the server's high-water marks.
//! - [`chaos`] — a fault-injecting proxy that applies
//!   [`FaultPlan`](gpd_sim::FaultPlan) semantics (loss, duplication,
//!   jitter, forced resets, asymmetric partitions) to real sockets,
//!   for end-to-end fault drills.
//! - [`slicer`] — the decentralized slicer agent: replays one
//!   process's trace through a [`gpd::abstraction::LocalSlicer`],
//!   forwarding only abstraction-relevant events plus heartbeats, with
//!   epoch-numbered crash/restart resync.
//! - [`liveness`] — server-side slicer liveness: epoch fencing,
//!   clock-free heartbeat deadlines, and the progress bounds behind
//!   the degraded `Unknown` verdict.
//! - [`vfs`] — the storage abstraction under the WAL: the real
//!   filesystem in production, and a deterministic fault-injecting
//!   in-memory disk ([`FaultVfs`](vfs::FaultVfs)) with a precise
//!   power-loss model for the storage torture tests.
//!
//! See `docs/ALGORITHMS.md` §11 for the recovery-determinism argument,
//! §15 for the decentralized abstraction mode, and §16 for the storage
//! fault model.

#![warn(missing_docs)]

mod crc32;

pub mod chaos;
pub mod client;
pub mod liveness;
pub mod protocol;
pub mod server;
pub mod slicer;
pub mod vfs;
pub mod wal;

pub use chaos::{ChaosConfig, ChaosHandle, ChaosReport, PartitionDirection};
pub use client::{ClientConfig, ClientError, FeedClient, FeedReport};
pub use liveness::{SlicerCensus, SlicerRegistry};
pub use protocol::{
    AckStatus, Message, ServerStats, SlicerVerdict, TenantStatsRow, DEFAULT_TENANT,
};
pub use server::{ServerConfig, ServerHandle, ServerSummary};
pub use slicer::{SlicerAgent, SlicerReport};
pub use vfs::{CrashStyle, Fault, FaultVfs, OpKind, RealVfs, Vfs, VfsFile};
pub use wal::{FsyncPolicy, Recovery, ScrubReport, Wal, WalConfig, WalRecord};
