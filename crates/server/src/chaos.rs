//! A fault-injecting TCP proxy: sits between feed clients and the
//! server and applies [`FaultPlan`](gpd_sim::FaultPlan) semantics to
//! real sockets — frame loss, frame duplication, delivery jitter, and
//! forced connection resets.
//!
//! Faults are applied at frame granularity on the client → server
//! direction (dropping half a frame would just desynchronize the
//! stream; the interesting failures are whole lost or repeated
//! messages). The server → client direction is forwarded frame-aware
//! too, so **asymmetric partitions** can silence either direction
//! alone: after [`partition_after`](ChaosConfig::partition_after)
//! frames in the chosen direction, the next
//! [`partition_frames`](ChaosConfig::partition_frames) frames are
//! dropped, then the link heals — the classic "my acks vanish but my
//! sends arrive" (or vice versa) slicer-link failure.
//!
//! Connections are served concurrently (one pump thread each), so a
//! multi-tenant fleet can storm the proxy at once. Each connection's
//! fault rolls come from its own [`StdRng`] seeded `seed + connection
//! index`, so any single connection's fault schedule is reproducible
//! regardless of how connections interleave.
//!
//! Forced resets are schedulable and repeatable: the first fires after
//! [`reset_after`](ChaosConfig::reset_after) forwarded frames, then
//! every [`reset_every`](ChaosConfig::reset_every) frames, up to
//! [`reset_limit`](ChaosConfig::reset_limit) — so a reconnect storm
//! (every session forced through resume, repeatedly) is one flag away.

use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use gpd_sim::FaultPlan;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::protocol::{read_frame, write_frame};

/// Proxy tunables.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Address to forward to (the real server).
    pub upstream: String,
    /// Frame-level faults: `drop_prob`, `duplicate_prob`, `jitter_prob`
    /// and `jitter_range` (milliseconds) apply per client → server
    /// frame. (`crashes` does not apply to a proxy.)
    pub faults: FaultPlan,
    /// Fire the first forced reset once this many client frames have
    /// been forwarded (counted across all connections). `None`
    /// disables resets.
    pub reset_after: Option<u64>,
    /// Fire another reset every additional N forwarded frames. `None`
    /// keeps the pre-existing one-shot behaviour: exactly one reset.
    pub reset_every: Option<u64>,
    /// Stop after this many resets; `0` means unlimited (only
    /// meaningful with `reset_every`).
    pub reset_limit: u64,
    /// Base seed for the fault rolls; connection `i` rolls from
    /// `seed + i`.
    pub seed: u64,
    /// Start an asymmetric partition after this many frames have been
    /// seen **in the partitioned direction, per connection**. `None`
    /// disables partitions.
    pub partition_after: Option<u64>,
    /// Drop this many consecutive frames once the partition starts,
    /// then heal the link.
    pub partition_frames: u64,
    /// Which direction the partition silences.
    pub partition_direction: PartitionDirection,
}

/// Which half of the duplex link an asymmetric partition cuts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PartitionDirection {
    /// Client → server frames vanish (events/heartbeats lost; acks
    /// still flow).
    #[default]
    ToServer,
    /// Server → client frames vanish (acks lost; events still land —
    /// the redelivery-heavy half).
    ToClient,
}

/// Per-connection, per-direction partition schedule: frames with index
/// in `[after, after + frames)` are dropped, everything else passes.
struct Partition {
    after: u64,
    frames: u64,
    seen: u64,
}

impl Partition {
    fn new(config: &ChaosConfig, direction: PartitionDirection) -> Option<Partition> {
        let after = config.partition_after?;
        (config.partition_direction == direction).then_some(Partition {
            after,
            frames: config.partition_frames,
            seen: 0,
        })
    }

    /// Whether the next frame in this direction is swallowed.
    fn drops(&mut self) -> bool {
        let index = self.seen;
        self.seen += 1;
        index >= self.after && index < self.after + self.frames
    }
}

impl ChaosConfig {
    /// A transparent proxy to `upstream` (no faults) with seed 0.
    pub fn new(upstream: impl Into<String>) -> Self {
        ChaosConfig {
            upstream: upstream.into(),
            faults: FaultPlan::default(),
            reset_after: None,
            reset_every: None,
            reset_limit: 0,
            seed: 0,
            partition_after: None,
            partition_frames: 0,
            partition_direction: PartitionDirection::ToServer,
        }
    }
}

/// Counters of what the proxy did to the stream.
#[derive(Debug, Clone, Copy, Default)]
pub struct ChaosReport {
    /// Client frames forwarded upstream.
    pub forwarded: u64,
    /// Client frames silently dropped.
    pub dropped: u64,
    /// Client frames sent twice.
    pub duplicated: u64,
    /// Forced connection resets performed.
    pub resets: u64,
    /// Connections accepted.
    pub connections: u64,
    /// Frames swallowed by asymmetric partitions (either direction).
    pub partitioned: u64,
}

struct Shared {
    stop: AtomicBool,
    forwarded: AtomicU64,
    dropped: AtomicU64,
    duplicated: AtomicU64,
    resets: AtomicU64,
    connections: AtomicU64,
    partitioned: AtomicU64,
}

impl Shared {
    /// Claims the next scheduled reset if the forwarded-frame count
    /// has crossed its threshold. Lock-free: racing connections agree
    /// on who fires via the CAS on the reset counter.
    fn claim_reset(&self, config: &ChaosConfig) -> bool {
        let Some(after) = config.reset_after else {
            return false;
        };
        loop {
            let fired = self.resets.load(Ordering::SeqCst);
            if config.reset_limit != 0 && fired >= config.reset_limit {
                return false;
            }
            let threshold = match (fired, config.reset_every) {
                (0, _) => after,
                (k, Some(every)) => after.saturating_add(k.saturating_mul(every)),
                // One-shot (no repeat interval) and it already fired.
                (_, None) => return false,
            };
            if self.forwarded.load(Ordering::SeqCst) < threshold {
                return false;
            }
            if self
                .resets
                .compare_exchange(fired, fired + 1, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                return true;
            }
        }
    }
}

/// A running proxy.
pub struct ChaosHandle {
    addr: SocketAddr,
    thread: Option<JoinHandle<()>>,
    shared: Arc<Shared>,
}

impl ChaosHandle {
    /// The proxy's listening address — point the clients here.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// What the proxy has done so far.
    pub fn report(&self) -> ChaosReport {
        ChaosReport {
            forwarded: self.shared.forwarded.load(Ordering::Relaxed),
            dropped: self.shared.dropped.load(Ordering::Relaxed),
            duplicated: self.shared.duplicated.load(Ordering::Relaxed),
            resets: self.shared.resets.load(Ordering::Relaxed),
            connections: self.shared.connections.load(Ordering::Relaxed),
            partitioned: self.shared.partitioned.load(Ordering::Relaxed),
        }
    }

    /// Stops accepting, joins the acceptor (which joins every pump
    /// thread), and reports.
    pub fn stop(mut self) -> ChaosReport {
        self.shared.stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr); // wake the acceptor
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
        self.report()
    }
}

/// Starts the proxy on `addr` (use port 0 for ephemeral). Each
/// accepted connection gets its own pump thread and its own seeded
/// RNG, so concurrent sessions do not perturb each other's fault
/// schedules.
///
/// # Errors
///
/// Any I/O error binding the listener.
pub fn start(addr: &str, config: ChaosConfig) -> std::io::Result<ChaosHandle> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let shared = Arc::new(Shared {
        stop: AtomicBool::new(false),
        forwarded: AtomicU64::new(0),
        dropped: AtomicU64::new(0),
        duplicated: AtomicU64::new(0),
        resets: AtomicU64::new(0),
        connections: AtomicU64::new(0),
        partitioned: AtomicU64::new(0),
    });
    let thread = {
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || {
            let mut pumps: Vec<JoinHandle<()>> = Vec::new();
            let mut next_conn = 0u64;
            loop {
                let Ok((client, _)) = listener.accept() else {
                    if shared.stop.load(Ordering::SeqCst) {
                        break;
                    }
                    continue;
                };
                if shared.stop.load(Ordering::SeqCst) {
                    break;
                }
                shared.connections.fetch_add(1, Ordering::Relaxed);
                let conn_seed = config.seed.wrapping_add(next_conn);
                next_conn += 1;
                let config = config.clone();
                let shared = Arc::clone(&shared);
                pumps.push(std::thread::spawn(move || {
                    let mut rng = StdRng::seed_from_u64(conn_seed);
                    let _ = pump_connection(client, &config, &shared, &mut rng);
                }));
            }
            for pump in pumps {
                let _ = pump.join();
            }
        })
    };
    Ok(ChaosHandle {
        addr: local,
        thread: Some(thread),
        shared,
    })
}

/// Forwards one client connection until EOF, fault, or reset.
fn pump_connection(
    mut client: TcpStream,
    config: &ChaosConfig,
    shared: &Arc<Shared>,
    rng: &mut StdRng,
) -> std::io::Result<()> {
    let mut upstream = TcpStream::connect(&config.upstream)?;
    client.set_nodelay(true)?;
    upstream.set_nodelay(true)?;

    // Server → client: frame-aware pump in its own thread, so an
    // asymmetric partition can swallow whole reply frames; ends when
    // either socket dies.
    let downstream = {
        let mut up = upstream.try_clone()?;
        let mut down = client.try_clone()?;
        let mut partition = Partition::new(config, PartitionDirection::ToClient);
        let shared = Arc::clone(shared);
        std::thread::spawn(move || {
            while let Ok(frame) = read_frame(&mut up) {
                if partition.as_mut().is_some_and(Partition::drops) {
                    shared.partitioned.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
                if write_frame(&mut down, &frame).is_err() {
                    break;
                }
            }
            let _ = down.shutdown(Shutdown::Write);
        })
    };

    // Client → server: frame-granular with faults.
    // Runs until the client hangs up (EOF) or sends garbage.
    let mut partition = Partition::new(config, PartitionDirection::ToServer);
    while let Ok(frame) = read_frame(&mut client) {
        if partition.as_mut().is_some_and(Partition::drops) {
            shared.partitioned.fetch_add(1, Ordering::Relaxed);
            continue;
        }
        if shared.claim_reset(config) {
            let _ = client.shutdown(Shutdown::Both);
            let _ = upstream.shutdown(Shutdown::Both);
            break;
        }
        if config.faults.drop_prob > 0.0 && rng.gen_bool(config.faults.drop_prob) {
            shared.dropped.fetch_add(1, Ordering::Relaxed);
            continue;
        }
        if config.faults.jitter_prob > 0.0 && rng.gen_bool(config.faults.jitter_prob) {
            let (lo, hi) = config.faults.jitter_range;
            let ms = if hi > lo { rng.gen_range(lo..=hi) } else { lo };
            std::thread::sleep(Duration::from_millis(ms));
        }
        let duplicate =
            config.faults.duplicate_prob > 0.0 && rng.gen_bool(config.faults.duplicate_prob);
        if write_frame(&mut upstream, &frame).is_err() {
            break;
        }
        shared.forwarded.fetch_add(1, Ordering::SeqCst);
        if duplicate {
            if write_frame(&mut upstream, &frame).is_err() {
                break;
            }
            shared.duplicated.fetch_add(1, Ordering::Relaxed);
            shared.forwarded.fetch_add(1, Ordering::SeqCst);
        }
    }
    let _ = upstream.shutdown(Shutdown::Both);
    let _ = client.shutdown(Shutdown::Both);
    let _ = downstream.join();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// An upstream that echoes every frame and returns what it saw.
    fn echo_upstream() -> (SocketAddr, JoinHandle<Vec<Vec<u8>>>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let thread = std::thread::spawn(move || {
            let (mut conn, _) = listener.accept().unwrap();
            let mut seen = Vec::new();
            while let Ok(frame) = read_frame(&mut conn) {
                let _ = write_frame(&mut conn, &frame);
                seen.push(frame);
            }
            seen
        });
        (addr, thread)
    }

    fn partitioned_config(upstream: SocketAddr, direction: PartitionDirection) -> ChaosConfig {
        let mut config = ChaosConfig::new(upstream.to_string());
        config.partition_after = Some(2);
        config.partition_frames = 3;
        config.partition_direction = direction;
        config
    }

    #[test]
    fn to_server_partition_drops_then_heals() {
        let (up_addr, upstream) = echo_upstream();
        let config = partitioned_config(up_addr, PartitionDirection::ToServer);
        let handle = start("127.0.0.1:0", config).unwrap();
        let mut client = TcpStream::connect(handle.local_addr()).unwrap();
        client
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        for i in 0u8..8 {
            write_frame(&mut client, &[i]).unwrap();
        }
        // Frames 2..5 vanished upstream; the survivors' echoes prove
        // the link healed after the window.
        let mut echoed = Vec::new();
        for _ in 0..5 {
            echoed.push(read_frame(&mut client).unwrap());
        }
        assert_eq!(echoed, vec![vec![0], vec![1], vec![5], vec![6], vec![7]]);
        drop(client);
        let seen = upstream.join().unwrap();
        assert_eq!(seen, vec![vec![0], vec![1], vec![5], vec![6], vec![7]]);
        let report = handle.stop();
        assert_eq!(report.partitioned, 3);
        assert_eq!(report.forwarded, 5);
    }

    #[test]
    fn to_client_partition_swallows_replies_only() {
        let (up_addr, upstream) = echo_upstream();
        let config = partitioned_config(up_addr, PartitionDirection::ToClient);
        let handle = start("127.0.0.1:0", config).unwrap();
        let mut client = TcpStream::connect(handle.local_addr()).unwrap();
        client
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        for i in 0u8..8 {
            write_frame(&mut client, &[i]).unwrap();
        }
        // Replies 2..5 vanished; the sends all landed (asymmetric).
        let mut echoed = Vec::new();
        for _ in 0..5 {
            echoed.push(read_frame(&mut client).unwrap());
        }
        assert_eq!(echoed, vec![vec![0], vec![1], vec![5], vec![6], vec![7]]);
        drop(client);
        let seen = upstream.join().unwrap();
        assert_eq!(seen.len(), 8, "every send reached the server");
        let report = handle.stop();
        assert_eq!(report.partitioned, 3);
        assert_eq!(report.forwarded, 8);
    }
}
