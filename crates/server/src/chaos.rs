//! A fault-injecting TCP proxy: sits between a feed client and the
//! server and applies [`FaultPlan`](gpd_sim::FaultPlan) semantics to
//! real sockets — frame loss, frame duplication, delivery jitter, and
//! forced connection resets.
//!
//! Faults are applied at frame granularity on the client → server
//! direction (dropping half a frame would just desynchronize the
//! stream; the interesting failures are whole lost or repeated
//! messages). The server → client direction is forwarded verbatim.
//! All randomness comes from a seeded [`StdRng`], so a chaos run's
//! fault schedule is reproducible.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use gpd_sim::FaultPlan;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::protocol::{read_frame, write_frame};

/// Proxy tunables.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Address to forward to (the real server).
    pub upstream: String,
    /// Frame-level faults: `drop_prob`, `duplicate_prob`, `jitter_prob`
    /// and `jitter_range` (milliseconds) apply per client → server
    /// frame. (`crashes` does not apply to a proxy.)
    pub faults: FaultPlan,
    /// After forwarding this many client frames, reset both sockets
    /// once — forcing the client through its reconnect path. Later
    /// connections are spared further resets.
    pub reset_after: Option<u64>,
    /// Seed for the fault rolls.
    pub seed: u64,
}

impl ChaosConfig {
    /// A transparent proxy to `upstream` (no faults) with seed 0.
    pub fn new(upstream: impl Into<String>) -> Self {
        ChaosConfig {
            upstream: upstream.into(),
            faults: FaultPlan::default(),
            reset_after: None,
            seed: 0,
        }
    }
}

/// Counters of what the proxy did to the stream.
#[derive(Debug, Clone, Copy, Default)]
pub struct ChaosReport {
    /// Client frames forwarded upstream.
    pub forwarded: u64,
    /// Client frames silently dropped.
    pub dropped: u64,
    /// Client frames sent twice.
    pub duplicated: u64,
    /// Forced connection resets performed.
    pub resets: u64,
}

struct Shared {
    stop: AtomicBool,
    forwarded: AtomicU64,
    dropped: AtomicU64,
    duplicated: AtomicU64,
    resets: AtomicU64,
}

/// A running proxy.
pub struct ChaosHandle {
    addr: SocketAddr,
    thread: Option<JoinHandle<()>>,
    shared: Arc<Shared>,
}

impl ChaosHandle {
    /// The proxy's listening address — point the client here.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// What the proxy has done so far.
    pub fn report(&self) -> ChaosReport {
        ChaosReport {
            forwarded: self.shared.forwarded.load(Ordering::Relaxed),
            dropped: self.shared.dropped.load(Ordering::Relaxed),
            duplicated: self.shared.duplicated.load(Ordering::Relaxed),
            resets: self.shared.resets.load(Ordering::Relaxed),
        }
    }

    /// Stops accepting and joins the proxy thread.
    pub fn stop(mut self) -> ChaosReport {
        self.shared.stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr); // wake the acceptor
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
        self.report()
    }
}

/// Starts the proxy on `addr` (use port 0 for ephemeral). Connections
/// are served one at a time — a feed session is a single connection,
/// and serving serially keeps the fault schedule deterministic.
///
/// # Errors
///
/// Any I/O error binding the listener.
pub fn start(addr: &str, config: ChaosConfig) -> std::io::Result<ChaosHandle> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let shared = Arc::new(Shared {
        stop: AtomicBool::new(false),
        forwarded: AtomicU64::new(0),
        dropped: AtomicU64::new(0),
        duplicated: AtomicU64::new(0),
        resets: AtomicU64::new(0),
    });
    let thread = {
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(config.seed);
            loop {
                let Ok((client, _)) = listener.accept() else {
                    if shared.stop.load(Ordering::SeqCst) {
                        return;
                    }
                    continue;
                };
                if shared.stop.load(Ordering::SeqCst) {
                    return;
                }
                let _ = pump_connection(client, &config, &shared, &mut rng);
            }
        })
    };
    Ok(ChaosHandle {
        addr: local,
        thread: Some(thread),
        shared,
    })
}

/// Forwards one client connection until EOF, fault, or reset.
fn pump_connection(
    mut client: TcpStream,
    config: &ChaosConfig,
    shared: &Shared,
    rng: &mut StdRng,
) -> std::io::Result<()> {
    let mut upstream = TcpStream::connect(&config.upstream)?;
    client.set_nodelay(true)?;
    upstream.set_nodelay(true)?;

    // Server → client: verbatim byte pump in its own thread; ends when
    // either socket dies.
    let downstream = {
        let mut up = upstream.try_clone()?;
        let mut down = client.try_clone()?;
        std::thread::spawn(move || {
            let mut buf = [0u8; 4096];
            loop {
                match up.read(&mut buf) {
                    Ok(0) | Err(_) => break,
                    Ok(k) => {
                        if down.write_all(&buf[..k]).is_err() {
                            break;
                        }
                    }
                }
            }
            let _ = down.shutdown(Shutdown::Write);
        })
    };

    // Client → server: frame-granular with faults.
    // Runs until the client hangs up (EOF) or sends garbage.
    while let Ok(frame) = read_frame(&mut client) {
        if let Some(limit) = config.reset_after {
            let already_reset = shared.resets.load(Ordering::SeqCst) > 0;
            if !already_reset && shared.forwarded.load(Ordering::SeqCst) >= limit {
                shared.resets.fetch_add(1, Ordering::SeqCst);
                let _ = client.shutdown(Shutdown::Both);
                let _ = upstream.shutdown(Shutdown::Both);
                break;
            }
        }
        if config.faults.drop_prob > 0.0 && rng.gen_bool(config.faults.drop_prob) {
            shared.dropped.fetch_add(1, Ordering::Relaxed);
            continue;
        }
        if config.faults.jitter_prob > 0.0 && rng.gen_bool(config.faults.jitter_prob) {
            let (lo, hi) = config.faults.jitter_range;
            let ms = if hi > lo { rng.gen_range(lo..=hi) } else { lo };
            std::thread::sleep(Duration::from_millis(ms));
        }
        let duplicate =
            config.faults.duplicate_prob > 0.0 && rng.gen_bool(config.faults.duplicate_prob);
        if write_frame(&mut upstream, &frame).is_err() {
            break;
        }
        shared.forwarded.fetch_add(1, Ordering::SeqCst);
        if duplicate {
            if write_frame(&mut upstream, &frame).is_err() {
                break;
            }
            shared.duplicated.fetch_add(1, Ordering::Relaxed);
            shared.forwarded.fetch_add(1, Ordering::SeqCst);
        }
    }
    let _ = upstream.shutdown(Shutdown::Both);
    let _ = client.shutdown(Shutdown::Both);
    let _ = downstream.join();
    Ok(())
}
