//! The feeding client: streams a computation's true states to a
//! [`server`](crate::server) with timeouts, bounded retries,
//! exponential backoff with deterministic jitter, and
//! reconnect-with-resume.
//!
//! ## At-least-once, no gaps
//!
//! The monitor requires per-process FIFO delivery, so the client keeps
//! **at most one event per process in flight**: process `p`'s event
//! `k+1` is only sent after `k` was acked. Different processes pipeline
//! freely up to `max_inflight`. If an ack never arrives (loss, reset,
//! server crash), the read times out and the client reconnects; the
//! `HelloAck` high-water marks say exactly where each process resumes,
//! so lost events are retransmitted and already-applied ones are
//! skipped (or screened server-side as duplicates — either way the
//! monitor sees each state exactly once, in order).

use std::collections::HashMap;
use std::net::TcpStream;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::protocol::{
    read_message, write_message, AckStatus, Message, ServerStats, SlicerVerdict, TenantStatsRow,
    DEFAULT_TENANT,
};

/// Deterministic backoff with jitter: `min(cap, base·2^failures)` plus
/// a jitter drawn from a generator seeded with `seed + failures`, so
/// replayed runs back off identically while distinct seeds (e.g. one
/// per slicer process) desynchronize retry storms.
pub(crate) fn backoff_delay(base: Duration, cap: Duration, seed: u64, failures: u32) -> Duration {
    let base_ms = base.as_millis() as u64;
    let cap_ms = cap.as_millis() as u64;
    let exp = base_ms.saturating_mul(1u64 << failures.min(16)).min(cap_ms);
    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(failures as u64));
    let jitter = if base_ms > 0 {
        rng.gen_range(0..=base_ms)
    } else {
        0
    };
    Duration::from_millis(exp + jitter)
}

/// Client tunables.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Server address, e.g. `"127.0.0.1:7878"`.
    pub addr: String,
    /// The tenant this client's session belongs to.
    pub tenant: String,
    /// Read/write timeout per socket operation; a missing ack past it
    /// triggers a reconnect.
    pub io_timeout: Duration,
    /// Total (re)connect attempts before giving up.
    pub max_retries: u32,
    /// First backoff delay; doubles per consecutive failure.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_cap: Duration,
    /// Seed for the deterministic backoff jitter.
    pub jitter_seed: u64,
    /// Max processes with an un-acked event in flight.
    pub max_inflight: usize,
}

impl ClientConfig {
    /// Defaults: the `"default"` tenant, 2 s I/O timeout, 10 retries,
    /// 25 ms base / 1 s cap backoff, seed 0, window 8.
    pub fn new(addr: impl Into<String>) -> Self {
        ClientConfig {
            addr: addr.into(),
            tenant: DEFAULT_TENANT.into(),
            io_timeout: Duration::from_secs(2),
            max_retries: 10,
            backoff_base: Duration::from_millis(25),
            backoff_cap: Duration::from_secs(1),
            jitter_seed: 0,
            max_inflight: 8,
        }
    }

    /// Selects the tenant the session belongs to.
    pub fn with_tenant(mut self, tenant: impl Into<String>) -> Self {
        self.tenant = tenant.into();
        self
    }
}

/// Why a feed gave up.
#[derive(Debug)]
pub enum ClientError {
    /// Connect/retry budget exhausted; carries the attempt count and
    /// the last underlying error.
    RetriesExhausted {
        /// Attempts made.
        attempts: u32,
        /// The error that ended the final attempt.
        last: String,
    },
    /// The server answered with a protocol [`Message::Error`].
    Server(String),
    /// The peer sent something that makes no sense at this point.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::RetriesExhausted { attempts, last } => {
                write!(f, "gave up after {attempts} attempts (last error: {last})")
            }
            ClientError::Server(m) => write!(f, "server error: {m}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

/// What a completed feed observed.
#[derive(Debug, Clone, Default)]
pub struct FeedReport {
    /// Events acked `Accepted`.
    pub accepted: u64,
    /// Events acked `Duplicate` (screened redeliveries).
    pub duplicates: u64,
    /// Events acked `Stale`.
    pub stale: u64,
    /// Events acked `Rejected` (backpressure) and retried.
    pub rejected_retries: u64,
    /// Reconnects performed (0 on a fault-free run).
    pub reconnects: u64,
    /// Events skipped at resume because the high-water mark already
    /// covered them.
    pub resumed_past: u64,
    /// The verdict queried after the last event was acked.
    pub witness: Option<Vec<Vec<u32>>>,
}

/// A reusable client for one server address.
pub struct FeedClient {
    config: ClientConfig,
}

impl FeedClient {
    /// Builds a client; connections are opened per call.
    pub fn new(config: ClientConfig) -> Self {
        FeedClient { config }
    }

    /// Deterministic backoff with jitter: `min(cap, base·2^k)` plus a
    /// jitter drawn from a seeded generator, so replayed runs back off
    /// identically.
    fn backoff(&self, failures: u32) -> Duration {
        backoff_delay(
            self.config.backoff_base,
            self.config.backoff_cap,
            self.config.jitter_seed,
            failures,
        )
    }

    fn connect(&self) -> std::io::Result<TcpStream> {
        let stream = TcpStream::connect(&self.config.addr)?;
        stream.set_read_timeout(Some(self.config.io_timeout))?;
        stream.set_write_timeout(Some(self.config.io_timeout))?;
        stream.set_nodelay(true)?;
        Ok(stream)
    }

    /// Connects with backoff, sends `Hello`, and returns the stream and
    /// high-water marks. `failures` counts consecutive failures so far
    /// (for the backoff schedule).
    fn connect_session(
        &self,
        initial: &[bool],
        failures: &mut u32,
        attempts: &mut u32,
    ) -> Result<(TcpStream, Vec<Option<u32>>), ClientError> {
        loop {
            if *attempts >= self.config.max_retries {
                return Err(ClientError::RetriesExhausted {
                    attempts: *attempts,
                    last: "connect/hello budget exhausted".into(),
                });
            }
            *attempts += 1;
            if *failures > 0 {
                std::thread::sleep(self.backoff(*failures - 1));
            }
            let result = self.connect().and_then(|mut stream| {
                write_message(
                    &mut stream,
                    &Message::Hello {
                        tenant: self.config.tenant.clone(),
                        initial: initial.to_vec(),
                    },
                )?;
                let reply = read_message(&mut stream)?;
                Ok((stream, reply))
            });
            match result {
                Ok((stream, Message::HelloAck { high_water })) => {
                    if high_water.len() != initial.len() {
                        return Err(ClientError::Protocol("high-water length mismatch".into()));
                    }
                    *failures = 0;
                    return Ok((stream, high_water));
                }
                Ok((_, Message::Error { message })) => return Err(ClientError::Server(message)),
                Ok((_, other)) => {
                    return Err(ClientError::Protocol(format!(
                        "expected HelloAck, got {other:?}"
                    )))
                }
                Err(_) => {
                    *failures += 1;
                }
            }
        }
    }

    /// Streams `events` — `(process, clock)` pairs in a per-process
    /// FIFO order — and returns the final verdict. Survives connection
    /// loss, duplicated or dropped frames, and server restarts, within
    /// the retry budget.
    ///
    /// # Errors
    ///
    /// [`ClientError::RetriesExhausted`] when the fault rate outlasts
    /// the budget, or a server/protocol error.
    pub fn feed(
        &self,
        initial: &[bool],
        events: &[(usize, Vec<u32>)],
    ) -> Result<FeedReport, ClientError> {
        let n = initial.len();
        // Per-process FIFO queues of indices into `events`.
        let mut queues: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, (p, clock)) in events.iter().enumerate() {
            assert!(*p < n, "event process out of range");
            assert_eq!(clock.len(), n, "event clock length mismatch");
            queues[*p].push(i);
        }
        let mut report = FeedReport::default();
        let mut failures = 0u32;
        let mut attempts = 0u32;
        let mut first_connect = true;

        'session: loop {
            let (mut stream, high_water) =
                self.connect_session(initial, &mut failures, &mut attempts)?;
            if !first_connect {
                report.reconnects += 1;
            }
            first_connect = false;

            // Resume: next unsent index per process, skipping events the
            // server already applied.
            let mut next: Vec<usize> = vec![0; n];
            for p in 0..n {
                while next[p] < queues[p].len() {
                    let (_, clock) = &events[queues[p][next[p]]];
                    match high_water[p] {
                        Some(hw) if clock[p] <= hw => {
                            next[p] += 1;
                            report.resumed_past += 1;
                        }
                        _ => break,
                    }
                }
            }

            // (process, seq) -> backoff round for Rejected retries.
            let mut inflight: HashMap<(usize, u32), u32> = HashMap::new();
            let mut ready: Vec<usize> = (0..n).collect();
            loop {
                // Launch: one in-flight event per process, window-capped.
                let mut launched = false;
                ready.retain(|&p| {
                    if inflight.len() >= self.config.max_inflight {
                        return true;
                    }
                    if next[p] >= queues[p].len() {
                        return false; // process done
                    }
                    let (_, clock) = &events[queues[p][next[p]]];
                    let seq = clock[p];
                    if write_message(
                        &mut stream,
                        &Message::Event {
                            process: p as u32,
                            clock: clock.clone(),
                        },
                    )
                    .is_err()
                    {
                        return true; // socket broken; the read below reconnects
                    }
                    launched = true;
                    inflight.insert((p, seq), 0);
                    false // not ready again until acked
                });
                let _ = launched;

                if inflight.is_empty() {
                    if (0..n).all(|p| next[p] >= queues[p].len()) {
                        break; // everything delivered and acked
                    }
                    if ready.is_empty() {
                        // Processes remain but none are ready: all are
                        // waiting on a Rejected backoff below, which
                        // re-inserts into `ready`. (Unreachable today;
                        // defensive.)
                        return Err(ClientError::Protocol("feed wedged".into()));
                    }
                    continue;
                }

                match read_message(&mut stream) {
                    Ok(Message::Ack {
                        process,
                        seq,
                        status,
                    }) => {
                        let key = (process as usize, seq);
                        let Some(round) = inflight.remove(&key) else {
                            continue; // dup ack of an old frame: ignore
                        };
                        match status {
                            AckStatus::Accepted => {
                                report.accepted += 1;
                                next[key.0] += 1;
                                ready.push(key.0);
                            }
                            AckStatus::Duplicate => {
                                report.duplicates += 1;
                                next[key.0] += 1;
                                ready.push(key.0);
                            }
                            AckStatus::Stale => {
                                report.stale += 1;
                                next[key.0] += 1;
                                ready.push(key.0);
                            }
                            AckStatus::Rejected => {
                                // Backpressure: back off, then retry the
                                // same event on this connection — up to
                                // the same budget as reconnects, so a
                                // permanently full queue (e.g. a capped
                                // tenant that never drains) surfaces as
                                // an error instead of spinning forever.
                                if round >= self.config.max_retries {
                                    return Err(ClientError::RetriesExhausted {
                                        attempts: round,
                                        last: format!(
                                            "event for process {process} rejected \
                                             (backpressure) {round} times",
                                        ),
                                    });
                                }
                                report.rejected_retries += 1;
                                std::thread::sleep(self.backoff(round));
                                let _ = inflight.insert(key, round + 1);
                                let (_, clock) = &events[queues[key.0][next[key.0]]];
                                if write_message(
                                    &mut stream,
                                    &Message::Event {
                                        process,
                                        clock: clock.clone(),
                                    },
                                )
                                .is_err()
                                {
                                    failures += 1;
                                    continue 'session;
                                }
                            }
                        }
                    }
                    // A duplicated Hello frame (chaos) makes the server
                    // answer HelloAck twice; the stray copy is harmless.
                    Ok(Message::HelloAck { .. }) => {}
                    Ok(Message::Error { message }) => return Err(ClientError::Server(message)),
                    Ok(other) => {
                        return Err(ClientError::Protocol(format!(
                            "expected Ack, got {other:?}"
                        )))
                    }
                    Err(_) => {
                        // Timeout or reset: reconnect and resume.
                        failures += 1;
                        continue 'session;
                    }
                }
            }

            // All acked: fetch the verdict on the same connection.
            if write_message(
                &mut stream,
                &Message::VerdictQuery {
                    tenant: String::new(),
                },
            )
            .is_err()
            {
                failures += 1;
                continue 'session;
            }
            loop {
                match read_message(&mut stream) {
                    Ok(Message::Verdict { witness }) => {
                        report.witness = witness;
                        return Ok(report);
                    }
                    // Stray acks of duplicated frames may still be
                    // queued ahead of the verdict; drain them.
                    Ok(Message::Ack { .. }) | Ok(Message::HelloAck { .. }) => {}
                    Ok(Message::Error { message }) => return Err(ClientError::Server(message)),
                    Ok(other) => {
                        return Err(ClientError::Protocol(format!(
                            "expected Verdict, got {other:?}"
                        )))
                    }
                    Err(_) => {
                        failures += 1;
                        continue 'session;
                    }
                }
            }
        }
    }

    /// One-shot verdict query (no `Hello` needed once a session exists).
    ///
    /// # Errors
    ///
    /// I/O mapped to [`ClientError::RetriesExhausted`] (single
    /// attempt), or a server/protocol error.
    pub fn query_verdict(&self) -> Result<Option<Vec<Vec<u32>>>, ClientError> {
        match self.roundtrip(&Message::VerdictQuery {
            tenant: self.config.tenant.clone(),
        })? {
            Message::Verdict { witness } => Ok(witness),
            Message::Error { message } => Err(ClientError::Server(message)),
            other => Err(ClientError::Protocol(format!(
                "expected Verdict, got {other:?}"
            ))),
        }
    }

    /// One-shot stats query.
    ///
    /// # Errors
    ///
    /// As [`FeedClient::query_verdict`].
    pub fn query_stats(&self) -> Result<ServerStats, ClientError> {
        match self.roundtrip(&Message::StatsQuery)? {
            Message::Stats(stats) => Ok(stats),
            Message::Error { message } => Err(ClientError::Server(message)),
            other => Err(ClientError::Protocol(format!(
                "expected Stats, got {other:?}"
            ))),
        }
    }

    /// One-shot per-tenant stats query.
    ///
    /// # Errors
    ///
    /// As [`FeedClient::query_verdict`].
    pub fn query_tenant_stats(&self) -> Result<Vec<TenantStatsRow>, ClientError> {
        match self.roundtrip(&Message::TenantStatsQuery)? {
            Message::TenantStats { rows } => Ok(rows),
            Message::Error { message } => Err(ClientError::Server(message)),
            other => Err(ClientError::Protocol(format!(
                "expected TenantStats, got {other:?}"
            ))),
        }
    }

    /// One-shot decentralized-verdict query: the tenant's three-valued
    /// slicer status (witness / not-yet / degraded `Unknown` with
    /// progress bounds).
    ///
    /// # Errors
    ///
    /// As [`FeedClient::query_verdict`].
    pub fn query_slicer_status(&self) -> Result<SlicerVerdict, ClientError> {
        match self.roundtrip(&Message::SlicerStatusQuery {
            tenant: self.config.tenant.clone(),
        })? {
            Message::SlicerStatus(verdict) => Ok(verdict),
            Message::Error { message } => Err(ClientError::Server(message)),
            other => Err(ClientError::Protocol(format!(
                "expected SlicerStatus, got {other:?}"
            ))),
        }
    }

    /// Asks the server to drain and stop; returns its final verdict.
    ///
    /// # Errors
    ///
    /// As [`FeedClient::query_verdict`].
    pub fn shutdown(&self) -> Result<Option<Vec<Vec<u32>>>, ClientError> {
        match self.roundtrip(&Message::Shutdown {
            tenant: self.config.tenant.clone(),
        })? {
            Message::ShutdownAck { witness } => Ok(witness),
            Message::Error { message } => Err(ClientError::Server(message)),
            other => Err(ClientError::Protocol(format!(
                "expected ShutdownAck, got {other:?}"
            ))),
        }
    }

    fn roundtrip(&self, message: &Message) -> Result<Message, ClientError> {
        let io = |e: std::io::Error| ClientError::RetriesExhausted {
            attempts: 1,
            last: e.to_string(),
        };
        let mut stream = self.connect().map_err(io)?;
        write_message(&mut stream, message).map_err(io)?;
        read_message(&mut stream).map_err(io)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_and_bounded() {
        let client = FeedClient::new(ClientConfig::new("127.0.0.1:1"));
        let a: Vec<Duration> = (0..8).map(|k| client.backoff(k)).collect();
        let b: Vec<Duration> = (0..8).map(|k| client.backoff(k)).collect();
        assert_eq!(a, b, "same seed, same schedule");
        let cap = ClientConfig::new("x").backoff_cap + ClientConfig::new("x").backoff_base;
        for d in &a {
            assert!(*d <= cap, "{d:?} exceeds cap+jitter");
        }
        // Exponential growth up to the cap (modulo jitter of at most
        // one base step).
        assert!(a[4] > a[0]);
    }

    #[test]
    fn different_seeds_jitter_differently() {
        let mut a = ClientConfig::new("x");
        a.jitter_seed = 1;
        let mut b = ClientConfig::new("x");
        b.jitter_seed = 2;
        let ca = FeedClient::new(a);
        let cb = FeedClient::new(b);
        let sa: Vec<Duration> = (0..16).map(|k| ca.backoff(k)).collect();
        let sb: Vec<Duration> = (0..16).map(|k| cb.backoff(k)).collect();
        assert_ne!(sa, sb, "jitter must depend on the seed");
    }

    #[test]
    fn retries_exhausted_on_dead_address() {
        // Port 1 on loopback is essentially never listening.
        let mut config = ClientConfig::new("127.0.0.1:1");
        config.max_retries = 2;
        config.backoff_base = Duration::from_millis(1);
        config.backoff_cap = Duration::from_millis(2);
        let client = FeedClient::new(config);
        match client.feed(&[false], &[(0, vec![1])]) {
            Err(ClientError::RetriesExhausted { attempts, .. }) => assert_eq!(attempts, 2),
            other => panic!("expected RetriesExhausted, got {other:?}"),
        }
    }
}
