//! Server-side slicer liveness tracking.
//!
//! Each decentralized tenant keeps one [`SlicerRegistry`]: who is
//! slicing each process, which **epoch** (incarnation) of that slicer
//! is current, when it was last heard from, and the latest causal
//! progress it reported. The registry is what turns a silent slicer
//! into a *sound* `Unknown` verdict instead of a wedged session:
//!
//! - **Epoch fencing.** Every `SlicerHello` adopts
//!   `max(proposed, last_adopted + 1)` — strictly increasing per
//!   process, even when a crash-looping slicer re-proposes a stale
//!   epoch. Beats and completions from superseded epochs are ignored,
//!   so a zombie from a previous incarnation can neither keep a dead
//!   process looking alive nor mark the stream complete.
//! - **Clock-free timing.** All methods take an explicit
//!   [`Instant`]; the registry never reads a wall clock. Liveness is
//!   `now - last_seen > timeout` with a **strict** comparison — a
//!   heartbeat that lands exactly at the deadline still counts.
//! - **Graceful completion.** A slicer that finished its stream sends
//!   `SlicerDone`; done slicers are exempt from the timeout (silence
//!   after completion is not a crash).

use std::collections::HashMap;
use std::time::{Duration, Instant};

/// One process's slicer slot.
#[derive(Debug, Clone)]
struct Slot {
    /// The adopted epoch — the only incarnation whose traffic counts.
    epoch: u64,
    /// When the current epoch was last heard from (hello, event,
    /// heartbeat, or done).
    last_seen: Instant,
    /// The latest causal-progress clock reported (componentwise-max
    /// merged, so replays and reordering cannot move it backwards).
    progress: Option<Vec<u32>>,
    /// Whether the current epoch completed its stream.
    done: bool,
}

/// Live/dead/done census of a registry at one instant.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SlicerCensus {
    /// Registered slicers within their heartbeat deadline.
    pub live: u64,
    /// Registered slicers past the deadline (and not done).
    pub dead: u64,
    /// Slicers that completed their stream gracefully.
    pub done: u64,
}

/// Per-tenant slicer registry: epoch adoption, liveness, and progress.
#[derive(Debug, Clone, Default)]
pub struct SlicerRegistry {
    slots: HashMap<u32, Slot>,
}

impl SlicerRegistry {
    /// An empty registry (no slicers ever registered).
    pub fn new() -> Self {
        SlicerRegistry::default()
    }

    /// Whether any slicer ever registered — a tenant with no slicers
    /// is centralized and has no liveness obligations.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Registers (or re-registers) the slicer for `process`, adopting
    /// `max(proposed, last_adopted + 1)` so epochs are strictly
    /// increasing per process no matter what a crash-looping client
    /// proposes. Resets the `done` flag — a re-registered slicer is
    /// streaming again — and refreshes `last_seen`. Returns the
    /// adopted epoch.
    pub fn register(&mut self, process: u32, proposed: u64, now: Instant) -> u64 {
        let slot = self.slots.entry(process).or_insert(Slot {
            epoch: 0,
            last_seen: now,
            progress: None,
            done: false,
        });
        let adopted = proposed.max(slot.epoch + 1);
        slot.epoch = adopted;
        slot.last_seen = now;
        slot.done = false;
        adopted
    }

    /// Records a sign of life from `process` at epoch `epoch`,
    /// carrying an optional progress clock (empty = none). Returns
    /// whether the beat was accepted — beats from any epoch other
    /// than the adopted one are fenced off and change nothing.
    pub fn beat(&mut self, process: u32, epoch: u64, progress: &[u32], now: Instant) -> bool {
        let Some(slot) = self.slots.get_mut(&process) else {
            return false;
        };
        if slot.epoch != epoch {
            return false;
        }
        slot.last_seen = now;
        if !progress.is_empty() {
            merge_progress(&mut slot.progress, progress);
        }
        true
    }

    /// Marks `process`'s current epoch as done (stream fully
    /// replayed). Fenced like [`beat`](Self::beat).
    pub fn done(&mut self, process: u32, epoch: u64, progress: &[u32], now: Instant) -> bool {
        let Some(slot) = self.slots.get_mut(&process) else {
            return false;
        };
        if slot.epoch != epoch {
            return false;
        }
        slot.last_seen = now;
        slot.done = true;
        if !progress.is_empty() {
            merge_progress(&mut slot.progress, progress);
        }
        true
    }

    /// The adopted epoch for `process`, if it ever registered.
    pub fn epoch_of(&self, process: u32) -> Option<u64> {
        self.slots.get(&process).map(|s| s.epoch)
    }

    /// The processes whose slicers are past the heartbeat deadline:
    /// registered, not done, and `now - last_seen > timeout`
    /// (**strictly** — a beat exactly at the boundary is alive).
    /// Sorted, so verdicts are deterministic.
    pub fn dead(&self, now: Instant, timeout: Duration) -> Vec<u32> {
        let mut out: Vec<u32> = self
            .slots
            .iter()
            .filter(|(_, s)| !s.done && now.saturating_duration_since(s.last_seen) > timeout)
            .map(|(&p, _)| p)
            .collect();
        out.sort_unstable();
        out
    }

    /// Live/dead/done counts at `now`.
    pub fn census(&self, now: Instant, timeout: Duration) -> SlicerCensus {
        let mut census = SlicerCensus::default();
        for slot in self.slots.values() {
            if slot.done {
                census.done += 1;
            } else if now.saturating_duration_since(slot.last_seen) > timeout {
                census.dead += 1;
            } else {
                census.live += 1;
            }
        }
        census
    }

    /// Per-process progress clocks over `n` processes (`None` where no
    /// slicer reported any).
    pub fn progress(&self, n: usize) -> Vec<Option<Vec<u32>>> {
        (0..n as u32)
            .map(|p| self.slots.get(&p).and_then(|s| s.progress.clone()))
            .collect()
    }
}

/// Componentwise max — sound under at-least-once redelivery because a
/// vector clock replay can only be dominated by what was already
/// merged.
fn merge_progress(into: &mut Option<Vec<u32>>, clock: &[u32]) {
    match into {
        None => *into = Some(clock.to_vec()),
        Some(existing) if existing.len() == clock.len() => {
            for (e, &c) in existing.iter_mut().zip(clock) {
                *e = (*e).max(c);
            }
        }
        // Length mismatch: malformed report; keep what we have.
        Some(_) => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TIMEOUT: Duration = Duration::from_millis(100);

    #[test]
    fn first_registration_adopts_at_least_epoch_one() {
        let mut r = SlicerRegistry::new();
        let now = Instant::now();
        assert_eq!(r.register(0, 0, now), 1);
        assert_eq!(r.epoch_of(0), Some(1));
        // A peer proposing a high epoch is honored.
        assert_eq!(r.register(1, 40, now), 40);
    }

    #[test]
    fn epochs_strictly_increase_across_rapid_restarts() {
        // A crash-looping slicer that re-proposes the same stale epoch
        // every boot must still get a fresh epoch each time — the
        // "epoch collision after rapid kill/restart loops" case.
        let mut r = SlicerRegistry::new();
        let now = Instant::now();
        let mut last = 0;
        for _ in 0..10 {
            let adopted = r.register(3, 0, now);
            assert!(adopted > last);
            last = adopted;
        }
        // And re-proposing a previously adopted epoch collides upward.
        let adopted = r.register(3, last, now);
        assert_eq!(adopted, last + 1);
    }

    #[test]
    fn stale_epoch_beats_are_fenced() {
        let mut r = SlicerRegistry::new();
        let t0 = Instant::now();
        let old = r.register(0, 0, t0);
        let new = r.register(0, 0, t0); // restart: old epoch superseded
        assert!(new > old);
        // The zombie's beat is ignored: it cannot refresh liveness.
        assert!(!r.beat(0, old, &[5, 0], t0 + TIMEOUT * 2));
        assert_eq!(r.dead(t0 + TIMEOUT * 2, TIMEOUT), vec![0]);
        // The current epoch's beat counts.
        assert!(r.beat(0, new, &[5, 0], t0 + TIMEOUT * 2));
        assert!(r.dead(t0 + TIMEOUT * 2, TIMEOUT).is_empty());
    }

    #[test]
    fn heartbeat_exactly_at_the_deadline_is_alive() {
        let mut r = SlicerRegistry::new();
        let t0 = Instant::now();
        r.register(0, 0, t0);
        // now - last_seen == timeout: NOT dead (strict comparison).
        assert!(r.dead(t0 + TIMEOUT, TIMEOUT).is_empty());
        assert_eq!(r.census(t0 + TIMEOUT, TIMEOUT).live, 1);
        // One nanosecond past: dead.
        let past = t0 + TIMEOUT + Duration::from_nanos(1);
        assert_eq!(r.dead(past, TIMEOUT), vec![0]);
        assert_eq!(r.census(past, TIMEOUT).dead, 1);
    }

    #[test]
    fn timing_is_monotonic_and_clock_free() {
        // `now` earlier than `last_seen` (e.g. a query raced a beat on
        // another thread's Instant) must not panic or report dead —
        // saturating monotonic arithmetic, never wall-clock.
        let mut r = SlicerRegistry::new();
        let t0 = Instant::now();
        r.register(0, 0, t0 + Duration::from_secs(5));
        assert!(r.dead(t0, TIMEOUT).is_empty());
        assert_eq!(r.census(t0, TIMEOUT).live, 1);
    }

    #[test]
    fn done_slicers_are_exempt_from_liveness() {
        let mut r = SlicerRegistry::new();
        let t0 = Instant::now();
        let e = r.register(0, 0, t0);
        r.register(1, 0, t0);
        assert!(r.done(0, e, &[9, 9], t0));
        let late = t0 + TIMEOUT * 10;
        // Process 0 finished: silence is completion, not a crash.
        assert_eq!(r.dead(late, TIMEOUT), vec![1]);
        let census = r.census(late, TIMEOUT);
        assert_eq!((census.live, census.dead, census.done), (0, 1, 1));
        // Re-registering (a new run) clears the done flag.
        r.register(0, 0, late);
        assert_eq!(r.census(late, TIMEOUT).done, 0);
    }

    #[test]
    fn progress_merges_componentwise_max() {
        let mut r = SlicerRegistry::new();
        let t0 = Instant::now();
        let e = r.register(0, 0, t0);
        assert!(r.beat(0, e, &[3, 1], t0));
        // A replayed older clock cannot move progress backwards.
        assert!(r.beat(0, e, &[2, 9], t0));
        assert_eq!(r.progress(2), vec![Some(vec![3, 9]), None]);
        // Empty progress refreshes liveness without touching clocks.
        assert!(r.beat(0, e, &[], t0));
        assert_eq!(r.progress(2)[0], Some(vec![3, 9]));
        // A malformed (wrong-length) clock is ignored.
        assert!(r.beat(0, e, &[1, 2, 3], t0));
        assert_eq!(r.progress(2)[0], Some(vec![3, 9]));
    }

    #[test]
    fn unknown_process_traffic_is_rejected() {
        let mut r = SlicerRegistry::new();
        let now = Instant::now();
        assert!(!r.beat(7, 1, &[1], now));
        assert!(!r.done(7, 1, &[1], now));
        assert!(r.is_empty());
    }
}
