//! The decentralized slicer agent: one per process, wrapping that
//! process's trace replay behind a [`LocalSlicer`] and the retrying
//! client machinery.
//!
//! The agent replays its process's local states in order, asks the
//! slicer which ones are abstraction-relevant, and forwards only those
//! to the server — **stop-and-wait**: event `k+1` leaves only after
//! `k` was acked. That strictness is what makes loss recoverable
//! without gaps: at most one event is ever unacked, so after a
//! reconnect the server's high-water mark decides exactly whether it
//! was applied (skip) or lost (resend). Pipelining would let a dropped
//! middle frame be silently skipped at resume — verdict corruption.
//!
//! Robustness:
//!
//! - **Heartbeats** ride the same socket (fire-and-forget) whenever
//!   the interval elapses or the slicer's summary cadence fires,
//!   carrying the latest causal-progress clock.
//! - **Crash/restart resync**: every (re)connect handshakes a
//!   `SlicerHello` and adopts the server's epoch; the high-water mark
//!   in the ack fast-forwards the replay, so an at-least-once restart
//!   never double-counts. The agent also adopts any later
//!   `SlicerHelloAck` seen mid-stream (a duplicated hello frame under
//!   chaos re-registers and bumps the epoch — the agent must follow).
//! - **Kill switch**: tests flip an [`AtomicBool`] to crash the agent
//!   mid-stream; the server notices via the heartbeat timeout and
//!   degrades the tenant to `Unknown` until a restarted agent resumes.

use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use gpd::abstraction::{Decision, LocalRelevance, LocalSlicer, SlicerStats};

use crate::client::{backoff_delay, ClientConfig, ClientError};
use crate::protocol::{read_message, write_message, Message};

/// What a finished (or killed) slicer run observed.
#[derive(Debug, Clone, Default)]
pub struct SlicerReport {
    /// The slicer's message-complexity counters.
    pub stats: SlicerStats,
    /// Heartbeat frames sent.
    pub heartbeats: u64,
    /// Reconnects performed (0 on a fault-free run).
    pub reconnects: u64,
    /// In-flight events retransmitted after a reconnect.
    pub retransmits: u64,
    /// The last epoch the server adopted for this agent.
    pub epoch: u64,
    /// True when the kill switch stopped the run mid-stream (the
    /// stream was NOT fully delivered; restart to resume).
    pub killed: bool,
}

/// A per-process slicer agent.
pub struct SlicerAgent {
    config: ClientConfig,
    process: u32,
    relevance: LocalRelevance,
    /// Emit a causal summary after this many consecutive skips.
    summary_every: usize,
    /// Send a heartbeat when this much time passed since the last
    /// frame (event, summary, or heartbeat) left.
    heartbeat_interval: Duration,
    kill: Option<Arc<AtomicBool>>,
}

impl SlicerAgent {
    /// An agent for `process`, judging relevance with `relevance`.
    /// Defaults: summaries every 64 skips, heartbeats every 100 ms.
    pub fn new(config: ClientConfig, process: u32, relevance: LocalRelevance) -> Self {
        SlicerAgent {
            config,
            process,
            relevance,
            summary_every: 64,
            heartbeat_interval: Duration::from_millis(100),
            kill: None,
        }
    }

    /// Overrides the summary cadence (0 = never summarize).
    pub fn with_summary_every(mut self, every: usize) -> Self {
        self.summary_every = every;
        self
    }

    /// Overrides the heartbeat interval.
    pub fn with_heartbeat_interval(mut self, interval: Duration) -> Self {
        self.heartbeat_interval = interval;
        self
    }

    /// Installs a kill switch: when the flag turns true the agent
    /// stops abruptly (no `SlicerDone`, no goodbye), modeling a crash.
    pub fn with_kill_switch(mut self, kill: Arc<AtomicBool>) -> Self {
        self.kill = Some(kill);
        self
    }

    fn killed(&self) -> bool {
        self.kill.as_ref().is_some_and(|k| k.load(Ordering::SeqCst))
    }

    fn connect(&self) -> std::io::Result<TcpStream> {
        let stream = TcpStream::connect(&self.config.addr)?;
        stream.set_read_timeout(Some(self.config.io_timeout))?;
        stream.set_write_timeout(Some(self.config.io_timeout))?;
        stream.set_nodelay(true)?;
        Ok(stream)
    }

    /// Connects with backoff and handshakes a `SlicerHello`, proposing
    /// `epoch`. Returns the stream, the adopted epoch, and the
    /// process's high-water mark.
    fn connect_session(
        &self,
        initial: &[bool],
        epoch: u64,
        failures: &mut u32,
        attempts: &mut u32,
    ) -> Result<(TcpStream, u64, Option<u32>), ClientError> {
        loop {
            if *attempts >= self.config.max_retries {
                return Err(ClientError::RetriesExhausted {
                    attempts: *attempts,
                    last: "connect/slicer-hello budget exhausted".into(),
                });
            }
            *attempts += 1;
            if *failures > 0 {
                std::thread::sleep(backoff_delay(
                    self.config.backoff_base,
                    self.config.backoff_cap,
                    self.config.jitter_seed,
                    *failures - 1,
                ));
            }
            let result = self.connect().and_then(|mut stream| {
                write_message(
                    &mut stream,
                    &Message::SlicerHello {
                        tenant: self.config.tenant.clone(),
                        process: self.process,
                        epoch,
                        initial: initial.to_vec(),
                    },
                )?;
                let reply = read_message(&mut stream)?;
                Ok((stream, reply))
            });
            match result {
                Ok((stream, Message::SlicerHelloAck { epoch, high_water })) => {
                    *failures = 0;
                    return Ok((stream, epoch, high_water));
                }
                Ok((_, Message::Error { message })) => return Err(ClientError::Server(message)),
                Ok((_, other)) => {
                    return Err(ClientError::Protocol(format!(
                        "expected SlicerHelloAck, got {other:?}"
                    )))
                }
                Err(_) => {
                    *failures += 1;
                }
            }
        }
    }

    /// Replays this process's local states — `(clock, local_true)`
    /// pairs in local order, **excluding** the initial state (that
    /// travels in `initial`) — forwarding the abstraction-relevant
    /// ones. Returns after the `SlicerDone` handshake, or early (with
    /// `killed = true`) when the kill switch fires.
    ///
    /// # Errors
    ///
    /// [`ClientError::RetriesExhausted`] when faults outlast the retry
    /// budget, or a server/protocol error.
    pub fn run(
        &self,
        initial: &[bool],
        states: &[(Vec<u32>, bool)],
    ) -> Result<SlicerReport, ClientError> {
        let mut report = SlicerReport::default();
        let mut slicer = LocalSlicer::new(self.process as usize, self.summary_every);
        let mut failures = 0u32;
        let mut attempts = 0u32;
        let mut first_connect = true;
        // Next state to admit, and the admitted-but-unacked forward.
        let mut pos = 0usize;
        let mut pending: Option<Vec<u32>> = None;

        'session: loop {
            if self.killed() {
                report.killed = true;
                report.stats = slicer.stats();
                return Ok(report);
            }
            let (mut stream, epoch, high_water) =
                self.connect_session(initial, report.epoch, &mut failures, &mut attempts)?;
            report.epoch = epoch;
            if !first_connect {
                report.reconnects += 1;
            }
            first_connect = false;
            // Resync: states at or below the mark were applied in a
            // previous epoch. This settles the in-flight question too.
            slicer.resync(high_water);
            if let Some(clock) = pending.take() {
                let covered = high_water.is_some_and(|hw| clock[self.process as usize] <= hw);
                if !covered {
                    // Lost in flight: retransmit on the new session.
                    if self.send_event(&mut stream, &clock).is_err() {
                        failures += 1;
                        pending = Some(clock);
                        continue 'session;
                    }
                    report.retransmits += 1;
                    pending = Some(clock);
                }
            }
            let mut last_sent = Instant::now();

            loop {
                if self.killed() {
                    report.killed = true;
                    report.stats = slicer.stats();
                    return Ok(report);
                }
                // Wait for the ack of the in-flight event.
                if let Some(clock) = &pending {
                    let seq = clock[self.process as usize];
                    match read_message(&mut stream) {
                        Ok(Message::Ack {
                            process,
                            seq: acked,
                            ..
                        }) => {
                            if process == self.process && acked == seq {
                                pending = None;
                            }
                            // Stray acks of duplicated frames: ignore.
                        }
                        // A duplicated SlicerHello frame (chaos)
                        // re-registers and bumps the epoch; follow it
                        // so our heartbeats are not fenced as stale.
                        Ok(Message::SlicerHelloAck { epoch, .. }) => {
                            report.epoch = epoch;
                        }
                        Ok(Message::Error { message }) => return Err(ClientError::Server(message)),
                        Ok(other) => {
                            return Err(ClientError::Protocol(format!(
                                "expected Ack, got {other:?}"
                            )))
                        }
                        Err(_) => {
                            failures += 1;
                            continue 'session;
                        }
                    }
                    continue;
                }

                // Heartbeat when the interval elapsed with no traffic.
                if last_sent.elapsed() >= self.heartbeat_interval {
                    if self.send_beat(&mut stream, report.epoch, &slicer).is_err() {
                        failures += 1;
                        continue 'session;
                    }
                    report.heartbeats += 1;
                    last_sent = Instant::now();
                }

                // Admit states until one must be forwarded.
                let Some((clock, local_true)) = states.get(pos) else {
                    break; // stream fully replayed and acked
                };
                let relevant = self
                    .relevance
                    .relevant(clock[self.process as usize], *local_true);
                let vc = gpd_computation::VectorClock::from(clock.clone());
                match slicer.admit(&vc, relevant) {
                    Decision::Forward => {
                        if self.send_event(&mut stream, clock).is_err() {
                            failures += 1;
                            pending = Some(clock.clone());
                            pos += 1;
                            continue 'session;
                        }
                        pending = Some(clock.clone());
                        last_sent = Instant::now();
                    }
                    Decision::Summarize => {
                        if self.send_beat(&mut stream, report.epoch, &slicer).is_err() {
                            failures += 1;
                            pos += 1;
                            continue 'session;
                        }
                        report.heartbeats += 1;
                        last_sent = Instant::now();
                    }
                    Decision::Skip => {}
                }
                pos += 1;
            }

            // Graceful completion handshake.
            let progress = slicer
                .progress()
                .map(|c| c.as_slice().to_vec())
                .unwrap_or_default();
            let mut done_epoch = report.epoch;
            if write_message(
                &mut stream,
                &Message::SlicerDone {
                    process: self.process,
                    epoch: done_epoch,
                    progress: progress.clone(),
                },
            )
            .is_err()
            {
                failures += 1;
                continue 'session;
            }
            loop {
                match read_message(&mut stream) {
                    Ok(Message::SlicerDoneAck) => {
                        report.stats = slicer.stats();
                        return Ok(report);
                    }
                    // Stray acks of duplicated frames may still be
                    // queued ahead of the done-ack; drain them.
                    Ok(Message::Ack { .. }) => {}
                    Ok(Message::SlicerHelloAck { epoch, .. }) => {
                        report.epoch = epoch;
                        // A duplicated hello re-registered us under a
                        // newer epoch *after* our done left — that done
                        // was fenced as stale. Re-send it under the
                        // epoch the server actually holds, or the
                        // registry would count us dead forever.
                        if epoch > done_epoch {
                            done_epoch = epoch;
                            if write_message(
                                &mut stream,
                                &Message::SlicerDone {
                                    process: self.process,
                                    epoch: done_epoch,
                                    progress: progress.clone(),
                                },
                            )
                            .is_err()
                            {
                                failures += 1;
                                continue 'session;
                            }
                        }
                    }
                    Ok(Message::Error { message }) => return Err(ClientError::Server(message)),
                    Ok(other) => {
                        return Err(ClientError::Protocol(format!(
                            "expected SlicerDoneAck, got {other:?}"
                        )))
                    }
                    Err(_) => {
                        failures += 1;
                        continue 'session;
                    }
                }
            }
        }
    }

    fn send_event(&self, stream: &mut TcpStream, clock: &[u32]) -> std::io::Result<()> {
        write_message(
            stream,
            &Message::Event {
                process: self.process,
                clock: clock.to_vec(),
            },
        )
    }

    fn send_beat(
        &self,
        stream: &mut TcpStream,
        epoch: u64,
        slicer: &LocalSlicer,
    ) -> std::io::Result<()> {
        write_message(
            stream,
            &Message::Heartbeat {
                process: self.process,
                epoch,
                progress: slicer
                    .progress()
                    .map(|c| c.as_slice().to_vec())
                    .unwrap_or_default(),
            },
        )
    }
}
