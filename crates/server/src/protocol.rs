//! The length-prefixed TCP wire protocol between `gpd feed` clients,
//! the chaos proxy, and `gpd serve`.
//!
//! Every message travels as one frame:
//!
//! ```text
//! +-------------+--------------+
//! | len: u32 LE | body: len B  |
//! +-------------+--------------+
//! ```
//!
//! The body's first byte is the message tag. Integers are `u32` LE.
//! The protocol is deliberately std-only — no serialization crate — so
//! the server adds nothing to the dependency closure.
//!
//! ## Delivery contract
//!
//! A client's events for process `p` carry strictly increasing local
//! components `clock[p]`; that component doubles as the per-process
//! sequence number. The server acks every event with its `(process,
//! seq)` and a status. Under `--fsync always` an [`AckStatus::Accepted`]
//! ack means the event is durable on disk. After a reconnect the
//! [`Message::HelloAck`] carries per-process high-water marks so the
//! client resumes exactly past what the server already has —
//! at-least-once delivery with server-side dedup.

use std::io::{Read, Write};

/// Largest accepted frame body. A clock over the trace-format process
/// cap fits comfortably; anything larger is a framing error.
pub const MAX_FRAME: u32 = 1 << 20;

/// How the server classified one delivered event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AckStatus {
    /// New, logged durably (under `fsync always`), and applied.
    Accepted = 0,
    /// Same local component as one already applied — redelivery.
    Duplicate = 1,
    /// Older than the process's high-water mark — late redelivery.
    Stale = 2,
    /// Monitor queue full (backpressure): not logged, not applied.
    /// The client should back off and retransmit.
    Rejected = 3,
}

impl AckStatus {
    fn from_u8(byte: u8) -> Option<AckStatus> {
        match byte {
            0 => Some(AckStatus::Accepted),
            1 => Some(AckStatus::Duplicate),
            2 => Some(AckStatus::Stale),
            3 => Some(AckStatus::Rejected),
            _ => None,
        }
    }
}

/// A server-side counter snapshot, queryable over the wire. Aggregated
/// across all tenants; per-tenant rows travel in
/// [`Message::TenantStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Events accepted and applied to the monitor.
    pub observed: u64,
    /// Redeliveries screened out as duplicates.
    pub duplicates: u64,
    /// Redeliveries screened out as stale.
    pub stale: u64,
    /// Events rejected for backpressure (monitor queue full).
    pub rejected: u64,
    /// Records appended to the WAL (including the `Init` header).
    pub events_logged: u64,
    /// `Hello` messages on an already-initialized session — i.e.
    /// reconnects that resumed.
    pub resumes: u64,
    /// Current total queued states across all processes.
    pub queue_depth: u64,
    /// Live WAL segment files.
    pub wal_segments: u64,
    /// Tenants with live state on this server.
    pub tenants: u64,
    /// Live WAL bytes on disk across all tenants.
    pub wal_bytes: u64,
    /// Snapshot+compaction cycles performed.
    pub snapshots: u64,
}

/// One tenant's counter row in a [`Message::TenantStats`] reply.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TenantStatsRow {
    /// The tenant id (as given in `Hello`).
    pub tenant: String,
    /// Events accepted and applied to this tenant's monitor.
    pub observed: u64,
    /// Redeliveries screened out as duplicates.
    pub duplicates: u64,
    /// Redeliveries screened out as stale.
    pub stale: u64,
    /// Events rejected for backpressure.
    pub rejected: u64,
    /// Records appended to this tenant's WAL.
    pub events_logged: u64,
    /// Session resumes.
    pub resumes: u64,
    /// Current queued states across this tenant's processes.
    pub queue_depth: u64,
    /// High-water mark of `queue_depth` over the tenant's lifetime.
    pub queue_peak: u64,
    /// Live WAL segment files in this tenant's namespace.
    pub wal_segments: u64,
    /// Live WAL bytes in this tenant's namespace.
    pub wal_bytes: u64,
    /// Snapshot+compaction cycles for this tenant.
    pub snapshots: u64,
    /// Whether the tenant is quarantined (its predicate machinery
    /// panicked; sessions are refused until restart).
    pub quarantined: bool,
    /// Whether the tenant's conjunction has been detected.
    pub witness_found: bool,
    /// Why the tenant was quarantined (empty when not quarantined).
    pub quarantine_reason: String,
    /// Registered slicers currently considered live.
    pub slicers_live: u64,
    /// Registered slicers past their heartbeat timeout.
    pub slicers_dead: u64,
    /// Slicers that finished their streams gracefully.
    pub slicers_done: u64,
    /// Whether the tenant's decentralized verdict is degraded to
    /// `Unknown` (no witness yet, and either a slicer is dead or the
    /// tenant is quarantined — e.g. poisoned storage).
    pub degraded: bool,
    /// WAL records replayed when this tenant was recovered at startup.
    pub replayed: u64,
    /// Bytes recovery cut as a torn tail at startup — nonzero means an
    /// unclean shutdown lost un-acked (or, off `fsync always`, acked)
    /// data; operators should check client-side redelivery.
    pub recovered_truncated_bytes: u64,
    /// Whole segments recovery dropped after the torn one at startup.
    pub recovered_dropped_segments: u64,
    /// Appends rejected on transient storage errors (ENOSPC/EIO with a
    /// clean rollback — the tenant stayed in service).
    pub storage_errors: u64,
    /// Completed background scrub passes ([`Wal::scrub`](crate::wal::Wal::scrub)).
    pub scrub_passes: u64,
    /// Corrupt segments the scrubber found over the tenant's lifetime.
    pub scrub_corruptions: u64,
    /// Corrupt segments healed by compacting from the live monitor.
    pub scrub_healed: u64,
}

/// The three-valued verdict of a decentralized (slicer-fed) tenant —
/// the online counterpart of `gpd::budget::Verdict`: either a witness,
/// or "not yet" with every slicer accounted for, or `Unknown` with
/// sound progress bounds when a slicer died mid-stream.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SlicerVerdict {
    /// The witness cut once the conjunction held (sticky; a witness
    /// found before a crash survives the degradation).
    pub witness: Option<Vec<Vec<u32>>>,
    /// True when no witness is known AND some registered, unfinished
    /// slicer missed its heartbeat deadline: the verdict is `Unknown`,
    /// bounded below by `applied`/`explored`.
    pub degraded: bool,
    /// The processes whose slicers are past the heartbeat timeout.
    pub dead: Vec<u32>,
    /// Per process: the monitor's high-water mark — every relevant
    /// state with local component `<= applied[p]` has been applied.
    pub applied: Vec<Option<u32>>,
    /// Per process: the latest causal-progress clock the slicer
    /// reported (via events, summaries, or heartbeats) — the frontier
    /// up to which the computation is known explored even through
    /// false runs.
    pub explored: Vec<Option<Vec<u32>>>,
}

/// Whether `name` is a usable tenant id: 1–64 bytes of
/// `[A-Za-z0-9._-]`, not starting with a dot. Tenant ids become WAL
/// subdirectory names, so path separators and empty/hidden names are
/// refused at the protocol layer.
pub fn valid_tenant_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 64
        && !name.starts_with('.')
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'.' || b == b'_' || b == b'-')
}

/// The tenant every pre-multi-tenant client lands in.
pub const DEFAULT_TENANT: &str = "default";

/// One protocol message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Message {
    /// Client → server: open (or resume) a session for `tenant` over
    /// `initial.len()` processes whose variables start true/false as
    /// given. The first `Hello` for a tenant fixes its predicate shape;
    /// later sessions must match it exactly or are refused.
    Hello {
        /// The tenant id (see [`valid_tenant_name`]).
        tenant: String,
        /// Per-process initial truth of the local variable.
        initial: Vec<bool>,
    },
    /// Server → client: session open. `high_water[p]` is the largest
    /// local component already applied for process `p` (`None` when the
    /// server has seen nothing from `p`) — resume strictly after it.
    HelloAck {
        /// Per-process high-water marks.
        high_water: Vec<Option<u32>>,
    },
    /// Client → server: process `process` entered a true state with
    /// vector clock `clock`. Its sequence number is `clock[process]`.
    Event {
        /// The reporting process.
        process: u32,
        /// The state's vector clock.
        clock: Vec<u32>,
    },
    /// Server → client: disposition of the event `(process, seq)`.
    Ack {
        /// The event's process.
        process: u32,
        /// The event's local component.
        seq: u32,
        /// How the server classified it.
        status: AckStatus,
    },
    /// Client → server: report the current verdict for `tenant`. An
    /// empty tenant means "this connection's session tenant", falling
    /// back to [`DEFAULT_TENANT`] on a sessionless connection.
    VerdictQuery {
        /// The tenant whose verdict is wanted ("" = session's).
        tenant: String,
    },
    /// Server → client: `Some(witness)` once the conjunction has held —
    /// one vector clock per process, the componentwise-minimal witness.
    Verdict {
        /// The witness cut, if detected.
        witness: Option<Vec<Vec<u32>>>,
    },
    /// Client → server: report counters.
    StatsQuery,
    /// Server → client: counter snapshot.
    Stats(ServerStats),
    /// Client → server: drain the WALs, stop accepting connections, and
    /// shut down once in-flight connections finish. The ack carries the
    /// final verdict of `tenant` ("" = session's tenant, falling back
    /// to [`DEFAULT_TENANT`]).
    Shutdown {
        /// The tenant whose final verdict the ack should carry.
        tenant: String,
    },
    /// Server → client: shutdown acknowledged; carries the final
    /// verdict like [`Message::Verdict`].
    ShutdownAck {
        /// The final witness cut, if detected.
        witness: Option<Vec<Vec<u32>>>,
    },
    /// Server → client: the request could not be honored. The
    /// connection closes after this.
    Error {
        /// Human-readable reason.
        message: String,
    },
    /// Client → server: report per-tenant counters.
    TenantStatsQuery,
    /// Server → client: one counter row per live tenant, sorted by
    /// tenant id.
    TenantStats {
        /// The per-tenant rows.
        rows: Vec<TenantStatsRow>,
    },
    /// Slicer → server: open (or resume) a slicer session for one
    /// process of `tenant`. `epoch` is the slicer's incarnation number
    /// (0 on first boot); the server adopts
    /// `max(epoch, server_epoch + 1)` and replies with the adopted
    /// epoch plus the process's high-water mark, so a restarted slicer
    /// resumes past everything already applied and stale-epoch traffic
    /// can be fenced.
    SlicerHello {
        /// The tenant id (see [`valid_tenant_name`]).
        tenant: String,
        /// The process this slicer runs beside.
        process: u32,
        /// The slicer's proposed incarnation number.
        epoch: u64,
        /// Per-process initial truth (fixes/validates the tenant's
        /// predicate shape, exactly like [`Message::Hello`]).
        initial: Vec<bool>,
    },
    /// Server → slicer: slicer session open.
    SlicerHelloAck {
        /// The epoch the server adopted — strictly greater than any
        /// previously adopted for this process.
        epoch: u64,
        /// The largest local component already applied for this
        /// process (`None` if nothing yet) — resume strictly after it.
        high_water: Option<u32>,
    },
    /// Slicer → server: liveness beat carrying the slicer's causal
    /// progress clock (its latest observed state, relevant or not).
    /// Not acknowledged.
    Heartbeat {
        /// The reporting process.
        process: u32,
        /// The slicer's adopted epoch (stale epochs are ignored).
        epoch: u64,
        /// The latest observed vector clock (empty = none yet).
        progress: Vec<u32>,
    },
    /// Slicer → server: the slicer replayed its whole stream. A done
    /// slicer is exempt from liveness tracking — silence after `Done`
    /// is completion, not a crash.
    SlicerDone {
        /// The reporting process.
        process: u32,
        /// The slicer's adopted epoch.
        epoch: u64,
        /// The final progress clock (empty = none).
        progress: Vec<u32>,
    },
    /// Server → slicer: `SlicerDone` recorded durably in the session.
    SlicerDoneAck,
    /// Client → server: report the three-valued decentralized verdict
    /// for `tenant` ("" = session's tenant).
    SlicerStatusQuery {
        /// The tenant whose slicer verdict is wanted.
        tenant: String,
    },
    /// Server → client: the decentralized verdict.
    SlicerStatus(SlicerVerdict),
}

const TAG_HELLO: u8 = 1;
const TAG_HELLO_ACK: u8 = 2;
const TAG_EVENT: u8 = 3;
const TAG_ACK: u8 = 4;
const TAG_VERDICT_QUERY: u8 = 5;
const TAG_VERDICT: u8 = 6;
const TAG_STATS_QUERY: u8 = 7;
const TAG_STATS: u8 = 8;
const TAG_SHUTDOWN: u8 = 9;
const TAG_SHUTDOWN_ACK: u8 = 10;
const TAG_ERROR: u8 = 11;
const TAG_TENANT_STATS_QUERY: u8 = 12;
const TAG_TENANT_STATS: u8 = 13;
const TAG_SLICER_HELLO: u8 = 14;
const TAG_SLICER_HELLO_ACK: u8 = 15;
const TAG_HEARTBEAT: u8 = 16;
const TAG_SLICER_DONE: u8 = 17;
const TAG_SLICER_DONE_ACK: u8 = 18;
const TAG_SLICER_STATUS_QUERY: u8 = 19;
const TAG_SLICER_STATUS: u8 = 20;

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_clock(out: &mut Vec<u8>, clock: &[u32]) {
    put_u32(out, clock.len() as u32);
    for &c in clock {
        put_u32(out, c);
    }
}

fn put_string(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// `None` = 0, `Some(k)` = k+1 — the same presence-free encoding
/// `HelloAck` uses for high-water marks.
fn put_opt_u32(out: &mut Vec<u8>, v: Option<u32>) {
    put_u64(out, v.map_or(0, |k| k as u64 + 1));
}

fn put_witness(out: &mut Vec<u8>, witness: &Option<Vec<Vec<u32>>>) {
    match witness {
        None => out.push(0),
        Some(cut) => {
            out.push(1);
            put_u32(out, cut.len() as u32);
            for clock in cut {
                put_clock(out, clock);
            }
        }
    }
}

struct Decoder<'a> {
    bytes: &'a [u8],
}

impl<'a> Decoder<'a> {
    fn u8(&mut self) -> Option<u8> {
        let (&head, rest) = self.bytes.split_first()?;
        self.bytes = rest;
        Some(head)
    }

    fn u32(&mut self) -> Option<u32> {
        let (head, rest) = self.bytes.split_first_chunk::<4>()?;
        self.bytes = rest;
        Some(u32::from_le_bytes(*head))
    }

    fn u64(&mut self) -> Option<u64> {
        let (head, rest) = self.bytes.split_first_chunk::<8>()?;
        self.bytes = rest;
        Some(u64::from_le_bytes(*head))
    }

    fn clock(&mut self) -> Option<Vec<u32>> {
        let len = self.u32()? as usize;
        if len > self.bytes.len() / 4 + 1 {
            return None;
        }
        (0..len).map(|_| self.u32()).collect()
    }

    fn string(&mut self) -> Option<String> {
        let len = self.u32()? as usize;
        if len > self.bytes.len() {
            return None;
        }
        let (head, rest) = self.bytes.split_at(len);
        self.bytes = rest;
        String::from_utf8(head.to_vec()).ok()
    }

    fn opt_u32(&mut self) -> Option<Option<u32>> {
        let raw = self.u64()?;
        Some(if raw == 0 {
            None
        } else {
            Some((raw - 1) as u32)
        })
    }

    fn bool(&mut self) -> Option<bool> {
        match self.u8()? {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        }
    }

    fn witness(&mut self) -> Option<Option<Vec<Vec<u32>>>> {
        match self.u8()? {
            0 => Some(None),
            1 => {
                let n = self.u32()? as usize;
                if n > MAX_FRAME as usize / 4 {
                    return None;
                }
                let cut = (0..n).map(|_| self.clock()).collect::<Option<Vec<_>>>()?;
                Some(Some(cut))
            }
            _ => None,
        }
    }

    fn done(&self) -> bool {
        self.bytes.is_empty()
    }
}

impl Message {
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Message::Hello { tenant, initial } => {
                out.push(TAG_HELLO);
                let name = tenant.as_bytes();
                put_u32(&mut out, name.len() as u32);
                out.extend_from_slice(name);
                put_u32(&mut out, initial.len() as u32);
                out.extend(initial.iter().map(|&b| b as u8));
            }
            Message::HelloAck { high_water } => {
                out.push(TAG_HELLO_ACK);
                put_u32(&mut out, high_water.len() as u32);
                for hw in high_water {
                    // 0 = nothing seen; k+1 = high-water k. Avoids a
                    // separate presence byte per process.
                    put_u64(&mut out, hw.map_or(0, |k| k as u64 + 1));
                }
            }
            Message::Event { process, clock } => {
                out.push(TAG_EVENT);
                put_u32(&mut out, *process);
                put_clock(&mut out, clock);
            }
            Message::Ack {
                process,
                seq,
                status,
            } => {
                out.push(TAG_ACK);
                put_u32(&mut out, *process);
                put_u32(&mut out, *seq);
                out.push(*status as u8);
            }
            Message::VerdictQuery { tenant } => {
                out.push(TAG_VERDICT_QUERY);
                let name = tenant.as_bytes();
                put_u32(&mut out, name.len() as u32);
                out.extend_from_slice(name);
            }
            Message::Verdict { witness } => {
                out.push(TAG_VERDICT);
                put_witness(&mut out, witness);
            }
            Message::StatsQuery => out.push(TAG_STATS_QUERY),
            Message::Stats(stats) => {
                out.push(TAG_STATS);
                put_u64(&mut out, stats.observed);
                put_u64(&mut out, stats.duplicates);
                put_u64(&mut out, stats.stale);
                put_u64(&mut out, stats.rejected);
                put_u64(&mut out, stats.events_logged);
                put_u64(&mut out, stats.resumes);
                put_u64(&mut out, stats.queue_depth);
                put_u64(&mut out, stats.wal_segments);
                put_u64(&mut out, stats.tenants);
                put_u64(&mut out, stats.wal_bytes);
                put_u64(&mut out, stats.snapshots);
            }
            Message::Shutdown { tenant } => {
                out.push(TAG_SHUTDOWN);
                let name = tenant.as_bytes();
                put_u32(&mut out, name.len() as u32);
                out.extend_from_slice(name);
            }
            Message::ShutdownAck { witness } => {
                out.push(TAG_SHUTDOWN_ACK);
                put_witness(&mut out, witness);
            }
            Message::Error { message } => {
                out.push(TAG_ERROR);
                let bytes = message.as_bytes();
                put_u32(&mut out, bytes.len() as u32);
                out.extend_from_slice(bytes);
            }
            Message::TenantStatsQuery => out.push(TAG_TENANT_STATS_QUERY),
            Message::TenantStats { rows } => {
                out.push(TAG_TENANT_STATS);
                put_u32(&mut out, rows.len() as u32);
                for row in rows {
                    let name = row.tenant.as_bytes();
                    put_u32(&mut out, name.len() as u32);
                    out.extend_from_slice(name);
                    put_u64(&mut out, row.observed);
                    put_u64(&mut out, row.duplicates);
                    put_u64(&mut out, row.stale);
                    put_u64(&mut out, row.rejected);
                    put_u64(&mut out, row.events_logged);
                    put_u64(&mut out, row.resumes);
                    put_u64(&mut out, row.queue_depth);
                    put_u64(&mut out, row.queue_peak);
                    put_u64(&mut out, row.wal_segments);
                    put_u64(&mut out, row.wal_bytes);
                    put_u64(&mut out, row.snapshots);
                    out.push(row.quarantined as u8);
                    out.push(row.witness_found as u8);
                    put_string(&mut out, &row.quarantine_reason);
                    put_u64(&mut out, row.slicers_live);
                    put_u64(&mut out, row.slicers_dead);
                    put_u64(&mut out, row.slicers_done);
                    out.push(row.degraded as u8);
                    put_u64(&mut out, row.replayed);
                    put_u64(&mut out, row.recovered_truncated_bytes);
                    put_u64(&mut out, row.recovered_dropped_segments);
                    put_u64(&mut out, row.storage_errors);
                    put_u64(&mut out, row.scrub_passes);
                    put_u64(&mut out, row.scrub_corruptions);
                    put_u64(&mut out, row.scrub_healed);
                }
            }
            Message::SlicerHello {
                tenant,
                process,
                epoch,
                initial,
            } => {
                out.push(TAG_SLICER_HELLO);
                put_string(&mut out, tenant);
                put_u32(&mut out, *process);
                put_u64(&mut out, *epoch);
                put_u32(&mut out, initial.len() as u32);
                out.extend(initial.iter().map(|&b| b as u8));
            }
            Message::SlicerHelloAck { epoch, high_water } => {
                out.push(TAG_SLICER_HELLO_ACK);
                put_u64(&mut out, *epoch);
                put_opt_u32(&mut out, *high_water);
            }
            Message::Heartbeat {
                process,
                epoch,
                progress,
            } => {
                out.push(TAG_HEARTBEAT);
                put_u32(&mut out, *process);
                put_u64(&mut out, *epoch);
                put_clock(&mut out, progress);
            }
            Message::SlicerDone {
                process,
                epoch,
                progress,
            } => {
                out.push(TAG_SLICER_DONE);
                put_u32(&mut out, *process);
                put_u64(&mut out, *epoch);
                put_clock(&mut out, progress);
            }
            Message::SlicerDoneAck => out.push(TAG_SLICER_DONE_ACK),
            Message::SlicerStatusQuery { tenant } => {
                out.push(TAG_SLICER_STATUS_QUERY);
                put_string(&mut out, tenant);
            }
            Message::SlicerStatus(v) => {
                out.push(TAG_SLICER_STATUS);
                put_witness(&mut out, &v.witness);
                out.push(v.degraded as u8);
                put_u32(&mut out, v.dead.len() as u32);
                for &p in &v.dead {
                    put_u32(&mut out, p);
                }
                put_u32(&mut out, v.applied.len() as u32);
                for &hw in &v.applied {
                    put_opt_u32(&mut out, hw);
                }
                put_u32(&mut out, v.explored.len() as u32);
                for clock in &v.explored {
                    match clock {
                        None => out.push(0),
                        Some(c) => {
                            out.push(1);
                            put_clock(&mut out, c);
                        }
                    }
                }
            }
        }
        out
    }

    fn decode(body: &[u8]) -> Option<Message> {
        let mut d = Decoder { bytes: body };
        let message = match d.u8()? {
            TAG_HELLO => {
                let tenant = d.string()?;
                let n = d.u32()? as usize;
                if n > d.bytes.len() {
                    return None;
                }
                let initial = (0..n)
                    .map(|_| match d.u8()? {
                        0 => Some(false),
                        1 => Some(true),
                        _ => None,
                    })
                    .collect::<Option<Vec<bool>>>()?;
                Message::Hello { tenant, initial }
            }
            TAG_HELLO_ACK => {
                let n = d.u32()? as usize;
                if n > d.bytes.len() / 8 + 1 {
                    return None;
                }
                let high_water = (0..n)
                    .map(|_| {
                        let raw = d.u64()?;
                        Some(if raw == 0 {
                            None
                        } else {
                            Some((raw - 1) as u32)
                        })
                    })
                    .collect::<Option<Vec<Option<u32>>>>()?;
                Message::HelloAck { high_water }
            }
            TAG_EVENT => Message::Event {
                process: d.u32()?,
                clock: d.clock()?,
            },
            TAG_ACK => Message::Ack {
                process: d.u32()?,
                seq: d.u32()?,
                status: AckStatus::from_u8(d.u8()?)?,
            },
            TAG_VERDICT_QUERY => Message::VerdictQuery {
                tenant: d.string()?,
            },
            TAG_VERDICT => Message::Verdict {
                witness: d.witness()?,
            },
            TAG_STATS_QUERY => Message::StatsQuery,
            TAG_STATS => Message::Stats(ServerStats {
                observed: d.u64()?,
                duplicates: d.u64()?,
                stale: d.u64()?,
                rejected: d.u64()?,
                events_logged: d.u64()?,
                resumes: d.u64()?,
                queue_depth: d.u64()?,
                wal_segments: d.u64()?,
                tenants: d.u64()?,
                wal_bytes: d.u64()?,
                snapshots: d.u64()?,
            }),
            TAG_SHUTDOWN => Message::Shutdown {
                tenant: d.string()?,
            },
            TAG_SHUTDOWN_ACK => Message::ShutdownAck {
                witness: d.witness()?,
            },
            TAG_ERROR => {
                let len = d.u32()? as usize;
                if len != d.bytes.len() {
                    return None;
                }
                let message = String::from_utf8(d.bytes.to_vec()).ok()?;
                d.bytes = &[];
                Message::Error { message }
            }
            TAG_TENANT_STATS_QUERY => Message::TenantStatsQuery,
            TAG_TENANT_STATS => {
                let count = d.u32()? as usize;
                // Each row is at least its 21 counters plus three flags
                // and two length prefixes.
                if count > d.bytes.len() / 179 + 1 {
                    return None;
                }
                let rows = (0..count)
                    .map(|_| {
                        Some(TenantStatsRow {
                            tenant: d.string()?,
                            observed: d.u64()?,
                            duplicates: d.u64()?,
                            stale: d.u64()?,
                            rejected: d.u64()?,
                            events_logged: d.u64()?,
                            resumes: d.u64()?,
                            queue_depth: d.u64()?,
                            queue_peak: d.u64()?,
                            wal_segments: d.u64()?,
                            wal_bytes: d.u64()?,
                            snapshots: d.u64()?,
                            quarantined: d.bool()?,
                            witness_found: d.bool()?,
                            quarantine_reason: d.string()?,
                            slicers_live: d.u64()?,
                            slicers_dead: d.u64()?,
                            slicers_done: d.u64()?,
                            degraded: d.bool()?,
                            replayed: d.u64()?,
                            recovered_truncated_bytes: d.u64()?,
                            recovered_dropped_segments: d.u64()?,
                            storage_errors: d.u64()?,
                            scrub_passes: d.u64()?,
                            scrub_corruptions: d.u64()?,
                            scrub_healed: d.u64()?,
                        })
                    })
                    .collect::<Option<Vec<_>>>()?;
                Message::TenantStats { rows }
            }
            TAG_SLICER_HELLO => {
                let tenant = d.string()?;
                let process = d.u32()?;
                let epoch = d.u64()?;
                let n = d.u32()? as usize;
                if n > d.bytes.len() {
                    return None;
                }
                let initial = (0..n).map(|_| d.bool()).collect::<Option<Vec<bool>>>()?;
                Message::SlicerHello {
                    tenant,
                    process,
                    epoch,
                    initial,
                }
            }
            TAG_SLICER_HELLO_ACK => Message::SlicerHelloAck {
                epoch: d.u64()?,
                high_water: d.opt_u32()?,
            },
            TAG_HEARTBEAT => Message::Heartbeat {
                process: d.u32()?,
                epoch: d.u64()?,
                progress: d.clock()?,
            },
            TAG_SLICER_DONE => Message::SlicerDone {
                process: d.u32()?,
                epoch: d.u64()?,
                progress: d.clock()?,
            },
            TAG_SLICER_DONE_ACK => Message::SlicerDoneAck,
            TAG_SLICER_STATUS_QUERY => Message::SlicerStatusQuery {
                tenant: d.string()?,
            },
            TAG_SLICER_STATUS => {
                let witness = d.witness()?;
                let degraded = d.bool()?;
                let n_dead = d.u32()? as usize;
                if n_dead > d.bytes.len() / 4 + 1 {
                    return None;
                }
                let dead = (0..n_dead).map(|_| d.u32()).collect::<Option<Vec<_>>>()?;
                let n_applied = d.u32()? as usize;
                if n_applied > d.bytes.len() / 8 + 1 {
                    return None;
                }
                let applied = (0..n_applied)
                    .map(|_| d.opt_u32())
                    .collect::<Option<Vec<_>>>()?;
                let n_explored = d.u32()? as usize;
                if n_explored > d.bytes.len() {
                    return None;
                }
                let explored = (0..n_explored)
                    .map(|_| match d.u8()? {
                        0 => Some(None),
                        1 => Some(Some(d.clock()?)),
                        _ => None,
                    })
                    .collect::<Option<Vec<_>>>()?;
                Message::SlicerStatus(SlicerVerdict {
                    witness,
                    degraded,
                    dead,
                    applied,
                    explored,
                })
            }
            _ => return None,
        };
        if !d.done() {
            return None;
        }
        Some(message)
    }
}

/// Reads one raw frame body (without the length prefix).
///
/// # Errors
///
/// `UnexpectedEof` on a closed peer, `InvalidData` on an oversized or
/// zero-length frame, or any underlying I/O error (including timeouts).
pub fn read_frame(r: &mut impl Read) -> std::io::Result<Vec<u8>> {
    let mut len_bytes = [0u8; 4];
    r.read_exact(&mut len_bytes)?;
    let len = u32::from_le_bytes(len_bytes);
    if len == 0 || len > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("bad frame length {len}"),
        ));
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)?;
    Ok(body)
}

/// Writes one raw frame body with its length prefix.
///
/// # Errors
///
/// Any underlying I/O error.
pub fn write_frame(w: &mut impl Write, body: &[u8]) -> std::io::Result<()> {
    debug_assert!(!body.is_empty() && body.len() <= MAX_FRAME as usize);
    let mut frame = Vec::with_capacity(4 + body.len());
    frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
    frame.extend_from_slice(body);
    w.write_all(&frame)
}

/// Writes one message as a frame.
///
/// # Errors
///
/// Any underlying I/O error.
pub fn write_message(w: &mut impl Write, message: &Message) -> std::io::Result<()> {
    write_frame(w, &message.encode())
}

/// Reads one message.
///
/// # Errors
///
/// As [`read_frame`], plus `InvalidData` when the body does not decode.
pub fn read_message(r: &mut impl Read) -> std::io::Result<Message> {
    let body = read_frame(r)?;
    Message::decode(&body)
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "undecodable message"))
}

/// Tries to split one complete message off the front of `buf` without
/// blocking: `Ok(None)` when more bytes are needed, otherwise the
/// decoded message and the total bytes consumed (length prefix +
/// body). The event-driven server calls this on a connection's receive
/// buffer after every nonblocking read.
///
/// # Errors
///
/// `InvalidData` on a zero/oversized frame length or an undecodable
/// body — the connection should be dropped.
pub fn parse_message(buf: &[u8]) -> std::io::Result<Option<(Message, usize)>> {
    let Some((head, rest)) = buf.split_first_chunk::<4>() else {
        return Ok(None);
    };
    let len = u32::from_le_bytes(*head);
    if len == 0 || len > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("bad frame length {len}"),
        ));
    }
    if rest.len() < len as usize {
        return Ok(None);
    }
    let message = Message::decode(&rest[..len as usize]).ok_or_else(|| {
        std::io::Error::new(std::io::ErrorKind::InvalidData, "undecodable message")
    })?;
    Ok(Some((message, 4 + len as usize)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(message: Message) {
        let mut buf = Vec::new();
        write_message(&mut buf, &message).unwrap();
        let decoded = read_message(&mut buf.as_slice()).unwrap();
        assert_eq!(decoded, message);
    }

    #[test]
    fn all_messages_roundtrip() {
        roundtrip(Message::Hello {
            tenant: "default".into(),
            initial: vec![true, false, true],
        });
        roundtrip(Message::Hello {
            tenant: "team-7.prod".into(),
            initial: vec![],
        });
        roundtrip(Message::HelloAck {
            high_water: vec![None, Some(0), Some(41)],
        });
        roundtrip(Message::Event {
            process: 2,
            clock: vec![0, 7, 3],
        });
        for status in [
            AckStatus::Accepted,
            AckStatus::Duplicate,
            AckStatus::Stale,
            AckStatus::Rejected,
        ] {
            roundtrip(Message::Ack {
                process: 1,
                seq: 9,
                status,
            });
        }
        roundtrip(Message::VerdictQuery { tenant: "".into() });
        roundtrip(Message::VerdictQuery {
            tenant: "team-7".into(),
        });
        roundtrip(Message::Verdict { witness: None });
        roundtrip(Message::Verdict {
            witness: Some(vec![vec![1, 0], vec![1, 2]]),
        });
        roundtrip(Message::StatsQuery);
        roundtrip(Message::Stats(ServerStats {
            observed: 10,
            duplicates: 2,
            stale: 1,
            rejected: 3,
            events_logged: 11,
            resumes: 4,
            queue_depth: 5,
            wal_segments: 2,
            tenants: 6,
            wal_bytes: 1234,
            snapshots: 1,
        }));
        roundtrip(Message::TenantStatsQuery);
        roundtrip(Message::TenantStats { rows: vec![] });
        roundtrip(Message::TenantStats {
            rows: vec![
                TenantStatsRow {
                    tenant: "a".into(),
                    observed: 1,
                    queue_peak: 7,
                    wal_bytes: 99,
                    witness_found: true,
                    ..TenantStatsRow::default()
                },
                TenantStatsRow {
                    tenant: "b".into(),
                    quarantined: true,
                    ..TenantStatsRow::default()
                },
            ],
        });
        roundtrip(Message::Shutdown { tenant: "".into() });
        roundtrip(Message::Shutdown {
            tenant: "default".into(),
        });
        roundtrip(Message::ShutdownAck { witness: None });
        roundtrip(Message::ShutdownAck {
            witness: Some(vec![vec![3], vec![]]),
        });
        roundtrip(Message::Error {
            message: "process 9 out of range".into(),
        });
        roundtrip(Message::SlicerHello {
            tenant: "team-7".into(),
            process: 3,
            epoch: 0,
            initial: vec![false, true, false, false],
        });
        roundtrip(Message::SlicerHelloAck {
            epoch: 5,
            high_water: None,
        });
        roundtrip(Message::SlicerHelloAck {
            epoch: 1,
            high_water: Some(0),
        });
        roundtrip(Message::Heartbeat {
            process: 2,
            epoch: 7,
            progress: vec![],
        });
        roundtrip(Message::Heartbeat {
            process: 2,
            epoch: 7,
            progress: vec![4, 0, 9],
        });
        roundtrip(Message::SlicerDone {
            process: 0,
            epoch: 1,
            progress: vec![8, 8],
        });
        roundtrip(Message::SlicerDoneAck);
        roundtrip(Message::SlicerStatusQuery { tenant: "".into() });
        roundtrip(Message::SlicerStatus(SlicerVerdict::default()));
        roundtrip(Message::SlicerStatus(SlicerVerdict {
            witness: Some(vec![vec![1, 0], vec![1, 2]]),
            degraded: false,
            dead: vec![],
            applied: vec![Some(1), Some(2)],
            explored: vec![Some(vec![3, 0]), None],
        }));
        roundtrip(Message::SlicerStatus(SlicerVerdict {
            witness: None,
            degraded: true,
            dead: vec![1, 3],
            applied: vec![None, Some(0), Some(7), None],
            explored: vec![None, Some(vec![0, 1, 0, 0]), Some(vec![2, 9, 9, 1]), None],
        }));
        roundtrip(Message::TenantStats {
            rows: vec![TenantStatsRow {
                tenant: "q".into(),
                quarantined: true,
                quarantine_reason: "predicate panicked at event 7".into(),
                slicers_live: 3,
                slicers_dead: 1,
                slicers_done: 2,
                degraded: true,
                ..TenantStatsRow::default()
            }],
        });
        roundtrip(Message::TenantStats {
            rows: vec![TenantStatsRow {
                tenant: "storage".into(),
                replayed: 42,
                recovered_truncated_bytes: 87,
                recovered_dropped_segments: 2,
                storage_errors: 5,
                scrub_passes: 9,
                scrub_corruptions: 1,
                scrub_healed: 1,
                ..TenantStatsRow::default()
            }],
        });
    }

    #[test]
    fn hostile_slicer_status_counts_are_bounded() {
        // A SlicerStatus claiming 2^32-1 dead entries in a tiny body
        // must be rejected by the size guard, not attempted.
        let mut body = vec![
            TAG_SLICER_STATUS,
            0, /* no witness */
            0, /* not degraded */
        ];
        body.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(Message::decode(&body).is_none());
    }

    #[test]
    fn truncated_bodies_do_not_decode() {
        let mut buf = Vec::new();
        write_message(
            &mut buf,
            &Message::Event {
                process: 0,
                clock: vec![1, 2, 3],
            },
        )
        .unwrap();
        // Shorten the body but fix up the length prefix so only the
        // decoder (not the framer) can notice.
        let body = &buf[4..buf.len() - 2];
        assert!(Message::decode(body).is_none());
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut body = Message::StatsQuery.encode();
        body.push(0);
        assert!(Message::decode(&body).is_none());
    }

    #[test]
    fn oversized_and_empty_frames_error() {
        let mut huge = Vec::new();
        huge.extend_from_slice(&(MAX_FRAME + 1).to_le_bytes());
        assert_eq!(
            read_frame(&mut huge.as_slice()).unwrap_err().kind(),
            std::io::ErrorKind::InvalidData
        );
        let zero = 0u32.to_le_bytes();
        assert_eq!(
            read_frame(&mut zero.as_slice()).unwrap_err().kind(),
            std::io::ErrorKind::InvalidData
        );
    }

    #[test]
    fn parse_message_is_incremental() {
        let mut buf = Vec::new();
        let first = Message::Event {
            process: 1,
            clock: vec![4, 5],
        };
        write_message(&mut buf, &first).unwrap();
        write_message(&mut buf, &Message::StatsQuery).unwrap();
        // Nothing decodes until the first frame is complete...
        for cut in 0..buf.len() {
            let parsed = parse_message(&buf[..cut]).unwrap();
            if cut < 4 + first.encode().len() {
                assert!(parsed.is_none(), "cut={cut}");
            } else {
                let (m, used) = parsed.unwrap();
                assert_eq!(m, first, "cut={cut}");
                assert_eq!(used, 4 + first.encode().len());
            }
        }
        // ...and consuming it exposes the second.
        let (_, used) = parse_message(&buf).unwrap().unwrap();
        let (second, used2) = parse_message(&buf[used..]).unwrap().unwrap();
        assert_eq!(second, Message::StatsQuery);
        assert_eq!(used + used2, buf.len());
        // Bad lengths are hard errors, not "wait for more".
        assert!(parse_message(&[0, 0, 0, 0, 9]).is_err());
        assert!(parse_message(&(MAX_FRAME + 1).to_le_bytes()).is_err());
    }

    #[test]
    fn tenant_names_are_vetted() {
        for good in ["default", "a", "team-7.prod", "X_1", &"t".repeat(64)] {
            assert!(valid_tenant_name(good), "{good:?}");
        }
        for bad in [
            "",
            ".hidden",
            "a/b",
            "a\\b",
            "..",
            "white space",
            "naïve",
            &"t".repeat(65),
        ] {
            assert!(!valid_tenant_name(bad), "{bad:?}");
        }
    }

    #[test]
    fn closed_peer_reads_as_eof() {
        let empty: &[u8] = &[];
        assert_eq!(
            read_message(&mut &*empty).unwrap_err().kind(),
            std::io::ErrorKind::UnexpectedEof
        );
    }
}
