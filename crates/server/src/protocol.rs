//! The length-prefixed TCP wire protocol between `gpd feed` clients,
//! the chaos proxy, and `gpd serve`.
//!
//! Every message travels as one frame:
//!
//! ```text
//! +-------------+--------------+
//! | len: u32 LE | body: len B  |
//! +-------------+--------------+
//! ```
//!
//! The body's first byte is the message tag. Integers are `u32` LE.
//! The protocol is deliberately std-only — no serialization crate — so
//! the server adds nothing to the dependency closure.
//!
//! ## Delivery contract
//!
//! A client's events for process `p` carry strictly increasing local
//! components `clock[p]`; that component doubles as the per-process
//! sequence number. The server acks every event with its `(process,
//! seq)` and a status. Under `--fsync always` an [`AckStatus::Accepted`]
//! ack means the event is durable on disk. After a reconnect the
//! [`Message::HelloAck`] carries per-process high-water marks so the
//! client resumes exactly past what the server already has —
//! at-least-once delivery with server-side dedup.

use std::io::{Read, Write};

/// Largest accepted frame body. A clock over the trace-format process
/// cap fits comfortably; anything larger is a framing error.
pub const MAX_FRAME: u32 = 1 << 20;

/// How the server classified one delivered event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AckStatus {
    /// New, logged durably (under `fsync always`), and applied.
    Accepted = 0,
    /// Same local component as one already applied — redelivery.
    Duplicate = 1,
    /// Older than the process's high-water mark — late redelivery.
    Stale = 2,
    /// Monitor queue full (backpressure): not logged, not applied.
    /// The client should back off and retransmit.
    Rejected = 3,
}

impl AckStatus {
    fn from_u8(byte: u8) -> Option<AckStatus> {
        match byte {
            0 => Some(AckStatus::Accepted),
            1 => Some(AckStatus::Duplicate),
            2 => Some(AckStatus::Stale),
            3 => Some(AckStatus::Rejected),
            _ => None,
        }
    }
}

/// A server-side counter snapshot, queryable over the wire.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Events accepted and applied to the monitor.
    pub observed: u64,
    /// Redeliveries screened out as duplicates.
    pub duplicates: u64,
    /// Redeliveries screened out as stale.
    pub stale: u64,
    /// Events rejected for backpressure (monitor queue full).
    pub rejected: u64,
    /// Records appended to the WAL (including the `Init` header).
    pub events_logged: u64,
    /// `Hello` messages on an already-initialized session — i.e.
    /// reconnects that resumed.
    pub resumes: u64,
    /// Current total queued states across all processes.
    pub queue_depth: u64,
    /// WAL segment files written so far.
    pub wal_segments: u64,
}

/// One protocol message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Message {
    /// Client → server: open (or resume) a session over `initial.len()`
    /// processes whose variables start true/false as given.
    Hello {
        /// Per-process initial truth of the local variable.
        initial: Vec<bool>,
    },
    /// Server → client: session open. `high_water[p]` is the largest
    /// local component already applied for process `p` (`None` when the
    /// server has seen nothing from `p`) — resume strictly after it.
    HelloAck {
        /// Per-process high-water marks.
        high_water: Vec<Option<u32>>,
    },
    /// Client → server: process `process` entered a true state with
    /// vector clock `clock`. Its sequence number is `clock[process]`.
    Event {
        /// The reporting process.
        process: u32,
        /// The state's vector clock.
        clock: Vec<u32>,
    },
    /// Server → client: disposition of the event `(process, seq)`.
    Ack {
        /// The event's process.
        process: u32,
        /// The event's local component.
        seq: u32,
        /// How the server classified it.
        status: AckStatus,
    },
    /// Client → server: report the current verdict.
    VerdictQuery,
    /// Server → client: `Some(witness)` once the conjunction has held —
    /// one vector clock per process, the componentwise-minimal witness.
    Verdict {
        /// The witness cut, if detected.
        witness: Option<Vec<Vec<u32>>>,
    },
    /// Client → server: report counters.
    StatsQuery,
    /// Server → client: counter snapshot.
    Stats(ServerStats),
    /// Client → server: drain the WAL, stop accepting connections, and
    /// shut down once in-flight connections finish.
    Shutdown,
    /// Server → client: shutdown acknowledged; carries the final
    /// verdict like [`Message::Verdict`].
    ShutdownAck {
        /// The final witness cut, if detected.
        witness: Option<Vec<Vec<u32>>>,
    },
    /// Server → client: the request could not be honored. The
    /// connection closes after this.
    Error {
        /// Human-readable reason.
        message: String,
    },
}

const TAG_HELLO: u8 = 1;
const TAG_HELLO_ACK: u8 = 2;
const TAG_EVENT: u8 = 3;
const TAG_ACK: u8 = 4;
const TAG_VERDICT_QUERY: u8 = 5;
const TAG_VERDICT: u8 = 6;
const TAG_STATS_QUERY: u8 = 7;
const TAG_STATS: u8 = 8;
const TAG_SHUTDOWN: u8 = 9;
const TAG_SHUTDOWN_ACK: u8 = 10;
const TAG_ERROR: u8 = 11;

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_clock(out: &mut Vec<u8>, clock: &[u32]) {
    put_u32(out, clock.len() as u32);
    for &c in clock {
        put_u32(out, c);
    }
}

fn put_witness(out: &mut Vec<u8>, witness: &Option<Vec<Vec<u32>>>) {
    match witness {
        None => out.push(0),
        Some(cut) => {
            out.push(1);
            put_u32(out, cut.len() as u32);
            for clock in cut {
                put_clock(out, clock);
            }
        }
    }
}

struct Decoder<'a> {
    bytes: &'a [u8],
}

impl<'a> Decoder<'a> {
    fn u8(&mut self) -> Option<u8> {
        let (&head, rest) = self.bytes.split_first()?;
        self.bytes = rest;
        Some(head)
    }

    fn u32(&mut self) -> Option<u32> {
        let (head, rest) = self.bytes.split_first_chunk::<4>()?;
        self.bytes = rest;
        Some(u32::from_le_bytes(*head))
    }

    fn u64(&mut self) -> Option<u64> {
        let (head, rest) = self.bytes.split_first_chunk::<8>()?;
        self.bytes = rest;
        Some(u64::from_le_bytes(*head))
    }

    fn clock(&mut self) -> Option<Vec<u32>> {
        let len = self.u32()? as usize;
        if len > self.bytes.len() / 4 + 1 {
            return None;
        }
        (0..len).map(|_| self.u32()).collect()
    }

    fn witness(&mut self) -> Option<Option<Vec<Vec<u32>>>> {
        match self.u8()? {
            0 => Some(None),
            1 => {
                let n = self.u32()? as usize;
                if n > MAX_FRAME as usize / 4 {
                    return None;
                }
                let cut = (0..n).map(|_| self.clock()).collect::<Option<Vec<_>>>()?;
                Some(Some(cut))
            }
            _ => None,
        }
    }

    fn done(&self) -> bool {
        self.bytes.is_empty()
    }
}

impl Message {
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Message::Hello { initial } => {
                out.push(TAG_HELLO);
                put_u32(&mut out, initial.len() as u32);
                out.extend(initial.iter().map(|&b| b as u8));
            }
            Message::HelloAck { high_water } => {
                out.push(TAG_HELLO_ACK);
                put_u32(&mut out, high_water.len() as u32);
                for hw in high_water {
                    // 0 = nothing seen; k+1 = high-water k. Avoids a
                    // separate presence byte per process.
                    put_u64(&mut out, hw.map_or(0, |k| k as u64 + 1));
                }
            }
            Message::Event { process, clock } => {
                out.push(TAG_EVENT);
                put_u32(&mut out, *process);
                put_clock(&mut out, clock);
            }
            Message::Ack {
                process,
                seq,
                status,
            } => {
                out.push(TAG_ACK);
                put_u32(&mut out, *process);
                put_u32(&mut out, *seq);
                out.push(*status as u8);
            }
            Message::VerdictQuery => out.push(TAG_VERDICT_QUERY),
            Message::Verdict { witness } => {
                out.push(TAG_VERDICT);
                put_witness(&mut out, witness);
            }
            Message::StatsQuery => out.push(TAG_STATS_QUERY),
            Message::Stats(stats) => {
                out.push(TAG_STATS);
                put_u64(&mut out, stats.observed);
                put_u64(&mut out, stats.duplicates);
                put_u64(&mut out, stats.stale);
                put_u64(&mut out, stats.rejected);
                put_u64(&mut out, stats.events_logged);
                put_u64(&mut out, stats.resumes);
                put_u64(&mut out, stats.queue_depth);
                put_u64(&mut out, stats.wal_segments);
            }
            Message::Shutdown => out.push(TAG_SHUTDOWN),
            Message::ShutdownAck { witness } => {
                out.push(TAG_SHUTDOWN_ACK);
                put_witness(&mut out, witness);
            }
            Message::Error { message } => {
                out.push(TAG_ERROR);
                let bytes = message.as_bytes();
                put_u32(&mut out, bytes.len() as u32);
                out.extend_from_slice(bytes);
            }
        }
        out
    }

    fn decode(body: &[u8]) -> Option<Message> {
        let mut d = Decoder { bytes: body };
        let message = match d.u8()? {
            TAG_HELLO => {
                let n = d.u32()? as usize;
                if n > d.bytes.len() {
                    return None;
                }
                let initial = (0..n)
                    .map(|_| match d.u8()? {
                        0 => Some(false),
                        1 => Some(true),
                        _ => None,
                    })
                    .collect::<Option<Vec<bool>>>()?;
                Message::Hello { initial }
            }
            TAG_HELLO_ACK => {
                let n = d.u32()? as usize;
                if n > d.bytes.len() / 8 + 1 {
                    return None;
                }
                let high_water = (0..n)
                    .map(|_| {
                        let raw = d.u64()?;
                        Some(if raw == 0 {
                            None
                        } else {
                            Some((raw - 1) as u32)
                        })
                    })
                    .collect::<Option<Vec<Option<u32>>>>()?;
                Message::HelloAck { high_water }
            }
            TAG_EVENT => Message::Event {
                process: d.u32()?,
                clock: d.clock()?,
            },
            TAG_ACK => Message::Ack {
                process: d.u32()?,
                seq: d.u32()?,
                status: AckStatus::from_u8(d.u8()?)?,
            },
            TAG_VERDICT_QUERY => Message::VerdictQuery,
            TAG_VERDICT => Message::Verdict {
                witness: d.witness()?,
            },
            TAG_STATS_QUERY => Message::StatsQuery,
            TAG_STATS => Message::Stats(ServerStats {
                observed: d.u64()?,
                duplicates: d.u64()?,
                stale: d.u64()?,
                rejected: d.u64()?,
                events_logged: d.u64()?,
                resumes: d.u64()?,
                queue_depth: d.u64()?,
                wal_segments: d.u64()?,
            }),
            TAG_SHUTDOWN => Message::Shutdown,
            TAG_SHUTDOWN_ACK => Message::ShutdownAck {
                witness: d.witness()?,
            },
            TAG_ERROR => {
                let len = d.u32()? as usize;
                if len != d.bytes.len() {
                    return None;
                }
                let message = String::from_utf8(d.bytes.to_vec()).ok()?;
                d.bytes = &[];
                Message::Error { message }
            }
            _ => return None,
        };
        if !d.done() {
            return None;
        }
        Some(message)
    }
}

/// Reads one raw frame body (without the length prefix).
///
/// # Errors
///
/// `UnexpectedEof` on a closed peer, `InvalidData` on an oversized or
/// zero-length frame, or any underlying I/O error (including timeouts).
pub fn read_frame(r: &mut impl Read) -> std::io::Result<Vec<u8>> {
    let mut len_bytes = [0u8; 4];
    r.read_exact(&mut len_bytes)?;
    let len = u32::from_le_bytes(len_bytes);
    if len == 0 || len > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("bad frame length {len}"),
        ));
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)?;
    Ok(body)
}

/// Writes one raw frame body with its length prefix.
///
/// # Errors
///
/// Any underlying I/O error.
pub fn write_frame(w: &mut impl Write, body: &[u8]) -> std::io::Result<()> {
    debug_assert!(!body.is_empty() && body.len() <= MAX_FRAME as usize);
    let mut frame = Vec::with_capacity(4 + body.len());
    frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
    frame.extend_from_slice(body);
    w.write_all(&frame)
}

/// Writes one message as a frame.
///
/// # Errors
///
/// Any underlying I/O error.
pub fn write_message(w: &mut impl Write, message: &Message) -> std::io::Result<()> {
    write_frame(w, &message.encode())
}

/// Reads one message.
///
/// # Errors
///
/// As [`read_frame`], plus `InvalidData` when the body does not decode.
pub fn read_message(r: &mut impl Read) -> std::io::Result<Message> {
    let body = read_frame(r)?;
    Message::decode(&body)
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "undecodable message"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(message: Message) {
        let mut buf = Vec::new();
        write_message(&mut buf, &message).unwrap();
        let decoded = read_message(&mut buf.as_slice()).unwrap();
        assert_eq!(decoded, message);
    }

    #[test]
    fn all_messages_roundtrip() {
        roundtrip(Message::Hello {
            initial: vec![true, false, true],
        });
        roundtrip(Message::HelloAck {
            high_water: vec![None, Some(0), Some(41)],
        });
        roundtrip(Message::Event {
            process: 2,
            clock: vec![0, 7, 3],
        });
        for status in [
            AckStatus::Accepted,
            AckStatus::Duplicate,
            AckStatus::Stale,
            AckStatus::Rejected,
        ] {
            roundtrip(Message::Ack {
                process: 1,
                seq: 9,
                status,
            });
        }
        roundtrip(Message::VerdictQuery);
        roundtrip(Message::Verdict { witness: None });
        roundtrip(Message::Verdict {
            witness: Some(vec![vec![1, 0], vec![1, 2]]),
        });
        roundtrip(Message::StatsQuery);
        roundtrip(Message::Stats(ServerStats {
            observed: 10,
            duplicates: 2,
            stale: 1,
            rejected: 3,
            events_logged: 11,
            resumes: 4,
            queue_depth: 5,
            wal_segments: 2,
        }));
        roundtrip(Message::Shutdown);
        roundtrip(Message::ShutdownAck { witness: None });
        roundtrip(Message::ShutdownAck {
            witness: Some(vec![vec![3], vec![]]),
        });
        roundtrip(Message::Error {
            message: "process 9 out of range".into(),
        });
    }

    #[test]
    fn truncated_bodies_do_not_decode() {
        let mut buf = Vec::new();
        write_message(
            &mut buf,
            &Message::Event {
                process: 0,
                clock: vec![1, 2, 3],
            },
        )
        .unwrap();
        // Shorten the body but fix up the length prefix so only the
        // decoder (not the framer) can notice.
        let body = &buf[4..buf.len() - 2];
        assert!(Message::decode(body).is_none());
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut body = Message::VerdictQuery.encode();
        body.push(0);
        assert!(Message::decode(&body).is_none());
    }

    #[test]
    fn oversized_and_empty_frames_error() {
        let mut huge = Vec::new();
        huge.extend_from_slice(&(MAX_FRAME + 1).to_le_bytes());
        assert_eq!(
            read_frame(&mut huge.as_slice()).unwrap_err().kind(),
            std::io::ErrorKind::InvalidData
        );
        let zero = 0u32.to_le_bytes();
        assert_eq!(
            read_frame(&mut zero.as_slice()).unwrap_err().kind(),
            std::io::ErrorKind::InvalidData
        );
    }

    #[test]
    fn closed_peer_reads_as_eof() {
        let empty: &[u8] = &[];
        assert_eq!(
            read_message(&mut &*empty).unwrap_err().kind(),
            std::io::ErrorKind::UnexpectedEof
        );
    }
}
