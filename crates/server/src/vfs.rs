//! Storage virtualisation and deterministic disk-fault injection.
//!
//! Everything the WAL does to stable storage goes through the [`Vfs`]
//! trait — open/read/write/sync/truncate/rename/remove/list *plus
//! directory sync*, the operation real databases forget (an `fsync` of
//! a file does **not** persist its directory entry; a segment created,
//! written, and fsynced can still vanish at power loss if the directory
//! was never synced).
//!
//! Two implementations:
//!
//! - [`RealVfs`] — the real filesystem, used in production.
//! - [`FaultVfs`] — a deterministic in-memory disk used by the torture
//!   tests. It injects seeded faults (EIO, ENOSPC, short writes, fsync
//!   failure) at any syscall boundary and models power loss precisely:
//!
//!   * File content has two layers per inode: the *live* bytes (page
//!     cache) and the *synced* bytes (platter). `sync_data` promotes
//!     live to synced; a crash discards whatever was never promoted.
//!   * Namespace operations (create/remove/rename) are journalled per
//!     directory and become durable only at `sync_dir`; a crash
//!     replays a prefix of the un-synced journal (none under
//!     [`CrashStyle::Strict`], all under [`CrashStyle::WriteThrough`],
//!     a seeded prefix under [`CrashStyle::Sampled`]).
//!   * A failed `sync_data` is *adversarial*, per the 2018 fsyncgate
//!     findings: the kernel marks the dirty pages clean and drops
//!     them, so every **later** `sync_data` on that file reports
//!     success while persisting nothing. Storage code that retries a
//!     failed fsync and trusts the second `Ok` provably loses acked
//!     data under this model; the only sound response is to poison
//!     the log (see [`Wal`](crate::wal::Wal)).
//!
//!   `mkdir` is modelled as immediately durable — the WAL creates its
//!   directory once at open and the simplification never masks a lost
//!   segment entry.
//!
//! Every syscall consumes one *op index* (large writes are split into
//! `block_bytes` chunks, each its own op, so a multi-block frame write
//! has crash points *inside* it — torn writes). The power-loss
//! simulator in `tests/storage_torture.rs` re-runs a workload with
//! [`FaultVfs::power_off_after`] set to every op index in turn, takes
//! the [`crash`](FaultVfs::crash) image, and verifies recovery.

use std::collections::BTreeMap;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// An open, append-only file handle.
pub trait VfsFile: Send + fmt::Debug {
    /// Appends up to `buf.len()` bytes at the end of the file and
    /// returns how many were written (short writes are legal, exactly
    /// as for `write(2)`).
    fn write(&mut self, buf: &[u8]) -> io::Result<usize>;

    /// Forces the file's content durable (`fdatasync`).
    fn sync_data(&mut self) -> io::Result<()>;
}

/// The storage surface the WAL runs on.
///
/// Paths are plain `Path`s; implementations resolve them internally.
/// All handles from one `Vfs` see one consistent disk.
pub trait Vfs: Send + Sync + fmt::Debug {
    /// Creates a directory and its ancestors (idempotent).
    fn create_dir_all(&self, dir: &Path) -> io::Result<()>;

    /// Lists the *file* names directly inside `dir`.
    fn list(&self, dir: &Path) -> io::Result<Vec<String>>;

    /// Lists the *subdirectory* names directly inside `dir`.
    fn list_dirs(&self, dir: &Path) -> io::Result<Vec<String>>;

    /// Reads a whole file.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;

    /// The file's current length in bytes.
    fn file_len(&self, path: &Path) -> io::Result<u64>;

    /// Truncates (or zero-extends) the file to `len` bytes.
    fn set_len(&self, path: &Path, len: u64) -> io::Result<()>;

    /// Unlinks a file. Durable only after [`sync_dir`](Self::sync_dir).
    fn remove(&self, path: &Path) -> io::Result<()>;

    /// Renames a file. Durable only after [`sync_dir`](Self::sync_dir)
    /// on the affected directories.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;

    /// Opens a file for appending, creating it if missing. With
    /// `create_new` the file must not already exist. Creation is
    /// durable only after [`sync_dir`](Self::sync_dir).
    fn open_append(&self, path: &Path, create_new: bool) -> io::Result<Box<dyn VfsFile>>;

    /// Forces the directory's entries (creations, removals, renames)
    /// durable — the step that makes a freshly created segment file
    /// survive power loss.
    fn sync_dir(&self, dir: &Path) -> io::Result<()>;
}

// ---------------------------------------------------------------------
// Real filesystem
// ---------------------------------------------------------------------

/// The production [`Vfs`]: a thin veneer over `std::fs`.
#[derive(Debug, Default, Clone, Copy)]
pub struct RealVfs;

#[derive(Debug)]
struct RealFile(File);

impl VfsFile for RealFile {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0.write(buf)
    }

    fn sync_data(&mut self) -> io::Result<()> {
        self.0.sync_data()
    }
}

fn real_entries(dir: &Path, want_dirs: bool) -> io::Result<Vec<String>> {
    let mut names = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        if entry.file_type()?.is_dir() == want_dirs {
            if let Some(name) = entry.file_name().to_str() {
                names.push(name.to_string());
            }
        }
    }
    names.sort();
    Ok(names)
}

impl Vfs for RealVfs {
    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        std::fs::create_dir_all(dir)
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<String>> {
        real_entries(dir, false)
    }

    fn list_dirs(&self, dir: &Path) -> io::Result<Vec<String>> {
        real_entries(dir, true)
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn file_len(&self, path: &Path) -> io::Result<u64> {
        Ok(std::fs::metadata(path)?.len())
    }

    fn set_len(&self, path: &Path, len: u64) -> io::Result<()> {
        OpenOptions::new().write(true).open(path)?.set_len(len)
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn open_append(&self, path: &Path, create_new: bool) -> io::Result<Box<dyn VfsFile>> {
        let mut options = OpenOptions::new();
        options.append(true);
        if create_new {
            options.create_new(true);
        } else {
            options.create(true);
        }
        Ok(Box::new(RealFile(options.open(path)?)))
    }

    #[cfg(unix)]
    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        File::open(dir)?.sync_all()
    }

    #[cfg(not(unix))]
    fn sync_dir(&self, _dir: &Path) -> io::Result<()> {
        // Windows has no directory handles to fsync; directory metadata
        // updates are synchronous there.
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Fault-injecting in-memory disk
// ---------------------------------------------------------------------

/// Which syscall an op index belongs to, for kind-targeted fault
/// schedules ("fail the 3rd fsync").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum OpKind {
    /// `create_dir_all`.
    Mkdir,
    /// `list` / `list_dirs`.
    List,
    /// `read`.
    Read,
    /// `file_len`.
    Len,
    /// `set_len`.
    SetLen,
    /// `remove`.
    Remove,
    /// `rename`.
    Rename,
    /// `open_append`.
    Open,
    /// One block of a `VfsFile::write`.
    Write,
    /// `VfsFile::sync_data`.
    SyncData,
    /// `sync_dir`.
    SyncDir,
}

/// A single-shot injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Generic I/O error; the op has no effect.
    Eio,
    /// Disk full (`ErrorKind::StorageFull`); the op has no effect.
    Enospc,
    /// A write persists only half its block, then reports the short
    /// count (legal `write(2)` behaviour; on other op kinds this
    /// degrades to [`Eio`](Self::Eio)).
    ShortWrite,
    /// The fsync reports failure after dropping the dirty pages; every
    /// later fsync of the same file reports success while persisting
    /// nothing (the fsyncgate adversary). On non-sync ops this
    /// degrades to [`Eio`](Self::Eio)).
    SyncFail,
}

/// How much of the un-synced state survives a simulated power loss.
#[derive(Debug, Clone, Copy)]
pub enum CrashStyle {
    /// Nothing un-synced survives: file content reverts to its last
    /// `sync_data`, directory entries to their last `sync_dir`. The
    /// adversarial minimum — what correctness must assume.
    Strict,
    /// Everything written survives, even without any sync — the lucky
    /// maximum (the kernel flushed everything just in time). Recovery
    /// must also cope with *more* than the acked prefix surviving.
    WriteThrough,
    /// A seeded in-between: each directory keeps a random prefix of
    /// its un-synced journal, each file keeps a random subset of its
    /// un-synced blocks (holes read as zeroes — out-of-order
    /// writeback). Deterministic per seed.
    Sampled(u64),
}

#[derive(Debug, Default)]
struct Inode {
    /// Page-cache view: every successful write lands here.
    live: Vec<u8>,
    /// Platter view: what survives a [`CrashStyle::Strict`] crash.
    synced: Vec<u8>,
    /// Set by an injected fsync failure: the dirty pages are gone and
    /// later fsyncs lie (report success, persist nothing).
    sync_broken: bool,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum NsOp {
    Link(String, u64),
    Unlink(String),
}

#[derive(Debug, Default)]
struct DirState {
    live: BTreeMap<String, u64>,
    durable: BTreeMap<String, u64>,
    /// Namespace ops since the last `sync_dir`, in order. A crash
    /// persists a prefix of this journal on top of `durable`.
    journal: Vec<NsOp>,
}

#[derive(Debug)]
struct FaultState {
    dirs: BTreeMap<PathBuf, DirState>,
    inodes: BTreeMap<u64, Inode>,
    next_inode: u64,
    ops: u64,
    kind_counts: BTreeMap<OpKind, u64>,
    by_index: BTreeMap<u64, Fault>,
    by_kind: BTreeMap<(OpKind, u64), Fault>,
    power_off: Option<u64>,
    block_bytes: usize,
}

impl Default for FaultState {
    fn default() -> Self {
        FaultState {
            dirs: BTreeMap::new(),
            inodes: BTreeMap::new(),
            next_inode: 0,
            ops: 0,
            kind_counts: BTreeMap::new(),
            by_index: BTreeMap::new(),
            by_kind: BTreeMap::new(),
            power_off: None,
            block_bytes: usize::MAX,
        }
    }
}

fn eio(msg: impl Into<String>) -> io::Error {
    io::Error::other(msg.into())
}

fn enospc() -> io::Error {
    io::Error::new(io::ErrorKind::StorageFull, "injected ENOSPC")
}

impl FaultState {
    /// Accounts one op; returns a fault the caller must interpret
    /// (short write / sync failure), or errors out directly.
    fn begin(&mut self, kind: OpKind) -> io::Result<Option<Fault>> {
        let index = self.ops;
        self.ops += 1;
        let nth = self.kind_counts.entry(kind).or_insert(0);
        let kind_nth = *nth;
        *nth += 1;
        if self.power_off.is_some_and(|cut| index >= cut) {
            return Err(eio(format!(
                "simulated power loss at op {index} ({kind:?})"
            )));
        }
        let fault = self
            .by_index
            .remove(&index)
            .or_else(|| self.by_kind.remove(&(kind, kind_nth)));
        match fault {
            Some(Fault::Eio) => Err(eio(format!("injected EIO at op {index} ({kind:?})"))),
            Some(Fault::Enospc) => Err(enospc()),
            other => Ok(other),
        }
    }

    fn dir_mut(&mut self, dir: &Path) -> io::Result<&mut DirState> {
        self.dirs
            .get_mut(dir)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, format!("no dir {dir:?}")))
    }
}

fn split(path: &Path) -> io::Result<(PathBuf, String)> {
    let parent = path.parent().map(Path::to_path_buf).ok_or_else(|| {
        io::Error::new(io::ErrorKind::InvalidInput, format!("no parent: {path:?}"))
    })?;
    let name = path
        .file_name()
        .and_then(|n| n.to_str())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, format!("bad name: {path:?}")))?
        .to_string();
    Ok((parent, name))
}

fn not_found(path: &Path) -> io::Error {
    io::Error::new(io::ErrorKind::NotFound, format!("no file {path:?}"))
}

/// Deterministic xorshift64*; good enough to sample crash images.
fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// A deterministic in-memory disk with seeded fault injection and a
/// precise power-loss model. Cheap to clone (shared state): clones see
/// the same disk, so tests keep a handle to crash or inspect the disk
/// a [`Wal`](crate::wal::Wal) is writing to.
#[derive(Debug, Clone, Default)]
pub struct FaultVfs {
    state: Arc<Mutex<FaultState>>,
}

impl FaultVfs {
    /// A fresh, empty, fault-free disk.
    pub fn new() -> Self {
        FaultVfs::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, FaultState> {
        self.state.lock().expect("fault vfs poisoned by panic")
    }

    /// Splits every write into `bytes`-sized blocks, each its own op —
    /// a frame write then has power-loss points *inside* it (torn
    /// writes). Default: unlimited (one op per write call).
    pub fn with_block_bytes(self, bytes: usize) -> Self {
        assert!(bytes > 0, "block size must be positive");
        self.lock().block_bytes = bytes;
        self
    }

    /// Injects `fault` at the op with this global index (single-shot).
    pub fn fail_op(&self, index: u64, fault: Fault) {
        self.lock().by_index.insert(index, fault);
    }

    /// Injects `fault` at the `nth` op of `kind` (0-based,
    /// single-shot) — "fail the 3rd fsync".
    pub fn fail_kind(&self, kind: OpKind, nth: u64, fault: Fault) {
        self.lock().by_kind.insert((kind, nth), fault);
    }

    /// Every op with global index `>= cut` fails as if power was lost
    /// — the workload cannot touch the disk past that point. Combine
    /// with [`crash`](Self::crash) to get the surviving image.
    pub fn power_off_after(&self, cut: u64) {
        self.lock().power_off = Some(cut);
    }

    /// Total ops performed so far — run a workload once fault-free to
    /// learn how many crash points it has.
    pub fn op_count(&self) -> u64 {
        self.lock().ops
    }

    /// Ops of one kind performed so far.
    pub fn ops_of(&self, kind: OpKind) -> u64 {
        self.lock().kind_counts.get(&kind).copied().unwrap_or(0)
    }

    /// Flips one byte of a file in both the page cache and on the
    /// platter — simulated bit rot for scrub tests. Consumes no op.
    ///
    /// # Errors
    ///
    /// `NotFound` if the path does not resolve, `InvalidInput` if
    /// `offset` is past the end.
    pub fn flip_byte(&self, path: &Path, offset: u64) -> io::Result<()> {
        let (parent, name) = split(path)?;
        let mut state = self.lock();
        let id = *state
            .dir_mut(&parent)?
            .live
            .get(&name)
            .ok_or_else(|| not_found(path))?;
        let inode = state.inodes.get_mut(&id).expect("linked inode exists");
        let at = offset as usize;
        if at >= inode.live.len() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "flip offset past end of file",
            ));
        }
        inode.live[at] ^= 0x40;
        if at < inode.synced.len() {
            inode.synced[at] ^= 0x40;
        }
        Ok(())
    }

    /// The disk as it would be found after a power loss, as a fresh
    /// fault-free `FaultVfs`: un-synced content and un-dir-synced
    /// namespace changes are discarded per `style`. The original is
    /// untouched.
    pub fn crash(&self, style: CrashStyle) -> FaultVfs {
        let state = self.lock();
        let mut rng = match style {
            CrashStyle::Sampled(seed) => seed | 1,
            _ => 1,
        };
        let mut dirs = BTreeMap::new();
        let mut used: BTreeMap<u64, Inode> = BTreeMap::new();
        for (path, dir) in &state.dirs {
            let names = match style {
                CrashStyle::Strict => dir.durable.clone(),
                CrashStyle::WriteThrough => dir.live.clone(),
                CrashStyle::Sampled(_) => {
                    // A prefix of the metadata journal reached the
                    // platter (ordered metadata journalling).
                    let keep = (xorshift(&mut rng) % (dir.journal.len() as u64 + 1)) as usize;
                    let mut names = dir.durable.clone();
                    for op in &dir.journal[..keep] {
                        match op {
                            NsOp::Link(name, id) => {
                                names.insert(name.clone(), *id);
                            }
                            NsOp::Unlink(name) => {
                                names.remove(name);
                            }
                        }
                    }
                    names
                }
            };
            for id in names.values() {
                if used.contains_key(id) {
                    continue;
                }
                let inode = &state.inodes[id];
                let content = match style {
                    CrashStyle::Strict => inode.synced.clone(),
                    CrashStyle::WriteThrough => inode.live.clone(),
                    CrashStyle::Sampled(_) => {
                        // The synced prefix is guaranteed; each
                        // un-synced block survives by coin flip, lost
                        // blocks before a surviving one read as zeroes.
                        let base = inode.synced.len().min(inode.live.len());
                        let mut content = inode.live[..base].to_vec();
                        let block = state.block_bytes.clamp(1, 512);
                        let mut end = base;
                        let mut at = base;
                        while at < inode.live.len() {
                            let next = (at + block).min(inode.live.len());
                            if xorshift(&mut rng) & 1 == 0 {
                                if content.len() < at {
                                    content.resize(at, 0);
                                }
                                content.truncate(at);
                                content.extend_from_slice(&inode.live[at..next]);
                                end = next;
                            }
                            at = next;
                        }
                        content.resize(end, 0);
                        content
                    }
                };
                used.insert(
                    *id,
                    Inode {
                        synced: content.clone(),
                        live: content,
                        sync_broken: false,
                    },
                );
            }
            dirs.insert(
                path.clone(),
                DirState {
                    live: names.clone(),
                    durable: names,
                    journal: Vec::new(),
                },
            );
        }
        FaultVfs {
            state: Arc::new(Mutex::new(FaultState {
                dirs,
                inodes: used,
                next_inode: state.next_inode,
                block_bytes: state.block_bytes,
                ..FaultState::default()
            })),
        }
    }
}

impl Vfs for FaultVfs {
    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        let mut state = self.lock();
        state.begin(OpKind::Mkdir)?;
        for ancestor in dir.ancestors() {
            state.dirs.entry(ancestor.to_path_buf()).or_default();
        }
        Ok(())
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<String>> {
        let mut state = self.lock();
        state.begin(OpKind::List)?;
        Ok(state.dir_mut(dir)?.live.keys().cloned().collect())
    }

    fn list_dirs(&self, dir: &Path) -> io::Result<Vec<String>> {
        let mut state = self.lock();
        state.begin(OpKind::List)?;
        if !state.dirs.contains_key(dir) {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("no dir {dir:?}"),
            ));
        }
        Ok(state
            .dirs
            .keys()
            .filter(|p| p.parent() == Some(dir))
            .filter_map(|p| p.file_name()?.to_str().map(str::to_string))
            .collect())
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let (parent, name) = split(path)?;
        let mut state = self.lock();
        state.begin(OpKind::Read)?;
        let id = *state
            .dir_mut(&parent)?
            .live
            .get(&name)
            .ok_or_else(|| not_found(path))?;
        Ok(state.inodes[&id].live.clone())
    }

    fn file_len(&self, path: &Path) -> io::Result<u64> {
        let (parent, name) = split(path)?;
        let mut state = self.lock();
        state.begin(OpKind::Len)?;
        let id = *state
            .dir_mut(&parent)?
            .live
            .get(&name)
            .ok_or_else(|| not_found(path))?;
        Ok(state.inodes[&id].live.len() as u64)
    }

    fn set_len(&self, path: &Path, len: u64) -> io::Result<()> {
        let (parent, name) = split(path)?;
        let mut state = self.lock();
        state.begin(OpKind::SetLen)?;
        let id = *state
            .dir_mut(&parent)?
            .live
            .get(&name)
            .ok_or_else(|| not_found(path))?;
        // Truncation hits the page cache only; it reaches the platter
        // at the next sync_data, so a crash first can resurrect the
        // cut tail (recovery re-cuts it — the operation is idempotent).
        state
            .inodes
            .get_mut(&id)
            .expect("linked inode exists")
            .live
            .resize(len as usize, 0);
        Ok(())
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        let (parent, name) = split(path)?;
        let mut state = self.lock();
        state.begin(OpKind::Remove)?;
        let dir = state.dir_mut(&parent)?;
        dir.live.remove(&name).ok_or_else(|| not_found(path))?;
        dir.journal.push(NsOp::Unlink(name));
        Ok(())
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        let (from_parent, from_name) = split(from)?;
        let (to_parent, to_name) = split(to)?;
        let mut state = self.lock();
        state.begin(OpKind::Rename)?;
        let from_dir = state.dir_mut(&from_parent)?;
        let id = from_dir
            .live
            .remove(&from_name)
            .ok_or_else(|| not_found(from))?;
        from_dir.journal.push(NsOp::Unlink(from_name));
        let to_dir = state.dir_mut(&to_parent)?;
        to_dir.live.insert(to_name.clone(), id);
        to_dir.journal.push(NsOp::Link(to_name, id));
        Ok(())
    }

    fn open_append(&self, path: &Path, create_new: bool) -> io::Result<Box<dyn VfsFile>> {
        let (parent, name) = split(path)?;
        let mut state = self.lock();
        state.begin(OpKind::Open)?;
        let existing = state.dir_mut(&parent)?.live.get(&name).copied();
        let id = match existing {
            Some(id) if create_new => {
                return Err(io::Error::new(
                    io::ErrorKind::AlreadyExists,
                    format!("exists: {id} at {path:?}"),
                ));
            }
            Some(id) => id,
            None => {
                let id = state.next_inode;
                state.next_inode += 1;
                state.inodes.insert(id, Inode::default());
                let dir = state.dir_mut(&parent)?;
                dir.live.insert(name.clone(), id);
                dir.journal.push(NsOp::Link(name, id));
                id
            }
        };
        Ok(Box::new(FaultFile {
            state: Arc::clone(&self.state),
            inode: id,
        }))
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        let mut state = self.lock();
        if let Some(fault) = state.begin(OpKind::SyncDir)? {
            let _ = fault;
            return Err(eio("injected sync_dir failure"));
        }
        let dir = state.dir_mut(dir)?;
        dir.durable = dir.live.clone();
        dir.journal.clear();
        Ok(())
    }
}

#[derive(Debug)]
struct FaultFile {
    state: Arc<Mutex<FaultState>>,
    inode: u64,
}

impl VfsFile for FaultFile {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        let mut state = self.state.lock().expect("fault vfs poisoned by panic");
        let fault = state.begin(OpKind::Write)?;
        let mut n = buf.len().min(state.block_bytes);
        match fault {
            Some(Fault::ShortWrite) => n = (n / 2).max(1),
            Some(_) => return Err(eio("injected fault on write")),
            None => {}
        }
        state
            .inodes
            .get_mut(&self.inode)
            .expect("open inode exists")
            .live
            .extend_from_slice(&buf[..n]);
        Ok(n)
    }

    fn sync_data(&mut self) -> io::Result<()> {
        let mut state = self.state.lock().expect("fault vfs poisoned by panic");
        let fault = state.begin(OpKind::SyncData)?;
        let inode = state
            .inodes
            .get_mut(&self.inode)
            .expect("open inode exists");
        match fault {
            Some(Fault::SyncFail) => {
                // fsyncgate: the kernel dropped the dirty pages and
                // marked them clean — this sync fails, and every later
                // one "succeeds" without persisting anything.
                inode.sync_broken = true;
                Err(eio("injected fsync failure (dirty pages dropped)"))
            }
            Some(_) => Err(eio("injected fault on fsync")),
            None if inode.sync_broken => Ok(()),
            None => {
                inode.synced = inode.live.clone();
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_file(vfs: &FaultVfs, path: &Path, bytes: &[u8]) -> Box<dyn VfsFile> {
        let mut f = vfs.open_append(path, true).unwrap();
        let mut rest = bytes;
        while !rest.is_empty() {
            let n = f.write(rest).unwrap();
            rest = &rest[n..];
        }
        f
    }

    #[test]
    fn unsynced_content_is_lost_in_a_strict_crash() {
        let vfs = FaultVfs::new();
        vfs.create_dir_all(Path::new("/d")).unwrap();
        let path = Path::new("/d/a");
        let mut f = write_file(&vfs, path, b"durable");
        f.sync_data().unwrap();
        vfs.sync_dir(Path::new("/d")).unwrap();
        let mut rest: &[u8] = b" volatile";
        while !rest.is_empty() {
            let n = f.write(rest).unwrap();
            rest = &rest[n..];
        }
        assert_eq!(vfs.read(path).unwrap(), b"durable volatile");
        let strict = vfs.crash(CrashStyle::Strict);
        assert_eq!(strict.read(path).unwrap(), b"durable");
        let lucky = vfs.crash(CrashStyle::WriteThrough);
        assert_eq!(lucky.read(path).unwrap(), b"durable volatile");
    }

    #[test]
    fn undirsynced_creation_vanishes_in_a_strict_crash() {
        let vfs = FaultVfs::new();
        let dir = Path::new("/d");
        vfs.create_dir_all(dir).unwrap();
        let mut f = write_file(&vfs, Path::new("/d/a"), b"data");
        // The file content is fsynced — but its directory entry is not.
        f.sync_data().unwrap();
        let strict = vfs.crash(CrashStyle::Strict);
        assert!(strict.read(Path::new("/d/a")).is_err(), "entry lost");
        assert_eq!(strict.list(dir).unwrap(), Vec::<String>::new());
        // After sync_dir the entry (and the synced content) survive.
        vfs.sync_dir(dir).unwrap();
        let strict = vfs.crash(CrashStyle::Strict);
        assert_eq!(strict.read(Path::new("/d/a")).unwrap(), b"data");
    }

    #[test]
    fn unsynced_removal_resurrects_in_a_strict_crash() {
        let vfs = FaultVfs::new();
        let dir = Path::new("/d");
        vfs.create_dir_all(dir).unwrap();
        write_file(&vfs, Path::new("/d/a"), b"x")
            .sync_data()
            .unwrap();
        vfs.sync_dir(dir).unwrap();
        vfs.remove(Path::new("/d/a")).unwrap();
        assert!(vfs.read(Path::new("/d/a")).is_err());
        let strict = vfs.crash(CrashStyle::Strict);
        assert_eq!(
            strict.read(Path::new("/d/a")).unwrap(),
            b"x",
            "unlink not durable"
        );
        vfs.sync_dir(dir).unwrap();
        let strict = vfs.crash(CrashStyle::Strict);
        assert!(strict.read(Path::new("/d/a")).is_err(), "unlink durable");
    }

    #[test]
    fn failed_fsync_poisons_later_fsyncs_silently() {
        let vfs = FaultVfs::new();
        vfs.create_dir_all(Path::new("/d")).unwrap();
        let path = Path::new("/d/a");
        let mut f = write_file(&vfs, path, b"doomed");
        vfs.fail_kind(OpKind::SyncData, 0, Fault::SyncFail);
        assert!(f.sync_data().is_err(), "first fsync reports the failure");
        // Retry-and-trust: the second fsync lies.
        f.sync_data().unwrap();
        vfs.sync_dir(Path::new("/d")).unwrap();
        let strict = vfs.crash(CrashStyle::Strict);
        assert_eq!(
            strict.read(path).unwrap(),
            b"",
            "the data the second fsync claimed durable is gone"
        );
    }

    #[test]
    fn power_off_fails_every_later_op() {
        let vfs = FaultVfs::new();
        vfs.create_dir_all(Path::new("/d")).unwrap();
        vfs.power_off_after(vfs.op_count());
        assert!(vfs.open_append(Path::new("/d/a"), true).is_err());
        assert!(vfs.list(Path::new("/d")).is_err());
    }

    #[test]
    fn short_write_and_enospc_inject() {
        let vfs = FaultVfs::new();
        vfs.create_dir_all(Path::new("/d")).unwrap();
        let mut f = vfs.open_append(Path::new("/d/a"), true).unwrap();
        vfs.fail_kind(OpKind::Write, 0, Fault::ShortWrite);
        assert_eq!(f.write(b"abcd").unwrap(), 2, "half the block");
        vfs.fail_kind(OpKind::Write, 1, Fault::Enospc);
        let err = f.write(b"cd").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
        f.write(b"cd").unwrap();
        assert_eq!(vfs.read(Path::new("/d/a")).unwrap(), b"abcd");
    }

    #[test]
    fn block_splitting_creates_intra_write_ops() {
        let vfs = FaultVfs::new().with_block_bytes(4);
        vfs.create_dir_all(Path::new("/d")).unwrap();
        let mut f = vfs.open_append(Path::new("/d/a"), true).unwrap();
        let before = vfs.op_count();
        let mut rest: &[u8] = &[7u8; 10];
        while !rest.is_empty() {
            let n = f.write(rest).unwrap();
            rest = &rest[n..];
        }
        assert_eq!(vfs.op_count() - before, 3, "10 bytes = 3 blocks of <=4");
    }

    #[test]
    fn sampled_crash_is_deterministic_per_seed() {
        let build = || {
            let vfs = FaultVfs::new().with_block_bytes(3);
            vfs.create_dir_all(Path::new("/d")).unwrap();
            let mut f = write_file(&vfs, Path::new("/d/a"), b"synced!");
            f.sync_data().unwrap();
            vfs.sync_dir(Path::new("/d")).unwrap();
            let mut rest: &[u8] = b" both unsynced tails here";
            while !rest.is_empty() {
                let n = f.write(rest).unwrap();
                rest = &rest[n..];
            }
            write_file(&vfs, Path::new("/d/b"), b"never synced");
            vfs
        };
        let a = build().crash(CrashStyle::Sampled(42));
        let b = build().crash(CrashStyle::Sampled(42));
        assert_eq!(
            a.read(Path::new("/d/a")).unwrap(),
            b.read(Path::new("/d/a")).unwrap()
        );
        assert_eq!(
            a.read(Path::new("/d/b")).is_ok(),
            b.read(Path::new("/d/b")).is_ok()
        );
        // And the synced prefix always survives sampling.
        let img = build().crash(CrashStyle::Sampled(7));
        assert_eq!(&img.read(Path::new("/d/a")).unwrap()[..7], b"synced!");
    }

    #[test]
    fn rename_is_durable_only_after_dir_sync() {
        let vfs = FaultVfs::new();
        let dir = Path::new("/d");
        vfs.create_dir_all(dir).unwrap();
        write_file(&vfs, Path::new("/d/a"), b"x")
            .sync_data()
            .unwrap();
        vfs.sync_dir(dir).unwrap();
        vfs.rename(Path::new("/d/a"), Path::new("/d/b")).unwrap();
        let strict = vfs.crash(CrashStyle::Strict);
        assert!(strict.read(Path::new("/d/b")).is_err(), "rename lost");
        assert_eq!(strict.read(Path::new("/d/a")).unwrap(), b"x");
        vfs.sync_dir(dir).unwrap();
        let strict = vfs.crash(CrashStyle::Strict);
        assert_eq!(strict.read(Path::new("/d/b")).unwrap(), b"x");
        assert!(strict.read(Path::new("/d/a")).is_err());
    }
}
