//! CRC-32 (IEEE 802.3, the zlib polynomial) over byte slices.
//!
//! The WAL frames every record with this checksum so recovery can tell a
//! torn tail — the bytes a `kill -9` left half-written — from a record
//! that made it to disk intact. Table-driven, built at compile time; no
//! dependency needed for the one classic polynomial.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// The CRC-32 of `data` (init `0xFFFF_FFFF`, final xor, reflected — the
/// same convention as zlib's `crc32()`).
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = u32::MAX;
    for &byte in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ byte as u32) & 0xFF) as usize];
    }
    crc ^ u32::MAX
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Reference values from zlib's crc32().
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn sensitive_to_single_bit_flips() {
        let base = crc32(b"hello wal");
        let mut corrupted = b"hello wal".to_vec();
        for byte in 0..corrupted.len() {
            for bit in 0..8 {
                corrupted[byte] ^= 1 << bit;
                assert_ne!(crc32(&corrupted), base, "flip at {byte}:{bit} undetected");
                corrupted[byte] ^= 1 << bit;
            }
        }
    }
}
