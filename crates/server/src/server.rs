//! The monitoring service: a sharded, event-driven TCP server that
//! logs every accepted event to a per-tenant WAL before applying it to
//! that tenant's [`ConjunctiveMonitor`] and acking the client.
//!
//! ## Shard model
//!
//! `shards` worker threads each run a readiness sweep over the
//! nonblocking connections assigned to them: drain newly accepted
//! connections from the shard's inbox, read whatever bytes each socket
//! has, process up to `quota_frames` frames per connection (fairness —
//! one hot session cannot monopolize a sweep), stage all replies in
//! per-connection write buffers, fsync the write-ahead logs the sweep
//! dirtied (the **group-commit boundary** under
//! [`FsyncPolicy::Group`](crate::wal::FsyncPolicy::Group)), and only
//! then flush the staged replies to the sockets. A shard with no work
//! parks on its inbox condvar until the acceptor or a peer wakes it.
//!
//! Sessions are pinned to shards by tenant hash: the acceptor deals
//! connections round-robin, and the first `Hello` names the tenant —
//! if its home shard is elsewhere, the connection migrates (carrying
//! its unconsumed bytes) *before* the `Hello` is consumed, so a
//! tenant's WAL and monitor are only ever touched by its home shard's
//! thread plus brief read-only peeks from queries elsewhere. That is
//! what makes the per-tenant mutex uncontended in steady state and the
//! sweep the natural fsync batch.
//!
//! ## Ordering and determinism
//!
//! A connection's frames are processed sequentially by one shard, and
//! each tenant's WAL + monitor live behind one mutex, so events apply
//! in the order sent — per-process FIFO is preserved at any shard
//! count. Combined with the monitor's unique-minimal-witness property
//! (`docs/ALGORITHMS.md` §11), verdict and witness are identical at 1,
//! 2, or 8 shards, and identical across crash/recover/redeliver runs.
//!
//! ## Crash windows
//!
//! The classify → append → apply → ack order makes every crash window
//! safe under `fsync always`, and under group commit because no ack
//! leaves the server before the sweep-end fsync covers its append:
//!
//! - crash before the append is durable → the client never got an ack
//!   and retransmits after reconnect; recovery replays the prefix.
//! - crash after the append, before the ack → recovery replays the
//!   event; the client retransmits it and the monitor screens it as a
//!   duplicate.
//!
//! ## Tenant namespaces
//!
//! Each tenant's segments live under `<wal-dir>/tenants/<name>/`;
//! pre-multi-tenant logs found at the WAL root are migrated into
//! `tenants/default/` at startup. Snapshot compaction rewrites a
//! tenant's log as one [`WalRecord::Snapshot`] plus the events since,
//! so recovery replay is O(live monitor state), not O(event history).

use std::collections::{HashMap, HashSet};
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use gpd::online::{ConjunctiveMonitor, MonitorSnapshot, Observation};
use gpd_computation::VectorClock;

use crate::liveness::SlicerRegistry;
use crate::protocol::{
    parse_message, valid_tenant_name, AckStatus, Message, ServerStats, SlicerVerdict,
    TenantStatsRow, DEFAULT_TENANT, MAX_FRAME,
};
use crate::wal::{FsyncPolicy, Wal, WalConfig, WalRecord};

/// Server tunables.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// WAL root and durability policy. Tenant logs live in
    /// `<dir>/tenants/<name>/`.
    pub wal: WalConfig,
    /// Shard (worker) threads. Sessions are pinned by tenant hash.
    pub shards: usize,
    /// Per-connection idle timeout; a silent connection past it is
    /// dropped (the client reconnects and resumes).
    pub io_timeout: Duration,
    /// Optional cap on each monitor's per-process queues; overflow is
    /// acked as [`AckStatus::Rejected`] so clients back off.
    pub queue_cap: Option<usize>,
    /// Max tenants with live state; a `Hello` for a new tenant beyond
    /// it is refused.
    pub max_tenants: usize,
    /// Frames processed per connection per sweep — the fairness quota
    /// that keeps one hot tenant from starving its shard's peers.
    pub quota_frames: usize,
    /// Compact a tenant's WAL after this many logged events
    /// (`None` = never).
    pub snapshot_every: Option<u64>,
    /// Test hook: called with the tenant name while that tenant's
    /// event is applied (inside the panic isolation boundary). A panic
    /// here models a crashing predicate and quarantines the tenant.
    pub fault_injection: Option<fn(&str)>,
    /// A decentralized slicer silent for longer than this (and not
    /// done) is considered dead; its tenant's verdict degrades to
    /// `Unknown` with progress bounds instead of wedging.
    pub heartbeat_timeout: Duration,
    /// Re-verify each tenant's segment CRCs this often (`None` =
    /// never), self-healing corruption from the live monitor where
    /// possible — see `Wal::scrub` and `docs/ALGORITHMS.md` §16.
    pub scrub_every: Option<Duration>,
}

impl ServerConfig {
    /// Defaults: 2 shards, 30 s idle timeout, unbounded monitor
    /// queues, 1024 tenants, 64-frame sweep quota, no auto-compaction.
    pub fn new(wal: WalConfig) -> Self {
        ServerConfig {
            wal,
            shards: 2,
            io_timeout: Duration::from_secs(30),
            queue_cap: None,
            max_tenants: 1024,
            quota_frames: 64,
            snapshot_every: None,
            fault_injection: None,
            heartbeat_timeout: Duration::from_secs(2),
            scrub_every: None,
        }
    }
}

/// One tenant's monitor, WAL, and counters. Owned by its home shard in
/// steady state; the mutex also admits brief read-only peeks from
/// queries landing on other shards.
struct Tenant {
    name: String,
    wal: Wal,
    /// `None` until the first `Hello` (or WAL replay) declares the
    /// process count.
    monitor: Option<ConjunctiveMonitor>,
    initial: Option<Vec<bool>>,
    observed: u64,
    duplicates: u64,
    stale: u64,
    rejected: u64,
    events_logged: u64,
    resumes: u64,
    queue_peak: u64,
    snapshots: u64,
    events_since_snapshot: u64,
    quarantined: bool,
    /// Why the tenant was quarantined (`None` while healthy) — the
    /// shutdown summary prints this instead of dropping the tenant.
    quarantine_reason: Option<String>,
    /// Slicer liveness and progress for decentralized sessions (empty
    /// for centralized tenants).
    slicers: SlicerRegistry,
    /// Records replayed when this tenant's WAL was opened — the
    /// O(live state) gauge the recovery tests assert on.
    replayed: u64,
    /// Bytes recovery cut as a torn tail when the WAL was opened —
    /// nonzero means an unclean shutdown lost un-acked data.
    recovered_truncated_bytes: u64,
    /// Whole segments recovery dropped past the torn one.
    recovered_dropped_segments: u64,
    /// Appends rejected for transient storage errors (ENOSPC/EIO with
    /// a clean rollback — the tenant stayed in service).
    storage_errors: u64,
    /// Completed background scrub passes.
    scrub_passes: u64,
    /// Corrupt segments the scrubber found.
    scrub_corruptions: u64,
    /// Corrupt segments healed by compacting from the live monitor.
    scrub_healed: u64,
    last_scrub: Instant,
}

impl Tenant {
    /// Opens (or creates) the tenant's WAL namespace and replays it.
    fn open(name: &str, template: &WalConfig, queue_cap: Option<usize>) -> std::io::Result<Tenant> {
        let mut config = template.clone();
        config.dir = tenant_dir(&template.dir, name);
        let (wal, recovery) = Wal::open(config)?;
        let mut tenant = Tenant {
            name: name.to_string(),
            wal,
            monitor: None,
            initial: None,
            observed: 0,
            duplicates: 0,
            stale: 0,
            rejected: 0,
            events_logged: 0,
            resumes: 0,
            queue_peak: 0,
            snapshots: 0,
            events_since_snapshot: 0,
            quarantined: false,
            quarantine_reason: None,
            slicers: SlicerRegistry::new(),
            replayed: recovery.records.len() as u64,
            recovered_truncated_bytes: recovery.truncated_bytes,
            recovered_dropped_segments: recovery.dropped_segments,
            storage_errors: 0,
            scrub_passes: 0,
            scrub_corruptions: 0,
            scrub_healed: 0,
            last_scrub: Instant::now(),
        };
        // Deterministic replay: the log records every accepted
        // observation in apply order (with snapshots as reset points),
        // so replaying rebuilds the exact monitor the crashed server
        // had at its last durable append.
        for record in &recovery.records {
            match record {
                WalRecord::Init { initial } => {
                    tenant.monitor = Some(with_cap(
                        ConjunctiveMonitor::with_initial(initial),
                        queue_cap,
                    ));
                    tenant.initial = Some(initial.clone());
                }
                WalRecord::Event { process, clock } => {
                    if let Some(m) = tenant.monitor.as_mut() {
                        // Logged events were accepted once; replay
                        // cannot overflow a queue that held them.
                        let _ = m.try_observe(*process as usize, VectorClock::from(clock.clone()));
                    }
                }
                WalRecord::Snapshot {
                    initial,
                    latest,
                    queues,
                    witness,
                } => {
                    let snapshot = MonitorSnapshot {
                        latest: latest.clone(),
                        queues: queues
                            .iter()
                            .map(|q| q.iter().cloned().map(VectorClock::from).collect())
                            .collect(),
                        witness: witness
                            .as_ref()
                            .map(|w| w.iter().cloned().map(VectorClock::from).collect()),
                    };
                    tenant.monitor =
                        Some(with_cap(ConjunctiveMonitor::restore(snapshot), queue_cap));
                    tenant.initial = Some(initial.clone());
                }
            }
        }
        Ok(tenant)
    }

    fn witness(&self) -> Option<Vec<Vec<u32>>> {
        self.monitor.as_ref().and_then(|m| {
            m.witness()
                .map(|cut| cut.iter().map(|c| c.as_slice().to_vec()).collect())
        })
    }

    fn row(&self, now: Instant, heartbeat_timeout: Duration) -> TenantStatsRow {
        let witness_found = self.monitor.as_ref().is_some_and(|m| m.witness().is_some());
        let census = self.slicers.census(now, heartbeat_timeout);
        TenantStatsRow {
            tenant: self.name.clone(),
            observed: self.observed,
            duplicates: self.duplicates,
            stale: self.stale,
            rejected: self.rejected,
            events_logged: self.events_logged,
            resumes: self.resumes,
            queue_depth: self.monitor.as_ref().map_or(0, |m| m.queue_depth() as u64),
            queue_peak: self.queue_peak,
            wal_segments: self.wal.segment_count(),
            wal_bytes: self.wal.bytes(),
            snapshots: self.snapshots,
            quarantined: self.quarantined,
            witness_found,
            quarantine_reason: self.quarantine_reason.clone().unwrap_or_default(),
            slicers_live: census.live,
            slicers_dead: census.dead,
            slicers_done: census.done,
            // Storage poisoning degrades the verdict exactly like a
            // dead slicer: without a durable log the tenant can no
            // longer promise "not yet" — only a sticky witness stands.
            degraded: !witness_found && (census.dead > 0 || self.quarantined),
            replayed: self.replayed,
            recovered_truncated_bytes: self.recovered_truncated_bytes,
            recovered_dropped_segments: self.recovered_dropped_segments,
            storage_errors: self.storage_errors,
            scrub_passes: self.scrub_passes,
            scrub_corruptions: self.scrub_corruptions,
            scrub_healed: self.scrub_healed,
        }
    }

    /// Marks the tenant quarantined, keeping the first reason (later
    /// failures on an already-poisoned tenant add no information).
    fn quarantine(&mut self, reason: String) {
        self.quarantined = true;
        self.quarantine_reason.get_or_insert(reason);
    }

    /// The three-valued decentralized verdict at `now`: the sticky
    /// witness if one exists, otherwise "not yet" — degraded to
    /// `Unknown` when a registered, unfinished slicer is past its
    /// heartbeat deadline. The bounds are sound: `applied[p]` is the
    /// monitor's dedup high-water mark and `explored[p]` the
    /// componentwise-max of everything `p`'s slicer reported.
    fn slicer_verdict(&self, now: Instant, heartbeat_timeout: Duration) -> SlicerVerdict {
        let witness = self.witness();
        let dead = self.slicers.dead(now, heartbeat_timeout);
        let n = self.monitor.as_ref().map_or(0, |m| m.process_count());
        SlicerVerdict {
            // A quarantined tenant (poisoned storage, crashed
            // predicate) degrades to Unknown the same way a dead
            // slicer does: a sticky witness still stands, but "no
            // witness" can no longer be trusted as "not yet".
            degraded: witness.is_none() && (!dead.is_empty() || self.quarantined),
            witness,
            dead,
            applied: (0..n)
                .map(|p| self.monitor.as_ref().and_then(|m| m.high_water(p)))
                .collect(),
            explored: self.slicers.progress(n),
        }
    }

    /// Writes a snapshot of the live monitor state and compacts the
    /// log down to it.
    fn compact(&mut self) -> std::io::Result<()> {
        let (Some(monitor), Some(initial)) = (self.monitor.as_ref(), self.initial.as_ref()) else {
            return Ok(());
        };
        let snapshot = monitor.snapshot();
        let record = WalRecord::Snapshot {
            initial: initial.clone(),
            latest: snapshot.latest,
            queues: snapshot
                .queues
                .into_iter()
                .map(|q| q.into_iter().map(|c| c.as_slice().to_vec()).collect())
                .collect(),
            witness: snapshot
                .witness
                .map(|w| w.into_iter().map(|c| c.as_slice().to_vec()).collect()),
        };
        self.wal.compact(&record)?;
        self.snapshots += 1;
        self.events_since_snapshot = 0;
        Ok(())
    }

    /// One background scrub: re-verify every live segment's CRCs, and
    /// self-heal corruption by compacting from the live monitor — the
    /// monitor is authoritative for everything the log recorded, so
    /// the rewritten log (snapshot + nothing) supersedes the corrupt
    /// segments, which compaction then deletes. Without live state to
    /// snapshot (or when healing itself fails) the tenant is
    /// quarantined instead: its log can no longer be trusted.
    fn scrub_pass(&mut self) {
        let report = match self.wal.scrub() {
            Ok(report) => report,
            Err(e) => {
                self.storage_errors += 1;
                if self.wal.poisoned().is_some() {
                    self.quarantine(format!("wal scrub failed: {e}"));
                }
                return;
            }
        };
        self.scrub_passes += 1;
        if report.is_clean() {
            return;
        }
        self.scrub_corruptions += report.corrupt_segments;
        if self.monitor.is_none() || self.initial.is_none() {
            self.quarantine(format!(
                "scrub found {} corrupt segment(s) and no live state to heal from",
                report.corrupt_segments
            ));
            return;
        }
        match self.compact() {
            Ok(()) => self.scrub_healed += report.corrupt_segments,
            Err(e) => self.quarantine(format!(
                "scrub found {} corrupt segment(s) and healing compaction failed: {e}",
                report.corrupt_segments
            )),
        }
    }
}

fn with_cap(monitor: ConjunctiveMonitor, cap: Option<usize>) -> ConjunctiveMonitor {
    match cap {
        Some(cap) => monitor.with_queue_cap(cap),
        None => monitor,
    }
}

/// `<root>/tenants/<name>`.
fn tenant_dir(root: &std::path::Path, name: &str) -> std::path::PathBuf {
    root.join("tenants").join(name)
}

/// The home shard of a tenant: a deterministic hash, so every shard
/// (and every restart) agrees.
fn shard_of(tenant: &str, shards: usize) -> usize {
    use std::hash::{Hash, Hasher};
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    tenant.hash(&mut hasher);
    (hasher.finish() % shards.max(1) as u64) as usize
}

type TenantRef = Arc<Mutex<Tenant>>;

/// A shard's inbox: connections dealt by the acceptor or migrated by
/// peers, plus the condvar the shard parks on when idle.
#[derive(Default)]
struct Mailbox {
    inbox: Mutex<Vec<Conn>>,
    cv: Condvar,
}

impl Mailbox {
    fn push(&self, conn: Conn) {
        self.inbox.lock().expect("shard inbox poisoned").push(conn);
        self.cv.notify_all();
    }

    fn wake(&self) {
        self.cv.notify_all();
    }
}

struct Shared {
    tenants: Mutex<HashMap<String, TenantRef>>,
    mailboxes: Vec<Mailbox>,
    shutdown: AtomicBool,
    config: ServerConfig,
}

impl Shared {
    fn stats(&self) -> ServerStats {
        let now = Instant::now();
        let mut stats = ServerStats::default();
        for tenant in self.tenant_refs() {
            let t = tenant.lock().expect("tenant poisoned");
            let row = t.row(now, self.config.heartbeat_timeout);
            stats.observed += row.observed;
            stats.duplicates += row.duplicates;
            stats.stale += row.stale;
            stats.rejected += row.rejected;
            stats.events_logged += row.events_logged;
            stats.resumes += row.resumes;
            stats.queue_depth += row.queue_depth;
            stats.wal_segments += row.wal_segments;
            stats.wal_bytes += row.wal_bytes;
            stats.snapshots += row.snapshots;
            stats.tenants += 1;
        }
        stats
    }

    fn tenant_rows(&self) -> Vec<TenantStatsRow> {
        let now = Instant::now();
        let mut rows: Vec<TenantStatsRow> = self
            .tenant_refs()
            .iter()
            .map(|t| {
                t.lock()
                    .expect("tenant poisoned")
                    .row(now, self.config.heartbeat_timeout)
            })
            .collect();
        rows.sort_by(|a, b| a.tenant.cmp(&b.tenant));
        rows
    }

    fn tenant_refs(&self) -> Vec<TenantRef> {
        self.tenants
            .lock()
            .expect("tenant map poisoned")
            .values()
            .cloned()
            .collect()
    }

    fn lookup(&self, name: &str) -> Option<TenantRef> {
        self.tenants
            .lock()
            .expect("tenant map poisoned")
            .get(name)
            .cloned()
    }

    /// Flushes every tenant's WAL buffers (shutdown and group-commit
    /// stragglers).
    fn sync_all(&self) {
        for tenant in self.tenant_refs() {
            let mut t = tenant.lock().expect("tenant poisoned");
            let _ = t.wal.sync();
        }
    }

    fn wake_all(&self) {
        for mailbox in &self.mailboxes {
            mailbox.wake();
        }
    }
}

/// A running server; dropped handles do **not** stop it — send
/// [`Message::Shutdown`] (e.g. via
/// [`FeedClient::shutdown`](crate::client::FeedClient::shutdown)) and
/// then [`ServerHandle::wait`].
pub struct ServerHandle {
    addr: SocketAddr,
    threads: Vec<JoinHandle<()>>,
    shared: Arc<Shared>,
}

/// What the server knew when it stopped.
#[derive(Debug, Clone)]
pub struct ServerSummary {
    /// The final witness cut of the [`DEFAULT_TENANT`], if its
    /// conjunction ever held.
    pub witness: Option<Vec<Vec<u32>>>,
    /// Final aggregate counters.
    pub stats: ServerStats,
    /// Final per-tenant counters, sorted by tenant id.
    pub tenants: Vec<TenantStatsRow>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A point-in-time aggregate counter snapshot.
    pub fn stats(&self) -> ServerStats {
        self.shared.stats()
    }

    /// Point-in-time per-tenant counters, sorted by tenant id.
    pub fn tenant_stats(&self) -> Vec<TenantStatsRow> {
        self.shared.tenant_rows()
    }

    /// Per-tenant WAL records replayed at startup — the recovery-work
    /// gauge: after compaction this is O(live monitor state), not
    /// O(event history).
    pub fn replayed_records(&self) -> Vec<(String, u64)> {
        let mut out: Vec<(String, u64)> = self
            .shared
            .tenant_refs()
            .iter()
            .map(|t| {
                let t = t.lock().expect("tenant poisoned");
                (t.name.clone(), t.replayed)
            })
            .collect();
        out.sort();
        out
    }

    /// Blocks until a client-initiated shutdown completes, then reports
    /// the final verdict and counters.
    pub fn wait(self) -> ServerSummary {
        for t in self.threads {
            let _ = t.join();
        }
        let stats = self.shared.stats();
        let witness = self
            .shared
            .lookup(DEFAULT_TENANT)
            .and_then(|t| t.lock().expect("tenant poisoned").witness());
        ServerSummary {
            witness,
            stats,
            tenants: self.shared.tenant_rows(),
        }
    }
}

/// Starts the service on `addr` (use `"127.0.0.1:0"` for an ephemeral
/// port), recovering every tenant found under the WAL root first.
///
/// # Errors
///
/// Any I/O error binding the listener or opening/recovering a WAL.
pub fn start(addr: &str, config: ServerConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;

    let root = config.wal.dir.clone();
    let vfs = Arc::clone(&config.wal.vfs);
    vfs.create_dir_all(&root.join("tenants"))?;
    migrate_legacy_layout(&*vfs, &root)?;

    // Eagerly recover every tenant namespace, so stats and verdicts
    // are correct before any client reconnects.
    let mut tenants = HashMap::new();
    for name in vfs.list_dirs(&root.join("tenants"))? {
        let tenant = Tenant::open(&name, &config.wal, config.queue_cap)?;
        tenants.insert(name, Arc::new(Mutex::new(tenant)));
    }

    let shard_count = config.shards.max(1);
    let shared = Arc::new(Shared {
        tenants: Mutex::new(tenants),
        mailboxes: (0..shard_count).map(|_| Mailbox::default()).collect(),
        shutdown: AtomicBool::new(false),
        config,
    });

    let mut threads = Vec::new();
    for shard in 0..shard_count {
        let shared = Arc::clone(&shared);
        threads.push(std::thread::spawn(move || shard_loop(shard, &shared)));
    }
    {
        let shared = Arc::clone(&shared);
        threads.push(std::thread::spawn(move || accept_loop(&listener, &shared)));
    }

    Ok(ServerHandle {
        addr: local,
        threads,
        shared,
    })
}

/// Moves pre-multi-tenant segments (`<root>/*.wal`) into the default
/// tenant's namespace, so old logs keep working.
fn migrate_legacy_layout(vfs: &dyn crate::vfs::Vfs, root: &std::path::Path) -> std::io::Result<()> {
    let default_dir = tenant_dir(root, DEFAULT_TENANT);
    let mut moved = false;
    for name in vfs.list(root)? {
        if name.ends_with(".wal") {
            vfs.create_dir_all(&default_dir)?;
            vfs.rename(&root.join(&name), &default_dir.join(&name))?;
            moved = true;
        }
    }
    if moved {
        // Renames are durable only once both directories are synced —
        // otherwise power loss could resurrect the pre-migration
        // layout, or worse, drop the segments from both.
        vfs.sync_dir(root)?;
        vfs.sync_dir(&default_dir)?;
    }
    Ok(())
}

fn accept_loop(listener: &TcpListener, shared: &Shared) {
    let mut next = 0usize;
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    // The wake-up connection (or a late client);
                    // closing the socket tells the peer we are gone.
                    break;
                }
                if stream.set_nonblocking(true).is_err() || stream.set_nodelay(true).is_err() {
                    continue;
                }
                // Deal round-robin; the first Hello re-homes the
                // connection to its tenant's shard.
                let shard = next % shared.mailboxes.len();
                next = next.wrapping_add(1);
                shared.mailboxes[shard].push(Conn::new(stream));
            }
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
            }
        }
    }
}

/// Why a connection is done.
enum ConnFate {
    Alive,
    /// Close after the write buffer drains.
    Closing,
    /// Drop immediately, discarding any unflushed output.
    Dead,
}

/// One nonblocking connection and its buffers.
struct Conn {
    stream: TcpStream,
    /// Received, not yet parsed bytes.
    rbuf: Vec<u8>,
    /// Staged, not yet flushed replies. Only flushed after the sweep's
    /// group-commit fsync — that is the log-before-ack gate.
    wbuf: Vec<u8>,
    /// The session tenant, set by the first processed `Hello`.
    tenant: Option<TenantRef>,
    tenant_name: Option<String>,
    /// Slicer identity `(process, adopted epoch)` when this session
    /// was opened by a `SlicerHello` — events arriving on it double as
    /// liveness beats for that epoch.
    slicer: Option<(u32, u64)>,
    last_activity: Instant,
    fate: ConnFate,
    /// Target shard when a `Hello` named a tenant homed elsewhere.
    migrate_to: Option<usize>,
}

impl Conn {
    fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            rbuf: Vec::new(),
            wbuf: Vec::new(),
            tenant: None,
            tenant_name: None,
            slicer: None,
            last_activity: Instant::now(),
            fate: ConnFate::Alive,
            migrate_to: None,
        }
    }

    /// Nonblocking read of everything currently available. Returns
    /// whether any bytes arrived.
    fn read_some(&mut self) -> bool {
        // Cap buffered input: a peer that streams faster than its
        // quota drains is left in the kernel buffer (TCP backpressure).
        const RBUF_CAP: usize = 2 * (MAX_FRAME as usize + 4);
        let mut chunk = [0u8; 8192];
        let mut any = false;
        while self.rbuf.len() < RBUF_CAP {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    // Peer closed: process what we have, then close.
                    if !matches!(self.fate, ConnFate::Dead) {
                        self.fate = ConnFate::Closing;
                    }
                    break;
                }
                Ok(k) => {
                    self.rbuf.extend_from_slice(&chunk[..k]);
                    any = true;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.fate = ConnFate::Dead;
                    break;
                }
            }
        }
        if any {
            self.last_activity = Instant::now();
        }
        any
    }

    /// Nonblocking flush of staged replies. Returns whether any bytes
    /// left.
    fn flush_some(&mut self) -> bool {
        let mut written = 0usize;
        while written < self.wbuf.len() {
            match self.stream.write(&self.wbuf[written..]) {
                Ok(0) => {
                    self.fate = ConnFate::Dead;
                    break;
                }
                Ok(k) => written += k,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.fate = ConnFate::Dead;
                    break;
                }
            }
        }
        self.wbuf.drain(..written);
        if written > 0 {
            self.last_activity = Instant::now();
        }
        written > 0
    }

    fn stage(&mut self, message: &Message) {
        // Writing into a Vec cannot fail.
        let _ = crate::protocol::write_message(&mut self.wbuf, message);
    }
}

/// One sweep's bookkeeping: which tenants were dirtied (need the
/// group-commit fsync) and which crossed their snapshot threshold.
#[derive(Default)]
struct SweepState {
    dirty: Vec<TenantRef>,
    dirty_names: HashSet<String>,
    compact: Vec<TenantRef>,
    compact_names: HashSet<String>,
}

impl SweepState {
    fn mark_dirty(&mut self, name: &str, tenant: &TenantRef) {
        if self.dirty_names.insert(name.to_string()) {
            self.dirty.push(Arc::clone(tenant));
        }
    }

    fn mark_compact(&mut self, name: &str, tenant: &TenantRef) {
        if self.compact_names.insert(name.to_string()) {
            self.compact.push(Arc::clone(tenant));
        }
    }
}

fn shard_loop(shard: usize, shared: &Shared) {
    let mut conns: Vec<Conn> = Vec::new();
    let io_timeout = shared.config.io_timeout;
    let mut next_scrub_scan = Instant::now();
    // Sweeps without progress before the shard parks: a short yield
    // phase keeps ack latency in the microseconds while clients are
    // mid-round-trip, without burning CPU when genuinely idle.
    const IDLE_SPINS: u32 = 64;
    let mut idle = 0u32;
    loop {
        let mut progress = false;

        // Adopt newly dealt or migrated connections.
        {
            let mut inbox = shared.mailboxes[shard]
                .inbox
                .lock()
                .expect("shard inbox poisoned");
            if !inbox.is_empty() {
                progress = true;
                conns.append(&mut inbox);
            }
        }

        let mut sweep = SweepState::default();
        for conn in &mut conns {
            if !matches!(conn.fate, ConnFate::Alive) {
                continue;
            }
            if conn.read_some() {
                progress = true;
            }
            if process_frames(shard, shared, conn, &mut sweep) {
                progress = true;
            }
        }

        // Group-commit boundary: everything this sweep appended
        // becomes durable in one fsync per dirtied tenant — before any
        // staged ack reaches a socket.
        if matches!(shared.config.wal.fsync, FsyncPolicy::Group) {
            for tenant in &sweep.dirty {
                let mut t = tenant.lock().expect("tenant poisoned");
                if let Err(e) = t.wal.sync() {
                    // The appends this sweep acked may not be durable:
                    // quarantine the tenant and drop its connections
                    // unflushed, so no unlogged ack escapes. Clients
                    // will retransmit elsewhere.
                    t.quarantine(format!("wal fsync failed at group-commit boundary: {e}"));
                    let name = t.name.clone();
                    drop(t);
                    for conn in &mut conns {
                        if conn.tenant_name.as_deref() == Some(&name) {
                            conn.fate = ConnFate::Dead;
                        }
                    }
                }
            }
        }

        // Snapshot + compaction for tenants past their threshold. The
        // snapshot fsyncs before old segments are deleted, so this is
        // crash-safe anywhere; failures leave the full history behind
        // and retry on the next threshold crossing.
        for tenant in &sweep.compact {
            let mut t = tenant.lock().expect("tenant poisoned");
            let _ = t.compact();
        }

        // Background scrub: periodically re-verify cold segment CRCs
        // for this shard's tenants (the sweep thread owns their locks
        // anyway, so the scrub never races an append).
        if let Some(every) = shared.config.scrub_every {
            let now = Instant::now();
            if now >= next_scrub_scan {
                next_scrub_scan = now + (every / 2).max(Duration::from_millis(10));
                for tenant in shared.tenant_refs() {
                    let mut t = tenant.lock().expect("tenant poisoned");
                    if shard_of(&t.name, shared.mailboxes.len()) != shard
                        || t.quarantined
                        || now.duration_since(t.last_scrub) < every
                    {
                        continue;
                    }
                    t.last_scrub = now;
                    t.scrub_pass();
                }
            }
        }

        // Flush staged replies; retire finished connections.
        for conn in &mut conns {
            if matches!(conn.fate, ConnFate::Dead) {
                continue;
            }
            if conn.flush_some() {
                progress = true;
            }
        }
        let shutting_down = shared.shutdown.load(Ordering::SeqCst);
        conns.retain_mut(|conn| match conn.fate {
            ConnFate::Dead => false,
            ConnFate::Closing => !conn.wbuf.is_empty(),
            ConnFate::Alive => {
                if let Some(target) = conn.migrate_to.take() {
                    let mut moved = Conn::new_migrated(conn);
                    moved.last_activity = Instant::now();
                    shared.mailboxes[target].push(moved);
                    return false;
                }
                conn.last_activity.elapsed() < io_timeout && !shutting_down
            }
        });

        if shutting_down && conns.is_empty() {
            return;
        }
        if progress {
            idle = 0;
        } else {
            idle += 1;
            if idle < IDLE_SPINS {
                std::thread::yield_now();
            } else {
                // Nothing moved for a while: park until the acceptor,
                // a migration, or shutdown wakes this shard (bounded,
                // so idle timeouts and the shutdown flag are still
                // observed).
                let guard = shared.mailboxes[shard]
                    .inbox
                    .lock()
                    .expect("shard inbox poisoned");
                let _ = shared.mailboxes[shard]
                    .cv
                    .wait_timeout(guard, Duration::from_millis(1));
            }
        }
    }
}

impl Conn {
    /// Rebuilds a connection object for migration to another shard,
    /// carrying the socket and both buffers.
    fn new_migrated(conn: &mut Conn) -> Conn {
        Conn {
            stream: conn.stream.try_clone().expect("clone migrating socket"),
            rbuf: std::mem::take(&mut conn.rbuf),
            wbuf: std::mem::take(&mut conn.wbuf),
            tenant: conn.tenant.take(),
            tenant_name: conn.tenant_name.take(),
            slicer: conn.slicer.take(),
            last_activity: conn.last_activity,
            fate: ConnFate::Alive,
            migrate_to: None,
        }
    }
}

/// Parses and handles up to the fairness quota of frames from `conn`.
/// Returns whether any frame was consumed.
fn process_frames(shard: usize, shared: &Shared, conn: &mut Conn, sweep: &mut SweepState) -> bool {
    let mut consumed_total = 0usize;
    let mut any = false;
    for _ in 0..shared.config.quota_frames.max(1) {
        if !matches!(conn.fate, ConnFate::Alive) {
            break;
        }
        match parse_message(&conn.rbuf[consumed_total..]) {
            Ok(None) => break,
            Err(e) => {
                // Garbage framing (oversized/zero length, undecodable
                // body): the stream can no longer be trusted, but the
                // peer deserves to know why. Stage a clean protocol
                // error — no allocation was ever attempted for an
                // oversized frame — and close once it drains.
                fail(conn, format!("protocol error: {e}"));
                break;
            }
            Ok(Some((message, used))) => {
                // Tenant pinning: a (Slicer)Hello homed elsewhere
                // migrates the connection *before* the frame is
                // consumed, so only the home shard ever drives this
                // tenant's WAL.
                if let Message::Hello { tenant, .. } | Message::SlicerHello { tenant, .. } =
                    &message
                {
                    let home = shard_of(tenant, shared.mailboxes.len());
                    if home != shard && valid_tenant_name(tenant) {
                        conn.migrate_to = Some(home);
                        break;
                    }
                }
                consumed_total += used;
                any = true;
                handle_message(shared, conn, message, sweep);
            }
        }
    }
    conn.rbuf.drain(..consumed_total);
    any
}

fn handle_message(shared: &Shared, conn: &mut Conn, message: Message, sweep: &mut SweepState) {
    match message {
        Message::Hello { tenant, initial } => handle_hello(shared, conn, &tenant, initial, sweep),
        Message::Event { process, clock } => handle_event(shared, conn, process, clock, sweep),
        Message::VerdictQuery { tenant } => {
            let witness = resolve_tenant(shared, conn, &tenant)
                .and_then(|t| t.lock().expect("tenant poisoned").witness());
            conn.stage(&Message::Verdict { witness });
        }
        Message::StatsQuery => {
            let stats = shared.stats();
            conn.stage(&Message::Stats(stats));
        }
        Message::TenantStatsQuery => {
            let rows = shared.tenant_rows();
            conn.stage(&Message::TenantStats { rows });
        }
        Message::Shutdown { tenant } => {
            // Drain every tenant's buffers (Interval/Group stragglers)
            // before acknowledging.
            shared.sync_all();
            let witness = resolve_tenant(shared, conn, &tenant)
                .and_then(|t| t.lock().expect("tenant poisoned").witness());
            shared.shutdown.store(true, Ordering::SeqCst);
            shared.wake_all();
            // Wake the blocking acceptor so it observes the flag.
            if let Ok(addr) = conn.stream.local_addr() {
                let _ = TcpStream::connect(addr);
            }
            conn.stage(&Message::ShutdownAck { witness });
            conn.fate = ConnFate::Closing;
        }
        Message::SlicerHello {
            tenant,
            process,
            epoch,
            initial,
        } => handle_slicer_hello(shared, conn, &tenant, process, epoch, initial, sweep),
        Message::Heartbeat {
            process,
            epoch,
            progress,
        } => handle_heartbeat(conn, process, epoch, &progress),
        Message::SlicerDone {
            process,
            epoch,
            progress,
        } => handle_slicer_done(conn, process, epoch, &progress),
        Message::SlicerStatusQuery { tenant } => {
            let verdict =
                resolve_tenant(shared, conn, &tenant).map_or_else(SlicerVerdict::default, |t| {
                    t.lock()
                        .expect("tenant poisoned")
                        .slicer_verdict(Instant::now(), shared.config.heartbeat_timeout)
                });
            conn.stage(&Message::SlicerStatus(verdict));
        }
        // Server-bound connections should not send server-role
        // messages; answer with an error and close.
        Message::HelloAck { .. }
        | Message::Ack { .. }
        | Message::Verdict { .. }
        | Message::Stats(_)
        | Message::ShutdownAck { .. }
        | Message::TenantStats { .. }
        | Message::SlicerHelloAck { .. }
        | Message::SlicerDoneAck
        | Message::SlicerStatus(_)
        | Message::Error { .. } => {
            fail(conn, "unexpected server-role message".to_string());
        }
    }
}

/// Opens (or resumes) a slicer session: the tenant admission and
/// predicate-shape validation of [`handle_hello`], plus epoch adoption
/// and a single-process high-water mark in the ack.
fn handle_slicer_hello(
    shared: &Shared,
    conn: &mut Conn,
    tenant: &str,
    process: u32,
    epoch: u64,
    initial: Vec<bool>,
    sweep: &mut SweepState,
) {
    if !valid_tenant_name(tenant) {
        return fail(conn, format!("invalid tenant name {tenant:?}"));
    }
    if process as usize >= initial.len() {
        return fail(
            conn,
            format!(
                "slicer process {process} out of range for {} processes",
                initial.len()
            ),
        );
    }
    let tenant_ref = match admit_tenant(shared, tenant) {
        Ok(t) => t,
        Err(reason) => return fail(conn, reason),
    };
    let mut t = tenant_ref.lock().expect("tenant poisoned");
    if t.quarantined {
        drop(t);
        return fail(conn, format!("tenant {tenant:?} is quarantined"));
    }
    match (&t.initial, t.monitor.is_some()) {
        (Some(existing), true) => {
            if *existing != initial {
                drop(t);
                return fail(
                    conn,
                    "session mismatch: tenant already monitors a different computation".to_string(),
                );
            }
            t.resumes += 1;
        }
        _ => {
            if let Err(e) = t.wal.append(&WalRecord::Init {
                initial: initial.clone(),
            }) {
                if t.wal.poisoned().is_some() {
                    // Fsync failure: quarantine rather than retry
                    // (fsyncgate), and drop the connection unflushed.
                    t.quarantine(format!("wal append failed: {e}"));
                    drop(t);
                    conn.fate = ConnFate::Dead;
                    return;
                }
                drop(t);
                return fail(conn, format!("wal append failed: {e}"));
            }
            t.events_logged += 1;
            t.monitor = Some(with_cap(
                ConjunctiveMonitor::with_initial(&initial),
                shared.config.queue_cap,
            ));
            t.initial = Some(initial);
            sweep.mark_dirty(tenant, &tenant_ref);
        }
    }
    let adopted = t.slicers.register(process, epoch, Instant::now());
    let high_water = t
        .monitor
        .as_ref()
        .expect("just initialized")
        .high_water(process as usize);
    drop(t);
    conn.tenant = Some(Arc::clone(&tenant_ref));
    conn.tenant_name = Some(tenant.to_string());
    conn.slicer = Some((process, adopted));
    conn.stage(&Message::SlicerHelloAck {
        epoch: adopted,
        high_water,
    });
}

/// Liveness beat: refresh `last_seen` and merge the progress clock.
/// No reply — heartbeats ride the event socket without consuming an
/// ack round-trip.
fn handle_heartbeat(conn: &mut Conn, process: u32, epoch: u64, progress: &[u32]) {
    let Some(tenant_ref) = conn.tenant.clone() else {
        return fail(
            conn,
            "no slicer session: send SlicerHello first".to_string(),
        );
    };
    let mut t = tenant_ref.lock().expect("tenant poisoned");
    t.slicers.beat(process, epoch, progress, Instant::now());
}

/// Graceful completion: the slicer replayed its whole stream. Done
/// slicers are exempt from the heartbeat deadline.
fn handle_slicer_done(conn: &mut Conn, process: u32, epoch: u64, progress: &[u32]) {
    let Some(tenant_ref) = conn.tenant.clone() else {
        return fail(
            conn,
            "no slicer session: send SlicerHello first".to_string(),
        );
    };
    {
        let mut t = tenant_ref.lock().expect("tenant poisoned");
        t.slicers.done(process, epoch, progress, Instant::now());
    }
    conn.stage(&Message::SlicerDoneAck);
}

/// Stages an error reply and closes the connection after it drains.
fn fail(conn: &mut Conn, message: String) {
    conn.stage(&Message::Error { message });
    conn.fate = ConnFate::Closing;
}

/// `""` → the session's tenant, falling back to the default tenant.
fn resolve_tenant(shared: &Shared, conn: &Conn, tenant: &str) -> Option<TenantRef> {
    if !tenant.is_empty() {
        return shared.lookup(tenant);
    }
    if let Some(t) = &conn.tenant {
        return Some(Arc::clone(t));
    }
    shared.lookup(DEFAULT_TENANT)
}

/// Finds or admits `tenant` under the map lock; heavy work (WAL open)
/// happens under the tenant's own lock. Errors are user-facing reasons.
fn admit_tenant(shared: &Shared, tenant: &str) -> Result<TenantRef, String> {
    let mut map = shared.tenants.lock().expect("tenant map poisoned");
    match map.get(tenant) {
        Some(t) => Ok(Arc::clone(t)),
        None => {
            if map.len() >= shared.config.max_tenants {
                return Err(format!(
                    "tenant quota exceeded ({} tenants)",
                    shared.config.max_tenants
                ));
            }
            match Tenant::open(tenant, &shared.config.wal, shared.config.queue_cap) {
                Ok(t) => {
                    let t = Arc::new(Mutex::new(t));
                    map.insert(tenant.to_string(), Arc::clone(&t));
                    Ok(t)
                }
                Err(e) => Err(format!("tenant WAL unavailable: {e}")),
            }
        }
    }
}

fn handle_hello(
    shared: &Shared,
    conn: &mut Conn,
    tenant: &str,
    initial: Vec<bool>,
    sweep: &mut SweepState,
) {
    if !valid_tenant_name(tenant) {
        return fail(conn, format!("invalid tenant name {tenant:?}"));
    }
    let tenant_ref = match admit_tenant(shared, tenant) {
        Ok(t) => t,
        Err(reason) => return fail(conn, reason),
    };

    let mut t = tenant_ref.lock().expect("tenant poisoned");
    if t.quarantined {
        drop(t);
        return fail(conn, format!("tenant {tenant:?} is quarantined"));
    }
    match (&t.initial, t.monitor.is_some()) {
        (Some(existing), true) => {
            if *existing != initial {
                drop(t);
                return fail(
                    conn,
                    "session mismatch: tenant already monitors a different computation".to_string(),
                );
            }
            t.resumes += 1;
        }
        _ => {
            // First contact: log the session header before building
            // the monitor, so recovery can rebuild it.
            if let Err(e) = t.wal.append(&WalRecord::Init {
                initial: initial.clone(),
            }) {
                if t.wal.poisoned().is_some() {
                    // Fsync failure: quarantine rather than retry
                    // (fsyncgate), and drop the connection unflushed.
                    t.quarantine(format!("wal append failed: {e}"));
                    drop(t);
                    conn.fate = ConnFate::Dead;
                    return;
                }
                drop(t);
                return fail(conn, format!("wal append failed: {e}"));
            }
            t.events_logged += 1;
            t.monitor = Some(with_cap(
                ConjunctiveMonitor::with_initial(&initial),
                shared.config.queue_cap,
            ));
            t.initial = Some(initial);
            sweep.mark_dirty(tenant, &tenant_ref);
        }
    }
    let monitor = t.monitor.as_ref().expect("just initialized");
    let high_water = (0..monitor.process_count())
        .map(|p| monitor.high_water(p))
        .collect();
    drop(t);
    conn.tenant = Some(Arc::clone(&tenant_ref));
    conn.tenant_name = Some(tenant.to_string());
    conn.stage(&Message::HelloAck { high_water });
}

fn handle_event(
    shared: &Shared,
    conn: &mut Conn,
    process: u32,
    clock: Vec<u32>,
    sweep: &mut SweepState,
) {
    let Some(tenant_ref) = conn.tenant.clone() else {
        return fail(conn, "no session: send Hello first".to_string());
    };
    let name = conn.tenant_name.clone().unwrap_or_default();
    let mut t = tenant_ref.lock().expect("tenant poisoned");
    if t.quarantined {
        drop(t);
        return fail(conn, format!("tenant {name:?} is quarantined"));
    }
    let Some(monitor) = t.monitor.as_ref() else {
        drop(t);
        return fail(conn, "no session: send Hello first".to_string());
    };
    let n = monitor.process_count();
    if process as usize >= n || clock.len() != n {
        drop(t);
        return fail(
            conn,
            format!(
                "malformed event: process {process}, clock length {}",
                clock.len()
            ),
        );
    }
    let p = process as usize;
    let vc = VectorClock::from(clock.clone());
    let seq = clock[p];
    // An event on a slicer session is a sign of life (and causal
    // progress) for its epoch — stale epochs are fenced by the
    // registry, so a zombie's replay cannot mask its successor.
    if let Some((sp, epoch)) = conn.slicer {
        if sp == process {
            t.slicers.beat(sp, epoch, &clock, Instant::now());
        }
    }
    // Classify first so only genuinely new events hit the log; then
    // append (durable at the group-commit boundary, or immediately
    // under `fsync always`); then apply; then ack at sweep end. See
    // the module docs for why each crash window is safe.
    let status = match t.monitor.as_ref().expect("checked").classify(p, &vc) {
        Observation::Duplicate => {
            t.duplicates += 1;
            AckStatus::Duplicate
        }
        Observation::Stale => {
            t.stale += 1;
            AckStatus::Stale
        }
        Observation::Accepted => {
            let over = shared.config.queue_cap.is_some_and(|cap| {
                let m = t.monitor.as_ref().expect("checked");
                m.witness().is_none() && m.queue_depth_of(p) >= cap
            });
            if over {
                t.rejected += 1;
                AckStatus::Rejected
            } else {
                if let Err(e) = t.wal.append(&WalRecord::Event {
                    process,
                    clock: clock.clone(),
                }) {
                    if t.wal.poisoned().is_some() {
                        // Fsync failure (or a rollback that failed):
                        // durability can no longer be promised and a
                        // retry would trust a lying fsync (fsyncgate).
                        // Quarantine and drop the connection with its
                        // staged output unflushed — every un-synced
                        // ack is withheld; the client re-delivers to
                        // a healthy home after operator action.
                        t.quarantine(format!("wal append failed: {e}"));
                        drop(t);
                        conn.fate = ConnFate::Dead;
                        return;
                    }
                    // Transient storage error (ENOSPC/EIO), frame
                    // rolled back: the log is intact minus this one
                    // event — reject it so the client backs off, and
                    // stay in service.
                    t.storage_errors += 1;
                    t.rejected += 1;
                    drop(t);
                    conn.stage(&Message::Ack {
                        process,
                        seq,
                        status: AckStatus::Rejected,
                    });
                    return;
                }
                t.events_logged += 1;
                t.events_since_snapshot += 1;
                // Panic isolation: a crashing predicate (modeled by
                // the fault-injection hook) quarantines this tenant
                // only — the monitor is not trusted afterwards, but no
                // other tenant shares it, and the catch keeps the
                // tenant mutex unpoisoned.
                let fault = shared.config.fault_injection;
                let applied = catch_unwind(AssertUnwindSafe(|| {
                    if let Some(hook) = fault {
                        hook(&name);
                    }
                    t.monitor
                        .as_mut()
                        .expect("checked")
                        .try_observe(p, vc)
                        .expect("overflow checked before logging")
                }));
                match applied {
                    Ok(observed) => {
                        debug_assert_eq!(observed, Observation::Accepted);
                        t.observed += 1;
                        let depth = t.monitor.as_ref().expect("checked").queue_depth() as u64;
                        t.queue_peak = t.queue_peak.max(depth);
                        if shared
                            .config
                            .snapshot_every
                            .is_some_and(|every| t.events_since_snapshot >= every)
                        {
                            sweep.mark_compact(&name, &tenant_ref);
                        }
                        sweep.mark_dirty(&name, &tenant_ref);
                        AckStatus::Accepted
                    }
                    Err(_) => {
                        t.quarantine(format!(
                            "predicate panicked applying event (process {process}, seq {seq})"
                        ));
                        drop(t);
                        sweep.mark_dirty(&name, &tenant_ref);
                        return fail(conn, format!("tenant {name:?} is quarantined"));
                    }
                }
            }
        }
    };
    drop(t);
    conn.stage(&Message::Ack {
        process,
        seq,
        status,
    });
}
