//! The monitoring service: a TCP listener that logs every accepted
//! event to the WAL before applying it to a [`ConjunctiveMonitor`] and
//! acking the client.
//!
//! ## Ordering and determinism
//!
//! Connections are handed to a fixed worker pool over a bounded queue
//! (`max_inflight` — when full, `accept` stops draining and the kernel
//! backlog applies backpressure to clients). Each connection is served
//! sequentially by one worker, and the WAL + monitor live behind a
//! single mutex, so events from one connection apply in the order sent
//! — per-process FIFO is preserved no matter how many workers run.
//! Combined with the monitor's unique-minimal-witness property
//! (`docs/ALGORITHMS.md` §11), the verdict and witness are identical at
//! 1, 2, or 4 workers, and identical across crash/recover/redeliver
//! runs.
//!
//! ## Crash windows
//!
//! The append-then-apply-then-ack order makes every crash window safe
//! under `fsync always`:
//!
//! - crash before the append is durable → the client never got an ack
//!   and retransmits after reconnect; recovery replays the prefix.
//! - crash after the append, before the ack → recovery replays the
//!   event; the client retransmits it and the monitor screens it as a
//!   duplicate.

use std::io::Write as _;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use gpd::online::{ConjunctiveMonitor, Observation};
use gpd_computation::VectorClock;

use crate::protocol::{read_message, write_message, AckStatus, Message, ServerStats};
use crate::wal::{Wal, WalConfig, WalRecord};

/// Server tunables.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// WAL location and durability policy.
    pub wal: WalConfig,
    /// Worker threads serving connections.
    pub workers: usize,
    /// Bound on connections queued for a worker; beyond it the accept
    /// loop stops draining and TCP backpressure applies.
    pub max_inflight: usize,
    /// Per-connection read timeout; an idle connection past it is
    /// dropped (the client reconnects and resumes).
    pub io_timeout: Duration,
    /// Optional cap on the monitor's per-process queues; overflow is
    /// acked as [`AckStatus::Rejected`] so clients back off.
    pub queue_cap: Option<usize>,
}

impl ServerConfig {
    /// Defaults: 2 workers, 16 queued connections, 30 s idle timeout,
    /// unbounded monitor queues.
    pub fn new(wal: WalConfig) -> Self {
        ServerConfig {
            wal,
            workers: 2,
            max_inflight: 16,
            io_timeout: Duration::from_secs(30),
            queue_cap: None,
        }
    }
}

/// Cross-thread counters, mirrored into [`ServerStats`] on demand.
#[derive(Debug, Default)]
struct Counters {
    observed: AtomicU64,
    duplicates: AtomicU64,
    stale: AtomicU64,
    rejected: AtomicU64,
    events_logged: AtomicU64,
    resumes: AtomicU64,
}

/// The WAL and monitor, guarded together so log order equals apply
/// order.
struct Inner {
    wal: Wal,
    /// `None` until the first `Hello` (or WAL `Init` replay) declares
    /// the process count.
    monitor: Option<ConjunctiveMonitor>,
    initial: Option<Vec<bool>>,
}

struct Shared {
    inner: Mutex<Inner>,
    counters: Counters,
    shutdown: AtomicBool,
    queue_cap: Option<usize>,
}

impl Shared {
    fn stats(&self) -> ServerStats {
        let inner = self.inner.lock().expect("server state poisoned");
        ServerStats {
            observed: self.counters.observed.load(Ordering::Relaxed),
            duplicates: self.counters.duplicates.load(Ordering::Relaxed),
            stale: self.counters.stale.load(Ordering::Relaxed),
            rejected: self.counters.rejected.load(Ordering::Relaxed),
            events_logged: self.counters.events_logged.load(Ordering::Relaxed),
            resumes: self.counters.resumes.load(Ordering::Relaxed),
            queue_depth: inner.monitor.as_ref().map_or(0, |m| m.queue_depth() as u64),
            wal_segments: inner.wal.segment_count(),
        }
    }

    fn witness(inner: &Inner) -> Option<Vec<Vec<u32>>> {
        inner.monitor.as_ref().and_then(|m| {
            m.witness()
                .map(|cut| cut.iter().map(|c| c.as_slice().to_vec()).collect())
        })
    }
}

/// A running server; dropped handles do **not** stop it — send
/// [`Message::Shutdown`] (e.g. via
/// [`FeedClient::shutdown`](crate::client::FeedClient::shutdown)) and
/// then [`ServerHandle::wait`].
pub struct ServerHandle {
    addr: SocketAddr,
    threads: Vec<JoinHandle<()>>,
    shared: Arc<Shared>,
}

/// What the server knew when it stopped.
#[derive(Debug, Clone)]
pub struct ServerSummary {
    /// The final witness cut, if the conjunction ever held.
    pub witness: Option<Vec<Vec<u32>>>,
    /// Final counters.
    pub stats: ServerStats,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A point-in-time counter snapshot.
    pub fn stats(&self) -> ServerStats {
        self.shared.stats()
    }

    /// Blocks until a client-initiated shutdown completes, then reports
    /// the final verdict and counters.
    pub fn wait(self) -> ServerSummary {
        for t in self.threads {
            let _ = t.join();
        }
        let stats = self.shared.stats();
        let inner = self.shared.inner.lock().expect("server state poisoned");
        ServerSummary {
            witness: Shared::witness(&inner),
            stats,
        }
    }
}

/// Starts the service on `addr` (use `"127.0.0.1:0"` for an ephemeral
/// port), recovering state from the WAL directory first.
///
/// # Errors
///
/// Any I/O error binding the listener or opening/recovering the WAL.
pub fn start(addr: &str, config: ServerConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let (wal, recovery) = Wal::open(config.wal.clone())?;

    // Deterministic replay: the WAL records every accepted observation
    // in apply order, so replaying it rebuilds the exact monitor state
    // (same witness, same high-water marks) the crashed server had at
    // its last durable append.
    let mut monitor = None;
    let mut initial = None;
    for record in &recovery.records {
        match record {
            WalRecord::Init { initial: init } => {
                monitor = Some(match config.queue_cap {
                    Some(cap) => ConjunctiveMonitor::with_initial(init).with_queue_cap(cap),
                    None => ConjunctiveMonitor::with_initial(init),
                });
                initial = Some(init.clone());
            }
            WalRecord::Event { process, clock } => {
                if let Some(m) = monitor.as_mut() {
                    // Logged events were accepted once; replay cannot
                    // overflow a queue that held them before.
                    let _ = m.try_observe(*process as usize, VectorClock::from(clock.clone()));
                }
            }
        }
    }

    let shared = Arc::new(Shared {
        inner: Mutex::new(Inner {
            wal,
            monitor,
            initial,
        }),
        counters: Counters::default(),
        shutdown: AtomicBool::new(false),
        queue_cap: config.queue_cap,
    });

    let (tx, rx) = sync_channel::<TcpStream>(config.max_inflight.max(1));
    let rx = Arc::new(Mutex::new(rx));
    let mut threads = Vec::new();
    for _ in 0..config.workers.max(1) {
        let rx = Arc::clone(&rx);
        let shared = Arc::clone(&shared);
        let io_timeout = config.io_timeout;
        threads.push(std::thread::spawn(move || {
            worker_loop(&rx, &shared, io_timeout);
        }));
    }
    {
        let shared = Arc::clone(&shared);
        threads.push(std::thread::spawn(move || {
            accept_loop(&listener, &tx, &shared);
        }));
    }

    Ok(ServerHandle {
        addr: local,
        threads,
        shared,
    })
}

fn accept_loop(listener: &TcpListener, tx: &SyncSender<TcpStream>, shared: &Shared) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    // The wake-up connection (or a late client); closing
                    // the socket tells the peer we are gone.
                    break;
                }
                if tx.send(stream).is_err() {
                    break;
                }
            }
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
            }
        }
    }
    // Dropping `tx` unblocks idle workers.
}

fn worker_loop(rx: &Arc<Mutex<Receiver<TcpStream>>>, shared: &Shared, io_timeout: Duration) {
    loop {
        let stream = {
            let guard = rx.lock().expect("connection queue poisoned");
            guard.recv()
        };
        let Ok(stream) = stream else {
            return; // acceptor gone: shutdown
        };
        let _ = serve_connection(stream, shared, io_timeout);
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
    }
}

/// Serves one connection to completion. Returns `Err` only on I/O
/// failure; protocol violations send [`Message::Error`] and close.
fn serve_connection(
    mut stream: TcpStream,
    shared: &Shared,
    io_timeout: Duration,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(io_timeout))?;
    stream.set_write_timeout(Some(io_timeout))?;
    stream.set_nodelay(true)?;
    loop {
        let message = match read_message(&mut stream) {
            Ok(m) => m,
            Err(_) => return Ok(()), // EOF, timeout, or garbage: drop the connection
        };
        match message {
            Message::Hello { initial } => {
                let mut inner = shared.inner.lock().expect("server state poisoned");
                match (&inner.initial, inner.monitor.is_some()) {
                    (Some(existing), true) => {
                        if *existing != initial {
                            drop(inner);
                            let reason =
                                "session mismatch: server already monitors a different computation"
                                    .to_string();
                            write_message(&mut stream, &Message::Error { message: reason })?;
                            return Ok(());
                        }
                        shared.counters.resumes.fetch_add(1, Ordering::Relaxed);
                    }
                    _ => {
                        // First contact ever: log the session header
                        // before building the monitor, so recovery can
                        // rebuild it.
                        inner.wal.append(&WalRecord::Init {
                            initial: initial.clone(),
                        })?;
                        shared
                            .counters
                            .events_logged
                            .fetch_add(1, Ordering::Relaxed);
                        inner.monitor = Some(match shared.queue_cap {
                            Some(cap) => {
                                ConjunctiveMonitor::with_initial(&initial).with_queue_cap(cap)
                            }
                            None => ConjunctiveMonitor::with_initial(&initial),
                        });
                        inner.initial = Some(initial);
                    }
                }
                let monitor = inner.monitor.as_ref().expect("just initialized");
                let high_water = (0..monitor.process_count())
                    .map(|p| monitor.high_water(p))
                    .collect();
                drop(inner);
                write_message(&mut stream, &Message::HelloAck { high_water })?;
            }
            Message::Event { process, clock } => {
                let mut inner = shared.inner.lock().expect("server state poisoned");
                let Some(monitor) = inner.monitor.as_ref() else {
                    drop(inner);
                    let reason = "no session: send Hello first".to_string();
                    write_message(&mut stream, &Message::Error { message: reason })?;
                    return Ok(());
                };
                let n = monitor.process_count();
                if process as usize >= n || clock.len() != n {
                    drop(inner);
                    let reason = format!(
                        "malformed event: process {process}, clock length {}",
                        clock.len()
                    );
                    write_message(&mut stream, &Message::Error { message: reason })?;
                    return Ok(());
                }
                let p = process as usize;
                let vc = VectorClock::from(clock.clone());
                let seq = clock[p];
                // Classify first so only genuinely new events hit the
                // log; then append (durable under `fsync always`);
                // then apply; then ack. See the module docs for why
                // each crash window is safe.
                let status = match inner.monitor.as_ref().expect("checked").classify(p, &vc) {
                    Observation::Duplicate => {
                        shared.counters.duplicates.fetch_add(1, Ordering::Relaxed);
                        AckStatus::Duplicate
                    }
                    Observation::Stale => {
                        shared.counters.stale.fetch_add(1, Ordering::Relaxed);
                        AckStatus::Stale
                    }
                    Observation::Accepted => {
                        let over = shared.queue_cap.is_some_and(|cap| {
                            let m = inner.monitor.as_ref().expect("checked");
                            m.witness().is_none() && m.queue_depth_of(p) >= cap
                        });
                        if over {
                            shared.counters.rejected.fetch_add(1, Ordering::Relaxed);
                            AckStatus::Rejected
                        } else {
                            inner.wal.append(&WalRecord::Event {
                                process,
                                clock: clock.clone(),
                            })?;
                            shared
                                .counters
                                .events_logged
                                .fetch_add(1, Ordering::Relaxed);
                            let observed = inner
                                .monitor
                                .as_mut()
                                .expect("checked")
                                .try_observe(p, vc)
                                .expect("overflow checked before logging");
                            debug_assert_eq!(observed, Observation::Accepted);
                            shared.counters.observed.fetch_add(1, Ordering::Relaxed);
                            AckStatus::Accepted
                        }
                    }
                };
                drop(inner);
                write_message(
                    &mut stream,
                    &Message::Ack {
                        process,
                        seq,
                        status,
                    },
                )?;
            }
            Message::VerdictQuery => {
                let inner = shared.inner.lock().expect("server state poisoned");
                let witness = Shared::witness(&inner);
                drop(inner);
                write_message(&mut stream, &Message::Verdict { witness })?;
            }
            Message::StatsQuery => {
                let stats = shared.stats();
                write_message(&mut stream, &Message::Stats(stats))?;
            }
            Message::Shutdown => {
                let mut inner = shared.inner.lock().expect("server state poisoned");
                inner.wal.sync()?; // drain Interval-mode buffers
                let witness = Shared::witness(&inner);
                drop(inner);
                shared.shutdown.store(true, Ordering::SeqCst);
                // Wake the acceptor so it observes the flag.
                let _ = TcpStream::connect(shared_addr(&stream));
                write_message(&mut stream, &Message::ShutdownAck { witness })?;
                stream.flush()?;
                return Ok(());
            }
            // Server-bound connections should not send server-role
            // messages; answer with an error and close.
            Message::HelloAck { .. }
            | Message::Ack { .. }
            | Message::Verdict { .. }
            | Message::Stats(_)
            | Message::ShutdownAck { .. }
            | Message::Error { .. } => {
                let reason = "unexpected server-role message".to_string();
                write_message(&mut stream, &Message::Error { message: reason })?;
                return Ok(());
            }
        }
    }
}

/// The server's own listening address, reconstructed from the accepted
/// connection's local endpoint (same IP and port as the listener).
fn shared_addr(stream: &TcpStream) -> SocketAddr {
    stream
        .local_addr()
        .expect("accepted socket has a local address")
}
