//! Fidge–Mattern vector clocks.
//!
//! Two representations share the same semantics: [`VectorClock`] owns
//! its components on the heap, while [`ClockRef`] borrows one row of a
//! [`Computation`](crate::Computation)'s flat clock matrix. Order
//! queries go through `ClockRef`; owned clocks remain for callers that
//! must outlive the computation (e.g. online monitors). Every owned
//! allocation is metered by [`kernel_counters`](crate::kernel_counters)
//! so the flat layout's zero-allocation claim is checkable.

use crate::counters;
use crate::kernel;

/// A vector timestamp: component `i` counts the events of process `i`
/// that causally precede (or are) the stamped event.
///
/// Vector clocks characterize the happened-before order exactly:
/// `e → f` iff `vc(e) ≤ vc(f)` componentwise and `e ≠ f`.
///
/// # Example
///
/// ```
/// use gpd_computation::VectorClock;
///
/// let a = VectorClock::from(vec![1, 0]);
/// let b = VectorClock::from(vec![1, 1]);
/// assert!(a.dominated_by(&b));
/// assert!(!b.dominated_by(&a));
/// ```
#[derive(PartialEq, Eq, Hash)]
pub struct VectorClock {
    components: Vec<u32>,
}

impl VectorClock {
    /// The all-zero clock over `n` processes (the initial state).
    pub fn zero(n: usize) -> Self {
        VectorClock::from(vec![0; n])
    }

    /// The number of processes.
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// Whether the clock has no components (degenerate zero-process case).
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// Component `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn get(&self, i: usize) -> u32 {
        self.components[i]
    }

    /// The raw components.
    pub fn as_slice(&self) -> &[u32] {
        &self.components
    }

    /// Componentwise maximum with `other`, in place (the receive rule).
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn merge(&mut self, other: &VectorClock) {
        assert_eq!(self.len(), other.len(), "vector clock length mismatch");
        for (a, b) in self.components.iter_mut().zip(&other.components) {
            *a = (*a).max(*b);
        }
    }

    /// Whether `self ≤ other` componentwise (branch-free row kernel).
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn dominated_by(&self, other: &VectorClock) -> bool {
        assert_eq!(self.len(), other.len(), "vector clock length mismatch");
        kernel::dominated(&self.components, &other.components)
    }

    /// A borrowing view of this clock, for mixing owned clocks into
    /// [`ClockRef`]-based comparisons.
    pub fn view(&self) -> ClockRef<'_> {
        ClockRef::new(&self.components)
    }
}

impl Clone for VectorClock {
    fn clone(&self) -> Self {
        VectorClock::from(self.components.clone())
    }
}

impl From<Vec<u32>> for VectorClock {
    fn from(components: Vec<u32>) -> Self {
        counters::record_vclock_alloc();
        VectorClock { components }
    }
}

/// A vector clock *view* borrowing one row of a computation's flat
/// clock matrix — the zero-allocation counterpart of [`VectorClock`].
///
/// Returned by [`Computation::clock`](crate::Computation::clock); offers
/// the same read API (`get`, `as_slice`, `dominated_by`) without owning
/// the components, so per-event clock access never touches the heap.
/// Call [`to_owned`](ClockRef::to_owned) for a detached copy.
#[derive(Clone, Copy)]
pub struct ClockRef<'a> {
    components: &'a [u32],
}

impl<'a> ClockRef<'a> {
    pub(crate) fn new(components: &'a [u32]) -> Self {
        ClockRef { components }
    }

    /// The number of processes.
    pub fn len(self) -> usize {
        self.components.len()
    }

    /// Whether the clock has no components (degenerate zero-process case).
    pub fn is_empty(self) -> bool {
        self.components.is_empty()
    }

    /// Component `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn get(self, i: usize) -> u32 {
        self.components[i]
    }

    /// The raw components — the borrowed matrix row itself.
    pub fn as_slice(self) -> &'a [u32] {
        self.components
    }

    /// Whether `self ≤ other` componentwise (branch-free row kernel).
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn dominated_by(self, other: ClockRef<'_>) -> bool {
        assert_eq!(self.len(), other.len(), "vector clock length mismatch");
        kernel::dominated(self.components, other.components)
    }

    /// Copies the row into an owned [`VectorClock`] (heap-allocating,
    /// and metered as such).
    #[allow(clippy::wrong_self_convention)]
    pub fn to_owned(self) -> VectorClock {
        VectorClock::from(self.components.to_vec())
    }
}

impl PartialEq for ClockRef<'_> {
    fn eq(&self, other: &Self) -> bool {
        self.components == other.components
    }
}

impl Eq for ClockRef<'_> {}

impl PartialEq<VectorClock> for ClockRef<'_> {
    fn eq(&self, other: &VectorClock) -> bool {
        self.components == other.as_slice()
    }
}

impl std::fmt::Debug for ClockRef<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "⟨")?;
        for (i, c) in self.components.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, "⟩")
    }
}

impl std::fmt::Debug for VectorClock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "⟨")?;
        for (i, c) in self.components.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, "⟩")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_clock() {
        let z = VectorClock::zero(3);
        assert_eq!(z.as_slice(), &[0, 0, 0]);
        assert!(z.dominated_by(&z));
    }

    #[test]
    fn merge_takes_componentwise_max() {
        let mut a = VectorClock::from(vec![3, 0, 1]);
        a.merge(&VectorClock::from(vec![1, 2, 1]));
        assert_eq!(a.as_slice(), &[3, 2, 1]);
    }

    #[test]
    fn domination_is_partial() {
        let a = VectorClock::from(vec![1, 0]);
        let b = VectorClock::from(vec![0, 1]);
        assert!(!a.dominated_by(&b));
        assert!(!b.dominated_by(&a));
        let z = VectorClock::zero(2);
        assert!(z.dominated_by(&a) && z.dominated_by(&b));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        VectorClock::zero(2).merge(&VectorClock::zero(3));
    }

    #[test]
    fn debug_format() {
        assert_eq!(format!("{:?}", VectorClock::from(vec![1, 2])), "⟨1,2⟩");
    }

    #[test]
    fn clock_ref_views_match_owned_semantics() {
        let a = VectorClock::from(vec![1, 0, 2]);
        let b = VectorClock::from(vec![1, 1, 2]);
        let (ra, rb) = (a.view(), b.view());
        assert_eq!(ra.len(), 3);
        assert!(!ra.is_empty());
        assert_eq!(ra.get(2), 2);
        assert_eq!(ra.as_slice(), &[1, 0, 2]);
        assert!(ra.dominated_by(rb));
        assert!(!rb.dominated_by(ra));
        assert_eq!(ra, a);
        assert_eq!(ra, a.view());
        assert_ne!(ra, rb);
        assert_eq!(format!("{ra:?}"), "⟨1,0,2⟩");
        assert_eq!(ra.to_owned(), a);
    }

    #[test]
    fn owned_clock_construction_is_metered() {
        let before = crate::kernel_counters();
        let a = VectorClock::zero(4);
        let _b = a.clone();
        let _c = VectorClock::from(vec![1, 2, 3, 4]);
        let after = crate::kernel_counters();
        assert!(after.vclock_allocs >= before.vclock_allocs + 3);
    }
}
