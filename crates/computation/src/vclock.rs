//! Fidge–Mattern vector clocks.

/// A vector timestamp: component `i` counts the events of process `i`
/// that causally precede (or are) the stamped event.
///
/// Vector clocks characterize the happened-before order exactly:
/// `e → f` iff `vc(e) ≤ vc(f)` componentwise and `e ≠ f`.
///
/// # Example
///
/// ```
/// use gpd_computation::VectorClock;
///
/// let a = VectorClock::from(vec![1, 0]);
/// let b = VectorClock::from(vec![1, 1]);
/// assert!(a.dominated_by(&b));
/// assert!(!b.dominated_by(&a));
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct VectorClock {
    components: Vec<u32>,
}

impl VectorClock {
    /// The all-zero clock over `n` processes (the initial state).
    pub fn zero(n: usize) -> Self {
        VectorClock {
            components: vec![0; n],
        }
    }

    /// The number of processes.
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// Whether the clock has no components (degenerate zero-process case).
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// Component `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn get(&self, i: usize) -> u32 {
        self.components[i]
    }

    /// The raw components.
    pub fn as_slice(&self) -> &[u32] {
        &self.components
    }

    pub(crate) fn set(&mut self, i: usize, v: u32) {
        self.components[i] = v;
    }

    /// Componentwise maximum with `other`, in place (the receive rule).
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn merge(&mut self, other: &VectorClock) {
        assert_eq!(self.len(), other.len(), "vector clock length mismatch");
        for (a, b) in self.components.iter_mut().zip(&other.components) {
            *a = (*a).max(*b);
        }
    }

    /// Whether `self ≤ other` componentwise.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn dominated_by(&self, other: &VectorClock) -> bool {
        assert_eq!(self.len(), other.len(), "vector clock length mismatch");
        self.components
            .iter()
            .zip(&other.components)
            .all(|(a, b)| a <= b)
    }
}

impl From<Vec<u32>> for VectorClock {
    fn from(components: Vec<u32>) -> Self {
        VectorClock { components }
    }
}

impl std::fmt::Debug for VectorClock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "⟨")?;
        for (i, c) in self.components.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, "⟩")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_clock() {
        let z = VectorClock::zero(3);
        assert_eq!(z.as_slice(), &[0, 0, 0]);
        assert!(z.dominated_by(&z));
    }

    #[test]
    fn merge_takes_componentwise_max() {
        let mut a = VectorClock::from(vec![3, 0, 1]);
        a.merge(&VectorClock::from(vec![1, 2, 1]));
        assert_eq!(a.as_slice(), &[3, 2, 1]);
    }

    #[test]
    fn domination_is_partial() {
        let a = VectorClock::from(vec![1, 0]);
        let b = VectorClock::from(vec![0, 1]);
        assert!(!a.dominated_by(&b));
        assert!(!b.dominated_by(&a));
        let z = VectorClock::zero(2);
        assert!(z.dominated_by(&a) && z.dominated_by(&b));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        VectorClock::zero(2).merge(&VectorClock::zero(3));
    }

    #[test]
    fn debug_format() {
        assert_eq!(format!("{:?}", VectorClock::from(vec![1, 2])), "⟨1,2⟩");
    }
}
