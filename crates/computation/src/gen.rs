//! Seeded random computations and annotations for experiments.
//!
//! All generators are deterministic given the `Rng`: every experiment in
//! `EXPERIMENTS.md` records its seed, so every number is reproducible.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::builder::ComputationBuilder;
use crate::computation::Computation;
use crate::variables::{BoolVariable, IntVariable};

/// Generates a random computation with `processes` processes of
/// `events_per_process` events each and (up to) `messages` message edges.
///
/// Events are laid out on a random global timeline (a shuffled
/// interleaving that preserves each process's order) and messages only go
/// forward along it, so the result is always acyclic. Duplicate edges are
/// skipped, which is why fewer than `messages` edges can result on tiny
/// computations.
///
/// # Panics
///
/// Panics if `processes == 0` but `messages > 0` would be requested on an
/// empty timeline (messages require at least two processes).
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(11);
/// let comp = gpd_computation::gen::random_computation(&mut rng, 4, 10, 12);
/// assert_eq!(comp.process_count(), 4);
/// assert_eq!(comp.event_count(), 40);
/// ```
pub fn random_computation<R: Rng>(
    rng: &mut R,
    processes: usize,
    events_per_process: usize,
    messages: usize,
) -> Computation {
    random_computation_with_receivers(rng, processes, events_per_process, messages, None)
}

/// Like [`random_computation`], but if `receivers` is `Some`, messages are
/// only delivered to the listed processes. Restricting each group of a
/// [`Grouping`](crate::Grouping) to one designated receiver process makes
/// the computation *receive-ordered* for that grouping, which is how the
/// E4 experiment generates inputs for the §3.2 special case.
///
/// # Panics
///
/// Panics if `messages > 0` and there is no process pair `(sender,
/// receiver)` with distinct processes to connect.
pub fn random_computation_with_receivers<R: Rng>(
    rng: &mut R,
    processes: usize,
    events_per_process: usize,
    messages: usize,
    receivers: Option<&[usize]>,
) -> Computation {
    let mut schedule: Vec<usize> = (0..processes)
        .flat_map(|p| std::iter::repeat_n(p, events_per_process))
        .collect();
    schedule.shuffle(rng);

    let mut b = ComputationBuilder::new(processes);
    let events: Vec<crate::EventId> = schedule.iter().map(|&p| b.append(p)).collect();

    // Slots eligible to receive, in timeline order.
    let receiver_slots: Vec<usize> = (0..events.len())
        .filter(|&i| receivers.is_none_or(|r| r.contains(&schedule[i])))
        .collect();

    if messages > 0 {
        let can_connect = receiver_slots
            .iter()
            .any(|&j| (0..j).any(|i| schedule[i] != schedule[j]));
        assert!(
            can_connect,
            "no (sender, receiver) pair available for the requested messages"
        );
    }

    let mut used = std::collections::HashSet::new();
    let mut added = 0;
    let mut attempts = 0;
    while added < messages && attempts < messages * 20 {
        attempts += 1;
        let &j = match receiver_slots.choose(rng) {
            Some(j) => j,
            None => break,
        };
        if j == 0 {
            continue;
        }
        let i = rng.gen_range(0..j);
        if schedule[i] == schedule[j] || !used.insert((i, j)) {
            continue;
        }
        b.message(events[i], events[j])
            .expect("distinct processes checked above");
        added += 1;
    }
    b.build()
        .expect("forward-only messages cannot form a cycle")
}

/// Generates a boolean variable per process that is true in each state
/// independently with probability `density` (initial states included).
///
/// # Panics
///
/// Panics if `density` is not within `[0, 1]`.
pub fn random_bool_variable<R: Rng>(rng: &mut R, comp: &Computation, density: f64) -> BoolVariable {
    let values = (0..comp.process_count())
        .map(|p| {
            (0..=comp.events_on(p))
                .map(|_| rng.gen_bool(density))
                .collect()
        })
        .collect();
    BoolVariable::new(comp, values)
}

/// Generates an integer variable per process performing a lazy ±1 random
/// walk from 0: each event changes the variable by −1, 0 or +1 (equal
/// probability). Satisfies the Theorem 7 precondition
/// ([`IntVariable::is_unit_step`]).
pub fn random_unit_int_variable<R: Rng>(rng: &mut R, comp: &Computation) -> IntVariable {
    let values = (0..comp.process_count())
        .map(|p| {
            let mut v = 0i64;
            let mut track = vec![0i64];
            for _ in 0..comp.events_on(p) {
                v += rng.gen_range(-1..=1);
                track.push(v);
            }
            track
        })
        .collect();
    IntVariable::new(comp, values)
}

/// Generates an integer variable per process with arbitrary jumps: each
/// state's value is drawn uniformly from `-amplitude..=amplitude`. Used
/// for the NP-hard regime of §4.1 where increments are unbounded.
///
/// # Panics
///
/// Panics if `amplitude < 0`.
pub fn random_int_variable<R: Rng>(rng: &mut R, comp: &Computation, amplitude: i64) -> IntVariable {
    assert!(amplitude >= 0, "amplitude must be nonnegative");
    let values = (0..comp.process_count())
        .map(|p| {
            (0..=comp.events_on(p))
                .map(|_| rng.gen_range(-amplitude..=amplitude))
                .collect()
        })
        .collect();
    IntVariable::new(comp, values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn shape_is_as_requested() {
        let comp = random_computation(&mut rng(1), 5, 8, 10);
        assert_eq!(comp.process_count(), 5);
        assert_eq!(comp.event_count(), 40);
        for p in 0..5 {
            assert_eq!(comp.events_on(p), 8);
        }
        assert_eq!(comp.messages().len(), 10);
    }

    #[test]
    fn deterministic_under_seed() {
        let a = random_computation(&mut rng(7), 3, 5, 6);
        let b = random_computation(&mut rng(7), 3, 5, 6);
        assert_eq!(a.messages(), b.messages());
    }

    #[test]
    fn receivers_are_respected() {
        let comp = random_computation_with_receivers(&mut rng(2), 6, 6, 15, Some(&[1, 4]));
        for &(_, r) in comp.messages() {
            let p = comp.process_of(r).index();
            assert!(p == 1 || p == 4, "message received on p{p}");
        }
    }

    #[test]
    fn no_messages_possible_is_detected() {
        // Only one process: no valid message pair.
        let comp = random_computation(&mut rng(3), 1, 5, 0);
        assert!(comp.messages().is_empty());
    }

    #[test]
    #[should_panic(expected = "no (sender, receiver) pair")]
    fn impossible_messages_panic() {
        random_computation(&mut rng(3), 1, 5, 2);
    }

    #[test]
    fn bool_variable_densities() {
        let comp = random_computation(&mut rng(4), 3, 20, 5);
        let all_false = random_bool_variable(&mut rng(5), &comp, 0.0);
        assert!(all_false.tracks().iter().all(|t| t.iter().all(|&v| !v)));
        let all_true = random_bool_variable(&mut rng(5), &comp, 1.0);
        assert!(all_true.tracks().iter().all(|t| t.iter().all(|&v| v)));
    }

    #[test]
    fn unit_walk_is_unit_step() {
        let comp = random_computation(&mut rng(6), 4, 30, 10);
        let x = random_unit_int_variable(&mut rng(7), &comp);
        assert!(x.is_unit_step());
        for p in 0..4 {
            assert_eq!(x.value_in_state(p, 0), 0);
        }
    }

    #[test]
    fn arbitrary_variable_respects_amplitude() {
        let comp = random_computation(&mut rng(8), 3, 10, 3);
        let x = random_int_variable(&mut rng(9), &comp, 4);
        for t in x.tracks() {
            assert!(t.iter().all(|&v| (-4..=4).contains(&v)));
        }
    }
}
