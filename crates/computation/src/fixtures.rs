//! The paper's running examples as ready-made computations.

use crate::builder::ComputationBuilder;
use crate::computation::Computation;
use crate::event::EventId;
use crate::variables::BoolVariable;

/// The Figure 2 example: a four-process computation with one encircled
/// *true event* per process (`e`, `f`, `g`, `h`) illustrating consistency
/// and independence of event pairs.
///
/// Reconstructed from the paper's prose (the figure itself is not machine
/// readable): events `e` and `f` are **consistent and independent**, while
/// events `g` and `h` are **inconsistent and dependent** (`g` happens
/// before `h` through a message, and `g`'s successor precedes `h`).
#[derive(Debug, Clone)]
pub struct Figure2 {
    /// The computation.
    pub computation: Computation,
    /// The per-process boolean variables `x₁ … x₄`; `e`, `f`, `g`, `h` are
    /// their true events.
    pub x: BoolVariable,
    /// True event on `p0`.
    pub e: EventId,
    /// True event on `p1`.
    pub f: EventId,
    /// True event on `p2`.
    pub g: EventId,
    /// True event on `p3`.
    pub h: EventId,
}

/// Builds the Figure 2 example.
///
/// # Example
///
/// ```
/// let fig = gpd_computation::fixtures::figure2();
/// let c = &fig.computation;
/// assert!(c.consistent(fig.e, fig.f) && c.concurrent(fig.e, fig.f));
/// assert!(!c.consistent(fig.g, fig.h) && !c.concurrent(fig.g, fig.h));
/// ```
pub fn figure2() -> Figure2 {
    let mut b = ComputationBuilder::new(4);
    // p0: e1 then e (true).
    let e1 = b.append(0);
    let e = b.append(0);
    // p1: f (true) then f2.
    let f = b.append(1);
    let f2 = b.append(1);
    // p2: g (true) then g2.
    let g = b.append(2);
    let g2 = b.append(2);
    // p3: h1 then h (true).
    let h1 = b.append(3);
    let h = b.append(3);
    // e1 → f2 keeps e and f independent yet consistent.
    b.message(e1, f2).expect("distinct processes");
    // g2 → h1 makes g ≺ h and succ(g) = g2 ≤ h: inconsistent, dependent.
    b.message(g2, h1).expect("distinct processes");
    let computation = b.build().expect("acyclic by construction");
    let x = BoolVariable::new(
        &computation,
        vec![
            vec![false, false, true], // true at e
            vec![false, true, false], // true at f
            vec![false, true, false], // true at g
            vec![false, false, true], // true at h
        ],
    );
    Figure2 {
        computation,
        x,
        e,
        f,
        g,
        h,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure2_matches_the_papers_claims() {
        let fig = figure2();
        let c = &fig.computation;
        // "events e and f are consistent whereas events g and h are not"
        assert!(c.consistent(fig.e, fig.f));
        assert!(!c.consistent(fig.g, fig.h));
        // "events e and f are independent whereas events g and h are not"
        assert!(c.concurrent(fig.e, fig.f));
        assert!(c.happened_before(fig.g, fig.h));
    }

    #[test]
    fn figure2_true_events_are_marked() {
        let fig = figure2();
        for ev in [fig.e, fig.f, fig.g, fig.h] {
            assert!(fig.x.is_true_event(&fig.computation, ev));
        }
    }

    #[test]
    fn figure2_shape() {
        let fig = figure2();
        assert_eq!(fig.computation.process_count(), 4);
        assert_eq!(fig.computation.event_count(), 8);
        assert_eq!(fig.computation.messages().len(), 2);
    }
}
