//! Per-state variable annotations.
//!
//! The paper's predicates refer to one variable per process: a boolean
//! `xᵢ` for conjunctive/CNF predicates, an integer `xᵢ` for relational
//! and sum predicates. A variable's value is a function of the process's
//! *local state*, which changes only when the process executes an event —
//! so a variable over a process with `m` events is a sequence of `m + 1`
//! values, indexed by the number of events executed (index 0 is the
//! initial state).

use crate::computation::Computation;
use crate::cut::Cut;
use crate::event::{EventId, ProcessId};

fn check_shape<T>(comp: &Computation, values: &[Vec<T>], what: &str) {
    assert_eq!(
        values.len(),
        comp.process_count(),
        "{what} has {} tracks for {} processes",
        values.len(),
        comp.process_count()
    );
    for (p, track) in values.iter().enumerate() {
        assert_eq!(
            track.len(),
            comp.events_on(p) + 1,
            "{what} track for p{p} has {} values for {} states",
            track.len(),
            comp.events_on(p) + 1
        );
    }
}

/// One boolean variable per process, valued in every local state.
///
/// Event `e` is a *true event* when the variable of `e`'s process holds in
/// the state `e` produces — the paper's notion used by all CNF detection.
///
/// # Example
///
/// ```
/// use gpd_computation::{BoolVariable, ComputationBuilder};
///
/// let mut b = ComputationBuilder::new(1);
/// let e = b.append(0);
/// let comp = b.build().unwrap();
/// // false initially, true after the event.
/// let var = BoolVariable::new(&comp, vec![vec![false, true]]);
/// assert!(var.is_true_event(&comp, e));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoolVariable {
    values: Vec<Vec<bool>>,
}

impl BoolVariable {
    /// Creates the annotation; `values[p][k]` is the variable of process
    /// `p` after `k` events.
    ///
    /// # Panics
    ///
    /// Panics if the shape does not match the computation (`process_count`
    /// tracks of `events_on(p) + 1` values).
    pub fn new(comp: &Computation, values: Vec<Vec<bool>>) -> Self {
        check_shape(comp, &values, "bool variable");
        BoolVariable { values }
    }

    /// The variable of `process` when it has executed `state` events.
    pub fn value_in_state(&self, process: impl Into<ProcessId>, state: u32) -> bool {
        self.values[process.into().index()][state as usize]
    }

    /// The variable of `process` at `cut`.
    pub fn value_at(&self, cut: &Cut, process: impl Into<ProcessId>) -> bool {
        let p = process.into();
        self.value_in_state(p, cut.state_of(p))
    }

    /// Whether `e` is a *true event* (its process's variable holds right
    /// after `e`).
    pub fn is_true_event(&self, comp: &Computation, e: EventId) -> bool {
        self.value_in_state(comp.process_of(e), comp.local_index(e))
    }

    /// Whether the initial state of `process` satisfies the variable.
    pub fn true_initially(&self, process: impl Into<ProcessId>) -> bool {
        self.value_in_state(process, 0)
    }

    /// The local state indices (including 0 for the initial state) of
    /// `process` in which the variable holds.
    pub fn true_states(&self, process: impl Into<ProcessId>) -> Vec<u32> {
        self.values[process.into().index()]
            .iter()
            .enumerate()
            .filter_map(|(k, &v)| v.then_some(k as u32))
            .collect()
    }

    /// The raw tracks.
    pub fn tracks(&self) -> &[Vec<bool>] {
        &self.values
    }

    /// The annotation for the time-reversed computation
    /// ([`Computation::reversed`]): each track is reversed, so the value
    /// in reversed state `k` is the value in original state `mₚ − k`.
    pub fn reversed(&self) -> BoolVariable {
        BoolVariable {
            values: self
                .values
                .iter()
                .map(|t| t.iter().rev().copied().collect())
                .collect(),
        }
    }
}

/// One integer variable per process, valued in every local state.
///
/// # Example
///
/// ```
/// use gpd_computation::{Cut, IntVariable, ComputationBuilder};
///
/// let mut b = ComputationBuilder::new(2);
/// b.append(0);
/// b.append(1);
/// let comp = b.build().unwrap();
/// let x = IntVariable::new(&comp, vec![vec![0, 1], vec![5, 4]]);
/// assert_eq!(x.sum_at(&Cut::from_frontier(vec![1, 0])), 6);
/// assert!(x.is_unit_step());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntVariable {
    values: Vec<Vec<i64>>,
}

impl IntVariable {
    /// Creates the annotation; `values[p][k]` is the variable of process
    /// `p` after `k` events.
    ///
    /// # Panics
    ///
    /// Panics if the shape does not match the computation.
    pub fn new(comp: &Computation, values: Vec<Vec<i64>>) -> Self {
        check_shape(comp, &values, "int variable");
        IntVariable { values }
    }

    /// The variable of `process` when it has executed `state` events.
    pub fn value_in_state(&self, process: impl Into<ProcessId>, state: u32) -> i64 {
        self.values[process.into().index()][state as usize]
    }

    /// The variable of `process` at `cut`.
    pub fn value_at(&self, cut: &Cut, process: impl Into<ProcessId>) -> i64 {
        let p = process.into();
        self.value_in_state(p, cut.state_of(p))
    }

    /// The sum `x₁ + … + xₙ` at `cut` — the quantity the §4 algorithms
    /// track.
    pub fn sum_at(&self, cut: &Cut) -> i64 {
        self.values
            .iter()
            .zip(cut.frontier())
            .map(|(track, &f)| track[f as usize])
            .sum()
    }

    /// The per-event increments of `process`'s variable (length =
    /// number of events).
    pub fn increments(&self, process: impl Into<ProcessId>) -> Vec<i64> {
        self.values[process.into().index()]
            .windows(2)
            .map(|w| w[1] - w[0])
            .collect()
    }

    /// The largest absolute per-event change across all processes.
    pub fn max_step(&self) -> i64 {
        self.values
            .iter()
            .flat_map(|track| track.windows(2).map(|w| (w[1] - w[0]).abs()))
            .max()
            .unwrap_or(0)
    }

    /// Whether every event changes its variable by at most one — the
    /// precondition of the paper's polynomial `Possibly(Σ = K)` algorithm
    /// (Theorem 7).
    pub fn is_unit_step(&self) -> bool {
        self.max_step() <= 1
    }

    /// The raw tracks.
    pub fn tracks(&self) -> &[Vec<i64>] {
        &self.values
    }

    /// The annotation for the time-reversed computation
    /// ([`Computation::reversed`]): each track is reversed.
    pub fn reversed(&self) -> IntVariable {
        IntVariable {
            values: self
                .values
                .iter()
                .map(|t| t.iter().rev().copied().collect())
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ComputationBuilder;

    fn comp_2x2() -> Computation {
        let mut b = ComputationBuilder::new(2);
        b.append(0);
        b.append(0);
        b.append(1);
        b.append(1);
        b.build().unwrap()
    }

    #[test]
    fn bool_variable_lookup() {
        let comp = comp_2x2();
        let v = BoolVariable::new(
            &comp,
            vec![vec![false, true, false], vec![true, false, true]],
        );
        assert!(!v.value_in_state(0, 0));
        assert!(v.value_in_state(0, 1));
        assert!(v.true_initially(1));
        assert_eq!(v.true_states(0), vec![1]);
        assert_eq!(v.true_states(1), vec![0, 2]);
        let cut = Cut::from_frontier(vec![1, 2]);
        assert!(v.value_at(&cut, 0));
        assert!(v.value_at(&cut, 1));
    }

    #[test]
    fn true_events() {
        let comp = comp_2x2();
        let v = BoolVariable::new(
            &comp,
            vec![vec![false, true, false], vec![false, false, true]],
        );
        let e01 = comp.event_at(0, 1).unwrap();
        let e02 = comp.event_at(0, 2).unwrap();
        let e12 = comp.event_at(1, 2).unwrap();
        assert!(v.is_true_event(&comp, e01));
        assert!(!v.is_true_event(&comp, e02));
        assert!(v.is_true_event(&comp, e12));
    }

    #[test]
    fn int_variable_sums_and_steps() {
        let comp = comp_2x2();
        let x = IntVariable::new(&comp, vec![vec![0, 1, 0], vec![2, 2, 3]]);
        assert_eq!(x.sum_at(&Cut::from_frontier(vec![0, 0])), 2);
        assert_eq!(x.sum_at(&Cut::from_frontier(vec![1, 2])), 4);
        assert_eq!(x.increments(0), vec![1, -1]);
        assert_eq!(x.increments(1), vec![0, 1]);
        assert!(x.is_unit_step());
        assert_eq!(x.max_step(), 1);
    }

    #[test]
    fn non_unit_step_detected() {
        let comp = comp_2x2();
        let x = IntVariable::new(&comp, vec![vec![0, 5, 0], vec![0, 0, 0]]);
        assert!(!x.is_unit_step());
        assert_eq!(x.max_step(), 5);
    }

    #[test]
    #[should_panic(expected = "tracks for")]
    fn wrong_track_count_panics() {
        let comp = comp_2x2();
        BoolVariable::new(&comp, vec![vec![false; 3]]);
    }

    #[test]
    #[should_panic(expected = "values for")]
    fn wrong_track_length_panics() {
        let comp = comp_2x2();
        IntVariable::new(&comp, vec![vec![0; 3], vec![0; 2]]);
    }
}
