//! Incremental construction of computations.

use gpd_order::Dag;

use crate::computation::Computation;
use crate::event::{EventId, EventKind, ProcessId};

/// Error produced while building a computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// A message was added whose endpoints live on the same process.
    SameProcessMessage {
        /// The sending event.
        send: EventId,
        /// The receiving event.
        receive: EventId,
    },
    /// The program order plus message edges contain a cycle, so the edge
    /// relation is not a partial order.
    Cycle,
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::SameProcessMessage { send, receive } => write!(
                f,
                "message {send:?} → {receive:?} stays on one process; use program order instead"
            ),
            BuildError::Cycle => write!(f, "events and messages form a causal cycle"),
        }
    }
}

impl std::error::Error for BuildError {}

/// Builds a [`Computation`] by appending events to processes and
/// connecting them with messages.
///
/// The fictitious *initial events* of the paper's model are implicit: the
/// builder only records real events, and every consistent cut contains all
/// initial events by construction.
///
/// # Example
///
/// ```
/// use gpd_computation::ComputationBuilder;
///
/// let mut b = ComputationBuilder::new(3);
/// let s = b.append(0);
/// let r = b.append(2);
/// b.message(s, r).unwrap();
/// b.append(1); // an internal event on p1
/// let comp = b.build().unwrap();
/// assert_eq!(comp.event_count(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct ComputationBuilder {
    proc_events: Vec<Vec<EventId>>,
    event_proc: Vec<ProcessId>,
    event_local: Vec<u32>,
    kinds: Vec<EventKind>,
    messages: Vec<(EventId, EventId)>,
}

impl ComputationBuilder {
    /// Creates a builder for a computation over `processes` processes.
    pub fn new(processes: usize) -> Self {
        ComputationBuilder {
            proc_events: vec![Vec::new(); processes],
            event_proc: Vec::new(),
            event_local: Vec::new(),
            kinds: Vec::new(),
            messages: Vec::new(),
        }
    }

    /// The number of processes.
    pub fn process_count(&self) -> usize {
        self.proc_events.len()
    }

    /// The number of events appended so far.
    pub fn event_count(&self) -> usize {
        self.event_proc.len()
    }

    /// Appends a new event at the end of `process`'s local computation and
    /// returns its id. The event starts as [`EventKind::Internal`];
    /// attaching messages upgrades its kind.
    ///
    /// # Panics
    ///
    /// Panics if the process index is out of range.
    pub fn append(&mut self, process: impl Into<ProcessId>) -> EventId {
        let p = process.into();
        assert!(
            p.index() < self.proc_events.len(),
            "process {p} out of range {}",
            self.proc_events.len()
        );
        let id = EventId::new(self.event_proc.len());
        self.event_local
            .push(self.proc_events[p.index()].len() as u32 + 1);
        self.proc_events[p.index()].push(id);
        self.event_proc.push(p);
        self.kinds.push(EventKind::Internal);
        id
    }

    /// Records a message sent at `send` and received at `receive`. An
    /// event may send or receive any number of messages (the model allows
    /// multicast and merged receives). Channels are not FIFO.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::SameProcessMessage`] if both endpoints are on
    /// the same process. Cycles are only detected at [`build`](Self::build)
    /// time.
    ///
    /// # Panics
    ///
    /// Panics if either event id was not produced by this builder.
    pub fn message(&mut self, send: EventId, receive: EventId) -> Result<(), BuildError> {
        let count = self.event_proc.len();
        assert!(
            send.index() < count && receive.index() < count,
            "unknown event id"
        );
        if self.event_proc[send.index()] == self.event_proc[receive.index()] {
            return Err(BuildError::SameProcessMessage { send, receive });
        }
        self.kinds[send.index()] = self.kinds[send.index()].with_send();
        self.kinds[receive.index()] = self.kinds[receive.index()].with_receive();
        self.messages.push((send, receive));
        Ok(())
    }

    /// Finalizes the computation: checks acyclicity and computes
    /// Fidge–Mattern vector clocks for every event, filled directly into
    /// the flat row-major clock matrix — no per-event `VectorClock`
    /// allocation (the kernel counters can verify this).
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::Cycle`] if program order plus messages is not
    /// a partial order.
    pub fn build(self) -> Result<Computation, BuildError> {
        let event_count = self.event_proc.len();
        let mut dag = Dag::new(event_count);
        for events in &self.proc_events {
            for w in events.windows(2) {
                dag.add_edge(w[0].index(), w[1].index());
            }
        }
        for &(s, r) in &self.messages {
            dag.add_edge(s.index(), r.index());
        }
        let order = dag.topo_sort().map_err(|_| BuildError::Cycle)?;

        let n = self.proc_events.len();
        let mut msg_preds: Vec<Vec<EventId>> = vec![Vec::new(); event_count];
        for &(s, r) in &self.messages {
            msg_preds[r.index()].push(s);
        }

        // Row e of the matrix is vc(e). Topological order guarantees
        // every predecessor row is final before it is merged, so each
        // row is one copy_within + a max-merge per message predecessor.
        let mut matrix = vec![0u32; event_count * n];
        for &e in &order {
            let p = self.event_proc[e].index();
            let local = self.event_local[e];
            let row = e * n;
            if local > 1 {
                let prev = self.proc_events[p][local as usize - 2].index() * n;
                matrix.copy_within(prev..prev + n, row);
            }
            for s in &msg_preds[e] {
                let pred = s.index() * n;
                for q in 0..n {
                    if matrix[pred + q] > matrix[row + q] {
                        matrix[row + q] = matrix[pred + q];
                    }
                }
            }
            matrix[row + p] = local;
        }

        Ok(Computation::from_parts(
            self.proc_events,
            self.event_proc,
            self.event_local,
            self.kinds,
            self.messages,
            matrix,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_computation_builds() {
        let comp = ComputationBuilder::new(3).build().unwrap();
        assert_eq!(comp.process_count(), 3);
        assert_eq!(comp.event_count(), 0);
    }

    #[test]
    fn kinds_follow_messages() {
        let mut b = ComputationBuilder::new(2);
        let a = b.append(0);
        let c = b.append(1);
        let d = b.append(1);
        b.message(a, c).unwrap();
        b.message(d, a).unwrap(); // a both sends and receives
        let comp = b.build();
        // d → a and a → c is acyclic (d is after c on p1? No: c before d,
        // so a → c → d → a is a cycle). Expect the cycle to be caught.
        assert_eq!(comp.unwrap_err(), BuildError::Cycle);

        let mut b = ComputationBuilder::new(2);
        let a = b.append(0);
        let c = b.append(1);
        b.message(a, c).unwrap();
        let comp = b.build().unwrap();
        assert!(comp.kind(a).is_send());
        assert!(!comp.kind(a).is_receive());
        assert!(comp.kind(c).is_receive());
    }

    #[test]
    fn same_process_message_rejected() {
        let mut b = ComputationBuilder::new(1);
        let e1 = b.append(0);
        let e2 = b.append(0);
        assert!(matches!(
            b.message(e1, e2),
            Err(BuildError::SameProcessMessage { .. })
        ));
    }

    #[test]
    fn message_cycle_detected_at_build() {
        let mut b = ComputationBuilder::new(2);
        let a1 = b.append(0);
        let a2 = b.append(0);
        let b1 = b.append(1);
        let b2 = b.append(1);
        b.message(a2, b1).unwrap();
        b.message(b2, a1).unwrap();
        assert_eq!(b.build().unwrap_err(), BuildError::Cycle);
    }

    #[test]
    fn vector_clocks_of_message_exchange() {
        let mut b = ComputationBuilder::new(2);
        let s = b.append(0);
        let r = b.append(1);
        let after = b.append(1);
        b.message(s, r).unwrap();
        let comp = b.build().unwrap();
        assert_eq!(comp.clock(s).as_slice(), &[1, 0]);
        assert_eq!(comp.clock(r).as_slice(), &[1, 1]);
        assert_eq!(comp.clock(after).as_slice(), &[1, 2]);
    }

    #[test]
    fn multiple_receives_merge_clocks() {
        let mut b = ComputationBuilder::new(3);
        let s0 = b.append(0);
        let s1 = b.append(1);
        let r = b.append(2);
        b.message(s0, r).unwrap();
        b.message(s1, r).unwrap();
        let comp = b.build().unwrap();
        assert_eq!(comp.clock(r).as_slice(), &[1, 1, 1]);
        assert_eq!(comp.kind(r), crate::EventKind::Receive);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn append_to_unknown_process_panics() {
        ComputationBuilder::new(1).append(1);
    }

    #[test]
    fn build_error_display() {
        assert!(BuildError::Cycle.to_string().contains("cycle"));
    }
}
