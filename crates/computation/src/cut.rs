//! Cuts: global states as frontier vectors.

use crate::computation::Computation;
use crate::event::{EventId, ProcessId};

/// A cut of a computation, stored as a *frontier vector*: entry `p` is the
/// number of (non-initial) events of process `p` contained in the cut.
///
/// Every cut implicitly contains each process's initial event, matching
/// the paper's model where the fictitious initial events belong to every
/// cut. A cut is *consistent* when it is causally downward closed, which
/// [`Computation::is_consistent`] checks.
///
/// # Example
///
/// ```
/// use gpd_computation::{Cut, ComputationBuilder};
///
/// let mut b = ComputationBuilder::new(2);
/// let e = b.append(0);
/// b.append(1);
/// let comp = b.build().unwrap();
///
/// let cut = Cut::from_frontier(vec![1, 0]);
/// assert!(cut.contains(&comp, e));
/// assert!(cut.passes_through(&comp, e));
/// ```
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Cut {
    frontier: Vec<u32>,
}

impl Cut {
    /// Creates a cut from a frontier vector (one entry per process).
    pub fn from_frontier(frontier: Vec<u32>) -> Self {
        Cut { frontier }
    }

    /// The frontier vector.
    pub fn frontier(&self) -> &[u32] {
        &self.frontier
    }

    /// The number of non-initial events in the cut.
    pub fn event_count(&self) -> usize {
        self.frontier.iter().map(|&f| f as usize).sum()
    }

    /// Whether the cut contains event `e` of `comp`.
    ///
    /// # Panics
    ///
    /// Panics if `e`'s process is outside the cut's shape.
    pub fn contains(&self, comp: &Computation, e: EventId) -> bool {
        comp.local_index(e) <= self.frontier[comp.process_of(e).index()]
    }

    /// Whether the cut *passes through* `e`: `e` is the last event of its
    /// process inside the cut (the paper's definition).
    pub fn passes_through(&self, comp: &Computation, e: EventId) -> bool {
        comp.local_index(e) == self.frontier[comp.process_of(e).index()]
    }

    /// The number of events of `process` in the cut (the local state
    /// index the process is in at this cut).
    pub fn state_of(&self, process: impl Into<ProcessId>) -> u32 {
        self.frontier[process.into().index()]
    }

    /// An order-stable FNV-1a hash of the frontier — identical across
    /// runs and hasher seeds, unlike `std`'s randomized `Hash`. Used to
    /// shard cuts across parallel visited sets; for bulk visited-set
    /// probes prefer packing via
    /// [`FrontierPacker`](crate::FrontierPacker), which precomputes the
    /// same style of hash once.
    pub fn fnv_hash(&self) -> u64 {
        crate::packed::fnv1a(self.frontier.iter().map(|&f| f as u64))
    }

    /// Whether `other` is reachable from `self` by executing zero or more
    /// events (i.e. `self ⊆ other`).
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn leq(&self, other: &Cut) -> bool {
        assert_eq!(
            self.frontier.len(),
            other.frontier.len(),
            "cut shape mismatch"
        );
        crate::kernel::dominated(&self.frontier, &other.frontier)
    }
}

impl std::fmt::Debug for Cut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Cut{:?}", self.frontier)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ComputationBuilder;

    #[test]
    fn contains_and_passes_through() {
        let mut b = ComputationBuilder::new(1);
        let e1 = b.append(0);
        let e2 = b.append(0);
        let comp = b.build().unwrap();
        let cut = Cut::from_frontier(vec![1]);
        assert!(cut.contains(&comp, e1));
        assert!(!cut.contains(&comp, e2));
        assert!(cut.passes_through(&comp, e1));
        assert!(!cut.passes_through(&comp, e2));
        assert!(Cut::from_frontier(vec![2]).contains(&comp, e2));
    }

    #[test]
    fn event_count_sums_frontier() {
        assert_eq!(Cut::from_frontier(vec![2, 0, 3]).event_count(), 5);
        assert_eq!(Cut::from_frontier(vec![]).event_count(), 0);
    }

    #[test]
    fn leq_is_pointwise() {
        let a = Cut::from_frontier(vec![1, 2]);
        let b = Cut::from_frontier(vec![2, 2]);
        let c = Cut::from_frontier(vec![0, 3]);
        assert!(a.leq(&b));
        assert!(!b.leq(&a));
        assert!(!a.leq(&c) && !c.leq(&a));
        assert!(a.leq(&a));
    }

    #[test]
    fn state_of_reads_frontier() {
        let cut = Cut::from_frontier(vec![4, 7]);
        assert_eq!(cut.state_of(0), 4);
        assert_eq!(cut.state_of(1), 7);
    }

    #[test]
    fn debug_format() {
        assert_eq!(format!("{:?}", Cut::from_frontier(vec![1, 0])), "Cut[1, 0]");
    }
}
