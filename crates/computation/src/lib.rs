//! Distributed computations as partially ordered sets of events.
//!
//! This crate implements the execution model of Mittal & Garg (ICDCS
//! 2001), which is Lamport's happened-before model: a **computation** is a
//! set of events, totally ordered within each process, partially ordered
//! across processes by message edges. Every structure the detection
//! algorithms in the `gpd` crate consume lives here:
//!
//! * [`Computation`] / [`ComputationBuilder`] — the event poset, with
//!   order queries answered through Fidge–Mattern [`VectorClock`]s.
//! * [`Cut`] — a global state as a frontier vector; consistency checks,
//!   the initial/final cuts, reachability.
//! * [`CutIter`] — breadth-first enumeration of the (generally
//!   exponential) lattice of consistent cuts — the baseline the paper's
//!   algorithms beat.
//! * [`FrontierPacker`] / [`PackedFrontier`] — frontiers packed into a
//!   few `u64` words with a precomputed hash, so the enumerators'
//!   visited-set probes stop hashing heap vectors.
//! * [`BoolVariable`] / [`IntVariable`] — per-state variable annotations
//!   that predicates evaluate.
//! * [`Grouping`] — the §3.2 *meta-process* machinery: receive-/send-
//!   ordered checks, the order extension, and its linearization.
//! * [`generate`](gen) — seeded random computations and annotations for
//!   experiments; [`trace`] — a text interchange format; [`to_dot`] —
//!   Graphviz export; [`fixtures`] — the paper's running examples.
//!
//! # Example
//!
//! ```
//! use gpd_computation::ComputationBuilder;
//!
//! // Two processes exchanging one message.
//! let mut b = ComputationBuilder::new(2);
//! let e1 = b.append(0);
//! let f1 = b.append(1);
//! b.message(e1, f1).unwrap();
//! let comp = b.build().unwrap();
//!
//! assert!(comp.happened_before(e1, f1));
//! assert_eq!(comp.consistent_cuts().count(), 3); // not 2×2: e1 < f1
//! ```

mod builder;
mod channels;
mod computation;
mod counters;
mod cut;
mod dot;
mod event;
pub mod fixtures;
pub mod gen;
mod groups;
pub mod kernel;
mod lattice;
mod packed;
mod stats;
pub mod trace;
mod variables;
mod vclock;

pub use builder::{BuildError, ComputationBuilder};
pub use channels::ChannelIndex;
pub use computation::Computation;
pub use counters::{kernel_counters, KernelCounters};
pub use cut::Cut;
pub use dot::to_dot;
pub use event::{EventId, EventKind, ProcessId};
pub use groups::{Grouping, LinearizedOrder, NotOrderedError, OrderingKind};
pub use lattice::CutIter;
pub use packed::{fnv1a, FrontierPacker, PackedFrontier};
pub use stats::{lattice_profile, stats, Stats};
pub use variables::{BoolVariable, IntVariable};
pub use vclock::{ClockRef, VectorClock};
