//! The computation type: an event poset with order queries.
//!
//! Storage is a *flat causality kernel*: all per-event data lives in
//! contiguous boxed slices instead of nested `Vec`s —
//!
//! * a row-major clock matrix (`event_count × process_count` `u32`s,
//!   row `e` = `vc(e)`), so order queries stream one cache-resident row
//!   instead of chasing a `Vec<VectorClock>` pointer per event;
//! * CSR (offset + flat array) adjacency for the per-process event
//!   sequences and the message predecessor/successor lists;
//! * branch-free word-parallel row kernels (see `kernel`) for the hot
//!   predicates: frontier dominance, enablement, and `Cut::leq`.
//!
//! The public API is unchanged from the nested layout except that
//! [`Computation::clock`] returns a borrowing [`ClockRef`] view rather
//! than `&VectorClock` — no owned clock exists to reference.

use crate::counters;
use crate::cut::Cut;
use crate::event::{EventId, EventKind, ProcessId};
use crate::kernel;
use crate::lattice::CutIter;
use crate::vclock::ClockRef;

/// A distributed computation: a finite set of events, totally ordered
/// within each process and partially ordered across processes by message
/// edges (Lamport's happened-before).
///
/// Constructed with [`ComputationBuilder`](crate::ComputationBuilder);
/// immutable afterwards. All order queries are answered from precomputed
/// Fidge–Mattern vector clocks in O(1) or O(n), read straight out of a
/// flat row-major clock matrix.
///
/// # Example
///
/// ```
/// use gpd_computation::ComputationBuilder;
///
/// let mut b = ComputationBuilder::new(2);
/// let e = b.append(0);
/// let f = b.append(1);
/// let comp = b.build().unwrap();
/// assert!(comp.concurrent(e, f));
/// assert!(comp.consistent(e, f));
/// ```
#[derive(Debug, Clone)]
pub struct Computation {
    process_count: usize,
    /// CSR offsets into `proc_flat`: process `p`'s events occupy
    /// `proc_flat[proc_off[p] .. proc_off[p + 1]]` in program order.
    proc_off: Box<[u32]>,
    proc_flat: Box<[EventId]>,
    event_proc: Box<[ProcessId]>,
    event_local: Box<[u32]>,
    kinds: Box<[EventKind]>,
    messages: Box<[(EventId, EventId)]>,
    /// CSR offsets/arrays for message adjacency: event `e`'s message
    /// predecessors occupy `pred_flat[pred_off[e] .. pred_off[e + 1]]`.
    pred_off: Box<[u32]>,
    pred_flat: Box<[EventId]>,
    succ_off: Box<[u32]>,
    succ_flat: Box<[EventId]>,
    /// Row-major clock matrix: `vc(e)[q] = clock_matrix[e·n + q]`.
    clock_matrix: Box<[u32]>,
}

/// Converts per-key lists into a CSR (offsets + flat array) pair.
fn csr_from_lists(lists: &[Vec<EventId>]) -> (Box<[u32]>, Box<[EventId]>) {
    let mut off = Vec::with_capacity(lists.len() + 1);
    let mut total = 0u32;
    off.push(0);
    for list in lists {
        total += u32::try_from(list.len()).expect("event count fits in u32");
        off.push(total);
    }
    let mut flat = Vec::with_capacity(total as usize);
    for list in lists {
        flat.extend_from_slice(list);
    }
    (off.into_boxed_slice(), flat.into_boxed_slice())
}

impl Computation {
    pub(crate) fn from_parts(
        proc_events: Vec<Vec<EventId>>,
        event_proc: Vec<ProcessId>,
        event_local: Vec<u32>,
        kinds: Vec<EventKind>,
        messages: Vec<(EventId, EventId)>,
        clock_matrix: Vec<u32>,
    ) -> Self {
        let process_count = proc_events.len();
        let event_count = event_proc.len();
        debug_assert_eq!(clock_matrix.len(), event_count * process_count);
        let (proc_off, proc_flat) = csr_from_lists(&proc_events);
        // Message adjacency CSR via counting sort over the edge list.
        let mut pred_lists = vec![Vec::new(); event_count];
        let mut succ_lists = vec![Vec::new(); event_count];
        for &(s, r) in &messages {
            pred_lists[r.index()].push(s);
            succ_lists[s.index()].push(r);
        }
        let (pred_off, pred_flat) = csr_from_lists(&pred_lists);
        let (succ_off, succ_flat) = csr_from_lists(&succ_lists);
        Computation {
            process_count,
            proc_off,
            proc_flat,
            event_proc: event_proc.into_boxed_slice(),
            event_local: event_local.into_boxed_slice(),
            kinds: kinds.into_boxed_slice(),
            messages: messages.into_boxed_slice(),
            pred_off,
            pred_flat,
            succ_off,
            succ_flat,
            clock_matrix: clock_matrix.into_boxed_slice(),
        }
    }

    /// The number of processes.
    pub fn process_count(&self) -> usize {
        self.process_count
    }

    /// The total number of (non-initial) events.
    pub fn event_count(&self) -> usize {
        self.event_proc.len()
    }

    /// The number of events on `process`.
    ///
    /// # Panics
    ///
    /// Panics if the process is out of range.
    pub fn events_on(&self, process: impl Into<ProcessId>) -> usize {
        let p = process.into().index();
        (self.proc_off[p + 1] - self.proc_off[p]) as usize
    }

    /// The events of `process` in program order (a slice of the CSR
    /// event array).
    pub fn events_of(&self, process: impl Into<ProcessId>) -> &[EventId] {
        let p = process.into().index();
        &self.proc_flat[self.proc_off[p] as usize..self.proc_off[p + 1] as usize]
    }

    /// Iterates over all events in id order.
    pub fn events(&self) -> impl Iterator<Item = EventId> + '_ {
        (0..self.event_count()).map(EventId::new)
    }

    /// The process an event occurs on.
    pub fn process_of(&self, e: EventId) -> ProcessId {
        self.event_proc[e.index()]
    }

    /// The 1-based position of `e` within its process (position 0 is the
    /// implicit initial event).
    pub fn local_index(&self, e: EventId) -> u32 {
        self.event_local[e.index()]
    }

    /// The event at 1-based position `local` on `process`, if it exists.
    pub fn event_at(&self, process: impl Into<ProcessId>, local: u32) -> Option<EventId> {
        if local == 0 {
            return None;
        }
        self.events_of(process).get(local as usize - 1).copied()
    }

    /// The send/receive/internal kind of an event.
    pub fn kind(&self, e: EventId) -> EventKind {
        self.kinds[e.index()]
    }

    /// All message edges `(send, receive)` in insertion order.
    pub fn messages(&self) -> &[(EventId, EventId)] {
        &self.messages
    }

    /// The send events whose messages `e` receives.
    pub fn message_predecessors(&self, e: EventId) -> &[EventId] {
        let i = e.index();
        &self.pred_flat[self.pred_off[i] as usize..self.pred_off[i + 1] as usize]
    }

    /// The receive events of the messages `e` sends.
    pub fn message_successors(&self, e: EventId) -> &[EventId] {
        let i = e.index();
        &self.succ_flat[self.succ_off[i] as usize..self.succ_off[i + 1] as usize]
    }

    /// The raw clock-matrix row of `e` (uncounted; internal fast path).
    #[inline]
    fn clock_row(&self, e: EventId) -> &[u32] {
        let start = e.index() * self.process_count;
        &self.clock_matrix[start..start + self.process_count]
    }

    /// The Fidge–Mattern vector clock of an event, as a zero-allocation
    /// view borrowing the event's clock-matrix row.
    pub fn clock(&self, e: EventId) -> ClockRef<'_> {
        counters::add_clock_row_reads(1);
        ClockRef::new(self.clock_row(e))
    }

    /// One clock component — `vc(e)[q]` — without materializing a row
    /// view. O(1): a single matrix load.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn clock_component(&self, e: EventId, q: usize) -> u32 {
        assert!(q < self.process_count, "process {q} out of range");
        self.clock_matrix[e.index() * self.process_count + q]
    }

    /// The event preceding `e` on its process, if any.
    pub fn predecessor_on_process(&self, e: EventId) -> Option<EventId> {
        let local = self.local_index(e);
        self.event_at(self.process_of(e), local - 1)
    }

    /// The event following `e` on its process, if any.
    pub fn successor_on_process(&self, e: EventId) -> Option<EventId> {
        self.event_at(self.process_of(e), self.local_index(e) + 1)
    }

    /// Whether `e ≤ f` in the causal (happened-before-or-equal) order.
    pub fn leq(&self, e: EventId, f: EventId) -> bool {
        // vc(e) ≤ vc(f) componentwise characterizes e ≤ f, but the single
        // component at e's own process suffices and is O(1).
        self.clock_component(f, self.process_of(e).index()) >= self.local_index(e)
    }

    /// Whether `e` happened strictly before `f` (Lamport's `e → f`).
    pub fn happened_before(&self, e: EventId, f: EventId) -> bool {
        e != f && self.leq(e, f)
    }

    /// Whether `e` and `f` are *independent* (incomparable).
    pub fn concurrent(&self, e: EventId, f: EventId) -> bool {
        e != f && !self.leq(e, f) && !self.leq(f, e)
    }

    /// Whether `e` and `f` are *consistent*: some consistent cut passes
    /// through both. Per the paper (§2.2), `e` and `f` are inconsistent
    /// iff `succ(e) ≤ f` or `succ(f) ≤ e`.
    ///
    /// A last event on its process has no successor and therefore can
    /// never block its partner:
    ///
    /// ```
    /// use gpd_computation::ComputationBuilder;
    ///
    /// let mut b = ComputationBuilder::new(2);
    /// let e = b.append(0);
    /// let f = b.append(1);
    /// b.message(e, f).unwrap();
    /// let comp = b.build().unwrap();
    /// // e ≤ f via the message, yet both are final on their processes:
    /// // the final cut passes through both, so they are consistent.
    /// assert!(comp.consistent(e, f));
    /// assert!(comp.consistent(e, e));
    /// ```
    pub fn consistent(&self, e: EventId, f: EventId) -> bool {
        // One successor lookup per argument, short-circuiting: the second
        // direction is only examined when the first does not already rule
        // the pair out.
        let blocks = |x, y| match self.successor_on_process(x) {
            Some(s) => self.leq(s, y),
            None => false,
        };
        !blocks(e, f) && !blocks(f, e)
    }

    /// The least consistent cut containing `e`: exactly `e`'s causal
    /// past, whose frontier is `e`'s clock row. One metered matrix-row
    /// copy — the slicing engine calls this once per event to seed its
    /// least-satisfying-cut fixpoints.
    pub fn least_cut_containing(&self, e: EventId) -> Cut {
        counters::add_clock_row_reads(1);
        Cut::from_frontier(self.clock_row(e).to_vec())
    }

    /// The initial consistent cut (only the implicit initial events).
    pub fn initial_cut(&self) -> Cut {
        Cut::from_frontier(vec![0; self.process_count])
    }

    /// The final consistent cut (all events).
    pub fn final_cut(&self) -> Cut {
        Cut::from_frontier(
            (0..self.process_count)
                .map(|p| self.proc_off[p + 1] - self.proc_off[p])
                .collect(),
        )
    }

    /// Whether `cut` (which must have one frontier entry per process, each
    /// within range) is consistent: it contains every causal predecessor
    /// of every contained event.
    ///
    /// The cut is consistent iff each frontier event's clock row is
    /// dominated by the frontier itself. The nonempty frontier entries
    /// are checked in batches of up to [`kernel::BATCH`] rows per
    /// column-major kernel pass; a failing batch stops the scan (batch
    /// granularity replaces the old per-row short-circuit).
    ///
    /// # Panics
    ///
    /// Panics if the cut's shape does not match the computation.
    pub fn is_consistent(&self, cut: &Cut) -> bool {
        self.check_shape(cut);
        let frontier = cut.frontier();
        let mut rows = 0u64;
        let mut batches = 0u64;
        let mut ok = true;
        let mut p = 0;
        while ok && p < self.process_count {
            let mut group: [&[u32]; kernel::BATCH] = [&[]; kernel::BATCH];
            let mut filled = 0;
            while p < self.process_count && filled < kernel::BATCH {
                let f = frontier[p];
                if f != 0 {
                    let e = self.proc_flat[self.proc_off[p] as usize + f as usize - 1];
                    group[filled] = self.clock_row(e);
                    filled += 1;
                }
                p += 1;
            }
            if filled == 0 {
                break;
            }
            rows += filled as u64;
            batches += 1;
            let mut dom = [false; kernel::BATCH];
            kernel::dominated_batch(&group[..filled], frontier, &mut dom[..filled]);
            ok = dom[..filled].iter().all(|&d| d);
        }
        counters::add_clock_row_reads(rows);
        counters::add_dominance_batches(batches);
        ok
    }

    pub(crate) fn check_shape(&self, cut: &Cut) {
        assert_eq!(
            cut.frontier().len(),
            self.process_count,
            "cut has {} entries for {} processes",
            cut.frontier().len(),
            self.process_count
        );
        for (p, &f) in cut.frontier().iter().enumerate() {
            let on_p = self.proc_off[p + 1] - self.proc_off[p];
            assert!(f <= on_p, "cut frontier {f} exceeds {on_p} events on p{p}");
        }
    }

    /// Breadth-first iterator over all consistent cuts, starting at the
    /// initial cut. Exponentially many in general — this is the baseline
    /// the paper's algorithms improve on.
    pub fn consistent_cuts(&self) -> CutIter<'_> {
        CutIter::new(self)
    }

    /// The time-reversed computation: every process's event sequence is
    /// reversed and every message edge is flipped (the receive becomes the
    /// send). Happened-before in the result is the inverse of this
    /// computation's, and consistent cuts correspond by complementation:
    /// frontier `g` there ↔ frontier `mₚ − g[p]` here.
    ///
    /// Used to reduce the *send-ordered* special case of §3.2 to the
    /// receive-ordered one. The event at local position `k` on process `p`
    /// in the result is the event at position `mₚ + 1 − k` here.
    pub fn reversed(&self) -> Computation {
        let mut b = crate::builder::ComputationBuilder::new(self.process_count);
        // Mapping from original event id to reversed event id.
        let mut map = vec![EventId::new(0); self.event_count()];
        for p in 0..self.process_count {
            for &e in self.events_of(p).iter().rev() {
                map[e.index()] = b.append(p);
            }
        }
        for &(s, r) in self.messages.iter() {
            b.message(map[r.index()], map[s.index()])
                .expect("flipped message endpoints stay on distinct processes");
        }
        b.build()
            .expect("the reverse of a partial order is a partial order")
    }

    /// Calls `visit(p)` for every process whose next event beyond `cut`
    /// is *enabled* (executing it keeps the cut consistent), in
    /// increasing process order. This is the allocation-free core of
    /// successor generation: the pending-event clock rows are fed
    /// through the batched enablement kernel, up to [`kernel::BATCH`]
    /// rows per column-major pass over the frontier.
    ///
    /// # Panics
    ///
    /// Panics if the cut's shape does not match the computation.
    pub fn for_each_enabled(&self, cut: &Cut, mut visit: impl FnMut(usize)) {
        self.check_shape(cut);
        let frontier = cut.frontier();
        let mut rows = 0u64;
        let mut batches = 0u64;
        let mut p = 0;
        while p < self.process_count {
            let mut group: [&[u32]; kernel::BATCH] = [&[]; kernel::BATCH];
            let mut procs = [0usize; kernel::BATCH];
            let mut filled = 0;
            while p < self.process_count && filled < kernel::BATCH {
                let next = self.proc_off[p] as usize + frontier[p] as usize;
                if next < self.proc_off[p + 1] as usize {
                    group[filled] = self.clock_row(self.proc_flat[next]);
                    procs[filled] = p;
                    filled += 1;
                }
                p += 1;
            }
            if filled == 0 {
                break;
            }
            rows += filled as u64;
            batches += 1;
            let mut viol = [0u32; kernel::BATCH];
            kernel::violations_batch(&group[..filled], frontier, &mut viol[..filled]);
            for k in 0..filled {
                // vc(e)[p] = frontier[p] + 1 always exceeds the frontier,
                // so e is enabled iff its own component is the sole
                // violation.
                if viol[k] == 1 {
                    visit(procs[k]);
                }
            }
        }
        counters::add_clock_row_reads(rows);
        counters::add_dominance_batches(batches);
    }

    /// Writes the consistent cuts reachable from `cut` by executing
    /// exactly one event into `out` (cleared first). Reusing one buffer
    /// across calls keeps BFS expansion allocation-free apart from the
    /// frontier vectors of genuinely new cuts.
    ///
    /// # Panics
    ///
    /// Panics if the cut's shape does not match the computation.
    pub fn cut_successors_into(&self, cut: &Cut, out: &mut Vec<Cut>) {
        out.clear();
        self.for_each_enabled(cut, |p| {
            let mut next = cut.frontier().to_vec();
            next[p] += 1;
            out.push(Cut::from_frontier(next));
        });
    }

    /// The consistent cuts that can be reached from `cut` by executing
    /// exactly one event. Convenience wrapper around
    /// [`cut_successors_into`](Self::cut_successors_into) that allocates
    /// a fresh `Vec` per call (metered by the kernel counters; hot loops
    /// should reuse a buffer instead).
    ///
    /// # Panics
    ///
    /// Panics if the cut's shape does not match the computation.
    pub fn cut_successors(&self, cut: &Cut) -> Vec<Cut> {
        counters::record_cut_successor_alloc();
        let mut out = Vec::new();
        self.cut_successors_into(cut, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ComputationBuilder;

    /// p0: a1 a2, p1: b1 b2, message a1 → b2.
    fn sample() -> (Computation, [EventId; 4]) {
        let mut b = ComputationBuilder::new(2);
        let a1 = b.append(0);
        let a2 = b.append(0);
        let b1 = b.append(1);
        let b2 = b.append(1);
        b.message(a1, b2).unwrap();
        (b.build().unwrap(), [a1, a2, b1, b2])
    }

    #[test]
    fn program_order_is_causal() {
        let (c, [a1, a2, ..]) = sample();
        assert!(c.happened_before(a1, a2));
        assert!(!c.happened_before(a2, a1));
        assert!(c.leq(a1, a1));
        assert!(!c.happened_before(a1, a1));
    }

    #[test]
    fn message_order_is_causal() {
        let (c, [a1, a2, b1, b2]) = sample();
        assert!(c.happened_before(a1, b2));
        assert!(c.concurrent(a1, b1));
        assert!(c.concurrent(a2, b1));
        assert!(c.concurrent(a2, b2));
    }

    #[test]
    fn consistency_of_event_pairs() {
        let (c, [a1, a2, b1, b2]) = sample();
        // a1 and b1: a cut can pass through both.
        assert!(c.consistent(a1, b1));
        // a1 and b2: succ(a1) = a2 is not ≤ b2, succ(b2) = none. Wait —
        // b2 receives from a1, so a cut through a1 and b2 must contain a1;
        // it does. Consistent.
        assert!(c.consistent(a1, b2));
        // a1 < b2 via message, but is a1 consistent with b2's successor?
        // No successor exists; check the pair (a1, b1) vs (a2, b2) etc.
        assert!(c.consistent(a2, b2));
        assert!(c.consistent(a2, b1));
        // Same-process distinct events are never consistent.
        assert!(!c.consistent(a1, a2));
        // Every event is consistent with itself.
        assert!(c.consistent(b2, b2));
    }

    #[test]
    fn inconsistent_when_successor_precedes() {
        // p0: s, p1: r x. Message s → r. Then s's successor doesn't
        // exist; but consider cut through (s, x): fine. Build a case where
        // succ(e) ≤ f: p0: e e2, p1: f, message e2 → f.
        let mut b = ComputationBuilder::new(2);
        let e = b.append(0);
        let e2 = b.append(0);
        let f = b.append(1);
        b.message(e2, f).unwrap();
        let c = b.build().unwrap();
        assert!(c.happened_before(e, f));
        assert!(
            !c.consistent(e, f),
            "succ(e) = e2 ≤ f forces e2 into any cut through f"
        );
        assert!(c.consistent(e2, f));
    }

    #[test]
    fn initial_and_final_cuts_are_consistent() {
        let (c, _) = sample();
        assert!(c.is_consistent(&c.initial_cut()));
        assert!(c.is_consistent(&c.final_cut()));
        assert_eq!(c.initial_cut().event_count(), 0);
        assert_eq!(c.final_cut().event_count(), 4);
    }

    #[test]
    fn inconsistent_cut_detected() {
        let (c, _) = sample();
        // Cut containing b2 (which receives from a1) but not a1.
        let cut = Cut::from_frontier(vec![0, 2]);
        assert!(!c.is_consistent(&cut));
        let ok = Cut::from_frontier(vec![1, 2]);
        assert!(c.is_consistent(&ok));
    }

    #[test]
    fn cut_successors_respect_messages() {
        let (c, _) = sample();
        let initial = c.initial_cut();
        let succs = c.cut_successors(&initial);
        // From ⊥ we can execute a1 or b1, not b2.
        assert_eq!(succs.len(), 2);
        assert!(succs.contains(&Cut::from_frontier(vec![1, 0])));
        assert!(succs.contains(&Cut::from_frontier(vec![0, 1])));
        // From [0,1], b2 is blocked until a1 executes.
        let succs = c.cut_successors(&Cut::from_frontier(vec![0, 1]));
        assert_eq!(succs, vec![Cut::from_frontier(vec![1, 1])]);
    }

    #[test]
    fn cut_successors_into_reuses_buffer() {
        let (c, _) = sample();
        let mut buf = vec![Cut::from_frontier(vec![9, 9])]; // stale content
        c.cut_successors_into(&c.initial_cut(), &mut buf);
        assert_eq!(buf.len(), 2, "buffer must be cleared before refill");
        c.cut_successors_into(&c.final_cut(), &mut buf);
        assert!(buf.is_empty(), "final cut has no successors");
    }

    #[test]
    fn event_navigation() {
        let (c, [a1, a2, b1, b2]) = sample();
        assert_eq!(c.successor_on_process(a1), Some(a2));
        assert_eq!(c.successor_on_process(a2), None);
        assert_eq!(c.predecessor_on_process(b2), Some(b1));
        assert_eq!(c.predecessor_on_process(b1), None);
        assert_eq!(c.event_at(0, 1), Some(a1));
        assert_eq!(c.event_at(0, 0), None);
        assert_eq!(c.event_at(0, 3), None);
        assert_eq!(c.local_index(b2), 2);
        assert_eq!(c.process_of(b1).index(), 1);
        assert_eq!(c.events().count(), 4);
        assert_eq!(c.events_on(0), 2);
    }

    #[test]
    fn message_adjacency() {
        let (c, [a1, _, _, b2]) = sample();
        assert_eq!(c.message_predecessors(b2), &[a1]);
        assert_eq!(c.message_successors(a1), &[b2]);
        assert_eq!(c.messages(), &[(a1, b2)]);
    }

    #[test]
    fn least_cut_containing_is_the_causal_past() {
        let (c, [a1, a2, b1, b2]) = sample();
        assert_eq!(c.least_cut_containing(a1).frontier(), &[1, 0]);
        assert_eq!(c.least_cut_containing(a2).frontier(), &[2, 0]);
        assert_eq!(c.least_cut_containing(b1).frontier(), &[0, 1]);
        // b2 receives from a1, so its least cut pulls a1 in.
        assert_eq!(c.least_cut_containing(b2).frontier(), &[1, 2]);
        for e in [a1, a2, b1, b2] {
            assert!(c.is_consistent(&c.least_cut_containing(e)));
        }
    }

    #[test]
    fn clock_component_matches_row_view() {
        let (c, [a1, _, _, b2]) = sample();
        for e in [a1, b2] {
            for q in 0..c.process_count() {
                assert_eq!(c.clock_component(e, q), c.clock(e).get(q));
            }
        }
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn out_of_range_cut_panics() {
        let (c, _) = sample();
        c.is_consistent(&Cut::from_frontier(vec![3, 0]));
    }
}
