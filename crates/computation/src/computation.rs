//! The computation type: an event poset with order queries.

use crate::cut::Cut;
use crate::event::{EventId, EventKind, ProcessId};
use crate::lattice::CutIter;
use crate::vclock::VectorClock;

/// A distributed computation: a finite set of events, totally ordered
/// within each process and partially ordered across processes by message
/// edges (Lamport's happened-before).
///
/// Constructed with [`ComputationBuilder`](crate::ComputationBuilder);
/// immutable afterwards. All order queries are answered from precomputed
/// Fidge–Mattern vector clocks in O(1) or O(n).
///
/// # Example
///
/// ```
/// use gpd_computation::ComputationBuilder;
///
/// let mut b = ComputationBuilder::new(2);
/// let e = b.append(0);
/// let f = b.append(1);
/// let comp = b.build().unwrap();
/// assert!(comp.concurrent(e, f));
/// assert!(comp.consistent(e, f));
/// ```
#[derive(Debug, Clone)]
pub struct Computation {
    proc_events: Vec<Vec<EventId>>,
    event_proc: Vec<ProcessId>,
    event_local: Vec<u32>,
    kinds: Vec<EventKind>,
    messages: Vec<(EventId, EventId)>,
    msg_preds: Vec<Vec<EventId>>,
    msg_succs: Vec<Vec<EventId>>,
    clocks: Vec<VectorClock>,
}

impl Computation {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        proc_events: Vec<Vec<EventId>>,
        event_proc: Vec<ProcessId>,
        event_local: Vec<u32>,
        kinds: Vec<EventKind>,
        messages: Vec<(EventId, EventId)>,
        msg_preds: Vec<Vec<EventId>>,
        msg_succs: Vec<Vec<EventId>>,
        clocks: Vec<VectorClock>,
    ) -> Self {
        Computation {
            proc_events,
            event_proc,
            event_local,
            kinds,
            messages,
            msg_preds,
            msg_succs,
            clocks,
        }
    }

    /// The number of processes.
    pub fn process_count(&self) -> usize {
        self.proc_events.len()
    }

    /// The total number of (non-initial) events.
    pub fn event_count(&self) -> usize {
        self.event_proc.len()
    }

    /// The number of events on `process`.
    ///
    /// # Panics
    ///
    /// Panics if the process is out of range.
    pub fn events_on(&self, process: impl Into<ProcessId>) -> usize {
        self.proc_events[process.into().index()].len()
    }

    /// The events of `process` in program order.
    pub fn events_of(&self, process: impl Into<ProcessId>) -> &[EventId] {
        &self.proc_events[process.into().index()]
    }

    /// Iterates over all events in id order.
    pub fn events(&self) -> impl Iterator<Item = EventId> + '_ {
        (0..self.event_count()).map(EventId::new)
    }

    /// The process an event occurs on.
    pub fn process_of(&self, e: EventId) -> ProcessId {
        self.event_proc[e.index()]
    }

    /// The 1-based position of `e` within its process (position 0 is the
    /// implicit initial event).
    pub fn local_index(&self, e: EventId) -> u32 {
        self.event_local[e.index()]
    }

    /// The event at 1-based position `local` on `process`, if it exists.
    pub fn event_at(&self, process: impl Into<ProcessId>, local: u32) -> Option<EventId> {
        if local == 0 {
            return None;
        }
        self.proc_events[process.into().index()]
            .get(local as usize - 1)
            .copied()
    }

    /// The send/receive/internal kind of an event.
    pub fn kind(&self, e: EventId) -> EventKind {
        self.kinds[e.index()]
    }

    /// All message edges `(send, receive)` in insertion order.
    pub fn messages(&self) -> &[(EventId, EventId)] {
        &self.messages
    }

    /// The send events whose messages `e` receives.
    pub fn message_predecessors(&self, e: EventId) -> &[EventId] {
        &self.msg_preds[e.index()]
    }

    /// The receive events of the messages `e` sends.
    pub fn message_successors(&self, e: EventId) -> &[EventId] {
        &self.msg_succs[e.index()]
    }

    /// The Fidge–Mattern vector clock of an event.
    pub fn clock(&self, e: EventId) -> &VectorClock {
        &self.clocks[e.index()]
    }

    /// The event preceding `e` on its process, if any.
    pub fn predecessor_on_process(&self, e: EventId) -> Option<EventId> {
        let local = self.local_index(e);
        self.event_at(self.process_of(e), local - 1)
    }

    /// The event following `e` on its process, if any.
    pub fn successor_on_process(&self, e: EventId) -> Option<EventId> {
        self.event_at(self.process_of(e), self.local_index(e) + 1)
    }

    /// Whether `e ≤ f` in the causal (happened-before-or-equal) order.
    pub fn leq(&self, e: EventId, f: EventId) -> bool {
        // vc(e) ≤ vc(f) componentwise characterizes e ≤ f, but the single
        // component at e's own process suffices and is O(1).
        self.clocks[f.index()].get(self.process_of(e).index()) >= self.local_index(e)
    }

    /// Whether `e` happened strictly before `f` (Lamport's `e → f`).
    pub fn happened_before(&self, e: EventId, f: EventId) -> bool {
        e != f && self.leq(e, f)
    }

    /// Whether `e` and `f` are *independent* (incomparable).
    pub fn concurrent(&self, e: EventId, f: EventId) -> bool {
        e != f && !self.leq(e, f) && !self.leq(f, e)
    }

    /// Whether `e` and `f` are *consistent*: some consistent cut passes
    /// through both. Per the paper (§2.2), `e` and `f` are inconsistent
    /// iff `succ(e) ≤ f` or `succ(f) ≤ e`.
    ///
    /// A last event on its process has no successor and therefore can
    /// never block its partner:
    ///
    /// ```
    /// use gpd_computation::ComputationBuilder;
    ///
    /// let mut b = ComputationBuilder::new(2);
    /// let e = b.append(0);
    /// let f = b.append(1);
    /// b.message(e, f).unwrap();
    /// let comp = b.build().unwrap();
    /// // e ≤ f via the message, yet both are final on their processes:
    /// // the final cut passes through both, so they are consistent.
    /// assert!(comp.consistent(e, f));
    /// assert!(comp.consistent(e, e));
    /// ```
    pub fn consistent(&self, e: EventId, f: EventId) -> bool {
        // One successor lookup per argument, short-circuiting: the second
        // direction is only examined when the first does not already rule
        // the pair out.
        let blocks = |x, y| match self.successor_on_process(x) {
            Some(s) => self.leq(s, y),
            None => false,
        };
        !blocks(e, f) && !blocks(f, e)
    }

    /// The initial consistent cut (only the implicit initial events).
    pub fn initial_cut(&self) -> Cut {
        Cut::from_frontier(vec![0; self.process_count()])
    }

    /// The final consistent cut (all events).
    pub fn final_cut(&self) -> Cut {
        Cut::from_frontier(self.proc_events.iter().map(|v| v.len() as u32).collect())
    }

    /// Whether `cut` (which must have one frontier entry per process, each
    /// within range) is consistent: it contains every causal predecessor
    /// of every contained event.
    ///
    /// # Panics
    ///
    /// Panics if the cut's shape does not match the computation.
    pub fn is_consistent(&self, cut: &Cut) -> bool {
        self.check_shape(cut);
        (0..self.process_count()).all(|p| {
            let f = cut.frontier()[p];
            if f == 0 {
                return true;
            }
            let e = self.proc_events[p][f as usize - 1];
            let vc = &self.clocks[e.index()];
            (0..self.process_count()).all(|q| vc.get(q) <= cut.frontier()[q])
        })
    }

    pub(crate) fn check_shape(&self, cut: &Cut) {
        assert_eq!(
            cut.frontier().len(),
            self.process_count(),
            "cut has {} entries for {} processes",
            cut.frontier().len(),
            self.process_count()
        );
        for (p, &f) in cut.frontier().iter().enumerate() {
            assert!(
                f as usize <= self.proc_events[p].len(),
                "cut frontier {f} exceeds {} events on p{p}",
                self.proc_events[p].len()
            );
        }
    }

    /// Breadth-first iterator over all consistent cuts, starting at the
    /// initial cut. Exponentially many in general — this is the baseline
    /// the paper's algorithms improve on.
    pub fn consistent_cuts(&self) -> CutIter<'_> {
        CutIter::new(self)
    }

    /// The time-reversed computation: every process's event sequence is
    /// reversed and every message edge is flipped (the receive becomes the
    /// send). Happened-before in the result is the inverse of this
    /// computation's, and consistent cuts correspond by complementation:
    /// frontier `g` there ↔ frontier `mₚ − g[p]` here.
    ///
    /// Used to reduce the *send-ordered* special case of §3.2 to the
    /// receive-ordered one. The event at local position `k` on process `p`
    /// in the result is the event at position `mₚ + 1 − k` here.
    pub fn reversed(&self) -> Computation {
        let mut b = crate::builder::ComputationBuilder::new(self.process_count());
        // Mapping from original event id to reversed event id.
        let mut map = vec![EventId::new(0); self.event_count()];
        for p in 0..self.process_count() {
            for &e in self.proc_events[p].iter().rev() {
                map[e.index()] = b.append(p);
            }
        }
        for &(s, r) in &self.messages {
            b.message(map[r.index()], map[s.index()])
                .expect("flipped message endpoints stay on distinct processes");
        }
        b.build()
            .expect("the reverse of a partial order is a partial order")
    }

    /// The consistent cuts that can be reached from `cut` by executing
    /// exactly one event.
    ///
    /// # Panics
    ///
    /// Panics if the cut's shape does not match the computation.
    pub fn cut_successors(&self, cut: &Cut) -> Vec<Cut> {
        self.check_shape(cut);
        let mut out = Vec::new();
        for p in 0..self.process_count() {
            let f = cut.frontier()[p];
            if (f as usize) < self.proc_events[p].len() {
                let e = self.proc_events[p][f as usize];
                let vc = &self.clocks[e.index()];
                let enabled =
                    (0..self.process_count()).all(|q| q == p || vc.get(q) <= cut.frontier()[q]);
                if enabled {
                    let mut next = cut.frontier().to_vec();
                    next[p] += 1;
                    out.push(Cut::from_frontier(next));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ComputationBuilder;

    /// p0: a1 a2, p1: b1 b2, message a1 → b2.
    fn sample() -> (Computation, [EventId; 4]) {
        let mut b = ComputationBuilder::new(2);
        let a1 = b.append(0);
        let a2 = b.append(0);
        let b1 = b.append(1);
        let b2 = b.append(1);
        b.message(a1, b2).unwrap();
        (b.build().unwrap(), [a1, a2, b1, b2])
    }

    #[test]
    fn program_order_is_causal() {
        let (c, [a1, a2, ..]) = sample();
        assert!(c.happened_before(a1, a2));
        assert!(!c.happened_before(a2, a1));
        assert!(c.leq(a1, a1));
        assert!(!c.happened_before(a1, a1));
    }

    #[test]
    fn message_order_is_causal() {
        let (c, [a1, a2, b1, b2]) = sample();
        assert!(c.happened_before(a1, b2));
        assert!(c.concurrent(a1, b1));
        assert!(c.concurrent(a2, b1));
        assert!(c.concurrent(a2, b2));
    }

    #[test]
    fn consistency_of_event_pairs() {
        let (c, [a1, a2, b1, b2]) = sample();
        // a1 and b1: a cut can pass through both.
        assert!(c.consistent(a1, b1));
        // a1 and b2: succ(a1) = a2 is not ≤ b2, succ(b2) = none. Wait —
        // b2 receives from a1, so a cut through a1 and b2 must contain a1;
        // it does. Consistent.
        assert!(c.consistent(a1, b2));
        // a1 < b2 via message, but is a1 consistent with b2's successor?
        // No successor exists; check the pair (a1, b1) vs (a2, b2) etc.
        assert!(c.consistent(a2, b2));
        assert!(c.consistent(a2, b1));
        // Same-process distinct events are never consistent.
        assert!(!c.consistent(a1, a2));
        // Every event is consistent with itself.
        assert!(c.consistent(b2, b2));
    }

    #[test]
    fn inconsistent_when_successor_precedes() {
        // p0: s, p1: r x. Message s → r. Then s's successor doesn't
        // exist; but consider cut through (s, x): fine. Build a case where
        // succ(e) ≤ f: p0: e e2, p1: f, message e2 → f.
        let mut b = ComputationBuilder::new(2);
        let e = b.append(0);
        let e2 = b.append(0);
        let f = b.append(1);
        b.message(e2, f).unwrap();
        let c = b.build().unwrap();
        assert!(c.happened_before(e, f));
        assert!(
            !c.consistent(e, f),
            "succ(e) = e2 ≤ f forces e2 into any cut through f"
        );
        assert!(c.consistent(e2, f));
    }

    #[test]
    fn initial_and_final_cuts_are_consistent() {
        let (c, _) = sample();
        assert!(c.is_consistent(&c.initial_cut()));
        assert!(c.is_consistent(&c.final_cut()));
        assert_eq!(c.initial_cut().event_count(), 0);
        assert_eq!(c.final_cut().event_count(), 4);
    }

    #[test]
    fn inconsistent_cut_detected() {
        let (c, _) = sample();
        // Cut containing b2 (which receives from a1) but not a1.
        let cut = Cut::from_frontier(vec![0, 2]);
        assert!(!c.is_consistent(&cut));
        let ok = Cut::from_frontier(vec![1, 2]);
        assert!(c.is_consistent(&ok));
    }

    #[test]
    fn cut_successors_respect_messages() {
        let (c, _) = sample();
        let initial = c.initial_cut();
        let succs = c.cut_successors(&initial);
        // From ⊥ we can execute a1 or b1, not b2.
        assert_eq!(succs.len(), 2);
        assert!(succs.contains(&Cut::from_frontier(vec![1, 0])));
        assert!(succs.contains(&Cut::from_frontier(vec![0, 1])));
        // From [0,1], b2 is blocked until a1 executes.
        let succs = c.cut_successors(&Cut::from_frontier(vec![0, 1]));
        assert_eq!(succs, vec![Cut::from_frontier(vec![1, 1])]);
    }

    #[test]
    fn event_navigation() {
        let (c, [a1, a2, b1, b2]) = sample();
        assert_eq!(c.successor_on_process(a1), Some(a2));
        assert_eq!(c.successor_on_process(a2), None);
        assert_eq!(c.predecessor_on_process(b2), Some(b1));
        assert_eq!(c.predecessor_on_process(b1), None);
        assert_eq!(c.event_at(0, 1), Some(a1));
        assert_eq!(c.event_at(0, 0), None);
        assert_eq!(c.event_at(0, 3), None);
        assert_eq!(c.local_index(b2), 2);
        assert_eq!(c.process_of(b1).index(), 1);
        assert_eq!(c.events().count(), 4);
        assert_eq!(c.events_on(0), 2);
    }

    #[test]
    fn message_adjacency() {
        let (c, [a1, _, _, b2]) = sample();
        assert_eq!(c.message_predecessors(b2), &[a1]);
        assert_eq!(c.message_successors(a1), &[b2]);
        assert_eq!(c.messages(), &[(a1, b2)]);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn out_of_range_cut_panics() {
        let (c, _) = sample();
        c.is_consistent(&Cut::from_frontier(vec![3, 0]));
    }
}
