//! Event and process identifiers.

/// Identifies a process by its index within a computation (`0..n`).
///
/// # Example
///
/// ```
/// use gpd_computation::ProcessId;
///
/// let p = ProcessId::new(2);
/// assert_eq!(p.index(), 2);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProcessId(u32);

impl ProcessId {
    /// Wraps a process index.
    pub fn new(index: usize) -> Self {
        ProcessId(u32::try_from(index).expect("process index fits in u32"))
    }

    /// The underlying index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Debug for ProcessId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl std::fmt::Display for ProcessId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl From<usize> for ProcessId {
    fn from(index: usize) -> Self {
        ProcessId::new(index)
    }
}

/// Identifies a (non-initial) event within a computation.
///
/// Event ids are dense indices assigned by [`ComputationBuilder::append`]
/// in creation order; the fictitious initial events of the paper's model
/// are implicit and have no id — every consistent cut contains them.
///
/// [`ComputationBuilder::append`]: crate::ComputationBuilder::append
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(u32);

impl EventId {
    pub(crate) fn new(index: usize) -> Self {
        EventId(u32::try_from(index).expect("event index fits in u32"))
    }

    /// The dense index of the event (position in creation order).
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs an id from a dense index previously obtained with
    /// [`index`](Self::index). The index must belong to the same
    /// computation or lookups with it will be meaningless.
    pub fn from_index(index: usize) -> Self {
        EventId::new(index)
    }
}

impl std::fmt::Debug for EventId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// How an event interacts with channels. An event that both sends and
/// receives is [`EventKind::SendReceive`]; the model (and the paper)
/// permits this, and the Theorem 1 gadget never produces one, which the
/// construction points out.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// Purely local computation step.
    Internal,
    /// Sends one or more messages.
    Send,
    /// Receives one or more messages.
    Receive,
    /// Sends and receives in the same step.
    SendReceive,
}

impl EventKind {
    /// Whether the event receives at least one message.
    pub fn is_receive(self) -> bool {
        matches!(self, EventKind::Receive | EventKind::SendReceive)
    }

    /// Whether the event sends at least one message.
    pub fn is_send(self) -> bool {
        matches!(self, EventKind::Send | EventKind::SendReceive)
    }

    pub(crate) fn with_send(self) -> EventKind {
        match self {
            EventKind::Internal | EventKind::Send => EventKind::Send,
            EventKind::Receive | EventKind::SendReceive => EventKind::SendReceive,
        }
    }

    pub(crate) fn with_receive(self) -> EventKind {
        match self {
            EventKind::Internal | EventKind::Receive => EventKind::Receive,
            EventKind::Send | EventKind::SendReceive => EventKind::SendReceive,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn process_id_roundtrip() {
        assert_eq!(ProcessId::new(5).index(), 5);
        assert_eq!(ProcessId::from(3), ProcessId::new(3));
        assert_eq!(format!("{}", ProcessId::new(1)), "p1");
    }

    #[test]
    fn event_kind_transitions() {
        assert_eq!(EventKind::Internal.with_send(), EventKind::Send);
        assert_eq!(EventKind::Send.with_receive(), EventKind::SendReceive);
        assert_eq!(EventKind::Receive.with_send(), EventKind::SendReceive);
        assert!(EventKind::SendReceive.is_send());
        assert!(EventKind::SendReceive.is_receive());
        assert!(!EventKind::Internal.is_send());
        assert!(!EventKind::Send.is_receive());
    }

    #[test]
    fn event_id_debug() {
        assert_eq!(format!("{:?}", EventId::new(4)), "e4");
    }
}
