//! Structural statistics of a computation.
//!
//! The detection algorithms' costs are governed by a few structural
//! parameters of the event poset: its **width** (largest set of mutually
//! concurrent events — the minimum number of chains covering it, by
//! Dilworth), its **height** (longest causal chain — the minimum run
//! length in logical steps), and the resulting **lattice profile**. This
//! module computes them, mostly as instrumentation for the experiments.

use gpd_order::{levels, min_chain_cover, Dag};

use crate::computation::Computation;

/// Summary of a computation's shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stats {
    /// Number of processes.
    pub processes: usize,
    /// Number of (non-initial) events.
    pub events: usize,
    /// Number of message edges.
    pub messages: usize,
    /// Width: size of the largest antichain of events (≤ processes ×
    /// anything only when messages impose order; equals `processes` for
    /// message-free computations with events on each).
    pub width: usize,
    /// Height: number of events on the longest causal chain.
    pub height: usize,
}

/// The event DAG (program order + messages) of the computation.
fn event_dag(comp: &Computation) -> Dag {
    let mut dag = Dag::new(comp.event_count());
    for p in 0..comp.process_count() {
        for w in comp.events_of(p).windows(2) {
            dag.add_edge(w[0].index(), w[1].index());
        }
    }
    for &(s, r) in comp.messages() {
        dag.add_edge(s.index(), r.index());
    }
    dag
}

/// Computes the [`Stats`] of a computation. Width uses a Dilworth chain
/// cover (bipartite matching: O(E√V) on the comparability graph), height
/// a longest-path pass.
///
/// # Example
///
/// ```
/// use gpd_computation::{stats, ComputationBuilder};
///
/// let mut b = ComputationBuilder::new(2);
/// let s = b.append(0);
/// let r = b.append(1);
/// b.message(s, r).unwrap();
/// let st = stats(&b.build().unwrap());
/// assert_eq!(st.width, 1); // the message chains the two events
/// assert_eq!(st.height, 2);
/// ```
pub fn stats(comp: &Computation) -> Stats {
    let dag = event_dag(comp);
    let height = if comp.event_count() == 0 {
        0
    } else {
        levels(&dag).level_count()
    };
    let closure = dag
        .transitive_closure()
        .expect("computations are acyclic by construction");
    let elements: Vec<usize> = (0..comp.event_count()).collect();
    let width = min_chain_cover(&closure, &elements).width();
    Stats {
        processes: comp.process_count(),
        events: comp.event_count(),
        messages: comp.messages().len(),
        width,
        height,
    }
}

/// The number of consistent cuts per lattice level (cuts with `k` events
/// for `k = 0..=events`). Exponential work — instrumentation for small
/// computations.
pub fn lattice_profile(comp: &Computation) -> Vec<usize> {
    let mut profile = vec![0usize; comp.event_count() + 1];
    for cut in comp.consistent_cuts() {
        profile[cut.event_count()] += 1;
    }
    profile
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ComputationBuilder;

    #[test]
    fn independent_processes_have_full_width() {
        let mut b = ComputationBuilder::new(3);
        for p in 0..3 {
            b.append(p);
            b.append(p);
        }
        let st = stats(&b.build().unwrap());
        assert_eq!(st.width, 3);
        assert_eq!(st.height, 2);
        assert_eq!(st.events, 6);
    }

    #[test]
    fn fully_chained_computation_has_width_one() {
        // p0 → p1 → p0 → p1 alternating messages chain everything.
        let mut b = ComputationBuilder::new(2);
        let a = b.append(0);
        let c = b.append(1);
        let d = b.append(0);
        b.message(a, c).unwrap();
        b.message(c, d).unwrap();
        let st = stats(&b.build().unwrap());
        assert_eq!(st.width, 1);
        assert_eq!(st.height, 3);
    }

    #[test]
    fn empty_computation() {
        let st = stats(&ComputationBuilder::new(2).build().unwrap());
        assert_eq!(st.width, 0);
        assert_eq!(st.height, 0);
        assert_eq!(st.events, 0);
    }

    #[test]
    fn lattice_profile_sums_to_cut_count() {
        let mut b = ComputationBuilder::new(2);
        b.append(0);
        b.append(0);
        b.append(1);
        let comp = b.build().unwrap();
        let profile = lattice_profile(&comp);
        assert_eq!(
            profile.iter().sum::<usize>(),
            comp.consistent_cuts().count()
        );
        assert_eq!(profile[0], 1, "one empty cut");
        assert_eq!(profile[3], 1, "one full cut");
        // Level 1: either first event of p0 or p1's event.
        assert_eq!(profile[1], 2);
    }

    #[test]
    fn width_bounds_lattice_level_sizes() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let comp = crate::gen::random_computation(&mut rng, 3, 3, 3);
        let st = stats(&comp);
        // The largest level of the cut lattice is at most
        // C(width + levels...) — loosely, every level's antichain of
        // frontier moves is bounded by width+1 choices per process; just
        // assert the trivial sanity bounds here.
        assert!(st.width <= st.events);
        assert!(st.height <= st.events);
        assert!(st.width * st.height >= st.events, "Dilworth/Mirsky bound");
    }
}
