//! Graphviz export of computations (the paper's space-time diagrams).

use crate::computation::Computation;
use crate::variables::BoolVariable;

/// Renders the computation as a Graphviz `digraph`: one horizontal rank
/// per process, program-order edges solid, message edges dashed. If a
/// boolean variable is supplied, its *true events* are drawn as double
/// circles, mirroring the paper's encircled true events.
///
/// # Example
///
/// ```
/// use gpd_computation::{to_dot, ComputationBuilder};
///
/// let mut b = ComputationBuilder::new(2);
/// let s = b.append(0);
/// let r = b.append(1);
/// b.message(s, r).unwrap();
/// let dot = to_dot(&b.build().unwrap(), None);
/// assert!(dot.contains("digraph computation"));
/// assert!(dot.contains("style=dashed"));
/// ```
pub fn to_dot(comp: &Computation, truth: Option<&BoolVariable>) -> String {
    let mut out = String::from("digraph computation {\n  rankdir=LR;\n  node [shape=circle];\n");
    for p in 0..comp.process_count() {
        out.push_str(&format!(
            "  subgraph cluster_p{p} {{\n    label=\"p{p}\";\n"
        ));
        for &e in comp.events_of(p) {
            let name = format!("p{p}_{}", comp.local_index(e));
            let is_true = truth.is_some_and(|t| t.is_true_event(comp, e));
            let shape = if is_true { ", shape=doublecircle" } else { "" };
            out.push_str(&format!(
                "    {name} [label=\"{}\"{shape}];\n",
                comp.local_index(e)
            ));
        }
        out.push_str("  }\n");
    }
    for p in 0..comp.process_count() {
        let events = comp.events_of(p);
        for w in events.windows(2) {
            out.push_str(&format!(
                "  p{p}_{} -> p{p}_{};\n",
                comp.local_index(w[0]),
                comp.local_index(w[1])
            ));
        }
    }
    for &(s, r) in comp.messages() {
        out.push_str(&format!(
            "  p{}_{} -> p{}_{} [style=dashed];\n",
            comp.process_of(s).index(),
            comp.local_index(s),
            comp.process_of(r).index(),
            comp.local_index(r)
        ));
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ComputationBuilder;
    use crate::variables::BoolVariable;

    #[test]
    fn contains_all_events_and_edges() {
        let mut b = ComputationBuilder::new(2);
        let a1 = b.append(0);
        b.append(0);
        let r = b.append(1);
        b.message(a1, r).unwrap();
        let comp = b.build().unwrap();
        let dot = to_dot(&comp, None);
        assert!(dot.contains("p0_1"));
        assert!(dot.contains("p0_2"));
        assert!(dot.contains("p1_1"));
        assert!(dot.contains("p0_1 -> p0_2;"));
        assert!(dot.contains("p0_1 -> p1_1 [style=dashed];"));
    }

    #[test]
    fn true_events_are_double_circles() {
        let mut b = ComputationBuilder::new(1);
        b.append(0);
        let comp = b.build().unwrap();
        let v = BoolVariable::new(&comp, vec![vec![false, true]]);
        let dot = to_dot(&comp, Some(&v));
        assert!(dot.contains("doublecircle"));
    }

    #[test]
    fn empty_computation_renders() {
        let comp = ComputationBuilder::new(0).build().unwrap();
        let dot = to_dot(&comp, None);
        assert!(dot.starts_with("digraph"));
        assert!(dot.ends_with("}\n"));
    }
}
