//! A line-oriented text format for computations and their variables.
//!
//! Traces let the examples and the benchmark harness persist computations
//! (e.g. ones recorded from the simulator) and reload them elsewhere:
//!
//! ```text
//! gpd-trace 1
//! processes 2
//! counts 2 1
//! message 0.1 1.1
//! boolvar ready 0: 0 1 0
//! boolvar ready 1: 0 1
//! intvar tokens 0: 1 1 0
//! intvar tokens 1: 0 0
//! end
//! ```
//!
//! `message p.k q.l` connects the `k`-th event of process `p` (1-based) to
//! the `l`-th event of process `q`. Variable lines carry one value per
//! local state (`counts[p] + 1` values).

use std::collections::BTreeMap;

use crate::builder::ComputationBuilder;
use crate::computation::Computation;
use crate::variables::{BoolVariable, IntVariable};

/// A parsed trace: the computation plus named variable annotations.
#[derive(Debug, Clone)]
pub struct Trace {
    /// The event poset.
    pub computation: Computation,
    /// Named boolean variables, sorted by name.
    pub bool_vars: Vec<(String, BoolVariable)>,
    /// Named integer variables, sorted by name.
    pub int_vars: Vec<(String, IntVariable)>,
}

/// Error produced by [`read_trace`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceError {
    line: usize,
    message: String,
}

impl TraceError {
    fn new(line: usize, message: impl Into<String>) -> Self {
        TraceError {
            line,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TraceError {}

/// Hard cap on `processes` — a parser resource bound, far above any real
/// trace, so a hostile header cannot force huge allocations.
pub const MAX_TRACE_PROCESSES: usize = 1 << 20;

/// Hard cap on the total event count (`Σ counts`), checked with overflow
/// detection before any per-event allocation happens.
pub const MAX_TRACE_EVENTS: usize = 1 << 24;

/// Serializes a computation and its variables to the trace format.
///
/// # Example
///
/// ```
/// use gpd_computation::{trace, ComputationBuilder};
///
/// let mut b = ComputationBuilder::new(1);
/// b.append(0);
/// let comp = b.build().unwrap();
/// let text = trace::write_trace(&comp, &[], &[]);
/// let back = trace::read_trace(&text).unwrap();
/// assert_eq!(back.computation.event_count(), 1);
/// ```
pub fn write_trace(
    comp: &Computation,
    bool_vars: &[(&str, &BoolVariable)],
    int_vars: &[(&str, &IntVariable)],
) -> String {
    let mut out = String::from("gpd-trace 1\n");
    out.push_str(&format!("processes {}\n", comp.process_count()));
    out.push_str("counts");
    for p in 0..comp.process_count() {
        out.push_str(&format!(" {}", comp.events_on(p)));
    }
    out.push('\n');
    for &(s, r) in comp.messages() {
        out.push_str(&format!(
            "message {}.{} {}.{}\n",
            comp.process_of(s).index(),
            comp.local_index(s),
            comp.process_of(r).index(),
            comp.local_index(r)
        ));
    }
    for (name, var) in bool_vars {
        for (p, track) in var.tracks().iter().enumerate() {
            out.push_str(&format!("boolvar {name} {p}:"));
            for &v in track {
                out.push_str(if v { " 1" } else { " 0" });
            }
            out.push('\n');
        }
    }
    for (name, var) in int_vars {
        for (p, track) in var.tracks().iter().enumerate() {
            out.push_str(&format!("intvar {name} {p}:"));
            for &v in track {
                out.push_str(&format!(" {v}"));
            }
            out.push('\n');
        }
    }
    out.push_str("end\n");
    out
}

fn parse_endpoint(tok: &str, line: usize) -> Result<(usize, u32), TraceError> {
    let (p, k) = tok
        .split_once('.')
        .ok_or_else(|| TraceError::new(line, format!("bad endpoint {tok:?}")))?;
    let p = p
        .parse()
        .map_err(|_| TraceError::new(line, format!("bad process in {tok:?}")))?;
    let k = k
        .parse()
        .map_err(|_| TraceError::new(line, format!("bad index in {tok:?}")))?;
    Ok((p, k))
}

/// Parses a trace produced by [`write_trace`].
///
/// # Errors
///
/// Returns [`TraceError`] (with a line number) on any malformed header,
/// message, or variable line, on shape mismatches, or if the messages
/// form a causal cycle.
pub fn read_trace(input: &str) -> Result<Trace, TraceError> {
    let mut lines = input.lines().enumerate().map(|(i, l)| (i + 1, l.trim()));

    let (i, header) = lines
        .next()
        .ok_or_else(|| TraceError::new(0, "empty input"))?;
    if header != "gpd-trace 1" {
        return Err(TraceError::new(i, format!("bad magic {header:?}")));
    }
    let (i, procs_line) = lines
        .next()
        .ok_or_else(|| TraceError::new(i, "missing processes line"))?;
    let processes: usize = procs_line
        .strip_prefix("processes ")
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| TraceError::new(i, format!("bad processes line {procs_line:?}")))?;
    if processes > MAX_TRACE_PROCESSES {
        return Err(TraceError::new(
            i,
            format!("{processes} processes exceeds the cap of {MAX_TRACE_PROCESSES}"),
        ));
    }
    let (i, counts_line) = lines
        .next()
        .ok_or_else(|| TraceError::new(i, "missing counts line"))?;
    let counts: Vec<usize> = counts_line
        .strip_prefix("counts")
        .ok_or_else(|| TraceError::new(i, format!("bad counts line {counts_line:?}")))?
        .split_whitespace()
        .map(|t| t.parse())
        .collect::<Result<_, _>>()
        .map_err(|_| TraceError::new(i, "bad event count"))?;
    if counts.len() != processes {
        return Err(TraceError::new(
            i,
            format!("{} counts for {processes} processes", counts.len()),
        ));
    }
    counts
        .iter()
        .try_fold(0usize, |acc, &c| acc.checked_add(c))
        .filter(|&t| t <= MAX_TRACE_EVENTS)
        .ok_or_else(|| {
            TraceError::new(
                i,
                format!("declared event count exceeds the cap of {MAX_TRACE_EVENTS}"),
            )
        })?;

    let mut b = ComputationBuilder::new(processes);
    let mut ids = Vec::with_capacity(processes);
    for (p, &c) in counts.iter().enumerate() {
        ids.push((0..c).map(|_| b.append(p)).collect::<Vec<_>>());
    }

    let mut bool_tracks: BTreeMap<String, Vec<Option<Vec<bool>>>> = BTreeMap::new();
    let mut int_tracks: BTreeMap<String, Vec<Option<Vec<i64>>>> = BTreeMap::new();
    let mut saw_end = false;

    for (i, line) in lines {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "end" {
            saw_end = true;
            break;
        }
        if let Some(rest) = line.strip_prefix("message ") {
            let mut toks = rest.split_whitespace();
            let (from, to) = (
                toks.next()
                    .ok_or_else(|| TraceError::new(i, "missing send endpoint"))?,
                toks.next()
                    .ok_or_else(|| TraceError::new(i, "missing receive endpoint"))?,
            );
            let (sp, sk) = parse_endpoint(from, i)?;
            let (rp, rk) = parse_endpoint(to, i)?;
            let get = |p: usize, k: u32| -> Result<crate::EventId, TraceError> {
                // Endpoints are 1-based; position 0 is the implicit
                // initial event, which cannot send or receive.
                let k1 = k.checked_sub(1).ok_or_else(|| {
                    TraceError::new(i, format!("endpoint {p}.{k}: event index must be >= 1"))
                })?;
                ids.get(p)
                    .and_then(|v| v.get(k1 as usize))
                    .copied()
                    .ok_or_else(|| TraceError::new(i, format!("no event {p}.{k}")))
            };
            b.message(get(sp, sk)?, get(rp, rk)?)
                .map_err(|e| TraceError::new(i, e.to_string()))?;
        } else if let Some(rest) = line.strip_prefix("boolvar ") {
            let (name, p, vals) = parse_var_line(rest, i)?;
            let track: Vec<bool> = vals
                .iter()
                .map(|t| match *t {
                    "0" => Ok(false),
                    "1" => Ok(true),
                    other => Err(TraceError::new(i, format!("bad bool {other:?}"))),
                })
                .collect::<Result<_, _>>()?;
            let slot = bool_tracks
                .entry(name.clone())
                .or_insert_with(|| vec![None; processes])
                .get_mut(p)
                .ok_or_else(|| TraceError::new(i, format!("process {p} out of range")))?;
            if slot.replace(track).is_some() {
                return Err(TraceError::new(
                    i,
                    format!("duplicate boolvar line for {name:?} p{p}"),
                ));
            }
        } else if let Some(rest) = line.strip_prefix("intvar ") {
            let (name, p, vals) = parse_var_line(rest, i)?;
            let track: Vec<i64> = vals
                .iter()
                .map(|t| {
                    t.parse()
                        .map_err(|_| TraceError::new(i, format!("bad int {t:?}")))
                })
                .collect::<Result<_, _>>()?;
            let slot = int_tracks
                .entry(name.clone())
                .or_insert_with(|| vec![None; processes])
                .get_mut(p)
                .ok_or_else(|| TraceError::new(i, format!("process {p} out of range")))?;
            if slot.replace(track).is_some() {
                return Err(TraceError::new(
                    i,
                    format!("duplicate intvar line for {name:?} p{p}"),
                ));
            }
        } else {
            return Err(TraceError::new(i, format!("unrecognized line {line:?}")));
        }
    }
    if !saw_end {
        return Err(TraceError::new(0, "missing end marker"));
    }

    let computation = b.build().map_err(|e| TraceError::new(0, e.to_string()))?;

    let finish_bool = |(name, tracks): (String, Vec<Option<Vec<bool>>>)| {
        let tracks: Option<Vec<Vec<bool>>> = tracks.into_iter().collect();
        let tracks = tracks.ok_or_else(|| {
            TraceError::new(0, format!("boolvar {name:?} missing a process track"))
        })?;
        check_var_shape(&name, &tracks, &counts)?;
        Ok::<_, TraceError>((name, BoolVariable::new(&computation, tracks)))
    };
    let finish_int = |(name, tracks): (String, Vec<Option<Vec<i64>>>)| {
        let tracks: Option<Vec<Vec<i64>>> = tracks.into_iter().collect();
        let tracks = tracks.ok_or_else(|| {
            TraceError::new(0, format!("intvar {name:?} missing a process track"))
        })?;
        check_var_shape(&name, &tracks, &counts)?;
        Ok::<_, TraceError>((name, IntVariable::new(&computation, tracks)))
    };

    Ok(Trace {
        bool_vars: bool_tracks
            .into_iter()
            .map(finish_bool)
            .collect::<Result<_, _>>()?,
        int_vars: int_tracks
            .into_iter()
            .map(finish_int)
            .collect::<Result<_, _>>()?,
        computation,
    })
}

fn parse_var_line(rest: &str, i: usize) -> Result<(String, usize, Vec<&str>), TraceError> {
    let (head, values) = rest
        .split_once(':')
        .ok_or_else(|| TraceError::new(i, "missing ':' in variable line"))?;
    let mut toks = head.split_whitespace();
    let name = toks
        .next()
        .ok_or_else(|| TraceError::new(i, "missing variable name"))?
        .to_string();
    let p: usize = toks
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| TraceError::new(i, "missing process index"))?;
    Ok((name, p, values.split_whitespace().collect()))
}

fn check_var_shape<T>(name: &str, tracks: &[Vec<T>], counts: &[usize]) -> Result<(), TraceError> {
    for (p, track) in tracks.iter().enumerate() {
        if track.len() != counts[p] + 1 {
            return Err(TraceError::new(
                0,
                format!(
                    "variable {name:?} track for p{p} has {} values, expected {}",
                    track.len(),
                    counts[p] + 1
                ),
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (Computation, BoolVariable, IntVariable) {
        let mut b = ComputationBuilder::new(2);
        let s = b.append(0);
        let r = b.append(1);
        b.append(0);
        b.message(s, r).unwrap();
        let comp = b.build().unwrap();
        let bv = BoolVariable::new(&comp, vec![vec![false, true, false], vec![true, false]]);
        let iv = IntVariable::new(&comp, vec![vec![0, 1, 2], vec![5, 4]]);
        (comp, bv, iv)
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let (comp, bv, iv) = sample();
        let text = write_trace(&comp, &[("flag", &bv)], &[("x", &iv)]);
        let back = read_trace(&text).unwrap();
        assert_eq!(back.computation.process_count(), 2);
        assert_eq!(back.computation.event_count(), 3);
        assert_eq!(back.computation.messages().len(), 1);
        assert_eq!(back.bool_vars.len(), 1);
        assert_eq!(back.bool_vars[0].0, "flag");
        assert_eq!(back.bool_vars[0].1, bv);
        assert_eq!(back.int_vars[0].1, iv);
        // Happened-before is preserved.
        let s = back.computation.event_at(0, 1).unwrap();
        let r = back.computation.event_at(1, 1).unwrap();
        assert!(back.computation.happened_before(s, r));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "gpd-trace 1\nprocesses 1\ncounts 0\n\n# comment\nend\n";
        assert!(read_trace(text).is_ok());
    }

    #[test]
    fn errors_carry_line_numbers() {
        let bad = "gpd-trace 1\nprocesses 1\ncounts 0\nmessage 0.1 0.2\nend\n";
        let err = read_trace(bad).unwrap_err();
        assert!(err.to_string().contains("line 4"), "{err}");
    }

    #[test]
    fn rejects_bad_magic_and_missing_end() {
        assert!(read_trace("nope\n").is_err());
        assert!(read_trace("gpd-trace 1\nprocesses 1\ncounts 0\n").is_err());
        assert!(read_trace("").is_err());
    }

    #[test]
    fn rejects_malformed_variable_lines() {
        let base = "gpd-trace 1\nprocesses 1\ncounts 1\n";
        assert!(read_trace(&format!("{base}boolvar f 0: 0 2 0\nend\n")).is_err());
        assert!(read_trace(&format!("{base}boolvar f 0 0 1\nend\n")).is_err());
        assert!(read_trace(&format!("{base}intvar x 0: 1\nend\n")).is_err()); // wrong length
        assert!(read_trace(&format!("{base}weird line\nend\n")).is_err());
    }

    #[test]
    fn rejects_duplicate_variable_tracks() {
        let base = "gpd-trace 1\nprocesses 1\ncounts 1\n";
        let dup_bool = format!("{base}boolvar f 0: 0 1\nboolvar f 0: 1 0\nend\n");
        let err = read_trace(&dup_bool).unwrap_err();
        assert!(err.to_string().contains("duplicate boolvar"), "{err}");
        let dup_int = format!("{base}intvar x 0: 1 2\nintvar x 0: 3 4\nend\n");
        let err = read_trace(&dup_int).unwrap_err();
        assert!(err.to_string().contains("duplicate intvar"), "{err}");
        // Same name on *different* processes is fine.
        let ok = "gpd-trace 1\nprocesses 2\ncounts 1 1\nboolvar f 0: 0 1\nboolvar f 1: 1 0\nend\n";
        assert!(read_trace(ok).is_ok());
    }

    #[test]
    fn rejects_oversized_declarations_before_allocating() {
        // A hostile header must fail fast, not exhaust memory.
        let huge_counts = "gpd-trace 1\nprocesses 1\ncounts 99999999999999\nend\n";
        assert!(read_trace(huge_counts).is_err());
        let overflow = format!(
            "gpd-trace 1\nprocesses 2\ncounts {} {}\nend\n",
            usize::MAX,
            usize::MAX
        );
        assert!(read_trace(&overflow).is_err());
        let huge_procs = format!(
            "gpd-trace 1\nprocesses {}\ncounts\nend\n",
            MAX_TRACE_PROCESSES + 1
        );
        assert!(read_trace(&huge_procs).is_err());
    }

    #[test]
    fn zero_based_endpoints_error_explicitly() {
        // Send-position `p.0`.
        let send0 = "gpd-trace 1\nprocesses 2\ncounts 1 1\nmessage 0.0 1.1\nend\n";
        let err = read_trace(send0).unwrap_err();
        assert!(
            err.to_string().contains("event index must be >= 1"),
            "{err}"
        );
        assert!(err.to_string().contains("line 4"), "{err}");
        // Receive-position `q.0`.
        let recv0 = "gpd-trace 1\nprocesses 2\ncounts 1 1\nmessage 0.1 1.0\nend\n";
        let err = read_trace(recv0).unwrap_err();
        assert!(
            err.to_string().contains("event index must be >= 1"),
            "{err}"
        );
        assert!(err.to_string().contains("1.0"), "{err}");
    }

    #[test]
    fn rejects_cyclic_messages() {
        let text = "gpd-trace 1\nprocesses 2\ncounts 2 2\nmessage 0.2 1.1\nmessage 1.2 0.1\nend\n";
        assert!(read_trace(text).is_err());
    }
}
