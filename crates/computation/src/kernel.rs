//! Word-parallel row kernels for the flat clock matrix.
//!
//! The hot predicates of every detector — frontier dominance
//! (`is_consistent`), clock-vs-frontier enablement (`cut_successors`,
//! the lattice sweep, the §4 exact-sum walk), and `Cut::leq` — reduce to
//! one pass over a contiguous `u32` row compared against a frontier
//! slice. These helpers keep that pass *branch-free*: instead of
//! short-circuiting `all(..)` chains, they accumulate `(a > b) as u32`
//! across the whole row with `|=` / `+=`, which LLVM autovectorizes into
//! packed compares (SSE/AVX `pcmpgtd` + movemask-style reductions). For
//! the short rows typical of a computation (`n` processes, usually ≤ 64)
//! a predictable straight-line loop beats a branchy early exit: there is
//! no misprediction, one load stream, and the row is a single cache line
//! or two.

/// Whether `row ≤ bound` componentwise (no component of `row` exceeds
/// `bound`). Branch-free over the whole row.
#[inline]
pub(crate) fn dominated(row: &[u32], bound: &[u32]) -> bool {
    debug_assert_eq!(row.len(), bound.len(), "row/bound length mismatch");
    let mut exceeds = 0u32;
    for (&a, &b) in row.iter().zip(bound) {
        exceeds |= u32::from(a > b);
    }
    exceeds == 0
}

/// The number of components where `row` exceeds `bound`. Branch-free.
///
/// Used for enablement: the next event `e` on process `p` beyond a
/// consistent frontier `f` has `vc(e)[p] = f[p] + 1`, so its own
/// component always counts as one violation. `e` is *enabled* (its
/// execution keeps the cut consistent) iff that is the only one:
/// `violations(vc(e), f) == 1`.
#[inline]
pub(crate) fn violations(row: &[u32], bound: &[u32]) -> u32 {
    debug_assert_eq!(row.len(), bound.len(), "row/bound length mismatch");
    let mut count = 0u32;
    for (&a, &b) in row.iter().zip(bound) {
        count += u32::from(a > b);
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dominated_matches_pointwise_leq() {
        assert!(dominated(&[1, 2, 3], &[1, 2, 3]));
        assert!(dominated(&[0, 0, 0], &[1, 2, 3]));
        assert!(!dominated(&[1, 3, 3], &[1, 2, 3]));
        assert!(!dominated(&[2, 0], &[1, 9]));
        assert!(dominated(&[], &[]));
    }

    #[test]
    fn violations_counts_exceeding_components() {
        assert_eq!(violations(&[1, 2, 3], &[1, 2, 3]), 0);
        assert_eq!(violations(&[2, 2, 3], &[1, 2, 3]), 1);
        assert_eq!(violations(&[2, 3, 4], &[1, 2, 3]), 3);
        assert_eq!(violations(&[], &[]), 0);
    }

    #[test]
    fn violations_zero_iff_dominated() {
        let rows: &[&[u32]] = &[&[0, 5, 2], &[3, 3, 3], &[4, 0, 0], &[3, 5, 9]];
        let bound = &[3, 5, 2];
        for row in rows {
            assert_eq!(violations(row, bound) == 0, dominated(row, bound));
        }
    }
}
