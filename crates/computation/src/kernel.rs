//! Word-parallel row kernels for the flat clock matrix.
//!
//! The hot predicates of every detector — frontier dominance
//! (`is_consistent`), clock-vs-frontier enablement (`cut_successors`,
//! the lattice sweep, the §4 exact-sum walk), and `Cut::leq` — reduce to
//! one pass over a contiguous `u32` row compared against a frontier
//! slice. These helpers keep that pass *branch-free*: instead of
//! short-circuiting `all(..)` chains, they accumulate `(a > b) as u32`
//! across the whole row with `|=` / `+=`, which LLVM autovectorizes into
//! packed compares (SSE/AVX `pcmpgtd` + movemask-style reductions). For
//! the short rows typical of a computation (`n` processes, usually ≤ 64)
//! a predictable straight-line loop beats a branchy early exit: there is
//! no misprediction, one load stream, and the row is a single cache line
//! or two.
//!
//! The *batched* variants ([`dominated_batch`], [`violations_batch`])
//! answer the same question for up to [`BATCH`] rows against one shared
//! bound in a single column-major pass: for each bound component `b[j]`
//! every row's component `j` is compared and folded into that row's
//! private accumulator. The bound is loaded once per column instead of
//! once per row, the `K ≤ 8` accumulator updates per column are
//! independent (good ILP / vectorization fodder), and the dispatch
//! monomorphizes on the exact batch width so the inner loop is fully
//! unrolled straight-line code. Successor generation and the lattice
//! sweeps route through these, feeding all pending-event rows of one
//! frontier through a single pass.

/// Maximum rows per batched kernel call. 8 keeps the accumulator file
/// comfortably in registers on x86-64 (16 architectural) and matches the
/// fan-out of typical frontiers; larger batches showed no further win.
pub const BATCH: usize = 8;

/// Whether `row ≤ bound` componentwise (no component of `row` exceeds
/// `bound`). Branch-free over the whole row.
#[inline]
pub fn dominated(row: &[u32], bound: &[u32]) -> bool {
    debug_assert_eq!(row.len(), bound.len(), "row/bound length mismatch");
    let mut exceeds = 0u32;
    for (&a, &b) in row.iter().zip(bound) {
        exceeds |= u32::from(a > b);
    }
    exceeds == 0
}

/// The number of components where `row` exceeds `bound`. Branch-free.
///
/// Used for enablement: the next event `e` on process `p` beyond a
/// consistent frontier `f` has `vc(e)[p] = f[p] + 1`, so its own
/// component always counts as one violation. `e` is *enabled* (its
/// execution keeps the cut consistent) iff that is the only one:
/// `violations(vc(e), f) == 1`.
#[inline]
pub fn violations(row: &[u32], bound: &[u32]) -> u32 {
    debug_assert_eq!(row.len(), bound.len(), "row/bound length mismatch");
    let mut count = 0u32;
    for (&a, &b) in row.iter().zip(bound) {
        count += u32::from(a > b);
    }
    count
}

/// Column-major violation counts for a fixed batch width: one pass over
/// `bound`, `K` independent accumulators. Monomorphizing on `K` unrolls
/// the inner loop completely.
#[inline]
fn violations_fixed<const K: usize>(rows: &[&[u32]; K], bound: &[u32]) -> [u32; K] {
    for row in rows.iter() {
        assert_eq!(row.len(), bound.len(), "row/bound length mismatch");
    }
    let mut acc = [0u32; K];
    for (j, &b) in bound.iter().enumerate() {
        for k in 0..K {
            acc[k] += u32::from(rows[k][j] > b);
        }
    }
    acc
}

/// Counts, for each of up to [`BATCH`] rows, the components exceeding the
/// shared `bound` — the batched form of [`violations`]. Writes one count
/// per row into `out` and makes a single column-major pass over the
/// bound, so `K` candidate rows cost one bound traversal instead of `K`.
///
/// Results are bit-for-bit identical to `K` scalar [`violations`] calls
/// (both sum the same `u32::from(a > b)` terms; addition order differs
/// but `u32` addition is associative and commutative, and counts are
/// bounded by the row length — no overflow).
///
/// # Panics
///
/// Panics if `rows.len() != out.len()`, if the batch exceeds [`BATCH`],
/// or if any row's length differs from the bound's.
#[inline]
pub fn violations_batch(rows: &[&[u32]], bound: &[u32], out: &mut [u32]) {
    assert_eq!(rows.len(), out.len(), "rows/out length mismatch");
    assert!(
        rows.len() <= BATCH,
        "batch of {} exceeds {BATCH}",
        rows.len()
    );
    macro_rules! fixed {
        ($k:literal) => {{
            let rows: &[&[u32]; $k] = rows.try_into().expect("length matched");
            out.copy_from_slice(&violations_fixed::<$k>(rows, bound));
        }};
    }
    match rows.len() {
        0 => {}
        1 => fixed!(1),
        2 => fixed!(2),
        3 => fixed!(3),
        4 => fixed!(4),
        5 => fixed!(5),
        6 => fixed!(6),
        7 => fixed!(7),
        _ => fixed!(8),
    }
}

/// Batched form of [`dominated`]: for each of up to [`BATCH`] rows,
/// whether the row is componentwise ≤ the shared `bound`, in one
/// column-major pass. `out[k]` is exactly `dominated(rows[k], bound)`.
///
/// Unlike the scalar call sites' short-circuiting `all(..)` chains, the
/// batch always scans every row to completion — the trade is one
/// branch-free pass (no mispredictions, one bound load stream) against
/// the occasional saved suffix.
///
/// # Panics
///
/// Panics if `rows.len() != out.len()`, if the batch exceeds [`BATCH`],
/// or if any row's length differs from the bound's.
#[inline]
pub fn dominated_batch(rows: &[&[u32]], bound: &[u32], out: &mut [bool]) {
    assert_eq!(rows.len(), out.len(), "rows/out length mismatch");
    assert!(
        rows.len() <= BATCH,
        "batch of {} exceeds {BATCH}",
        rows.len()
    );
    macro_rules! fixed {
        ($k:literal) => {{
            let rows: &[&[u32]; $k] = rows.try_into().expect("length matched");
            for row in rows.iter() {
                assert_eq!(row.len(), bound.len(), "row/bound length mismatch");
            }
            let mut acc = [0u32; $k];
            for (j, &b) in bound.iter().enumerate() {
                for k in 0..$k {
                    acc[k] |= u32::from(rows[k][j] > b);
                }
            }
            for (o, a) in out.iter_mut().zip(acc) {
                *o = a == 0;
            }
        }};
    }
    match rows.len() {
        0 => {}
        1 => fixed!(1),
        2 => fixed!(2),
        3 => fixed!(3),
        4 => fixed!(4),
        5 => fixed!(5),
        6 => fixed!(6),
        7 => fixed!(7),
        _ => fixed!(8),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dominated_matches_pointwise_leq() {
        assert!(dominated(&[1, 2, 3], &[1, 2, 3]));
        assert!(dominated(&[0, 0, 0], &[1, 2, 3]));
        assert!(!dominated(&[1, 3, 3], &[1, 2, 3]));
        assert!(!dominated(&[2, 0], &[1, 9]));
        assert!(dominated(&[], &[]));
    }

    #[test]
    fn violations_counts_exceeding_components() {
        assert_eq!(violations(&[1, 2, 3], &[1, 2, 3]), 0);
        assert_eq!(violations(&[2, 2, 3], &[1, 2, 3]), 1);
        assert_eq!(violations(&[2, 3, 4], &[1, 2, 3]), 3);
        assert_eq!(violations(&[], &[]), 0);
    }

    #[test]
    fn violations_zero_iff_dominated() {
        let rows: &[&[u32]] = &[&[0, 5, 2], &[3, 3, 3], &[4, 0, 0], &[3, 5, 9]];
        let bound = &[3, 5, 2];
        for row in rows {
            assert_eq!(violations(row, bound) == 0, dominated(row, bound));
        }
    }

    #[test]
    fn batched_kernels_match_scalar_on_every_width() {
        let matrix: Vec<Vec<u32>> = (0..BATCH as u32)
            .map(|k| vec![k, 4_u32.saturating_sub(k), k * 3, 2])
            .collect();
        let bound = [3, 2, 9, 2];
        for width in 0..=BATCH {
            let rows: Vec<&[u32]> = matrix[..width].iter().map(Vec::as_slice).collect();
            let mut viol = vec![u32::MAX; width];
            let mut dom = vec![false; width];
            violations_batch(&rows, &bound, &mut viol);
            dominated_batch(&rows, &bound, &mut dom);
            for k in 0..width {
                assert_eq!(
                    viol[k],
                    violations(rows[k], &bound),
                    "width {width} row {k}"
                );
                assert_eq!(dom[k], dominated(rows[k], &bound), "width {width} row {k}");
            }
        }
    }

    #[test]
    fn batched_kernels_accept_empty_rows_and_empty_batches() {
        violations_batch(&[], &[1, 2], &mut []);
        let rows: [&[u32]; 3] = [&[], &[], &[]];
        let mut viol = [9u32; 3];
        let mut dom = [false; 3];
        violations_batch(&rows, &[], &mut viol);
        dominated_batch(&rows, &[], &mut dom);
        assert_eq!(viol, [0, 0, 0]);
        assert_eq!(dom, [true, true, true]);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn oversized_batch_is_rejected() {
        let row: &[u32] = &[1];
        let rows = [row; BATCH + 1];
        violations_batch(&rows, &[1], &mut [0; BATCH + 1]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn ragged_row_is_rejected() {
        let rows: [&[u32]; 2] = [&[1, 2], &[1]];
        violations_batch(&rows, &[1, 2], &mut [0; 2]);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;
        use rand::{Rng, SeedableRng};

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(192))]

            /// Differential pin: on arbitrary clock matrices (arbitrary
            /// row counts 0..=BATCH including ragged final batches of a
            /// larger candidate set, arbitrary row widths, arbitrary
            /// entries) the batched kernels agree exactly with the scalar
            /// kernels applied row by row.
            #[test]
            fn batched_matches_scalar_kernels(
                seed in any::<u64>(),
                width in 0usize..20,
                candidates in 0usize..=2 * BATCH + 3,
            ) {
                let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
                let bound: Vec<u32> = (0..width).map(|_| rng.gen_range(0..6)).collect();
                let matrix: Vec<Vec<u32>> = (0..candidates)
                    .map(|_| (0..width).map(|_| rng.gen_range(0..6)).collect())
                    .collect();
                // Walk the candidate set in BATCH-sized groups with a
                // ragged tail, exactly as the routing call sites do.
                for group in matrix.chunks(BATCH.max(1)) {
                    let rows: Vec<&[u32]> = group.iter().map(Vec::as_slice).collect();
                    let mut viol = vec![u32::MAX; rows.len()];
                    let mut dom = vec![false; rows.len()];
                    violations_batch(&rows, &bound, &mut viol);
                    dominated_batch(&rows, &bound, &mut dom);
                    for (k, row) in rows.iter().enumerate() {
                        prop_assert_eq!(viol[k], violations(row, &bound));
                        prop_assert_eq!(dom[k], dominated(row, &bound));
                        prop_assert_eq!(dom[k], viol[k] == 0);
                    }
                }
            }
        }
    }
}
