//! Meta-processes: the §3.2 machinery for the special-case algorithm.
//!
//! A singular k-CNF predicate partitions (some of) the processes into
//! *groups*, one per clause. Each group is viewed as a **meta-process**
//! whose events are only partially ordered. When all receive events (or
//! all send events) on every meta-process are totally ordered, the paper
//! extends the causal order so every meta-process's events become totally
//! ordered in a linearization satisfying *Property P*, which is what makes
//! the left-to-right scan of the special-case algorithm sound.

use gpd_order::Dag;

use crate::computation::Computation;
use crate::event::{EventId, ProcessId};

/// Whether the §3.2 special case requires receives or sends to be totally
/// ordered per meta-process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OrderingKind {
    /// All receive events on every meta-process are totally ordered.
    ReceiveOrdered,
    /// All send events on every meta-process are totally ordered.
    SendOrdered,
}

/// A collection of disjoint process groups (meta-processes).
///
/// # Example
///
/// ```
/// use gpd_computation::{ComputationBuilder, Grouping};
///
/// let mut b = ComputationBuilder::new(4);
/// b.append(0);
/// b.append(2);
/// let comp = b.build().unwrap();
///
/// let g = Grouping::new(vec![vec![0.into(), 1.into()], vec![2.into(), 3.into()]]);
/// assert_eq!(g.group_of(0.into()), Some(0));
/// assert_eq!(g.events_of_group(&comp, 1).len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Grouping {
    groups: Vec<Vec<ProcessId>>,
}

impl Grouping {
    /// Creates a grouping.
    ///
    /// # Panics
    ///
    /// Panics if a process appears in two groups or a group is empty.
    pub fn new(groups: Vec<Vec<ProcessId>>) -> Self {
        let mut seen = std::collections::HashSet::new();
        for group in &groups {
            assert!(!group.is_empty(), "empty group");
            for &p in group {
                assert!(seen.insert(p), "process {p} appears in two groups");
            }
        }
        Grouping { groups }
    }

    /// The number of groups.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// The processes of group `g`.
    pub fn group(&self, g: usize) -> &[ProcessId] {
        &self.groups[g]
    }

    /// The groups.
    pub fn groups(&self) -> &[Vec<ProcessId>] {
        &self.groups
    }

    /// The group containing `p`, if any.
    pub fn group_of(&self, p: ProcessId) -> Option<usize> {
        self.groups.iter().position(|g| g.contains(&p))
    }

    /// All events of group `g`'s processes, in event-id order.
    pub fn events_of_group(&self, comp: &Computation, g: usize) -> Vec<EventId> {
        let mut events: Vec<EventId> = self.groups[g]
            .iter()
            .flat_map(|&p| comp.events_of(p).iter().copied())
            .collect();
        events.sort_unstable();
        events
    }

    /// Whether the computation is receive-ordered (or send-ordered) with
    /// respect to this grouping: within every group, the events of the
    /// given kind are pairwise comparable under happened-before.
    pub fn is_ordered(&self, comp: &Computation, kind: OrderingKind) -> bool {
        (0..self.groups.len()).all(|g| {
            let special: Vec<EventId> = self
                .events_of_group(comp, g)
                .into_iter()
                .filter(|&e| match kind {
                    OrderingKind::ReceiveOrdered => comp.kind(e).is_receive(),
                    OrderingKind::SendOrdered => comp.kind(e).is_send(),
                })
                .collect();
            special.iter().enumerate().all(|(i, &e)| {
                special[i + 1..]
                    .iter()
                    .all(|&f| comp.leq(e, f) || comp.leq(f, e))
            })
        })
    }

    /// The §3.2 order extension followed by linearization.
    ///
    /// For [`OrderingKind::ReceiveOrdered`]: for every pair of independent
    /// events `e`, `f` on the same meta-process where `f` is a receive, an
    /// arrow `e → f` is added (receives are pushed late). For
    /// [`OrderingKind::SendOrdered`], dually, `f → e` is added when `f` is
    /// a send (sends come early). The paper proves the added arrows create
    /// no cycles when the computation is ordered for `kind`; the extended
    /// order is then linearized into a total order satisfying Property P.
    ///
    /// # Errors
    ///
    /// Returns an error if the extension is cyclic — which happens exactly
    /// when the precondition fails, e.g. the computation is not actually
    /// receive-ordered for this grouping.
    pub fn linearize(
        &self,
        comp: &Computation,
        kind: OrderingKind,
    ) -> Result<LinearizedOrder, NotOrderedError> {
        let mut dag = Dag::new(comp.event_count());
        for p in 0..comp.process_count() {
            for w in comp.events_of(p).windows(2) {
                dag.add_edge(w[0].index(), w[1].index());
            }
        }
        for &(s, r) in comp.messages() {
            dag.add_edge(s.index(), r.index());
        }
        for g in 0..self.groups.len() {
            let events = self.events_of_group(comp, g);
            for (i, &e) in events.iter().enumerate() {
                for &f in &events[i + 1..] {
                    if !comp.concurrent(e, f) {
                        continue;
                    }
                    match kind {
                        OrderingKind::ReceiveOrdered => {
                            // Push receives late: non-receive → receive.
                            if comp.kind(f).is_receive() && !comp.kind(e).is_receive() {
                                dag.add_edge(e.index(), f.index());
                            } else if comp.kind(e).is_receive() && !comp.kind(f).is_receive() {
                                dag.add_edge(f.index(), e.index());
                            }
                        }
                        OrderingKind::SendOrdered => {
                            // Pull sends early: send → non-send.
                            if comp.kind(f).is_send() && !comp.kind(e).is_send() {
                                dag.add_edge(f.index(), e.index());
                            } else if comp.kind(e).is_send() && !comp.kind(f).is_send() {
                                dag.add_edge(e.index(), f.index());
                            }
                        }
                    }
                }
            }
        }
        let order: Vec<EventId> = dag
            .topo_sort()
            .map_err(|_| NotOrderedError { kind })?
            .into_iter()
            .map(EventId::new)
            .collect();
        let mut pos = vec![0u32; comp.event_count()];
        for (i, &e) in order.iter().enumerate() {
            pos[e.index()] = i as u32;
        }
        Ok(LinearizedOrder { order, pos })
    }
}

/// Error from [`Grouping::linearize`]: the order extension was cyclic, so
/// the computation is not ordered as required for the special case.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NotOrderedError {
    kind: OrderingKind,
}

impl std::fmt::Display for NotOrderedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "order extension is cyclic; the computation is not {:?} for this grouping",
            self.kind
        )
    }
}

impl std::error::Error for NotOrderedError {}

/// A total order on all events extending the causal order and, per group,
/// the §3.2 extension — the order the special-case scan walks.
#[derive(Debug, Clone)]
pub struct LinearizedOrder {
    order: Vec<EventId>,
    pos: Vec<u32>,
}

impl LinearizedOrder {
    /// The events in linear order.
    pub fn order(&self) -> &[EventId] {
        &self.order
    }

    /// The position of `e` in the linear order.
    pub fn position(&self, e: EventId) -> usize {
        self.pos[e.index()] as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ComputationBuilder;

    /// Two groups of two processes; receives in each group land on a
    /// single process, so the computation is receive-ordered.
    fn receive_ordered_sample() -> Computation {
        let mut b = ComputationBuilder::new(4);
        // Group 0 = {p0, p1}; p1 receives everything.
        let s0 = b.append(0);
        let r0 = b.append(1);
        let r1 = b.append(1);
        // Group 1 = {p2, p3}; p3 receives.
        let s1 = b.append(2);
        let r2 = b.append(3);
        b.message(s0, r0).unwrap();
        b.message(s1, r1).unwrap();
        b.message(s0, r2).unwrap();
        b.build().unwrap()
    }

    fn grouping() -> Grouping {
        Grouping::new(vec![vec![0.into(), 1.into()], vec![2.into(), 3.into()]])
    }

    #[test]
    fn group_accessors() {
        let g = grouping();
        assert_eq!(g.group_count(), 2);
        assert_eq!(g.group(1), &[ProcessId::new(2), ProcessId::new(3)]);
        assert_eq!(g.group_of(1.into()), Some(0));
        assert_eq!(g.group_of(3.into()), Some(1));
        let g2 = Grouping::new(vec![vec![0.into()]]);
        assert_eq!(g2.group_of(1.into()), None);
    }

    #[test]
    #[should_panic(expected = "two groups")]
    fn overlapping_groups_panic() {
        Grouping::new(vec![vec![0.into()], vec![0.into()]]);
    }

    #[test]
    #[should_panic(expected = "empty group")]
    fn empty_group_panics() {
        Grouping::new(vec![vec![]]);
    }

    #[test]
    fn receive_ordered_detected() {
        let comp = receive_ordered_sample();
        let g = grouping();
        assert!(g.is_ordered(&comp, OrderingKind::ReceiveOrdered));
    }

    #[test]
    fn not_receive_ordered_when_concurrent_receives() {
        // Group {p0, p1} where both receive concurrently from outside.
        let mut b = ComputationBuilder::new(3);
        let r0 = b.append(0);
        let r1 = b.append(1);
        let s0 = b.append(2);
        let s1 = b.append(2);
        b.message(s0, r0).unwrap();
        b.message(s1, r1).unwrap();
        let comp = b.build().unwrap();
        let g = Grouping::new(vec![vec![0.into(), 1.into()]]);
        assert!(!g.is_ordered(&comp, OrderingKind::ReceiveOrdered));
        // But it is send-ordered: the group has no send events at all.
        assert!(g.is_ordered(&comp, OrderingKind::SendOrdered));
    }

    #[test]
    fn linearization_extends_causal_order() {
        let comp = receive_ordered_sample();
        let g = grouping();
        let lin = g.linearize(&comp, OrderingKind::ReceiveOrdered).unwrap();
        assert_eq!(lin.order().len(), comp.event_count());
        for e in comp.events() {
            for f in comp.events() {
                if comp.happened_before(e, f) {
                    assert!(lin.position(e) < lin.position(f));
                }
            }
        }
    }

    #[test]
    fn linearization_orders_events_within_meta_process() {
        // In the receive-ordered extension, each meta-process's events
        // must be totally ordered by (causal ∪ added) edges. Verify via
        // Property P's consequence: positions within a group are coherent
        // with the extension — every independent (non-receive, receive)
        // pair in a group is ordered non-receive first.
        let comp = receive_ordered_sample();
        let g = grouping();
        let lin = g.linearize(&comp, OrderingKind::ReceiveOrdered).unwrap();
        for gi in 0..g.group_count() {
            let events = g.events_of_group(&comp, gi);
            for (i, &e) in events.iter().enumerate() {
                for &f in &events[i + 1..] {
                    if comp.concurrent(e, f)
                        && comp.kind(f).is_receive()
                        && !comp.kind(e).is_receive()
                    {
                        assert!(lin.position(e) < lin.position(f));
                    }
                }
            }
        }
    }

    #[test]
    fn events_of_group_collects_all() {
        let comp = receive_ordered_sample();
        let g = grouping();
        assert_eq!(g.events_of_group(&comp, 0).len(), 3);
        assert_eq!(g.events_of_group(&comp, 1).len(), 2);
    }
}
