//! Breadth-first enumeration of the lattice of consistent cuts.

use std::collections::{HashSet, VecDeque};

use crate::computation::Computation;
use crate::cut::Cut;
use crate::packed::{FrontierPacker, PackedFrontier};

/// Iterator over every consistent cut of a computation, in breadth-first
/// order from the initial cut (so cuts are yielded in nondecreasing event
/// count — one lattice *level* after another).
///
/// The lattice is exponential in general: this iterator is the
/// Cooper–Marzullo-style baseline that the paper's polynomial algorithms
/// are measured against, and the exact oracle the test suite validates
/// them with.
///
/// # Example
///
/// ```
/// use gpd_computation::ComputationBuilder;
///
/// let mut b = ComputationBuilder::new(2);
/// b.append(0);
/// b.append(1);
/// let comp = b.build().unwrap();
/// // Each process independently contributes states {0, 1}: 2 × 2 cuts.
/// assert_eq!(comp.consistent_cuts().count(), 4);
/// ```
pub struct CutIter<'a> {
    comp: &'a Computation,
    queue: VecDeque<Cut>,
    // Visited cuts are remembered packed (a few pre-hashed u64 words per
    // frontier) instead of as Vec<u32> keys: the visited set is probed
    // once per lattice edge, the hottest path of the sweep.
    packer: FrontierPacker,
    seen: HashSet<PackedFrontier>,
}

impl<'a> CutIter<'a> {
    pub(crate) fn new(comp: &'a Computation) -> Self {
        let initial = comp.initial_cut();
        let packer = FrontierPacker::new(comp);
        let mut seen = HashSet::new();
        seen.insert(packer.pack_cut(&initial));
        CutIter {
            comp,
            queue: VecDeque::from([initial]),
            packer,
            seen,
        }
    }
}

impl Iterator for CutIter<'_> {
    type Item = Cut;

    fn next(&mut self) -> Option<Cut> {
        let cut = self.queue.pop_front()?;
        for next in self.comp.cut_successors(&cut) {
            if self.seen.insert(self.packer.pack_cut(&next)) {
                self.queue.push_back(next);
            }
        }
        Some(cut)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ComputationBuilder;

    fn chain_processes(lens: &[usize]) -> Computation {
        let mut b = ComputationBuilder::new(lens.len());
        for (p, &len) in lens.iter().enumerate() {
            for _ in 0..len {
                b.append(p);
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn independent_processes_multiply() {
        // (2+1)(3+1) = 12 cuts.
        assert_eq!(chain_processes(&[2, 3]).consistent_cuts().count(), 12);
    }

    #[test]
    fn single_process_chain() {
        assert_eq!(chain_processes(&[5]).consistent_cuts().count(), 6);
    }

    #[test]
    fn empty_computation_has_one_cut() {
        assert_eq!(chain_processes(&[]).consistent_cuts().count(), 1);
        assert_eq!(chain_processes(&[0, 0]).consistent_cuts().count(), 1);
    }

    #[test]
    fn message_constrains_lattice() {
        // p0: s, p1: r, message s → r: cuts are {[],[s],[s r]} by
        // frontier: [0,0],[1,0],[1,1] — [0,1] is inconsistent.
        let mut b = ComputationBuilder::new(2);
        let s = b.append(0);
        let r = b.append(1);
        b.message(s, r).unwrap();
        let comp = b.build().unwrap();
        let cuts: Vec<Cut> = comp.consistent_cuts().collect();
        assert_eq!(cuts.len(), 3);
        assert!(!cuts.contains(&Cut::from_frontier(vec![0, 1])));
    }

    #[test]
    fn all_yielded_cuts_are_consistent_and_unique() {
        let mut b = ComputationBuilder::new(3);
        let e: Vec<_> = (0..9).map(|i| b.append(i % 3)).collect();
        b.message(e[0], e[4]).unwrap();
        b.message(e[4], e[8]).unwrap();
        b.message(e[2], e[6]).unwrap();
        let comp = b.build().unwrap();
        let cuts: Vec<Cut> = comp.consistent_cuts().collect();
        let set: HashSet<_> = cuts.iter().cloned().collect();
        assert_eq!(set.len(), cuts.len());
        for cut in &cuts {
            assert!(comp.is_consistent(cut));
        }
        // Exhaustive cross-check: every consistent frontier is yielded.
        let mut brute = 0;
        for a in 0..=3u32 {
            for b2 in 0..=3u32 {
                for c in 0..=3u32 {
                    if comp.is_consistent(&Cut::from_frontier(vec![a, b2, c])) {
                        brute += 1;
                    }
                }
            }
        }
        assert_eq!(cuts.len(), brute);
    }

    #[test]
    fn bfs_yields_levels_in_order() {
        let comp = chain_processes(&[2, 2]);
        let counts: Vec<usize> = comp.consistent_cuts().map(|c| c.event_count()).collect();
        let mut sorted = counts.clone();
        sorted.sort_unstable();
        assert_eq!(counts, sorted, "BFS must yield nondecreasing levels");
    }
}
