//! Breadth-first enumeration of the lattice of consistent cuts.

use std::collections::{HashSet, VecDeque};

use crate::computation::Computation;
use crate::cut::Cut;
use crate::packed::{FrontierPacker, PackedFrontier};

/// Iterator over every consistent cut of a computation, in breadth-first
/// order from the initial cut (so cuts are yielded in nondecreasing event
/// count — one lattice *level* after another).
///
/// The lattice is exponential in general: this iterator is the
/// Cooper–Marzullo-style baseline that the paper's polynomial algorithms
/// are measured against, and the exact oracle the test suite validates
/// them with.
///
/// # Example
///
/// ```
/// use gpd_computation::ComputationBuilder;
///
/// let mut b = ComputationBuilder::new(2);
/// b.append(0);
/// b.append(1);
/// let comp = b.build().unwrap();
/// // Each process independently contributes states {0, 1}: 2 × 2 cuts.
/// assert_eq!(comp.consistent_cuts().count(), 4);
/// ```
pub struct CutIter<'a> {
    comp: &'a Computation,
    // Cuts of the current lattice level still to be yielded, in
    // generation order, and the next level being accumulated. The walk
    // is level-synchronous so the visited set below can stay small.
    level: VecDeque<Cut>,
    next_level: Vec<Cut>,
    // Visited cuts are remembered packed (a few pre-hashed u64 words per
    // frontier) instead of as Vec<u32> keys: the visited set is probed
    // once per lattice edge, the hottest path of the sweep. The lattice
    // is graded — every successor of a k-event cut has k+1 events — so
    // duplicates only arise within the level being built and the set is
    // cleared at each level boundary, keeping it one level wide (and
    // cache-resident) instead of history-wide.
    packer: FrontierPacker,
    seen: HashSet<PackedFrontier>,
    // Scratch frontier for candidate successors: each expansion bumps
    // one entry in place, packs, probes the visited set, and only
    // allocates a `Cut` for genuinely new cuts. Duplicate lattice edges
    // (the common case — every cut has up to n predecessors) cost no
    // allocation at all.
    scratch: Vec<u32>,
}

impl<'a> CutIter<'a> {
    pub(crate) fn new(comp: &'a Computation) -> Self {
        CutIter {
            comp,
            level: VecDeque::from([comp.initial_cut()]),
            next_level: Vec::new(),
            packer: FrontierPacker::new(comp),
            seen: HashSet::new(),
            scratch: vec![0; comp.process_count()],
        }
    }
}

impl Iterator for CutIter<'_> {
    type Item = Cut;

    fn next(&mut self) -> Option<Cut> {
        if self.level.is_empty() {
            if self.next_level.is_empty() {
                return None;
            }
            self.level.extend(self.next_level.drain(..));
            self.seen.clear();
        }
        let cut = self.level.pop_front()?;
        let comp = self.comp;
        let CutIter {
            packer,
            seen,
            next_level,
            scratch,
            ..
        } = self;
        scratch.clear();
        scratch.extend_from_slice(cut.frontier());
        comp.for_each_enabled(&cut, |p| {
            scratch[p] += 1;
            if seen.insert(packer.pack(scratch)) {
                next_level.push(Cut::from_frontier(scratch.clone()));
            }
            scratch[p] -= 1;
        });
        Some(cut)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ComputationBuilder;

    fn chain_processes(lens: &[usize]) -> Computation {
        let mut b = ComputationBuilder::new(lens.len());
        for (p, &len) in lens.iter().enumerate() {
            for _ in 0..len {
                b.append(p);
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn independent_processes_multiply() {
        // (2+1)(3+1) = 12 cuts.
        assert_eq!(chain_processes(&[2, 3]).consistent_cuts().count(), 12);
    }

    #[test]
    fn single_process_chain() {
        assert_eq!(chain_processes(&[5]).consistent_cuts().count(), 6);
    }

    #[test]
    fn empty_computation_has_one_cut() {
        assert_eq!(chain_processes(&[]).consistent_cuts().count(), 1);
        assert_eq!(chain_processes(&[0, 0]).consistent_cuts().count(), 1);
    }

    #[test]
    fn message_constrains_lattice() {
        // p0: s, p1: r, message s → r: cuts are {[],[s],[s r]} by
        // frontier: [0,0],[1,0],[1,1] — [0,1] is inconsistent.
        let mut b = ComputationBuilder::new(2);
        let s = b.append(0);
        let r = b.append(1);
        b.message(s, r).unwrap();
        let comp = b.build().unwrap();
        let cuts: Vec<Cut> = comp.consistent_cuts().collect();
        assert_eq!(cuts.len(), 3);
        assert!(!cuts.contains(&Cut::from_frontier(vec![0, 1])));
    }

    #[test]
    fn all_yielded_cuts_are_consistent_and_unique() {
        let mut b = ComputationBuilder::new(3);
        let e: Vec<_> = (0..9).map(|i| b.append(i % 3)).collect();
        b.message(e[0], e[4]).unwrap();
        b.message(e[4], e[8]).unwrap();
        b.message(e[2], e[6]).unwrap();
        let comp = b.build().unwrap();
        let cuts: Vec<Cut> = comp.consistent_cuts().collect();
        let set: HashSet<_> = cuts.iter().cloned().collect();
        assert_eq!(set.len(), cuts.len());
        for cut in &cuts {
            assert!(comp.is_consistent(cut));
        }
        // Exhaustive cross-check: every consistent frontier is yielded.
        let mut brute = 0;
        for a in 0..=3u32 {
            for b2 in 0..=3u32 {
                for c in 0..=3u32 {
                    if comp.is_consistent(&Cut::from_frontier(vec![a, b2, c])) {
                        brute += 1;
                    }
                }
            }
        }
        assert_eq!(cuts.len(), brute);
    }

    #[test]
    fn bfs_yields_levels_in_order() {
        let comp = chain_processes(&[2, 2]);
        let counts: Vec<usize> = comp.consistent_cuts().map(|c| c.event_count()).collect();
        let mut sorted = counts.clone();
        sorted.sort_unstable();
        assert_eq!(counts, sorted, "BFS must yield nondecreasing levels");
    }
}
