//! Packed frontier vectors: compact, pre-hashed visited-set keys.
//!
//! The lattice enumerators probe visited sets with `Cut`s, which hash a
//! heap-allocated `Vec<u32>` word by word on every probe. For one fixed
//! computation a frontier entry for process `p` only ranges over
//! `0..=events_on(p)`, so the whole frontier packs into a few `u64`
//! words at a uniform bit width (the same word-packing trick as
//! `gpd_order::BitSet`, generalized from 1 bit to ⌈log₂(mₚ+1)⌉ bits per
//! entry). A [`FrontierPacker`] is built once per computation;
//! [`PackedFrontier`]s carry their FNV-1a hash precomputed, so set
//! probes hash a single `u64` and compare a short word slice.

use crate::computation::Computation;
use crate::cut::Cut;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// FNV-1a over a stream of `u64` words — the one frontier hash shared by
/// [`Cut::fnv_hash`], [`PackedFrontier`], and the sharded parallel sweep
/// in the `gpd` crate (which previously hand-rolled it).
pub fn fnv1a(words: impl IntoIterator<Item = u64>) -> u64 {
    let mut h = FNV_OFFSET;
    for w in words {
        h ^= w;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Packs the frontier vectors of one computation into dense `u64` words.
///
/// The packing is injective over that computation's valid frontiers
/// (every entry fits its uniform bit width), so packed equality is
/// frontier equality.
///
/// # Example
///
/// ```
/// use gpd_computation::{ComputationBuilder, FrontierPacker};
///
/// let mut b = ComputationBuilder::new(2);
/// b.append(0);
/// b.append(0);
/// b.append(1);
/// let comp = b.build().unwrap();
/// let packer = FrontierPacker::new(&comp);
/// let a = packer.pack(&[2, 1]);
/// let b2 = packer.pack(&[2, 1]);
/// assert_eq!(a, b2);
/// assert_eq!(a.hash_value(), b2.hash_value());
/// assert_ne!(a, packer.pack(&[1, 1]));
/// ```
#[derive(Debug, Clone)]
pub struct FrontierPacker {
    /// Bits per frontier entry (enough for the largest `events_on`).
    bits: usize,
    /// Frontier length (process count).
    len: usize,
    /// Packed words per frontier.
    words: usize,
}

impl FrontierPacker {
    /// Sizes the packing for `comp`'s frontiers.
    pub fn new(comp: &Computation) -> Self {
        let max = (0..comp.process_count())
            .map(|p| comp.events_on(p) as u32)
            .max()
            .unwrap_or(0);
        // Even all-zero frontiers take one bit per entry, keeping the
        // packing injective by construction rather than by accident.
        let bits = (32 - max.leading_zeros()).max(1) as usize;
        let len = comp.process_count();
        FrontierPacker {
            bits,
            len,
            words: (len * bits).div_ceil(64),
        }
    }

    /// Packs a frontier vector.
    ///
    /// # Panics
    ///
    /// Panics if the frontier's length differs from the packer's, or if
    /// an entry exceeds the packer's bit width. The width check is a hard
    /// assert (not debug-only): a truncated entry would collide with a
    /// different frontier, silently corrupting any visited set keyed on
    /// the packing.
    pub fn pack(&self, frontier: &[u32]) -> PackedFrontier {
        assert_eq!(frontier.len(), self.len, "frontier shape mismatch");
        let mut words = vec![0u64; self.words];
        for (i, &f) in frontier.iter().enumerate() {
            assert!(
                (f as u64) < (1u64 << self.bits),
                "frontier entry {f} exceeds {} bits",
                self.bits
            );
            let bit = i * self.bits;
            let (w, off) = (bit / 64, bit % 64);
            words[w] |= (f as u64) << off;
            if off + self.bits > 64 {
                words[w + 1] |= (f as u64) >> (64 - off);
            }
        }
        let hash = fnv1a(words.iter().copied());
        PackedFrontier { words, hash }
    }

    /// Packs a [`Cut`]'s frontier.
    pub fn pack_cut(&self, cut: &Cut) -> PackedFrontier {
        self.pack(cut.frontier())
    }
}

/// A packed frontier with its FNV-1a hash precomputed at pack time:
/// `HashSet` probes hash one `u64` instead of re-walking the vector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedFrontier {
    words: Vec<u64>,
    hash: u64,
}

impl PackedFrontier {
    /// The precomputed FNV-1a hash of the packed words. Stable across
    /// processes and hasher seeds — usable for sharding.
    pub fn hash_value(&self) -> u64 {
        self.hash
    }
}

impl std::hash::Hash for PackedFrontier {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        state.write_u64(self.hash);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ComputationBuilder;
    use std::collections::HashSet;

    fn comp_with(lens: &[usize]) -> Computation {
        let mut b = ComputationBuilder::new(lens.len());
        for (p, &len) in lens.iter().enumerate() {
            for _ in 0..len {
                b.append(p);
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn packing_is_injective_over_all_frontiers() {
        // 3 processes with different event counts, bits sized by the max.
        let comp = comp_with(&[2, 5, 1]);
        let packer = FrontierPacker::new(&comp);
        let mut seen = HashSet::new();
        for a in 0..=2u32 {
            for b in 0..=5u32 {
                for c in 0..=1u32 {
                    assert!(
                        seen.insert(packer.pack(&[a, b, c])),
                        "collision at {a},{b},{c}"
                    );
                }
            }
        }
        assert_eq!(seen.len(), 3 * 6 * 2);
    }

    #[test]
    fn entries_straddling_word_boundaries_round_trip_distinctly() {
        // 23 processes × 7 events → 3 bits/entry, 69 bits > one word.
        let comp = comp_with(&[7; 23]);
        let packer = FrontierPacker::new(&comp);
        let mut frontiers: Vec<Vec<u32>> = vec![vec![0; 23], vec![7; 23]];
        for i in 0..23 {
            let mut f = vec![0u32; 23];
            f[i] = 5;
            frontiers.push(f);
        }
        let packed: HashSet<PackedFrontier> = frontiers.iter().map(|f| packer.pack(f)).collect();
        assert_eq!(packed.len(), frontiers.len());
    }

    #[test]
    fn zero_process_computation_packs_the_empty_frontier() {
        let comp = comp_with(&[]);
        let packer = FrontierPacker::new(&comp);
        assert_eq!(packer.pack(&[]), packer.pack(&[]));
    }

    #[test]
    fn cut_fnv_hash_matches_manual_fnv() {
        let cut = Cut::from_frontier(vec![3, 0, 7]);
        assert_eq!(cut.fnv_hash(), fnv1a([3u64, 0, 7]));
    }

    #[test]
    fn all_zero_event_processes_pack_injectively() {
        // Every process has zero events: only the all-zero frontier is
        // valid, bits = 1 by construction, and the packing still works.
        let comp = comp_with(&[0, 0, 0]);
        let packer = FrontierPacker::new(&comp);
        assert_eq!(packer.pack(&[0, 0, 0]), packer.pack(&[0, 0, 0]));
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn oversized_entry_panics_instead_of_colliding() {
        // events_on = 1 everywhere → 1 bit per entry; entry 2 would
        // truncate to 0 and collide with a distinct frontier. The packer
        // must refuse it even in release builds.
        let comp = comp_with(&[1, 1]);
        FrontierPacker::new(&comp).pack(&[2, 0]);
    }

    #[test]
    fn equal_frontiers_share_hash_and_differ_otherwise() {
        let comp = comp_with(&[4, 4]);
        let packer = FrontierPacker::new(&comp);
        let a = packer.pack(&[1, 2]);
        let b = packer.pack(&[1, 2]);
        let c = packer.pack(&[2, 1]);
        assert_eq!(a, b);
        assert_eq!(a.hash_value(), b.hash_value());
        assert_ne!(a, c);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;
        use rand::{Rng, SeedableRng};

        /// A frontier valid for `lens` (each entry in `0..=events_on(p)`).
        fn random_frontier<R: Rng>(rng: &mut R, lens: &[usize]) -> Vec<u32> {
            lens.iter().map(|&m| rng.gen_range(0..=m as u32)).collect()
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(128))]

            /// Packing is injective: packed equality ⇔ frontier equality,
            /// and equal frontiers agree on the cached hash. Shapes mix
            /// zero-event processes with widths where `len * bits`
            /// regularly exceeds one 64-bit word.
            #[test]
            fn packed_equality_is_frontier_equality(
                seed in any::<u64>(),
                n in 1usize..40,
                equal in any::<bool>(),
            ) {
                let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
                let lens: Vec<usize> = (0..n).map(|_| rng.gen_range(0..=9)).collect();
                let a = random_frontier(&mut rng, &lens);
                let b = if equal { a.clone() } else { random_frontier(&mut rng, &lens) };
                let comp = comp_with(&lens);
                let packer = FrontierPacker::new(&comp);
                let pa = packer.pack(&a);
                let pb = packer.pack(&b);
                prop_assert_eq!(pa == pb, a == b);
                if a == b {
                    prop_assert_eq!(pa.hash_value(), pb.hash_value());
                }
            }
        }
    }
}
