//! Per-channel message-position indexes.
//!
//! Channel predicates — bounds on the number of in-flight messages from
//! one process to another — are evaluated by counting, at a cut, how
//! many sends the sender has executed minus how many receives the
//! receiver has executed on that channel. A [`ChannelIndex`] extracts,
//! once per computation, the sorted local positions of every channel's
//! sends and receives, so those counts become binary searches instead of
//! message-list walks. The slicing engine in the `gpd` crate leans on
//! the positions directly: "the k-th receive on this channel" is one
//! array lookup, which is what makes its least-cut repair steps cheap.

use std::collections::HashMap;

use crate::computation::Computation;
use crate::event::ProcessId;

const NO_POSITIONS: &[u32] = &[];

/// Sorted send/receive positions for every channel of one computation.
///
/// A *channel* is an ordered process pair `(from, to)` with at least one
/// message; pairs that never exchanged a message report empty position
/// lists and zero counts.
///
/// # Example
///
/// ```
/// use gpd_computation::{ChannelIndex, ComputationBuilder};
///
/// let mut b = ComputationBuilder::new(2);
/// let s1 = b.append(0);
/// let s2 = b.append(0);
/// let r1 = b.append(1);
/// let r2 = b.append(1);
/// b.message(s1, r1).unwrap();
/// b.message(s2, r2).unwrap();
/// let comp = b.build().unwrap();
/// let idx = ChannelIndex::new(&comp);
/// assert_eq!(idx.send_positions(0, 1), &[1, 2]);
/// // After s1 and s2 but before any receive, two messages are in flight.
/// assert_eq!(idx.in_flight(0, 1, &[2, 0]), 2);
/// assert_eq!(idx.in_flight(0, 1, &[2, 1]), 1);
/// ```
#[derive(Debug, Clone)]
pub struct ChannelIndex {
    /// `(sender, receiver)` → slot in the position lists.
    map: HashMap<(usize, usize), usize>,
    /// Per channel: sorted local positions of its sends on the sender.
    sends: Vec<Vec<u32>>,
    /// Per channel: sorted local positions of its receives on the
    /// receiver. Same length as the channel's send list — every message
    /// has exactly one of each.
    recvs: Vec<Vec<u32>>,
}

impl ChannelIndex {
    /// Indexes every channel of `comp`.
    pub fn new(comp: &Computation) -> Self {
        let mut map = HashMap::new();
        let mut sends: Vec<Vec<u32>> = Vec::new();
        let mut recvs: Vec<Vec<u32>> = Vec::new();
        for &(s, r) in comp.messages() {
            let key = (comp.process_of(s).index(), comp.process_of(r).index());
            let slot = *map.entry(key).or_insert_with(|| {
                sends.push(Vec::new());
                recvs.push(Vec::new());
                sends.len() - 1
            });
            sends[slot].push(comp.local_index(s));
            recvs[slot].push(comp.local_index(r));
        }
        // Messages arrive in insertion order, not position order.
        for list in sends.iter_mut().chain(recvs.iter_mut()) {
            list.sort_unstable();
        }
        ChannelIndex { map, sends, recvs }
    }

    fn slot(&self, from: ProcessId, to: ProcessId) -> Option<usize> {
        self.map.get(&(from.index(), to.index())).copied()
    }

    /// The sorted local positions (on `from`) of the sends on channel
    /// `from → to`; empty if the channel carried no messages.
    pub fn send_positions(&self, from: impl Into<ProcessId>, to: impl Into<ProcessId>) -> &[u32] {
        match self.slot(from.into(), to.into()) {
            Some(i) => &self.sends[i],
            None => NO_POSITIONS,
        }
    }

    /// The sorted local positions (on `to`) of the receives on channel
    /// `from → to`; empty if the channel carried no messages.
    pub fn receive_positions(
        &self,
        from: impl Into<ProcessId>,
        to: impl Into<ProcessId>,
    ) -> &[u32] {
        match self.slot(from.into(), to.into()) {
            Some(i) => &self.recvs[i],
            None => NO_POSITIONS,
        }
    }

    /// How many `from → to` sends a frontier with `frontier_at_from`
    /// events on `from` has executed. One binary search.
    pub fn sent_until(
        &self,
        from: impl Into<ProcessId>,
        to: impl Into<ProcessId>,
        frontier_at_from: u32,
    ) -> u32 {
        count_le(self.send_positions(from, to), frontier_at_from)
    }

    /// How many `from → to` receives a frontier with `frontier_at_to`
    /// events on `to` has executed. One binary search.
    pub fn received_until(
        &self,
        from: impl Into<ProcessId>,
        to: impl Into<ProcessId>,
        frontier_at_to: u32,
    ) -> u32 {
        count_le(self.receive_positions(from, to), frontier_at_to)
    }

    /// Messages in flight on `from → to` at `frontier`: sends executed
    /// minus receives executed. Negative on frontiers that include a
    /// receive without its send — consistent cuts never do, but the
    /// slicing fixpoints probe inconsistent frontiers on the way to a
    /// consistent one.
    ///
    /// # Panics
    ///
    /// Panics if a frontier entry for either endpoint is missing.
    pub fn in_flight(
        &self,
        from: impl Into<ProcessId>,
        to: impl Into<ProcessId>,
        frontier: &[u32],
    ) -> i64 {
        let (from, to) = (from.into(), to.into());
        let sent = self.sent_until(from, to, frontier[from.index()]);
        let received = self.received_until(from, to, frontier[to.index()]);
        i64::from(sent) - i64::from(received)
    }
}

/// How many entries of the sorted `positions` are ≤ `bound`.
fn count_le(positions: &[u32], bound: u32) -> u32 {
    positions.partition_point(|&p| p <= bound) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ComputationBuilder;

    /// p0 sends twice to p1 and once to p2; p2 sends once back to p0.
    fn sample() -> Computation {
        let mut b = ComputationBuilder::new(3);
        let s1 = b.append(0);
        let s2 = b.append(0);
        let s3 = b.append(0);
        let r1 = b.append(1);
        let r2 = b.append(1);
        let r3 = b.append(2);
        let back = b.append(2);
        let recv_back = b.append(0);
        b.message(s1, r1).unwrap();
        b.message(s2, r2).unwrap();
        b.message(s3, r3).unwrap();
        b.message(back, recv_back).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn positions_are_sorted_per_channel() {
        let comp = sample();
        let idx = ChannelIndex::new(&comp);
        assert_eq!(idx.send_positions(0, 1), &[1, 2]);
        assert_eq!(idx.receive_positions(0, 1), &[1, 2]);
        assert_eq!(idx.send_positions(0, 2), &[3]);
        assert_eq!(idx.receive_positions(0, 2), &[1]);
        assert_eq!(idx.send_positions(2, 0), &[2]);
        assert_eq!(idx.receive_positions(2, 0), &[4]);
    }

    #[test]
    fn absent_channels_are_empty() {
        let comp = sample();
        let idx = ChannelIndex::new(&comp);
        assert_eq!(idx.send_positions(1, 0), NO_POSITIONS);
        assert_eq!(idx.in_flight(1, 0, &[0, 2, 0]), 0);
    }

    #[test]
    fn in_flight_counts_sends_minus_receives() {
        let comp = sample();
        let idx = ChannelIndex::new(&comp);
        assert_eq!(idx.in_flight(0, 1, &[0, 0, 0]), 0);
        assert_eq!(idx.in_flight(0, 1, &[1, 0, 0]), 1);
        assert_eq!(idx.in_flight(0, 1, &[2, 0, 0]), 2);
        assert_eq!(idx.in_flight(0, 1, &[2, 1, 0]), 1);
        assert_eq!(idx.in_flight(0, 1, &[2, 2, 0]), 0);
        // Frontier that took the receive but not the send: negative.
        assert_eq!(idx.in_flight(2, 0, &[4, 0, 0]), -1);
    }

    #[test]
    fn counts_match_brute_force_over_all_frontiers() {
        let comp = sample();
        let idx = ChannelIndex::new(&comp);
        for f0 in 0..=comp.events_on(0) as u32 {
            for f1 in 0..=comp.events_on(1) as u32 {
                let brute: i64 = comp
                    .messages()
                    .iter()
                    .filter(|&&(s, r)| {
                        comp.process_of(s).index() == 0 && comp.process_of(r).index() == 1
                    })
                    .map(|&(s, r)| {
                        i64::from(comp.local_index(s) <= f0) - i64::from(comp.local_index(r) <= f1)
                    })
                    .sum();
                assert_eq!(idx.in_flight(0, 1, &[f0, f1, 0]), brute);
            }
        }
    }
}
