//! Process-global work counters for the flat causality kernel.
//!
//! Three relaxed atomics make the PR 3 layout wins observable without a
//! profiler: how many clock-matrix rows the dominance kernels touched,
//! how many times `cut_successors` fell back to its allocating
//! convenience path, and how many owned [`VectorClock`]s were
//! materialized on the heap (the flat layout should build and query a
//! computation with **zero** of these). The `gpd` crate folds this
//! snapshot into its `ScanCounters` and the CLI prints it under
//! `gpd detect --stats`.
//!
//! Counters are cumulative per process; diff two [`snapshot`]s via
//! [`KernelCounters::since`] to meter one region. Relaxed ordering is
//! deliberate: the numbers are telemetry, not synchronization.
//!
//! [`VectorClock`]: crate::VectorClock

use std::sync::atomic::{AtomicU64, Ordering};

static CLOCK_ROW_READS: AtomicU64 = AtomicU64::new(0);
static CUT_SUCCESSOR_ALLOCS: AtomicU64 = AtomicU64::new(0);
static VCLOCK_ALLOCS: AtomicU64 = AtomicU64::new(0);
static DOMINANCE_BATCHES: AtomicU64 = AtomicU64::new(0);

/// Batches `n` clock-matrix row reads into one atomic add — the
/// dominance kernels call this once per query, not once per row.
#[inline]
pub(crate) fn add_clock_row_reads(n: u64) {
    if n > 0 {
        CLOCK_ROW_READS.fetch_add(n, Ordering::Relaxed);
    }
}

/// Records one call to the allocating `cut_successors` wrapper.
#[inline]
pub(crate) fn record_cut_successor_alloc() {
    CUT_SUCCESSOR_ALLOCS.fetch_add(1, Ordering::Relaxed);
}

/// Records one owned `VectorClock` materialized on the heap.
#[inline]
pub(crate) fn record_vclock_alloc() {
    VCLOCK_ALLOCS.fetch_add(1, Ordering::Relaxed);
}

/// Batches `n` batched-dominance kernel passes into one atomic add —
/// the routing call sites (`is_consistent`, `for_each_enabled`) call
/// this once per query, not once per batch.
#[inline]
pub(crate) fn add_dominance_batches(n: u64) {
    if n > 0 {
        DOMINANCE_BATCHES.fetch_add(n, Ordering::Relaxed);
    }
}

/// A point-in-time reading of the kernel counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelCounters {
    /// Clock-matrix rows scanned by the dominance/enablement kernels
    /// (including single-row [`Computation::clock`] borrows).
    ///
    /// [`Computation::clock`]: crate::Computation::clock
    pub clock_row_reads: u64,
    /// Calls to the allocating `cut_successors` convenience wrapper; the
    /// buffer-reusing enumerators keep this at zero.
    pub cut_successor_allocs: u64,
    /// Owned `VectorClock` heap allocations. Building and querying a
    /// computation through the flat layout performs none.
    pub vclock_allocs: u64,
    /// Column-major batched dominance/enablement kernel passes — each
    /// covers up to `kernel::BATCH` clock rows against one shared bound.
    pub dominance_batches: u64,
}

impl KernelCounters {
    /// Counter deltas since an `earlier` snapshot.
    ///
    /// The counters are cumulative and never reset, so `earlier` must
    /// genuinely be earlier; a later snapshot indicates a mixed-up pair
    /// (debug-asserted). Release builds subtract with wraparound — a
    /// bogus pair yields a conspicuously huge delta instead of a silent
    /// 0 that would hide the inconsistency.
    pub fn since(&self, earlier: &KernelCounters) -> KernelCounters {
        debug_assert!(
            self.clock_row_reads >= earlier.clock_row_reads
                && self.cut_successor_allocs >= earlier.cut_successor_allocs
                && self.vclock_allocs >= earlier.vclock_allocs
                && self.dominance_batches >= earlier.dominance_batches,
            "non-monotone counter snapshots: {self:?}.since({earlier:?})"
        );
        KernelCounters {
            clock_row_reads: self.clock_row_reads.wrapping_sub(earlier.clock_row_reads),
            cut_successor_allocs: self
                .cut_successor_allocs
                .wrapping_sub(earlier.cut_successor_allocs),
            vclock_allocs: self.vclock_allocs.wrapping_sub(earlier.vclock_allocs),
            dominance_batches: self
                .dominance_batches
                .wrapping_sub(earlier.dominance_batches),
        }
    }
}

/// Reads the cumulative kernel counters for this process.
pub fn kernel_counters() -> KernelCounters {
    KernelCounters {
        clock_row_reads: CLOCK_ROW_READS.load(Ordering::Relaxed),
        cut_successor_allocs: CUT_SUCCESSOR_ALLOCS.load(Ordering::Relaxed),
        vclock_allocs: VCLOCK_ALLOCS.load(Ordering::Relaxed),
        dominance_batches: DOMINANCE_BATCHES.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn since_subtracts_ordered_snapshots() {
        let a = KernelCounters {
            clock_row_reads: 10,
            cut_successor_allocs: 3,
            vclock_allocs: 1,
            dominance_batches: 2,
        };
        let b = KernelCounters {
            clock_row_reads: 25,
            cut_successor_allocs: 3,
            vclock_allocs: 2,
            dominance_batches: 5,
        };
        let d = b.since(&a);
        assert_eq!(d.clock_row_reads, 15);
        assert_eq!(d.cut_successor_allocs, 0);
        assert_eq!(d.vclock_allocs, 1);
        assert_eq!(d.dominance_batches, 3);
    }

    #[test]
    #[should_panic(expected = "non-monotone")]
    #[cfg(debug_assertions)]
    fn mixed_up_snapshot_pair_is_detected() {
        let a = KernelCounters {
            clock_row_reads: 10,
            cut_successor_allocs: 3,
            vclock_allocs: 1,
            dominance_batches: 2,
        };
        let b = KernelCounters {
            clock_row_reads: 25,
            cut_successor_allocs: 3,
            vclock_allocs: 2,
            dominance_batches: 5,
        };
        // `since` with the arguments swapped is a bug, not a zero delta.
        let _ = a.since(&b);
    }

    #[test]
    fn recording_is_monotone() {
        let before = kernel_counters();
        add_clock_row_reads(4);
        record_cut_successor_alloc();
        record_vclock_alloc();
        add_dominance_batches(2);
        let after = kernel_counters();
        // Other tests run concurrently in this process, so assert lower
        // bounds rather than exact deltas.
        assert!(after.clock_row_reads >= before.clock_row_reads + 4);
        assert!(after.cut_successor_allocs > before.cut_successor_allocs);
        assert!(after.vclock_allocs > before.vclock_allocs);
        assert!(after.dominance_batches >= before.dominance_batches + 2);
    }
}
