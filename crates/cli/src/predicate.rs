//! The predicate mini-language.
//!
//! ```text
//! expr   := "conj" lit+                      conjunction of literals
//!         | "cnf" clause ("&" clause)*       singular CNF
//!         | "sum" NAME relop INT             relational / exact sum
//!         | "count" NAME countspec           symmetric predicate
//! lit    := ["!"] NAME "@" PROC
//! clause := lit ("|" lit)*
//! relop  := "<" | "<=" | ">" | ">=" | "=="
//! countspec := "in" "{" INT ("," INT)* "}"
//!            | "xor" | "not-all-equal" | "all-equal"
//!            | "no-majority" | "no-two-thirds" | "exactly" INT
//! ```

use crate::CliError;

/// One literal: variable name on a process, possibly negated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LitSpec {
    /// Variable name (resolved against the trace's boolean variables).
    pub name: String,
    /// Process index hosting the literal.
    pub process: usize,
    /// `true` for the plain variable, `false` for its negation.
    pub positive: bool,
}

/// Comparison in a `sum` predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SumOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==` (the Theorem 7 exact-sum case)
    Eq,
}

/// Which true-variable counts a `count` predicate accepts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CountSpec {
    /// Explicit accepted counts.
    In(Vec<u32>),
    /// Odd parity.
    Xor,
    /// At least one true and one false.
    NotAllEqual,
    /// All true or all false.
    AllEqual,
    /// No simple majority.
    NoMajority,
    /// No two-thirds majority.
    NoTwoThirds,
    /// Exactly this many.
    Exactly(u32),
}

/// A parsed predicate expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PredicateSpec {
    /// `conj lit+`
    Conjunction(Vec<LitSpec>),
    /// `cnf clause & clause & ...`
    Cnf(Vec<Vec<LitSpec>>),
    /// `sum name relop k`
    Sum {
        /// Integer variable name.
        name: String,
        /// Comparison.
        op: SumOp,
        /// Right-hand constant.
        k: i64,
    },
    /// `count name spec`
    Count {
        /// Boolean variable name.
        name: String,
        /// Accepted counts.
        spec: CountSpec,
    },
}

fn parse_lit(tok: &str) -> Result<LitSpec, CliError> {
    let (positive, body) = match tok.strip_prefix('!') {
        Some(rest) => (false, rest),
        None => (true, tok),
    };
    let (name, proc) = body
        .split_once('@')
        .ok_or_else(|| CliError::Parse(format!("literal {tok:?} must be [!]name@process")))?;
    if name.is_empty() {
        return Err(CliError::Parse(format!(
            "literal {tok:?} has an empty name"
        )));
    }
    let process = proc
        .parse()
        .map_err(|_| CliError::Parse(format!("bad process index in {tok:?}")))?;
    Ok(LitSpec {
        name: name.to_string(),
        process,
        positive,
    })
}

/// Parses an expression of the predicate language.
///
/// # Errors
///
/// Returns [`CliError::Parse`] with a specific message on any syntax
/// error.
///
/// # Example
///
/// ```
/// use gpd_cli::predicate::{parse, PredicateSpec};
///
/// let p = parse("conj in_cs@0 !in_cs@1").unwrap();
/// assert!(matches!(p, PredicateSpec::Conjunction(ref lits) if lits.len() == 2));
/// ```
pub fn parse(input: &str) -> Result<PredicateSpec, CliError> {
    let mut tokens = input.split_whitespace();
    let head = tokens
        .next()
        .ok_or_else(|| CliError::Parse("empty predicate".into()))?;
    let rest: Vec<&str> = tokens.collect();
    match head {
        "conj" => {
            if rest.is_empty() {
                return Err(CliError::Parse("conj needs at least one literal".into()));
            }
            let lits = rest
                .iter()
                .map(|t| parse_lit(t))
                .collect::<Result<Vec<_>, _>>()?;
            Ok(PredicateSpec::Conjunction(lits))
        }
        "cnf" => {
            let mut clauses = Vec::new();
            let mut current: Vec<LitSpec> = Vec::new();
            let mut expect_lit = true;
            for tok in &rest {
                match *tok {
                    "&" => {
                        if current.is_empty() || expect_lit {
                            return Err(CliError::Parse(
                                "'&' needs a complete clause before it".into(),
                            ));
                        }
                        clauses.push(std::mem::take(&mut current));
                        expect_lit = true;
                    }
                    "|" => {
                        if expect_lit {
                            return Err(CliError::Parse("'|' without preceding literal".into()));
                        }
                        expect_lit = true;
                    }
                    lit => {
                        if !expect_lit {
                            return Err(CliError::Parse(format!(
                                "expected '|' or '&' before {lit:?}"
                            )));
                        }
                        current.push(parse_lit(lit)?);
                        expect_lit = false;
                    }
                }
            }
            if current.is_empty() {
                return Err(CliError::Parse("cnf needs at least one clause".into()));
            }
            if expect_lit {
                return Err(CliError::Parse("dangling '|' at end of cnf".into()));
            }
            clauses.push(current);
            Ok(PredicateSpec::Cnf(clauses))
        }
        "sum" => {
            let [name, op, k] = rest.as_slice() else {
                return Err(CliError::Parse("sum needs: sum NAME RELOP INT".into()));
            };
            let op = match *op {
                "<" => SumOp::Lt,
                "<=" => SumOp::Le,
                ">" => SumOp::Gt,
                ">=" => SumOp::Ge,
                "==" | "=" => SumOp::Eq,
                other => return Err(CliError::Parse(format!("unknown relop {other:?}"))),
            };
            let k = k
                .parse()
                .map_err(|_| CliError::Parse(format!("bad constant {k:?}")))?;
            Ok(PredicateSpec::Sum {
                name: name.to_string(),
                op,
                k,
            })
        }
        "count" => {
            let (name, spec) = rest
                .split_first()
                .ok_or_else(|| CliError::Parse("count needs: count NAME SPEC".into()))?;
            let spec = match spec {
                ["in", set] => {
                    let inner = set
                        .strip_prefix('{')
                        .and_then(|s| s.strip_suffix('}'))
                        .ok_or_else(|| {
                            CliError::Parse(format!("count set {set:?} must be {{a,b,...}}"))
                        })?;
                    let counts = inner
                        .split(',')
                        .filter(|s| !s.is_empty())
                        .map(|s| {
                            s.trim()
                                .parse()
                                .map_err(|_| CliError::Parse(format!("bad count {s:?} in {set:?}")))
                        })
                        .collect::<Result<Vec<u32>, _>>()?;
                    CountSpec::In(counts)
                }
                ["xor"] => CountSpec::Xor,
                ["not-all-equal"] => CountSpec::NotAllEqual,
                ["all-equal"] => CountSpec::AllEqual,
                ["no-majority"] => CountSpec::NoMajority,
                ["no-two-thirds"] => CountSpec::NoTwoThirds,
                ["exactly", k] => CountSpec::Exactly(
                    k.parse()
                        .map_err(|_| CliError::Parse(format!("bad count {k:?} after 'exactly'")))?,
                ),
                other => {
                    return Err(CliError::Parse(format!(
                        "unknown count spec {:?}",
                        other.join(" ")
                    )))
                }
            };
            Ok(PredicateSpec::Count {
                name: name.to_string(),
                spec,
            })
        }
        other => Err(CliError::Parse(format!(
            "unknown predicate kind {other:?} (expected conj/cnf/sum/count)"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literals() {
        assert_eq!(
            parse_lit("in_cs@2").unwrap(),
            LitSpec {
                name: "in_cs".into(),
                process: 2,
                positive: true
            }
        );
        assert_eq!(
            parse_lit("!flag@0").unwrap(),
            LitSpec {
                name: "flag".into(),
                process: 0,
                positive: false
            }
        );
        assert!(parse_lit("noat").is_err());
        assert!(parse_lit("x@abc").is_err());
        assert!(parse_lit("!@1").is_err());
    }

    #[test]
    fn conjunction() {
        let p = parse("conj a@0 !b@1 c@2").unwrap();
        match p {
            PredicateSpec::Conjunction(lits) => {
                assert_eq!(lits.len(), 3);
                assert!(!lits[1].positive);
            }
            other => panic!("{other:?}"),
        }
        assert!(parse("conj").is_err());
    }

    #[test]
    fn cnf_with_clause_separators() {
        let p = parse("cnf a@0 | !b@1 & c@2 | d@3 & e@4").unwrap();
        match p {
            PredicateSpec::Cnf(clauses) => {
                assert_eq!(clauses.len(), 3);
                assert_eq!(clauses[0].len(), 2);
                assert_eq!(clauses[1].len(), 2);
                assert_eq!(clauses[2].len(), 1);
            }
            other => panic!("{other:?}"),
        }
        assert!(parse("cnf a@0 | & b@1").is_err());
        assert!(parse("cnf | a@0").is_err());
        assert!(parse("cnf a@0 b@1").is_err());
        assert!(parse("cnf").is_err());
    }

    #[test]
    fn sums() {
        assert_eq!(
            parse("sum tokens == 3").unwrap(),
            PredicateSpec::Sum {
                name: "tokens".into(),
                op: SumOp::Eq,
                k: 3
            }
        );
        assert_eq!(
            parse("sum balance >= -5").unwrap(),
            PredicateSpec::Sum {
                name: "balance".into(),
                op: SumOp::Ge,
                k: -5
            }
        );
        assert!(parse("sum x ~ 3").is_err());
        assert!(parse("sum x ==").is_err());
    }

    #[test]
    fn counts() {
        assert_eq!(
            parse("count v in {0,2,4}").unwrap(),
            PredicateSpec::Count {
                name: "v".into(),
                spec: CountSpec::In(vec![0, 2, 4])
            }
        );
        assert_eq!(
            parse("count v xor").unwrap(),
            PredicateSpec::Count {
                name: "v".into(),
                spec: CountSpec::Xor
            }
        );
        assert_eq!(
            parse("count v exactly 2").unwrap(),
            PredicateSpec::Count {
                name: "v".into(),
                spec: CountSpec::Exactly(2)
            }
        );
        for named in ["not-all-equal", "all-equal", "no-majority", "no-two-thirds"] {
            assert!(parse(&format!("count v {named}")).is_ok(), "{named}");
        }
        assert!(parse("count v in 0,1").is_err());
        assert!(parse("count v within {1}").is_err());
        assert!(parse("count v in {a}").is_err());
    }

    #[test]
    fn unknown_heads_rejected() {
        assert!(parse("").is_err());
        assert!(parse("disj a@0").is_err());
    }
}
