//! Subcommand implementations.

use std::collections::HashMap;

use gpd::conjunctive::{definitely_conjunctive, possibly_conjunctive};
use gpd::enumerate::{
    definitely_by_enumeration, definitely_levelwise_budgeted, possibly_by_enumeration,
};
use gpd::relational::{
    definitely_exact_sum, definitely_exact_sum_budgeted, definitely_sum, definitely_sum_budgeted,
    possibly_exact_sum, possibly_exact_sum_budgeted, possibly_sum,
};
use gpd::singular::{possibly_singular_budgeted, possibly_singular_par};
use gpd::slice::{
    cnf_envelope, definitely_levelwise_sliced_budgeted, definitely_slice,
    possibly_singular_sliced_budgeted, possibly_slice, RegularPredicate, Slice,
    DEFINITELY_LEVELWISE_SLICED,
};
use gpd::symmetric::{definitely_symmetric, possibly_symmetric, SymmetricPredicate};
use gpd::{
    Budget, BudgetMeter, Checkpoint, CnfClause, DetectError, Progress, Relop, SingularCnf, Verdict,
};
use gpd_computation::trace::{read_trace, write_trace, Trace};
use gpd_computation::{to_dot, BoolVariable, Computation, Cut, ProcessId};
use gpd_sim::protocols::{BankBranch, ChangRoberts, RicartAgrawala, TokenRing, Voter};
use gpd_sim::{Process, SimConfig, SimTrace, Simulation};

use crate::predicate::{parse, CountSpec, LitSpec, PredicateSpec, SumOp};
use crate::CliError;

/// Above this event count, exhaustive fallbacks require `--enumerate`.
const ENUMERATION_GUARD: usize = 64;

/// Parsed flags: `--name value` pairs, bare `--switch`es, and positionals.
pub(crate) struct Flags {
    pub(crate) positional: Vec<String>,
    pub(crate) values: HashMap<String, String>,
    pub(crate) switches: Vec<String>,
}

pub(crate) fn parse_flags(
    args: &[String],
    value_flags: &[&str],
    switch_flags: &[&str],
) -> Result<Flags, CliError> {
    let mut flags = Flags {
        positional: Vec::new(),
        values: HashMap::new(),
        switches: Vec::new(),
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if let Some(name) = arg.strip_prefix("--").or_else(|| arg.strip_prefix('-')) {
            if value_flags.contains(&name) {
                let value = iter
                    .next()
                    .ok_or_else(|| CliError::Usage(format!("--{name} needs a value")))?;
                flags.values.insert(name.to_string(), value.clone());
            } else if switch_flags.contains(&name) {
                flags.switches.push(name.to_string());
            } else {
                return Err(CliError::Usage(format!("unknown flag --{name}")));
            }
        } else {
            flags.positional.push(arg.clone());
        }
    }
    Ok(flags)
}

impl Flags {
    pub(crate) fn get_usize(&self, name: &str, default: usize) -> Result<usize, CliError> {
        match self.values.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| CliError::Usage(format!("--{name} expects a number, got {v:?}"))),
        }
    }

    pub(crate) fn get_u64(&self, name: &str, default: u64) -> Result<u64, CliError> {
        match self.values.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| CliError::Usage(format!("--{name} expects a number, got {v:?}"))),
        }
    }

    pub(crate) fn get_f64(&self, name: &str, default: f64) -> Result<f64, CliError> {
        match self.values.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| CliError::Usage(format!("--{name} expects a number, got {v:?}"))),
        }
    }

    pub(crate) fn has(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }
}

pub(crate) fn load_trace(path: &str) -> Result<Trace, CliError> {
    let text = std::fs::read_to_string(path).map_err(|e| CliError::Io(format!("{path}: {e}")))?;
    read_trace(&text).map_err(|e| CliError::Trace(e.to_string()))
}

fn trace_text(trace: &SimTrace) -> String {
    let bools: Vec<(&str, &BoolVariable)> = trace
        .bool_vars
        .iter()
        .map(|(n, v)| (n.as_str(), v))
        .collect();
    let ints: Vec<(&str, &gpd_computation::IntVariable)> = trace
        .int_vars
        .iter()
        .map(|(n, v)| (n.as_str(), v))
        .collect();
    write_trace(&trace.computation, &bools, &ints)
}

/// `gpd simulate <protocol> [--n N] [--seed S] [--tokens K] [--rounds R] [--buggy] [-o FILE]`
pub fn simulate(args: &[String]) -> Result<String, CliError> {
    let flags = parse_flags(args, &["n", "seed", "tokens", "rounds", "o"], &["buggy"])?;
    let [protocol] = flags.positional.as_slice() else {
        return Err(CliError::Usage(
            "simulate <token-ring|mutex|election|voting|bank|2pc> [flags]".into(),
        ));
    };
    let n = flags.get_usize("n", 4)?;
    let seed = flags.get_u64("seed", 0)?;
    let config = SimConfig::new(seed);
    let buggy = flags.has("buggy");

    fn run_protocol<P: Process>(processes: Vec<P>, config: SimConfig) -> SimTrace {
        Simulation::new(processes, config).run()
    }

    let trace = match protocol.as_str() {
        "token-ring" => {
            let tokens = flags.get_usize("tokens", (n / 2).max(1))?;
            if tokens > n {
                return Err(CliError::Usage(format!(
                    "--tokens {tokens} exceeds --n {n}"
                )));
            }
            run_protocol(
                TokenRing::ring_with_bug(n, tokens, if buggy { 2 } else { 0 }),
                config,
            )
        }
        "mutex" => {
            let rounds = flags.get_usize("rounds", 2)? as u32;
            run_protocol(RicartAgrawala::group_with_bug(n, rounds, buggy), config)
        }
        "election" => {
            // Distinct pseudo-random uids, deterministic in the seed.
            let uids: Vec<u64> = (0..n as u64).map(|i| i * 1000 + (seed + i) % 997).collect();
            run_protocol(ChangRoberts::ring(&uids), config)
        }
        "voting" => run_protocol(Voter::electorate(n, 0.5), config),
        "bank" => run_protocol(BankBranch::network(n, 100, 3, 50), config),
        "2pc" => run_protocol(
            gpd_sim::protocols::TwoPhaseCommit::transaction(
                n.max(2),
                if buggy { 0.5 } else { 0.0 },
            ),
            config,
        ),
        other => {
            return Err(CliError::Usage(format!(
                "unknown protocol {other:?} (token-ring|mutex|election|voting|bank|2pc)"
            )))
        }
    };

    let text = trace_text(&trace);
    match flags.values.get("o") {
        Some(path) => {
            std::fs::write(path, &text).map_err(|e| CliError::Io(format!("{path}: {e}")))?;
            Ok(format!(
                "wrote {} events / {} messages to {path}",
                trace.computation.event_count(),
                trace.computation.messages().len()
            ))
        }
        None => Ok(text),
    }
}

/// `gpd stats <trace> [--cuts]`
pub fn stats(args: &[String]) -> Result<String, CliError> {
    let flags = parse_flags(args, &[], &["cuts"])?;
    let [path] = flags.positional.as_slice() else {
        return Err(CliError::Usage("stats <trace> [--cuts]".into()));
    };
    let trace = load_trace(path)?;
    let comp = &trace.computation;
    let mut out = format!(
        "processes: {}\nevents: {}\nmessages: {}\n",
        comp.process_count(),
        comp.event_count(),
        comp.messages().len()
    );
    for p in 0..comp.process_count() {
        out.push_str(&format!("  p{p}: {} events\n", comp.events_on(p)));
    }
    let st = gpd_computation::stats(comp);
    out.push_str(&format!(
        "width (max concurrent events): {}\nheight (longest causal chain): {}\n",
        st.width, st.height
    ));
    if !trace.bool_vars.is_empty() {
        let names: Vec<&str> = trace.bool_vars.iter().map(|(n, _)| n.as_str()).collect();
        out.push_str(&format!("bool variables: {}\n", names.join(", ")));
    }
    if !trace.int_vars.is_empty() {
        let names: Vec<&str> = trace.int_vars.iter().map(|(n, _)| n.as_str()).collect();
        out.push_str(&format!("int variables: {}\n", names.join(", ")));
    }
    if flags.has("cuts") {
        if comp.event_count() > ENUMERATION_GUARD {
            return Err(CliError::Intractable(format!(
                "counting cuts is exponential; refusing above {ENUMERATION_GUARD} events ({} here)",
                comp.event_count()
            )));
        }
        out.push_str(&format!(
            "consistent cuts: {}\n",
            comp.consistent_cuts().count()
        ));
    }
    Ok(out)
}

/// `gpd lattice <trace> [--enumerate]`: the per-level consistent-cut
/// profile — how wide the state space is at each logical step.
pub fn lattice(args: &[String]) -> Result<String, CliError> {
    let flags = parse_flags(args, &[], &["enumerate"])?;
    let [path] = flags.positional.as_slice() else {
        return Err(CliError::Usage("lattice <trace> [--enumerate]".into()));
    };
    let trace = load_trace(path)?;
    let comp = &trace.computation;
    guard_enumeration(comp, flags.has("enumerate"), "the lattice profile")?;
    let profile = gpd_computation::lattice_profile(comp);
    let total: usize = profile.iter().sum();
    let widest = profile.iter().copied().max().unwrap_or(0).max(1);
    let mut out = format!("consistent cuts: {total}\n");
    for (level, &count) in profile.iter().enumerate() {
        let bar = "#".repeat((count * 40).div_ceil(widest));
        out.push_str(&format!("{level:>4} | {count:>8} {bar}\n"));
    }
    Ok(out)
}

/// `gpd dot <trace> [--var NAME]`
pub fn dot(args: &[String]) -> Result<String, CliError> {
    let flags = parse_flags(args, &["var"], &[])?;
    let [path] = flags.positional.as_slice() else {
        return Err(CliError::Usage("dot <trace> [--var NAME]".into()));
    };
    let trace = load_trace(path)?;
    let var = match flags.values.get("var") {
        None => None,
        Some(name) => Some(find_bool(&trace, name)?),
    };
    Ok(to_dot(&trace.computation, var))
}

pub(crate) fn find_bool<'a>(trace: &'a Trace, name: &str) -> Result<&'a BoolVariable, CliError> {
    trace
        .bool_vars
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| v)
        .ok_or_else(|| {
            let known: Vec<&str> = trace.bool_vars.iter().map(|(n, _)| n.as_str()).collect();
            CliError::Trace(format!(
                "no boolean variable {name:?} (known: {})",
                known.join(", ")
            ))
        })
}

pub(crate) fn find_int<'a>(
    trace: &'a Trace,
    name: &str,
) -> Result<&'a gpd_computation::IntVariable, CliError> {
    trace
        .int_vars
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| v)
        .ok_or_else(|| {
            let known: Vec<&str> = trace.int_vars.iter().map(|(n, _)| n.as_str()).collect();
            CliError::Trace(format!(
                "no integer variable {name:?} (known: {})",
                known.join(", ")
            ))
        })
}

/// Combines possibly differently-named literals into one per-process
/// boolean variable whose value *is the literal's truth* — detection then
/// only sees positive literals.
fn literal_truth_variable(trace: &Trace, literals: &[LitSpec]) -> Result<BoolVariable, CliError> {
    let comp = &trace.computation;
    let mut tracks: Vec<Vec<bool>> = (0..comp.process_count())
        .map(|p| vec![false; comp.events_on(p) + 1])
        .collect();
    let mut used = vec![false; comp.process_count()];
    for lit in literals {
        if lit.process >= comp.process_count() {
            return Err(CliError::Trace(format!(
                "process {} out of range ({} processes)",
                lit.process,
                comp.process_count()
            )));
        }
        if std::mem::replace(&mut used[lit.process], true) {
            return Err(CliError::Parse(format!(
                "process {} appears in two literals; one literal per process",
                lit.process
            )));
        }
        let var = find_bool(trace, &lit.name)?;
        tracks[lit.process] = var.tracks()[lit.process]
            .iter()
            .map(|&v| v == lit.positive)
            .collect();
    }
    Ok(BoolVariable::new(comp, tracks))
}

fn describe_cut(_comp: &Computation, cut: &Cut) -> String {
    format!("witness cut: {:?}", cut.frontier())
}

fn guard_enumeration(comp: &Computation, enumerate: bool, what: &str) -> Result<(), CliError> {
    if !enumerate && comp.event_count() > ENUMERATION_GUARD {
        return Err(CliError::Intractable(format!(
            "{what} needs exhaustive enumeration (exponential); pass --enumerate to force it \
             ({} events here, guard is {ENUMERATION_GUARD})",
            comp.event_count()
        )));
    }
    Ok(())
}

/// Budget options for `detect`: what bounds the search, where to resume
/// from, and where to drop the checkpoint if the budget runs out.
struct BudgetOpts {
    budget: Budget,
    /// Any budget flag or `--resume` present: route to the budgeted,
    /// checkpoint-carrying engines.
    active: bool,
    resume: Option<Checkpoint>,
    /// Checkpoint destination on an Unknown verdict.
    checkpoint_path: String,
}

fn parse_budget(flags: &Flags, trace_path: &str, expr: &str) -> Result<BudgetOpts, CliError> {
    let mut budget = Budget::unlimited();
    let mut active = false;
    if let Some(ms) = flags.values.get("deadline-ms") {
        let ms: u64 = ms.parse().map_err(|_| {
            CliError::Usage(format!("--deadline-ms expects milliseconds, got {ms:?}"))
        })?;
        budget = budget.with_deadline(std::time::Duration::from_millis(ms));
        active = true;
    }
    if flags.values.contains_key("max-nodes") {
        budget = budget.with_max_nodes(flags.get_u64("max-nodes", 0)?);
        active = true;
    }
    if flags.values.contains_key("max-width") {
        budget = budget.with_max_width(flags.get_usize("max-width", 0)?);
        active = true;
    }
    let resume = match flags.values.get("resume") {
        None => None,
        Some(ckpt_path) => {
            let text = std::fs::read_to_string(ckpt_path)
                .map_err(|e| CliError::Io(format!("{ckpt_path}: {e}")))?;
            let cp = Checkpoint::from_text(&text)
                .map_err(|e| CliError::Trace(format!("{ckpt_path}: {e}")))?;
            // The label pins the predicate the checkpoint was taken for:
            // resuming a different question would silently answer the
            // wrong one (the engine only fingerprints the computation).
            if !cp.label().is_empty() && cp.label() != expr {
                return Err(CliError::Usage(format!(
                    "checkpoint {ckpt_path} was taken for predicate {:?}, not {expr:?}",
                    cp.label()
                )));
            }
            active = true;
            Some(cp)
        }
    };
    let checkpoint_path = flags
        .values
        .get("checkpoint")
        .cloned()
        .unwrap_or_else(|| format!("{trace_path}.ckpt"));
    Ok(BudgetOpts {
        budget,
        active,
        resume,
        checkpoint_path,
    })
}

/// One-line summary of the sound partial bounds a budgeted run settled.
fn progress_summary(p: &Progress) -> String {
    let mut parts = vec![format!("{} nodes explored", p.nodes_explored)];
    if let Some(l) = p.levels_swept {
        parts.push(format!("{l} lattice levels swept witness-free"));
    }
    match (p.combinations_eliminated, p.combinations_total) {
        (Some(e), Some(t)) => parts.push(format!("{e}/{t} combinations eliminated")),
        (Some(e), None) => parts.push(format!("{e} combinations eliminated")),
        _ => {}
    }
    if let Some((lo, hi)) = p.sum_interval {
        parts.push(format!("attainable sums lie in [{lo}, {hi}]"));
    }
    parts.join(", ")
}

fn detect_error(err: DetectError) -> CliError {
    CliError::Trace(err.to_string())
}

/// Turns an exhausted budget into the `Unknown` outcome: persist the
/// checkpoint (labelled with the predicate expression, so a resume for a
/// different question is refused) and surface reason + bounds.
fn budget_exhausted(
    partial: &gpd::Partial,
    opts: &BudgetOpts,
    expr: &str,
) -> Result<String, CliError> {
    let mut cp = partial.checkpoint.clone();
    cp.set_label(expr);
    let path = &opts.checkpoint_path;
    std::fs::write(path, cp.to_text()).map_err(|e| CliError::Io(format!("{path}: {e}")))?;
    Err(CliError::Unknown(format!(
        "{}; {}; checkpoint written to {path} (resume with --resume {path})",
        partial.reason,
        progress_summary(&partial.progress),
    )))
}

fn render_witness_verdict(
    comp: &Computation,
    modality: &str,
    expr: &str,
    verdict: Verdict<Option<Cut>>,
    opts: &BudgetOpts,
) -> Result<String, CliError> {
    match verdict {
        Verdict::Decided(Some(cut), _) => Ok(format!(
            "{modality}({expr}): true\n{}\n",
            describe_cut(comp, &cut)
        )),
        Verdict::Decided(None, _) => Ok(format!("{modality}({expr}): false\n")),
        Verdict::Unknown(partial) => budget_exhausted(&partial, opts, expr),
    }
}

fn render_bool_verdict(
    modality: &str,
    expr: &str,
    verdict: Verdict<bool>,
    opts: &BudgetOpts,
) -> Result<String, CliError> {
    match verdict {
        Verdict::Decided(answer, _) => Ok(format!("{modality}({expr}): {answer}\n")),
        Verdict::Unknown(partial) => budget_exhausted(&partial, opts, expr),
    }
}

/// How the SliceReduce pre-pass is applied by `detect`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SliceMode {
    /// Never slice.
    Off,
    /// Slice whenever a regular envelope exists (the default).
    Auto,
    /// Require slicing; error out where no regular envelope exists.
    Force,
}

/// `gpd detect <trace> --pred "EXPR" [--definitely] [--enumerate] [--threads N] [--stats]
///  [--slice off|auto|force] [--deadline-ms N] [--max-nodes N] [--max-width N]
///  [--resume CKPT] [--checkpoint FILE]`
pub fn detect(args: &[String]) -> Result<String, CliError> {
    let flags = parse_flags(
        args,
        &[
            "pred",
            "threads",
            "deadline-ms",
            "max-nodes",
            "max-width",
            "resume",
            "checkpoint",
            "slice",
        ],
        &["definitely", "enumerate", "stats"],
    )?;
    let [path] = flags.positional.as_slice() else {
        return Err(CliError::Usage(
            "detect <trace> --pred \"EXPR\" [--definitely] [--enumerate] [--threads N] [--stats] \
             [--slice off|auto|force] [--deadline-ms N] [--max-nodes N] [--max-width N] \
             [--resume CKPT] [--checkpoint FILE]"
                .into(),
        ));
    };
    let slice_mode = match flags.values.get("slice").map(String::as_str) {
        None | Some("auto") => SliceMode::Auto,
        Some("off") => SliceMode::Off,
        Some("force") => SliceMode::Force,
        Some(other) => {
            return Err(CliError::Usage(format!(
                "--slice expects off, auto, or force, got {other:?}"
            )))
        }
    };
    let expr = flags
        .values
        .get("pred")
        .ok_or_else(|| CliError::Usage("detect needs --pred \"EXPR\"".into()))?;
    let spec = parse(expr)?;
    let trace = load_trace(path)?;
    let comp = &trace.computation;
    let definitely = flags.has("definitely");
    let enumerate = flags.has("enumerate");
    // 0 = sequential (the default); N ≥ 2 fans the combinatorial CNF
    // scans out over N workers with first-witness cancellation.
    let threads = flags.get_usize("threads", 0)?;
    let stats = flags.has("stats");
    let modality = if definitely { "Definitely" } else { "Possibly" };
    let opts = parse_budget(&flags, path, expr)?;
    let meter = BudgetMeter::new();
    // A polynomial question decides within any budget; only `--resume`
    // is meaningless there (nothing was ever interrupted).
    let reject_resume = |question: &str| {
        if opts.resume.is_some() {
            Err(CliError::Usage(format!(
                "--resume does not apply to {question}: it is polynomial and never checkpoints"
            )))
        } else {
            Ok(())
        }
    };

    let before = stats.then(gpd::counters::snapshot);
    let mut out = match spec {
        PredicateSpec::Conjunction(lits) => {
            reject_resume("a conjunction")?;
            let truth = literal_truth_variable(&trace, &lits)?;
            let processes: Vec<ProcessId> =
                lits.iter().map(|l| ProcessId::new(l.process)).collect();
            if slice_mode == SliceMode::Force {
                // A conjunction is its own regular envelope; `truth`
                // already encodes each literal's polarity, so every
                // constrained process wants `truth` positive.
                let literals: Vec<(ProcessId, bool)> =
                    processes.iter().map(|&p| (p, true)).collect();
                let pred = RegularPredicate::conjunction(comp, &truth, &literals);
                if definitely {
                    let verdict = definitely_slice(comp, &pred);
                    Ok(format!("{modality}({expr}): {verdict}\n"))
                } else {
                    match possibly_slice(comp, &pred) {
                        Some(cut) => Ok(format!(
                            "{modality}({expr}): true\n{}\n",
                            describe_cut(comp, &cut)
                        )),
                        None => Ok(format!("{modality}({expr}): false\n")),
                    }
                }
            } else if definitely {
                let verdict = definitely_conjunctive(comp, &truth, &processes);
                Ok(format!("{modality}({expr}): {verdict}\n"))
            } else {
                match possibly_conjunctive(comp, &truth, &processes) {
                    Some(cut) => Ok(format!(
                        "{modality}({expr}): true\n{}\n",
                        describe_cut(comp, &cut)
                    )),
                    None => Ok(format!("{modality}({expr}): false\n")),
                }
            }
        }
        PredicateSpec::Cnf(clauses) => {
            let all_lits: Vec<LitSpec> = clauses.iter().flatten().cloned().collect();
            let truth = literal_truth_variable(&trace, &all_lits)?;
            let phi = SingularCnf::new(
                clauses
                    .iter()
                    .map(|c| {
                        CnfClause::new(
                            c.iter()
                                .map(|l| (ProcessId::new(l.process), true))
                                .collect(),
                        )
                    })
                    .collect(),
            );
            // SliceReduce pre-pass: the conjunction of Φ's unit clauses
            // is a regular envelope implied by Φ, and its slice window
            // bounds every Φ-cut.
            let envelope = match slice_mode {
                SliceMode::Off => None,
                SliceMode::Auto | SliceMode::Force => cnf_envelope(comp, &truth, &phi),
            };
            if slice_mode == SliceMode::Force && envelope.is_none() {
                return Err(CliError::Usage(
                    "--slice force needs a regular envelope, but the CNF has no unit clause \
                     (nothing regular to slice on)"
                        .into(),
                ));
            }
            // Slicing competes for the same budget as the engine it
            // feeds; if it exhausts the budget, fall back to the
            // unsliced engine, which will checkpoint as usual.
            let slice = match &envelope {
                None => None,
                Some(env) if opts.active => {
                    Slice::build_budgeted(comp, env, &opts.budget, &meter).ok()
                }
                Some(env) => Some(Slice::build(comp, env)),
            };
            if definitely {
                // Checkpoints pin their engine name: resume through the
                // sliced sweep only if it was taken there.
                let sliced = match (&slice, opts.resume.as_ref()) {
                    (Some(_), Some(cp)) => cp.detector() == DEFINITELY_LEVELWISE_SLICED,
                    (Some(_), None) => true,
                    (None, _) => false,
                };
                if opts.active {
                    // The budget *is* the guard: the sweep stops at the
                    // deadline/cap instead of running away.
                    let verdict = if let (true, Some(sl)) = (sliced, &slice) {
                        definitely_levelwise_sliced_budgeted(
                            comp,
                            sl,
                            |cut| phi.eval(&truth, cut),
                            threads,
                            &opts.budget,
                            &meter,
                            opts.resume.as_ref(),
                        )
                    } else {
                        definitely_levelwise_budgeted(
                            comp,
                            |cut| phi.eval(&truth, cut),
                            threads,
                            &opts.budget,
                            &meter,
                            opts.resume.as_ref(),
                        )
                    }
                    .map_err(detect_error)?;
                    render_bool_verdict(modality, expr, verdict, &opts)
                } else if let Some(sl) = &slice {
                    guard_enumeration(comp, enumerate, "Definitely(cnf)")?;
                    let verdict = gpd::slice::definitely_levelwise_sliced(
                        comp,
                        sl,
                        |cut| phi.eval(&truth, cut),
                        threads,
                    );
                    Ok(format!("{modality}({expr}): {verdict}\n"))
                } else {
                    guard_enumeration(comp, enumerate, "Definitely(cnf)")?;
                    let verdict = definitely_by_enumeration(comp, |cut| phi.eval(&truth, cut));
                    Ok(format!("{modality}({expr}): {verdict}\n"))
                }
            } else if opts.active {
                // The sliced odometer engines keep the unsliced engine
                // names (the window prune preserves the combination
                // shape), so checkpoints stay interchangeable.
                let verdict = if let Some(sl) = &slice {
                    possibly_singular_sliced_budgeted(
                        comp,
                        &truth,
                        &phi,
                        sl,
                        threads,
                        &opts.budget,
                        &meter,
                        opts.resume.as_ref(),
                    )
                } else {
                    possibly_singular_budgeted(
                        comp,
                        &truth,
                        &phi,
                        threads,
                        &opts.budget,
                        &meter,
                        opts.resume.as_ref(),
                    )
                }
                .map_err(detect_error)?;
                render_witness_verdict(comp, modality, expr, verdict, &opts)
            } else if let Some(sl) = &slice {
                let verdict = possibly_singular_sliced_budgeted(
                    comp,
                    &truth,
                    &phi,
                    sl,
                    threads,
                    &Budget::unlimited(),
                    &meter,
                    None,
                )
                .map_err(detect_error)?;
                render_witness_verdict(comp, modality, expr, verdict, &opts)
            } else {
                match possibly_singular_par(comp, &truth, &phi, threads) {
                    Some(cut) => Ok(format!(
                        "{modality}({expr}): true\n{}\n",
                        describe_cut(comp, &cut)
                    )),
                    None => Ok(format!("{modality}({expr}): false\n")),
                }
            }
        }
        PredicateSpec::Sum { name, op, k } => {
            if slice_mode == SliceMode::Force {
                return Err(CliError::Usage(
                    "--slice force applies only to conjunction and cnf predicates; \
                     sum predicates are not regular"
                        .into(),
                ));
            }
            let var = find_int(&trace, &name)?;
            match (op, definitely) {
                (SumOp::Eq, false) if opts.active => {
                    let verdict = possibly_exact_sum_budgeted(
                        comp,
                        var,
                        k,
                        threads,
                        &opts.budget,
                        &meter,
                        opts.resume.as_ref(),
                    )
                    .map_err(detect_error)?;
                    render_witness_verdict(comp, modality, expr, verdict, &opts)
                }
                (SumOp::Eq, true) if opts.active => {
                    let verdict = definitely_exact_sum_budgeted(
                        comp,
                        var,
                        k,
                        threads,
                        &opts.budget,
                        &meter,
                        opts.resume.as_ref(),
                    )
                    .map_err(detect_error)?;
                    render_bool_verdict(modality, expr, verdict, &opts)
                }
                (SumOp::Eq, false) => match possibly_exact_sum(comp, var, k) {
                    Ok(Some(cut)) => Ok(format!(
                        "{modality}({expr}): true\n{}\n",
                        describe_cut(comp, &cut)
                    )),
                    Ok(None) => Ok(format!("{modality}({expr}): false\n")),
                    Err(err) => {
                        guard_enumeration(
                            comp,
                            enumerate,
                            &format!("{err}; exact detection (Theorem 2: NP-complete)"),
                        )?;
                        match possibly_by_enumeration(comp, |c| var.sum_at(c) == k) {
                            Some(cut) => Ok(format!(
                                "{modality}({expr}): true (by enumeration)\n{}\n",
                                describe_cut(comp, &cut)
                            )),
                            None => Ok(format!("{modality}({expr}): false (by enumeration)\n")),
                        }
                    }
                },
                (SumOp::Eq, true) => match definitely_exact_sum(comp, var, k) {
                    Ok(verdict) => Ok(format!("{modality}({expr}): {verdict}\n")),
                    Err(err) => {
                        guard_enumeration(comp, enumerate, &err.to_string())?;
                        let verdict = definitely_by_enumeration(comp, |c| var.sum_at(c) == k);
                        Ok(format!("{modality}({expr}): {verdict} (by enumeration)\n"))
                    }
                },
                (op, false) => {
                    reject_resume("Possibly(sum relop)")?;
                    let relop = match op {
                        SumOp::Lt => Relop::Lt,
                        SumOp::Le => Relop::Le,
                        SumOp::Gt => Relop::Gt,
                        SumOp::Ge => Relop::Ge,
                        SumOp::Eq => unreachable!("handled above"),
                    };
                    match possibly_sum(comp, var, relop, k) {
                        Some(cut) => Ok(format!(
                            "{modality}({expr}): true\n{} (Σ = {})\n",
                            describe_cut(comp, &cut),
                            var.sum_at(&cut)
                        )),
                        None => Ok(format!("{modality}({expr}): false\n")),
                    }
                }
                (op, true) => {
                    let relop = match op {
                        SumOp::Lt => Relop::Lt,
                        SumOp::Le => Relop::Le,
                        SumOp::Gt => Relop::Gt,
                        SumOp::Ge => Relop::Ge,
                        SumOp::Eq => unreachable!("handled above"),
                    };
                    if opts.active {
                        let verdict = definitely_sum_budgeted(
                            comp,
                            var,
                            relop,
                            k,
                            threads,
                            &opts.budget,
                            &meter,
                            opts.resume.as_ref(),
                        )
                        .map_err(detect_error)?;
                        render_bool_verdict(modality, expr, verdict, &opts)
                    } else {
                        // definitely_sum short-circuits where it can but
                        // may enumerate: guard.
                        guard_enumeration(comp, enumerate, "Definitely(sum relop)")?;
                        let verdict = definitely_sum(comp, var, relop, k);
                        Ok(format!("{modality}({expr}): {verdict}\n"))
                    }
                }
            }
        }
        PredicateSpec::Count { name, spec } => {
            if slice_mode == SliceMode::Force {
                return Err(CliError::Usage(
                    "--slice force applies only to conjunction and cnf predicates; \
                     count predicates are not regular"
                        .into(),
                ));
            }
            let var = find_bool(&trace, &name)?;
            let n = comp.process_count() as u32;
            let phi = match spec {
                CountSpec::In(counts) => SymmetricPredicate::new(counts),
                CountSpec::Xor => SymmetricPredicate::exclusive_or(n),
                CountSpec::NotAllEqual => SymmetricPredicate::not_all_equal(n),
                CountSpec::AllEqual => SymmetricPredicate::all_equal(n),
                CountSpec::NoMajority => SymmetricPredicate::absence_of_simple_majority(n),
                CountSpec::NoTwoThirds => SymmetricPredicate::absence_of_two_thirds_majority(n),
                CountSpec::Exactly(k) => SymmetricPredicate::exactly(k),
            };
            if definitely {
                if opts.active {
                    let verdict = definitely_levelwise_budgeted(
                        comp,
                        |cut| phi.eval(comp, var, cut),
                        threads,
                        &opts.budget,
                        &meter,
                        opts.resume.as_ref(),
                    )
                    .map_err(detect_error)?;
                    render_bool_verdict(modality, expr, verdict, &opts)
                } else {
                    guard_enumeration(comp, enumerate, "Definitely(count)")?;
                    let verdict = definitely_symmetric(comp, var, &phi);
                    Ok(format!("{modality}({expr}): {verdict}\n"))
                }
            } else {
                reject_resume("Possibly(count)")?;
                match possibly_symmetric(comp, var, &phi) {
                    Some(cut) => Ok(format!(
                        "{modality}({expr}): true\n{}\n",
                        describe_cut(comp, &cut)
                    )),
                    None => Ok(format!("{modality}({expr}): false\n")),
                }
            }
        }
    }?;
    if let Some(before) = before {
        let work = gpd::counters::snapshot().since(&before);
        out.push_str(&format!(
            "scan stats: {} scan runs, {} pair checks, {} forces evaluations\n",
            work.scan_runs, work.pair_checks, work.forces_evals
        ));
        out.push_str(&format!(
            "kernel stats: {} clock-row reads, {} cut-successor allocations, {} vector-clock allocations\n",
            work.clock_row_reads, work.cut_successor_allocs, work.vclock_allocs
        ));
        out.push_str(&format!(
            "parallel stats: {} pool waves, {} steals, {} threads spawned, {} batched dominance passes\n",
            work.par_waves, work.par_steals, work.par_threads_spawned, work.dominance_batches
        ));
        out.push_str(&format!(
            "slice stats: {} nodes before, {} after\n",
            work.slice_nodes_before, work.slice_nodes_after
        ));
        out.push_str(&format!(
            "monitor stats: {} observed, {} duplicate, {} stale deliveries, peak queue depth {}\n",
            work.monitor_observed,
            work.monitor_duplicates,
            work.monitor_stale,
            work.monitor_queue_peak
        ));
        if opts.active {
            let remaining = match opts.budget.remaining_time() {
                Some(d) => format!(", {}ms of deadline left", d.as_millis()),
                None => String::new(),
            };
            out.push_str(&format!(
                "budget stats: {} nodes explored{remaining}\n",
                meter.nodes()
            ));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    fn temp_trace(name: &str, protocol: &str, extra: &[&str]) -> String {
        let path =
            std::env::temp_dir().join(format!("gpd-cli-test-{name}-{}.trace", std::process::id()));
        let path = path.to_string_lossy().to_string();
        let mut a = vec![protocol, "--seed", "7", "-o"];
        a.push(&path);
        a.extend_from_slice(extra);
        simulate(&args(&a)).unwrap();
        path
    }

    #[test]
    fn simulate_writes_a_parsable_trace() {
        let out = simulate(&args(&["token-ring", "--n", "3", "--tokens", "1"])).unwrap();
        assert!(out.starts_with("gpd-trace 1"));
        assert!(read_trace(&out).is_ok());
    }

    #[test]
    fn simulate_rejects_bad_input() {
        assert!(matches!(simulate(&args(&[])), Err(CliError::Usage(_))));
        assert!(matches!(
            simulate(&args(&["warp-drive"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            simulate(&args(&["token-ring", "--n", "2", "--tokens", "5"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            simulate(&args(&["token-ring", "--n", "x"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            simulate(&args(&["token-ring", "--bogus"])),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn stats_reports_shape() {
        let path = temp_trace("stats", "voting", &["--n", "3"]);
        let out = stats(&args(&[&path])).unwrap();
        assert!(out.contains("processes: 3"));
        assert!(out.contains("voted_yes"));
        assert!(out.contains("width"));
        assert!(out.contains("height"));
        let with_cuts = stats(&args(&[&path, "--cuts"])).unwrap();
        assert!(with_cuts.contains("consistent cuts:"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn lattice_profile_renders() {
        let path = temp_trace("lattice", "voting", &["--n", "3"]);
        let out = lattice(&args(&[&path])).unwrap();
        assert!(out.contains("consistent cuts:"), "{out}");
        assert!(out.contains("   0 |        1"), "{out}");
        std::fs::remove_file(&path).ok();

        // Guard: a big trace is refused without --enumerate.
        let big = temp_trace("lattice-big", "token-ring", &["--n", "8", "--tokens", "4"]);
        assert!(matches!(
            lattice(&args(&[&big])),
            Err(CliError::Intractable(_))
        ));
        std::fs::remove_file(&big).ok();
    }

    #[test]
    fn dot_renders_with_variable() {
        let path = temp_trace("dot", "token-ring", &["--n", "3"]);
        let out = dot(&args(&[&path, "--var", "has_token"])).unwrap();
        assert!(out.contains("digraph"));
        assert!(matches!(
            dot(&args(&[&path, "--var", "missing"])),
            Err(CliError::Trace(_))
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn detect_conjunction_on_mutex() {
        let path = temp_trace("conj", "mutex", &["--n", "3", "--rounds", "1"]);
        let out = detect(&args(&[&path, "--pred", "conj in_cs@0 in_cs@1"])).unwrap();
        assert!(out.contains("false"), "{out}");
        // Negated literals work: ¬in_cs everywhere is at least initially true.
        let out = detect(&args(&[&path, "--pred", "conj !in_cs@0 !in_cs@1 !in_cs@2"])).unwrap();
        assert!(out.contains("true"), "{out}");
        // Definitely, polynomial path.
        let out = detect(&args(&[
            &path,
            "--pred",
            "conj !in_cs@0 !in_cs@1",
            "--definitely",
        ]))
        .unwrap();
        assert!(out.contains("true"), "{out}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn detect_sums_on_token_ring() {
        let path = temp_trace("sum", "token-ring", &["--n", "4", "--tokens", "2"]);
        let out = detect(&args(&[&path, "--pred", "sum tokens == 2"])).unwrap();
        assert!(out.contains("true"), "{out}");
        let out = detect(&args(&[&path, "--pred", "sum tokens > 2"])).unwrap();
        assert!(out.contains("false"), "{out}");
        let out = detect(&args(&[&path, "--pred", "sum tokens <= 1"])).unwrap();
        assert!(out.contains("Σ"), "{out}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn detect_counts_on_voting() {
        let path = temp_trace("count", "voting", &["--n", "4"]);
        let out = detect(&args(&[&path, "--pred", "count voted in {0}"])).unwrap();
        assert!(out.contains("true"), "{out}"); // nobody has voted initially
        let out = detect(&args(&[&path, "--pred", "count voted exactly 4"])).unwrap();
        assert!(out.contains("true"), "{out}"); // everyone eventually votes
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn detect_cnf_on_token_ring() {
        let path = temp_trace("cnf", "token-ring", &["--n", "4", "--tokens", "1"]);
        let out = detect(&args(&[
            &path,
            "--pred",
            "cnf has_token@0 | has_token@1 & !has_token@2 | !has_token@3",
        ]))
        .unwrap();
        assert!(out.contains("Possibly"), "{out}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn detect_stats_flag_reports_scan_work() {
        let path = temp_trace("stats", "token-ring", &["--n", "4", "--tokens", "1"]);
        let pred = "cnf has_token@0 | has_token@1 & !has_token@2 | !has_token@3";
        let out = detect(&args(&[&path, "--pred", pred, "--stats"])).unwrap();
        let stats_line = out
            .lines()
            .find(|l| l.starts_with("scan stats:"))
            .unwrap_or_else(|| panic!("no stats line in {out:?}"));
        assert!(stats_line.contains("scan runs"), "{stats_line}");
        assert!(stats_line.contains("forces evaluations"), "{stats_line}");
        let kernel_line = out
            .lines()
            .find(|l| l.starts_with("kernel stats:"))
            .unwrap_or_else(|| panic!("no kernel stats line in {out:?}"));
        assert!(kernel_line.contains("clock-row reads"), "{kernel_line}");
        assert!(
            kernel_line.contains("0 vector-clock allocations"),
            "the flat kernel must answer detection without owned clocks: {kernel_line}"
        );
        let par_line = out
            .lines()
            .find(|l| l.starts_with("parallel stats:"))
            .unwrap_or_else(|| panic!("no parallel stats line in {out:?}"));
        assert!(par_line.contains("pool waves"), "{par_line}");
        assert!(par_line.contains("threads spawned"), "{par_line}");
        assert!(par_line.contains("batched dominance passes"), "{par_line}");
        // Without the flag the lines are absent.
        let out = detect(&args(&[&path, "--pred", pred])).unwrap();
        assert!(!out.contains("scan stats:"), "{out}");
        assert!(!out.contains("kernel stats:"), "{out}");
        assert!(!out.contains("parallel stats:"), "{out}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn detect_cnf_threads_flag_keeps_the_verdict() {
        let path = temp_trace("cnf-par", "token-ring", &["--n", "4", "--tokens", "1"]);
        let pred = "cnf has_token@0 | has_token@1 & !has_token@2 | !has_token@3";
        let seq = detect(&args(&[&path, "--pred", pred])).unwrap();
        for threads in ["1", "2", "4"] {
            let par = detect(&args(&[&path, "--pred", pred, "--threads", threads])).unwrap();
            // The verdict line is identical at every thread count; only
            // the witness frontier may differ.
            assert_eq!(
                par.lines().next().unwrap(),
                seq.lines().next().unwrap(),
                "threads = {threads}"
            );
        }
        assert!(matches!(
            detect(&args(&[&path, "--pred", pred, "--threads", "x"])),
            Err(CliError::Usage(_))
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn detect_slice_modes_agree_on_cnf() {
        let path = temp_trace("slice-cnf", "token-ring", &["--n", "4", "--tokens", "1"]);
        // (has_token@0) ∧ (has_token@1 ∨ ¬has_token@2): the unit clause
        // gives the pre-pass a regular envelope to slice on.
        let pred = "cnf has_token@0 & has_token@1 | !has_token@2";
        let off = detect(&args(&[&path, "--pred", pred, "--slice", "off"])).unwrap();
        let auto = detect(&args(&[&path, "--pred", pred])).unwrap();
        let force = detect(&args(&[&path, "--pred", pred, "--slice", "force"])).unwrap();
        assert_eq!(off, auto, "sliced witness must be byte-identical");
        assert_eq!(off, force);
        let definitely: Vec<String> = ["off", "auto", "force"]
            .iter()
            .map(|mode| {
                detect(&args(&[
                    &path,
                    "--pred",
                    pred,
                    "--definitely",
                    "--slice",
                    mode,
                    "--max-nodes",
                    "100000",
                ]))
                .unwrap()
            })
            .collect();
        assert_eq!(definitely[0], definitely[1]);
        assert_eq!(definitely[0], definitely[2]);
        // --stats surfaces the event-graph compression of the pre-pass.
        let out = detect(&args(&[&path, "--pred", pred, "--stats"])).unwrap();
        let line = out
            .lines()
            .find(|l| l.starts_with("slice stats:"))
            .unwrap_or_else(|| panic!("no slice stats line in {out:?}"));
        assert!(line.contains("nodes before"), "{line}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn detect_slice_force_is_exact_on_conjunctions() {
        let path = temp_trace("slice-conj", "token-ring", &["--n", "3", "--tokens", "1"]);
        let pred = "conj has_token@0 !has_token@1";
        let plain = detect(&args(&[&path, "--pred", pred])).unwrap();
        let forced = detect(&args(&[&path, "--pred", pred, "--slice", "force"])).unwrap();
        assert_eq!(plain, forced, "least B-cut must match the GW scan witness");
        let plain = detect(&args(&[&path, "--pred", pred, "--definitely"])).unwrap();
        let forced = detect(&args(&[
            &path,
            "--pred",
            pred,
            "--definitely",
            "--slice",
            "force",
        ]))
        .unwrap();
        assert_eq!(plain, forced);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn detect_slice_force_rejects_inapplicable_predicates() {
        let path = temp_trace("slice-bad", "token-ring", &["--n", "3", "--tokens", "1"]);
        for pred in ["sum tokens == 1", "count has_token exactly 1"] {
            let err = detect(&args(&[&path, "--pred", pred, "--slice", "force"])).unwrap_err();
            assert!(matches!(err, CliError::Usage(_)), "{pred}: {err:?}");
        }
        // A CNF with no unit clause has no regular envelope.
        let err = detect(&args(&[
            &path,
            "--pred",
            "cnf has_token@0 | has_token@1",
            "--slice",
            "force",
        ]))
        .unwrap_err();
        assert!(matches!(err, CliError::Usage(_)), "{err:?}");
        // And an unknown mode is rejected up front.
        let err = detect(&args(&[
            &path,
            "--pred",
            "conj has_token@0",
            "--slice",
            "sometimes",
        ]))
        .unwrap_err();
        assert!(matches!(err, CliError::Usage(_)), "{err:?}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn enumeration_guard_blocks_big_exhaustive_questions() {
        let path = temp_trace("guard", "bank", &["--n", "12"]);
        // Bank balances have unbounded steps: exact sum falls back to
        // enumeration, which the guard refuses on a large trace.
        let err = detect(&args(&[&path, "--pred", "sum balance == 1200"])).unwrap_err();
        assert!(matches!(err, CliError::Intractable(_)), "{err:?}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_and_duplicate_literals_are_rejected() {
        let path = temp_trace("badlits", "voting", &["--n", "3"]);
        assert!(matches!(
            detect(&args(&[&path, "--pred", "conj nope@0"])),
            Err(CliError::Trace(_))
        ));
        assert!(matches!(
            detect(&args(&[&path, "--pred", "conj voted@0 voted@0"])),
            Err(CliError::Parse(_))
        ));
        assert!(matches!(
            detect(&args(&[&path, "--pred", "conj voted@9"])),
            Err(CliError::Trace(_))
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn budgeted_detect_interrupts_checkpoints_and_resumes() {
        let path = temp_trace("budget", "bank", &["--n", "3"]);
        let ckpt = format!("{path}.ckpt");
        // Money in flight makes Σ < 300 attainable mid-transfer, so the
        // Definitely question needs the exponential lattice sweep.
        let pred = "sum balance < 300";
        let reference = detect(&args(&[
            &path,
            "--pred",
            pred,
            "--definitely",
            "--enumerate",
        ]))
        .unwrap()
        .lines()
        .next()
        .unwrap()
        .to_string();

        // A 3-node cap cannot finish the sweep: Unknown, bounds, ckpt.
        let err = detect(&args(&[
            &path,
            "--pred",
            pred,
            "--definitely",
            "--max-nodes",
            "3",
        ]))
        .unwrap_err();
        let CliError::Unknown(msg) = err else {
            panic!("expected Unknown, got {err:?}");
        };
        assert!(msg.contains("node cap"), "{msg}");
        assert!(msg.contains("nodes explored"), "{msg}");
        assert!(msg.contains(&ckpt), "{msg}");
        assert!(std::path::Path::new(&ckpt).exists());

        // A checkpoint is pinned to its predicate.
        let err = detect(&args(&[
            &path,
            "--pred",
            "sum balance < 299",
            "--definitely",
            "--resume",
            &ckpt,
        ]))
        .unwrap_err();
        assert!(
            matches!(&err, CliError::Usage(m) if m.contains("was taken for predicate")),
            "{err:?}"
        );

        // Resuming with room to spare reproduces the reference verdict.
        let resumed = detect(&args(&[
            &path,
            "--pred",
            pred,
            "--definitely",
            "--resume",
            &ckpt,
            "--max-nodes",
            "100000000",
        ]))
        .unwrap();
        assert_eq!(resumed.lines().next().unwrap(), reference);

        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&ckpt).ok();
    }

    #[test]
    fn budget_stats_and_polynomial_resume_rejection() {
        let path = temp_trace("budget-stats", "voting", &["--n", "3"]);
        let out = detect(&args(&[
            &path,
            "--pred",
            "count voted in {0}",
            "--definitely",
            "--max-nodes",
            "100000000",
            "--stats",
        ]))
        .unwrap();
        assert!(out.contains("budget stats:"), "{out}");
        assert!(out.contains("nodes explored"), "{out}");
        // Without budget flags no budget line appears.
        let out = detect(&args(&[
            &path,
            "--pred",
            "count voted in {0}",
            "--definitely",
            "--enumerate",
            "--stats",
        ]))
        .unwrap();
        assert!(!out.contains("budget stats:"), "{out}");
        // Deadline flag parses and reports remaining time under --stats.
        let out = detect(&args(&[
            &path,
            "--pred",
            "conj !voted@0 !voted@1",
            "--deadline-ms",
            "60000",
            "--stats",
        ]))
        .unwrap();
        assert!(out.contains("deadline left"), "{out}");
        assert!(matches!(
            detect(&args(&[
                &path,
                "--pred",
                "conj voted@0",
                "--deadline-ms",
                "x"
            ])),
            Err(CliError::Usage(_))
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn two_phase_commit_trace_supports_commit_point_query() {
        let path = temp_trace("2pc", "2pc", &["--n", "4"]);
        // Unanimous yes: Definitely(all participants prepared).
        let out = detect(&args(&[
            &path,
            "--pred",
            "conj prepared@1 prepared@2 prepared@3",
            "--definitely",
        ]))
        .unwrap();
        assert!(out.contains("true"), "{out}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn top_level_dispatch() {
        assert!(crate::run(&args(&["help"]))
            .unwrap()
            .contains("gpd <command>"));
        assert!(matches!(crate::run(&[]), Err(CliError::Usage(_))));
        assert!(matches!(
            crate::run(&args(&["frobnicate"])),
            Err(CliError::Usage(_))
        ));
    }
}
