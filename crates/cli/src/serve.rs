//! The networked-monitoring subcommands: `gpd serve`, `gpd feed`,
//! `gpd slicer`, and `gpd chaos`.
//!
//! `serve` hosts the durable [`ConjunctiveMonitor`](gpd::online)
//! behind the WAL-backed TCP service from `gpd-server`; `feed` replays
//! a recorded `.trace` file into it as a live, retrying event stream;
//! `slicer` replays it **decentralized** — one crash-tolerant slicer
//! agent per process, each forwarding only abstraction-relevant events
//! plus heartbeats; `chaos` interposes a fault-injecting proxy for
//! drills. Together they make the crash/recovery path drivable from a
//! shell:
//!
//! ```text
//! gpd serve --wal-dir wal --addr 127.0.0.1:0 --addr-file addr.txt &
//! gpd feed trace.gpd --addr "$(cat addr.txt)" --var in_cs --shutdown
//! # or, decentralized:
//! gpd slicer trace.gpd --addr "$(cat addr.txt)" --var in_cs --all --status --shutdown
//! ```

use std::io::Write as _;
use std::time::Duration;

use gpd_server::chaos::{self, ChaosConfig};
use gpd_server::client::{ClientConfig, FeedClient};
use gpd_server::server::{self, ServerConfig, ServerSummary};
use gpd_server::slicer::SlicerAgent;
use gpd_server::wal::{FsyncPolicy, WalConfig};
use gpd_sim::FaultPlan;

use crate::commands::{find_bool, find_int, load_trace, parse_flags, Flags};
use crate::CliError;

/// Announces a bound address: printed immediately (and flushed, so
/// scripts piping stdout see it before the command blocks) and written
/// to `--addr-file` when given.
fn announce(addr: std::net::SocketAddr, flags: &Flags) -> Result<(), CliError> {
    println!("listening on {addr}");
    std::io::stdout()
        .flush()
        .map_err(|e| CliError::Io(e.to_string()))?;
    if let Some(path) = flags.values.get("addr-file") {
        std::fs::write(path, format!("{addr}\n"))
            .map_err(|e| CliError::Io(format!("{path}: {e}")))?;
    }
    Ok(())
}

fn render_witness(witness: &Option<Vec<Vec<u32>>>) -> String {
    match witness {
        Some(cut) => format!("verdict: true\nwitness clocks: {cut:?}\n"),
        None => "verdict: false\n".to_string(),
    }
}

/// `gpd serve [--addr A] [--wal-dir DIR] [--fsync always|interval|group]
///  [--fsync-interval-ms N] [--shards N] [--queue-cap N] [--max-tenants N]
///  [--snapshot-every N] [--quota-frames N] [--heartbeat-timeout-ms N]
///  [--scrub-every-ms N] [--decentralized] [--stats] [--addr-file FILE]`
///
/// Blocks until a client sends the shutdown command (`gpd feed
/// --shutdown`), then reports the final verdict and counters —
/// per-tenant rows when `--stats` is given or more than one tenant
/// connected. (`--workers` is accepted as an alias for `--shards`.)
///
/// Decentralized slicer sessions are always accepted;
/// `--heartbeat-timeout-ms` tunes how long a silent slicer stays
/// "live" before its tenant degrades to `Unknown`, and
/// `--decentralized` adds the slicer census (live/dead/done, DEGRADED)
/// to the per-tenant summary rows. A quarantined tenant is still
/// drained at shutdown and its last-known verdict plus the quarantine
/// reason are printed.
///
/// Startup prints one recovery line per tenant whose WAL replayed any
/// records, flagging `DATA LOSS` when recovery had to truncate a torn
/// tail or drop unreadable segments. `--scrub-every-ms N` enables the
/// background scrub: each tenant's cold segments are CRC-verified at
/// least every N milliseconds, latent corruption is healed from the
/// live in-memory state where possible, and the scrub counters join
/// the per-tenant summary rows.
pub fn serve(args: &[String]) -> Result<String, CliError> {
    let flags = parse_flags(
        args,
        &[
            "addr",
            "wal-dir",
            "fsync",
            "fsync-interval-ms",
            "shards",
            "workers",
            "queue-cap",
            "max-tenants",
            "snapshot-every",
            "quota-frames",
            "heartbeat-timeout-ms",
            "scrub-every-ms",
            "addr-file",
        ],
        &["stats", "decentralized"],
    )?;
    if !flags.positional.is_empty() {
        return Err(CliError::Usage(
            "serve [--addr A] [--wal-dir DIR] [--fsync always|interval|group] [flags]".into(),
        ));
    }
    let addr = flags
        .values
        .get("addr")
        .map_or("127.0.0.1:7878", String::as_str);
    let wal_dir = flags
        .values
        .get("wal-dir")
        .map_or("gpd-wal", String::as_str);
    let fsync = match flags.values.get("fsync").map(String::as_str) {
        None | Some("always") => FsyncPolicy::Always,
        Some("group") => FsyncPolicy::Group,
        Some("interval") => FsyncPolicy::Interval(Duration::from_millis(
            flags.get_u64("fsync-interval-ms", 200)?,
        )),
        Some(other) => {
            return Err(CliError::Usage(format!(
                "--fsync expects always, interval, or group, got {other:?}"
            )))
        }
    };

    let mut config = ServerConfig::new(WalConfig::new(wal_dir).with_fsync(fsync));
    config.shards = match flags.values.get("shards") {
        Some(_) => flags.get_usize("shards", 2)?,
        None => flags.get_usize("workers", 2)?,
    };
    config.queue_cap = match flags.get_usize("queue-cap", 0)? {
        0 => None,
        cap => Some(cap),
    };
    config.max_tenants = flags.get_usize("max-tenants", 1024)?;
    config.snapshot_every = match flags.get_u64("snapshot-every", 0)? {
        0 => None,
        n => Some(n),
    };
    config.quota_frames = flags.get_usize("quota-frames", 64)?;
    config.heartbeat_timeout = Duration::from_millis(flags.get_u64("heartbeat-timeout-ms", 2000)?);
    config.scrub_every = match flags.get_u64("scrub-every-ms", 0)? {
        0 => None,
        n => Some(Duration::from_millis(n)),
    };
    let per_tenant = flags.has("stats");
    let decentralized = flags.has("decentralized");

    let before = gpd::counters::snapshot();
    let handle = server::start(addr, config).map_err(|e| CliError::Io(format!("{addr}: {e}")))?;
    announce(handle.local_addr(), &flags)?;
    for row in handle.tenant_stats() {
        if row.replayed == 0
            && row.recovered_truncated_bytes == 0
            && row.recovered_dropped_segments == 0
        {
            continue;
        }
        let loss = if row.recovered_truncated_bytes > 0 || row.recovered_dropped_segments > 0 {
            format!(
                " — DATA LOSS: {} bytes truncated, {} segments dropped",
                row.recovered_truncated_bytes, row.recovered_dropped_segments,
            )
        } else {
            String::new()
        };
        println!(
            "recovered tenant {}: {} records replayed{loss}",
            row.tenant, row.replayed,
        );
    }
    std::io::stdout()
        .flush()
        .map_err(|e| CliError::Io(e.to_string()))?;
    let summary = handle.wait();

    let monitor = gpd::counters::snapshot().since(&before);
    Ok(render_summary(
        &summary,
        &monitor,
        per_tenant,
        decentralized,
    ))
}

/// Formats the shutdown summary: verdict, counters, per-tenant rows,
/// and — always, whatever the row flags — a line per quarantined
/// tenant with its last-known verdict and the quarantine reason (a
/// quarantined tenant is drained, not dropped).
fn render_summary(
    summary: &ServerSummary,
    monitor: &gpd::counters::ScanCounters,
    per_tenant: bool,
    decentralized: bool,
) -> String {
    let stats = &summary.stats;
    let mut out = render_witness(&summary.witness);
    out.push_str(&format!(
        "server stats: {} observed, {} duplicate, {} stale, {} rejected, {} logged, {} resumes, {} wal segments\n",
        stats.observed,
        stats.duplicates,
        stats.stale,
        stats.rejected,
        stats.events_logged,
        stats.resumes,
        stats.wal_segments,
    ));
    out.push_str(&format!(
        "monitor stats: {} observed, {} duplicate, {} stale deliveries, peak queue depth {}\n",
        monitor.monitor_observed,
        monitor.monitor_duplicates,
        monitor.monitor_stale,
        monitor.monitor_queue_peak,
    ));
    if per_tenant || decentralized || summary.tenants.len() > 1 {
        for row in &summary.tenants {
            let slicers = if decentralized {
                format!(
                    ", slicers {} live / {} dead / {} done{}",
                    row.slicers_live,
                    row.slicers_dead,
                    row.slicers_done,
                    if row.degraded { ", DEGRADED" } else { "" },
                )
            } else {
                String::new()
            };
            let storage = if row.storage_errors > 0
                || row.scrub_passes > 0
                || row.scrub_corruptions > 0
                || row.recovered_truncated_bytes > 0
                || row.recovered_dropped_segments > 0
            {
                format!(
                    ", storage: {} errors, {} scrubs / {} corrupt / {} healed, {}B+{} lost at recovery",
                    row.storage_errors,
                    row.scrub_passes,
                    row.scrub_corruptions,
                    row.scrub_healed,
                    row.recovered_truncated_bytes,
                    row.recovered_dropped_segments,
                )
            } else {
                String::new()
            };
            out.push_str(&format!(
                "tenant {}: {} observed, {} duplicate, {} stale, {} rejected, queue peak {}, {} wal bytes, {} snapshots, {} resumes{}{}{}{}\n",
                row.tenant,
                row.observed,
                row.duplicates,
                row.stale,
                row.rejected,
                row.queue_peak,
                row.wal_bytes,
                row.snapshots,
                row.resumes,
                if row.witness_found { ", witness found" } else { "" },
                slicers,
                storage,
                if row.quarantined { ", QUARANTINED" } else { "" },
            ));
        }
    }
    for row in summary.tenants.iter().filter(|r| r.quarantined) {
        out.push_str(&format!(
            "tenant {} quarantined: {}; last-known verdict: {}\n",
            row.tenant,
            if row.quarantine_reason.is_empty() {
                "unknown reason"
            } else {
                &row.quarantine_reason
            },
            if row.witness_found { "true" } else { "false" },
        ));
    }
    out
}

/// Derives the per-process truth tracks the feed streams: either a
/// recorded boolean variable, or a threshold over a recorded integer
/// variable (`--int balance --below 100` / `--at-least 100`).
fn truth_tracks(
    trace: &gpd_computation::trace::Trace,
    flags: &Flags,
) -> Result<Vec<Vec<bool>>, CliError> {
    match (flags.values.get("var"), flags.values.get("int")) {
        (Some(name), None) => Ok(find_bool(trace, name)?.tracks().to_vec()),
        (None, Some(name)) => {
            let var = find_int(trace, name)?;
            let (threshold, below) = match (flags.values.get("below"), flags.values.get("at-least"))
            {
                (Some(v), None) => (parse_i64("below", v)?, true),
                (None, Some(v)) => (parse_i64("at-least", v)?, false),
                _ => {
                    return Err(CliError::Usage(
                        "--int needs exactly one of --below K / --at-least K".into(),
                    ))
                }
            };
            Ok(var
                .tracks()
                .iter()
                .map(|values| {
                    values
                        .iter()
                        .map(|&v| if below { v < threshold } else { v >= threshold })
                        .collect()
                })
                .collect())
        }
        _ => Err(CliError::Usage(
            "feed needs exactly one of --var NAME / --int NAME".into(),
        )),
    }
}

fn parse_i64(flag: &str, v: &str) -> Result<i64, CliError> {
    v.parse()
        .map_err(|_| CliError::Usage(format!("--{flag} expects an integer, got {v:?}")))
}

/// Converts truth tracks into the wire stream: the initial-state truth
/// vector plus every true state's vector clock, in the canonical merge
/// order (ascending local index, then process) — per-process FIFO, so
/// any interleaving the server sees is a valid delivery order.
fn stream_events(
    comp: &gpd_computation::Computation,
    tracks: &[Vec<bool>],
) -> (Vec<bool>, Vec<(usize, Vec<u32>)>) {
    let initial: Vec<bool> = tracks
        .iter()
        .map(|t| t.first().copied().unwrap_or(false))
        .collect();
    let mut events: Vec<(u32, usize)> = Vec::new(); // (local state index, process)
    for (p, track) in tracks.iter().enumerate() {
        for (k, &is_true) in track.iter().enumerate().skip(1) {
            if is_true {
                events.push((k as u32, p));
            }
        }
    }
    events.sort_unstable();
    let stream = events
        .into_iter()
        .map(|(k, p)| {
            let e = comp.event_at(p, k).expect("true state beyond the trace");
            (p, comp.clock(e).as_slice().to_vec())
        })
        .collect();
    (initial, stream)
}

/// `gpd feed <trace> --addr A (--var NAME | --int NAME --below K | --at-least K)
///  [--tenant T] [--io-timeout-ms N] [--retries N] [--backoff-ms N]
///  [--backoff-cap-ms N] [--seed S] [--window N] [--shutdown]`
pub fn feed(args: &[String]) -> Result<String, CliError> {
    let flags = parse_flags(
        args,
        &[
            "addr",
            "tenant",
            "var",
            "int",
            "below",
            "at-least",
            "io-timeout-ms",
            "retries",
            "backoff-ms",
            "backoff-cap-ms",
            "seed",
            "window",
        ],
        &["shutdown"],
    )?;
    let [path] = flags.positional.as_slice() else {
        return Err(CliError::Usage(
            "feed <trace> --addr A (--var NAME | --int NAME --below K) [flags]".into(),
        ));
    };
    let Some(addr) = flags.values.get("addr") else {
        return Err(CliError::Usage("feed needs --addr HOST:PORT".into()));
    };
    if flags.values.contains_key("var") == flags.values.contains_key("int") {
        return Err(CliError::Usage(
            "feed needs exactly one of --var NAME / --int NAME".into(),
        ));
    }
    let trace = load_trace(path)?;
    let tracks = truth_tracks(&trace, &flags)?;
    let (initial, events) = stream_events(&trace.computation, &tracks);

    let mut config = ClientConfig::new(addr.clone());
    if let Some(tenant) = flags.values.get("tenant") {
        config = config.with_tenant(tenant.clone());
    }
    config.io_timeout = Duration::from_millis(flags.get_u64("io-timeout-ms", 2000)?);
    config.max_retries = flags.get_u64("retries", 10)? as u32;
    config.backoff_base = Duration::from_millis(flags.get_u64("backoff-ms", 25)?);
    config.backoff_cap = Duration::from_millis(flags.get_u64("backoff-cap-ms", 1000)?);
    config.jitter_seed = flags.get_u64("seed", 0)?;
    config.max_inflight = flags.get_usize("window", 8)?;
    let client = FeedClient::new(config);

    let report = client
        .feed(&initial, &events)
        .map_err(|e| CliError::Io(e.to_string()))?;
    let mut out = format!(
        "fed {} events: {} accepted, {} duplicate, {} stale, {} skipped at resume\n\
         {} reconnects, {} backpressure retries\n",
        events.len(),
        report.accepted,
        report.duplicates,
        report.stale,
        report.resumed_past,
        report.reconnects,
        report.rejected_retries,
    );
    out.push_str(&render_witness(&report.witness));
    if flags.has("shutdown") {
        let final_witness = client.shutdown().map_err(|e| CliError::Io(e.to_string()))?;
        out.push_str(&format!(
            "server drained and stopped\nfinal {}",
            render_witness(&final_witness)
        ));
    }
    Ok(out)
}

/// Converts truth tracks into per-process slicer replay streams: the
/// initial-state truth vector plus, for each process, its non-initial
/// local states in local order as `(vector clock, local truth)`.
fn local_replay_streams(
    comp: &gpd_computation::Computation,
    tracks: &[Vec<bool>],
) -> gpd_sim::LocalStreams {
    let initial: Vec<bool> = tracks
        .iter()
        .map(|t| t.first().copied().unwrap_or(false))
        .collect();
    let streams = tracks
        .iter()
        .enumerate()
        .map(|(p, track)| {
            track
                .iter()
                .enumerate()
                .skip(1)
                .map(|(k, &is_true)| {
                    let e = comp.event_at(p, k as u32).expect("state beyond the trace");
                    (comp.clock(e).as_slice().to_vec(), is_true)
                })
                .collect()
        })
        .collect();
    gpd_sim::LocalStreams { initial, streams }
}

/// `gpd slicer <trace> --addr A (--var NAME | --int NAME --below K | --at-least K)
///  (--process P | --all) [--tenant T] [--summary-every N] [--heartbeat-ms N]
///  [--io-timeout-ms N] [--retries N] [--backoff-ms N] [--backoff-cap-ms N]
///  [--seed S] [--status] [--shutdown]`
///
/// Replays the trace **decentralized**: one slicer agent per process
/// (`--all`, threads) or a single process (`--process P`, so a shell
/// can run each agent as its own OS process and `kill`/restart them
/// independently). Each agent forwards only abstraction-relevant
/// events plus causal summaries and heartbeats, resyncing through the
/// epoch handshake after any crash or reconnect. `--status` queries
/// the server's decentralized verdict afterwards; `--shutdown` then
/// stops the server.
pub fn slicer(args: &[String]) -> Result<String, CliError> {
    let flags = parse_flags(
        args,
        &[
            "addr",
            "tenant",
            "var",
            "int",
            "below",
            "at-least",
            "process",
            "summary-every",
            "heartbeat-ms",
            "io-timeout-ms",
            "retries",
            "backoff-ms",
            "backoff-cap-ms",
            "seed",
        ],
        &["all", "status", "shutdown"],
    )?;
    let [path] = flags.positional.as_slice() else {
        return Err(CliError::Usage(
            "slicer <trace> --addr A (--var NAME | --int NAME --below K) (--process P | --all) [flags]"
                .into(),
        ));
    };
    let Some(addr) = flags.values.get("addr") else {
        return Err(CliError::Usage("slicer needs --addr HOST:PORT".into()));
    };
    if flags.values.contains_key("var") == flags.values.contains_key("int") {
        return Err(CliError::Usage(
            "slicer needs exactly one of --var NAME / --int NAME".into(),
        ));
    }
    if flags.has("all") == flags.values.contains_key("process") {
        return Err(CliError::Usage(
            "slicer needs exactly one of --process P / --all".into(),
        ));
    }
    let trace = load_trace(path)?;
    let tracks = truth_tracks(&trace, &flags)?;
    let gpd_sim::LocalStreams { initial, streams } =
        local_replay_streams(&trace.computation, &tracks);

    let mut config = ClientConfig::new(addr.clone());
    if let Some(tenant) = flags.values.get("tenant") {
        config = config.with_tenant(tenant.clone());
    }
    config.io_timeout = Duration::from_millis(flags.get_u64("io-timeout-ms", 2000)?);
    config.max_retries = flags.get_u64("retries", 10)? as u32;
    config.backoff_base = Duration::from_millis(flags.get_u64("backoff-ms", 25)?);
    config.backoff_cap = Duration::from_millis(flags.get_u64("backoff-cap-ms", 1000)?);
    config.jitter_seed = flags.get_u64("seed", 0)?;
    let summary_every = flags.get_usize("summary-every", 64)?;
    let heartbeat = Duration::from_millis(flags.get_u64("heartbeat-ms", 100)?);

    let processes: Vec<u32> = if flags.has("all") {
        (0..initial.len() as u32).collect()
    } else {
        let p = flags.get_usize("process", 0)? as u32;
        if p as usize >= initial.len() {
            return Err(CliError::Usage(format!(
                "--process {p} out of range for {} processes",
                initial.len()
            )));
        }
        vec![p]
    };

    let run_one = |p: u32| {
        let mut agent_config = config.clone();
        // Decorrelate the agents' backoff schedules.
        agent_config.jitter_seed = config.jitter_seed.wrapping_add(u64::from(p));
        let agent = SlicerAgent::new(
            agent_config,
            p,
            gpd::abstraction::LocalRelevance::Conjunctive,
        )
        .with_summary_every(summary_every)
        .with_heartbeat_interval(heartbeat);
        agent.run(&initial, &streams[p as usize])
    };
    let reports: Vec<_> = if processes.len() == 1 {
        vec![(processes[0], run_one(processes[0]))]
    } else {
        std::thread::scope(|scope| {
            let handles: Vec<_> = processes
                .iter()
                .map(|&p| (p, scope.spawn(move || run_one(p))))
                .collect();
            handles
                .into_iter()
                .map(|(p, h)| (p, h.join().expect("slicer thread panicked")))
                .collect()
        })
    };

    let mut out = String::new();
    for (p, report) in reports {
        let report = report.map_err(|e| CliError::Io(format!("slicer {p}: {e}")))?;
        let stats = &report.stats;
        out.push_str(&format!(
            "slicer {p}: {} observed, {} forwarded, {} summarized, reduction {:.1}x, {} heartbeats, {} reconnects, {} retransmits, epoch {}\n",
            stats.observed,
            stats.forwarded,
            stats.summarized,
            stats.reduction_ratio(),
            report.heartbeats,
            report.reconnects,
            report.retransmits,
            report.epoch,
        ));
    }
    let client = FeedClient::new(config);
    if flags.has("status") {
        let verdict = client
            .query_slicer_status()
            .map_err(|e| CliError::Io(e.to_string()))?;
        out.push_str(&render_witness(&verdict.witness));
        if verdict.degraded {
            out.push_str(&format!(
                "DEGRADED: verdict is Unknown below the progress frontier; dead slicers: {:?}\n",
                verdict.dead
            ));
        }
    }
    if flags.has("shutdown") {
        let final_witness = client.shutdown().map_err(|e| CliError::Io(e.to_string()))?;
        out.push_str(&format!(
            "server drained and stopped\nfinal {}",
            render_witness(&final_witness)
        ));
    }
    Ok(out)
}

/// `gpd chaos --upstream A [--listen B] [--drop P] [--duplicate P]
///  [--jitter P] [--jitter-lo-ms N] [--jitter-hi-ms N] [--reset-after N]
///  [--reset-every N] [--reset-limit N] [--partition-after N]
///  [--partition-frames N] [--partition-direction to-server|to-client]
///  [--seed S] [--addr-file FILE]`
///
/// Blocks forever (kill the process to stop it); meant for drills and
/// the CI chaos smoke job. `--reset-after N` forces the first
/// connection reset after N forwarded frames; `--reset-every M`
/// repeats it every M further frames (a reconnect storm), bounded by
/// `--reset-limit K` (0 = unlimited). `--partition-after N` starts an
/// asymmetric partition per connection after N frames in the chosen
/// direction, swallowing the next `--partition-frames` frames before
/// the link heals.
pub fn chaos(args: &[String]) -> Result<String, CliError> {
    let flags = parse_flags(
        args,
        &[
            "upstream",
            "listen",
            "drop",
            "duplicate",
            "jitter",
            "jitter-lo-ms",
            "jitter-hi-ms",
            "reset-after",
            "reset-every",
            "reset-limit",
            "partition-after",
            "partition-frames",
            "partition-direction",
            "seed",
            "addr-file",
        ],
        &[],
    )?;
    if !flags.positional.is_empty() {
        return Err(CliError::Usage(
            "chaos --upstream HOST:PORT [--listen A] [--drop P] [flags]".into(),
        ));
    }
    let Some(upstream) = flags.values.get("upstream") else {
        return Err(CliError::Usage("chaos needs --upstream HOST:PORT".into()));
    };
    let listen = flags
        .values
        .get("listen")
        .map_or("127.0.0.1:0", String::as_str);
    let mut config = ChaosConfig::new(upstream.clone());
    config.faults = FaultPlan {
        drop_prob: flags.get_f64("drop", 0.0)?,
        duplicate_prob: flags.get_f64("duplicate", 0.0)?,
        jitter_prob: flags.get_f64("jitter", 0.0)?,
        jitter_range: (
            flags.get_u64("jitter-lo-ms", 1)?,
            flags.get_u64("jitter-hi-ms", 5)?,
        ),
        crashes: Vec::new(),
    };
    config.reset_after = match flags.get_u64("reset-after", 0)? {
        0 => None,
        n => Some(n),
    };
    config.reset_every = match flags.get_u64("reset-every", 0)? {
        0 => None,
        n => Some(n),
    };
    config.reset_limit = flags.get_u64("reset-limit", 0)?;
    config.partition_after = match flags.get_u64("partition-after", 0)? {
        0 => None,
        n => Some(n),
    };
    config.partition_frames = flags.get_u64("partition-frames", 0)?;
    config.partition_direction = match flags.values.get("partition-direction").map(String::as_str) {
        None | Some("to-server") => gpd_server::chaos::PartitionDirection::ToServer,
        Some("to-client") => gpd_server::chaos::PartitionDirection::ToClient,
        Some(other) => {
            return Err(CliError::Usage(format!(
                "--partition-direction expects to-server or to-client, got {other:?}"
            )))
        }
    };
    config.seed = flags.get_u64("seed", 0)?;

    let handle =
        chaos::start(listen, config).map_err(|e| CliError::Io(format!("{listen}: {e}")))?;
    announce(handle.local_addr(), &flags)?;
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::commands::simulate;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    fn temp_path(name: &str) -> String {
        std::env::temp_dir()
            .join(format!("gpd-serve-{name}-{}", std::process::id()))
            .to_string_lossy()
            .into_owned()
    }

    fn temp_trace(name: &str, protocol: &str, extra: &[&str]) -> String {
        let path = temp_path(&format!("{name}.trace"));
        let mut a = vec![protocol, "-o", &path];
        a.extend_from_slice(extra);
        simulate(&args(&a)).unwrap();
        path
    }

    /// Runs `serve` in a thread, waits for its address file, and
    /// returns (address, join handle for the summary output).
    fn spawn_serve(
        tag: &str,
        extra: &[&str],
    ) -> (String, std::thread::JoinHandle<Result<String, CliError>>) {
        let wal_dir = temp_path(&format!("{tag}-wal"));
        let addr_file = temp_path(&format!("{tag}.addr"));
        let _ = std::fs::remove_dir_all(&wal_dir);
        let _ = std::fs::remove_file(&addr_file);
        let mut a = vec![
            "--addr",
            "127.0.0.1:0",
            "--wal-dir",
            &wal_dir,
            "--addr-file",
            &addr_file,
        ];
        a.extend_from_slice(extra);
        let argv = args(&a);
        let handle = std::thread::spawn(move || serve(&argv));
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        let addr = loop {
            if let Ok(text) = std::fs::read_to_string(&addr_file) {
                if text.ends_with('\n') {
                    break text.trim().to_string();
                }
            }
            assert!(
                std::time::Instant::now() < deadline,
                "serve never announced its address"
            );
            std::thread::sleep(Duration::from_millis(5));
        };
        (addr, handle)
    }

    #[test]
    fn serve_and_feed_bool_variable_end_to_end() {
        let trace = temp_trace("bool", "mutex", &["--n", "3", "--buggy", "--seed", "5"]);
        let (addr, serve_thread) = spawn_serve("bool", &[]);
        let out = feed(&args(&[
            &trace,
            "--addr",
            &addr,
            "--var",
            "in_cs",
            "--shutdown",
        ]))
        .unwrap();
        assert!(out.contains("fed "), "{out}");
        assert!(out.contains("0 reconnects"), "{out}");
        let summary = serve_thread.join().unwrap().unwrap();
        assert!(summary.contains("verdict:"), "{summary}");
        assert!(summary.contains("server stats:"), "{summary}");
        assert!(summary.contains("monitor stats:"), "{summary}");
        // The offline detector must agree with the online service.
        let offline =
            crate::commands::detect(&args(&[&trace, "--pred", "conj in_cs@0 in_cs@1 in_cs@2"]))
                .unwrap();
        let offline_true = offline.contains("true");
        assert_eq!(
            out.contains("verdict: true"),
            offline_true,
            "online {out:?} vs offline {offline:?}"
        );
    }

    #[test]
    fn feed_int_threshold_derivation_works() {
        let trace = temp_trace("int", "bank", &["--n", "3", "--seed", "2"]);
        let (addr, serve_thread) = spawn_serve("int", &[]);
        let out = feed(&args(&[
            &trace,
            "--addr",
            &addr,
            "--int",
            "balance",
            "--at-least",
            "1",
            "--shutdown",
        ]))
        .unwrap();
        assert!(out.contains("verdict:"), "{out}");
        serve_thread.join().unwrap().unwrap();
    }

    #[test]
    fn wal_survives_a_server_restart() {
        let trace = temp_trace("restart", "mutex", &["--n", "3", "--buggy", "--seed", "5"]);
        let wal_dir = temp_path("restart-wal-shared");
        let _ = std::fs::remove_dir_all(&wal_dir);

        // First server: feed, stop (without crashing).
        let addr_file = temp_path("restart1.addr");
        let _ = std::fs::remove_file(&addr_file);
        let argv = args(&[
            "--addr",
            "127.0.0.1:0",
            "--wal-dir",
            &wal_dir,
            "--addr-file",
            &addr_file,
        ]);
        let t1 = std::thread::spawn(move || serve(&argv));
        let addr = wait_addr(&addr_file);
        let first = feed(&args(&[
            &trace,
            "--addr",
            &addr,
            "--var",
            "in_cs",
            "--shutdown",
        ]))
        .unwrap();
        t1.join().unwrap().unwrap();

        // Second server over the same WAL: the verdict is already
        // recovered before any event arrives.
        let addr_file = temp_path("restart2.addr");
        let _ = std::fs::remove_file(&addr_file);
        let argv = args(&[
            "--addr",
            "127.0.0.1:0",
            "--wal-dir",
            &wal_dir,
            "--addr-file",
            &addr_file,
        ]);
        let t2 = std::thread::spawn(move || serve(&argv));
        let addr = wait_addr(&addr_file);
        let again = feed(&args(&[
            &trace,
            "--addr",
            &addr,
            "--var",
            "in_cs",
            "--shutdown",
        ]))
        .unwrap();
        let summary = t2.join().unwrap().unwrap();
        let verdict = |s: &str| s.contains("verdict: true");
        assert_eq!(verdict(&first), verdict(&again));
        assert_eq!(verdict(&first), verdict(&summary));
        // Redelivery is screened, not double-applied.
        assert!(
            again.contains("0 accepted") || again.contains("skipped at resume"),
            "{again}"
        );
        let _ = std::fs::remove_dir_all(&wal_dir);
    }

    fn wait_addr(addr_file: &str) -> String {
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        loop {
            if let Ok(text) = std::fs::read_to_string(addr_file) {
                if text.ends_with('\n') {
                    return text.trim().to_string();
                }
            }
            assert!(
                std::time::Instant::now() < deadline,
                "serve never announced its address"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    #[test]
    fn slicer_all_reaches_the_centralized_verdict() {
        let trace = temp_trace("slicer", "mutex", &["--n", "3", "--buggy", "--seed", "5"]);
        let (addr, serve_thread) = spawn_serve("slicer", &["--decentralized"]);
        let out = slicer(&args(&[
            &trace,
            "--addr",
            &addr,
            "--var",
            "in_cs",
            "--all",
            "--status",
            "--shutdown",
        ]))
        .unwrap();
        assert!(out.contains("slicer 0:"), "{out}");
        assert!(out.contains("slicer 2:"), "{out}");
        assert!(out.contains("verdict:"), "{out}");
        assert!(!out.contains("DEGRADED"), "{out}");
        let summary = serve_thread.join().unwrap().unwrap();
        assert!(summary.contains("slicers"), "{summary}");
        // The decentralized verdict must agree with the offline detector.
        let offline =
            crate::commands::detect(&args(&[&trace, "--pred", "conj in_cs@0 in_cs@1 in_cs@2"]))
                .unwrap();
        assert_eq!(
            out.contains("verdict: true"),
            offline.contains("true"),
            "decentralized {out:?} vs offline {offline:?}"
        );
    }

    #[test]
    fn quarantined_tenants_print_reason_and_last_verdict() {
        use gpd_server::protocol::{ServerStats, TenantStatsRow};
        let summary = ServerSummary {
            witness: None,
            stats: ServerStats::default(),
            tenants: vec![TenantStatsRow {
                tenant: "acme".into(),
                quarantined: true,
                quarantine_reason: "wal fsync failed".into(),
                witness_found: true,
                ..TenantStatsRow::default()
            }],
        };
        let monitor = gpd::counters::ScanCounters::default();
        let out = render_summary(&summary, &monitor, false, false);
        assert!(
            out.contains("tenant acme quarantined: wal fsync failed; last-known verdict: true"),
            "{out}"
        );
    }

    #[test]
    fn usage_errors_are_caught() {
        assert!(matches!(
            feed(&args(&["nonexistent.trace"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            feed(&args(&["x.trace", "--addr", "127.0.0.1:1"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(chaos(&args(&[])), Err(CliError::Usage(_))));
        assert!(matches!(
            slicer(&args(&["x.trace", "--addr", "127.0.0.1:1", "--var", "v"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            slicer(&args(&[
                "x.trace",
                "--addr",
                "127.0.0.1:1",
                "--var",
                "v",
                "--all",
                "--process",
                "0"
            ])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            serve(&args(&["--fsync", "sometimes"])),
            Err(CliError::Usage(_))
        ));
        let trace = temp_trace("usage", "bank", &["--n", "2"]);
        assert!(matches!(
            feed(&args(&[
                &trace,
                "--addr",
                "127.0.0.1:1",
                "--int",
                "balance"
            ])),
            Err(CliError::Usage(_))
        ));
    }
}
