//! The `gpd` binary: thin wrapper over [`gpd_cli::run`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match gpd_cli::run(&args) {
        Ok(output) => print!("{output}"),
        Err(err) => {
            eprintln!("gpd: {err}");
            std::process::exit(1);
        }
    }
}
