//! The `gpd` binary: thin wrapper over [`gpd_cli::run`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match gpd_cli::run(&args) {
        Ok(output) => print!("{output}"),
        Err(err) => {
            eprintln!("gpd: {err}");
            // Unknown is not a failure: the budget ran out first. The
            // distinct code lets scripts branch on "resume later".
            let code = match err {
                gpd_cli::CliError::Unknown(_) => 3,
                _ => 1,
            };
            std::process::exit(code);
        }
    }
}
