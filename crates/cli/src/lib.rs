//! The `gpd` command-line tool, as a library for testability.
//!
//! Four subcommands cover the record → inspect → detect workflow:
//!
//! ```text
//! gpd simulate <protocol> [--n N] [--seed S] [...]   # record a trace
//! gpd stats <trace> [--cuts]                         # shape of the computation
//! gpd dot <trace> [--var NAME]                       # Graphviz export
//! gpd detect <trace> --pred "EXPR" [--definitely]    # the detection question
//! ```
//!
//! Predicates use a small language (see [`predicate`]):
//!
//! ```text
//! conj in_cs@0 in_cs@2                 # conjunction of literals
//! conj has_token@0 !has_token@1       # ! negates
//! cnf in_cs@0 | !in_cs@1 & flag@2     # singular CNF ('&' separates clauses)
//! sum tokens == 3                      # exact sum (Theorem 7, ±1 steps)
//! sum balance >= 100                   # relational (flow, any steps)
//! count voted_yes in {0,2,4}           # symmetric by accepted counts
//! count voted_yes xor                  # named symmetric predicates
//! ```

pub mod commands;
pub mod predicate;
pub mod serve;

/// Error surfaced to the terminal with a non-zero exit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CliError {
    /// Wrong invocation; the message explains the expected shape.
    Usage(String),
    /// A predicate expression failed to parse.
    Parse(String),
    /// File I/O failed.
    Io(String),
    /// The trace file was malformed, or referenced data is missing.
    Trace(String),
    /// The question is outside the polynomial algorithms and the caller
    /// did not opt into exhaustive enumeration.
    Intractable(String),
    /// A budgeted run exhausted its deadline, node or width cap before
    /// deciding: the message carries the partial bounds and the path of
    /// the checkpoint to resume from. Exits with code 3, distinct from
    /// ordinary errors, so scripts can tell "don't know yet" from
    /// "failed".
    Unknown(String),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(m) => write!(f, "usage: {m}"),
            CliError::Parse(m) => write!(f, "predicate: {m}"),
            CliError::Io(m) => write!(f, "io: {m}"),
            CliError::Trace(m) => write!(f, "trace: {m}"),
            CliError::Intractable(m) => write!(f, "{m}"),
            CliError::Unknown(m) => write!(f, "verdict unknown: {m}"),
        }
    }
}

impl std::error::Error for CliError {}

/// Dispatches a full argument vector (without the program name) and
/// returns the text to print.
///
/// # Errors
///
/// Returns [`CliError`] for unknown commands, bad flags, unparsable
/// predicates, unreadable traces, or intractable questions.
///
/// # Example
///
/// ```
/// let out = gpd_cli::run(&[
///     "simulate".into(), "token-ring".into(), "--n".into(), "3".into(),
/// ]).unwrap();
/// assert!(out.starts_with("gpd-trace 1"));
/// ```
pub fn run(args: &[String]) -> Result<String, CliError> {
    let (cmd, rest) = args
        .split_first()
        .ok_or_else(|| CliError::Usage(USAGE.to_string()))?;
    match cmd.as_str() {
        "simulate" => commands::simulate(rest),
        "stats" => commands::stats(rest),
        "lattice" => commands::lattice(rest),
        "dot" => commands::dot(rest),
        "detect" => commands::detect(rest),
        "serve" => serve::serve(rest),
        "feed" => serve::feed(rest),
        "slicer" => serve::slicer(rest),
        "chaos" => serve::chaos(rest),
        "help" | "--help" | "-h" => Ok(USAGE.to_string()),
        other => Err(CliError::Usage(format!(
            "unknown command {other:?}\n{USAGE}"
        ))),
    }
}

/// Top-level usage text.
pub const USAGE: &str = "\
gpd <command> ...
  simulate <token-ring|mutex|election|voting|bank|2pc> [--n N] [--seed S] [--buggy] [-o FILE]
  stats <trace> [--cuts]
  lattice <trace> [--enumerate]
  dot <trace> [--var NAME]
  detect <trace> --pred \"EXPR\" [--definitely] [--enumerate] [--threads N] [--stats]
         [--deadline-ms N] [--max-nodes N] [--max-width N] [--resume CKPT] [--checkpoint FILE]
  serve [--addr A] [--wal-dir DIR] [--fsync always|interval] [--fsync-interval-ms N]
        [--max-inflight N] [--workers N] [--queue-cap N] [--heartbeat-timeout-ms N]
        [--decentralized] [--addr-file FILE]
  feed <trace> --addr A (--var NAME | --int NAME --below K | --at-least K)
        [--io-timeout-ms N] [--retries N] [--backoff-ms N] [--backoff-cap-ms N]
        [--seed S] [--window N] [--shutdown]
  slicer <trace> --addr A (--var NAME | --int NAME --below K | --at-least K)
        (--process P | --all) [--tenant T] [--summary-every N] [--heartbeat-ms N]
        [--seed S] [--status] [--shutdown]
  chaos --upstream A [--listen B] [--drop P] [--duplicate P] [--jitter P]
        [--jitter-lo-ms N] [--jitter-hi-ms N] [--reset-after N]
        [--partition-after N] [--partition-frames N] [--partition-direction D]
        [--seed S] [--addr-file FILE]
  help

detect budget flags bound the NP-hard engines: an exhausted budget exits
with code 3 (verdict unknown), prints sound partial bounds, and writes a
checkpoint (default <trace>.ckpt) from which --resume continues the very
same search.

serve hosts the durable online monitor: events stream in over TCP, every
accepted event is fsynced to the write-ahead log before it is acked, and
a restart over the same --wal-dir replays the log so the verdict survives
kill -9. feed replays a recorded trace as a live stream with retry,
backoff, and reconnect-with-resume; slicer replays it decentralized (one
crash-tolerant agent per process, forwarding only relevant events plus
heartbeats, with epoch-numbered resync); chaos interposes a
fault-injecting proxy (frame loss, duplication, delay, connection
resets, asymmetric partitions) for drills.";
