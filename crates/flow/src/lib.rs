//! Maximum-flow toolkit for relational predicate detection.
//!
//! The polynomial algorithms for `Possibly(x₁ + … + xₙ relop K)` reduce the
//! question "what is the minimum (or maximum) value of a separable sum over
//! all consistent cuts?" to a **maximum-weight closure** problem on the
//! event DAG: a consistent cut is a closed set of events, and each event
//! carries the increment it applies to the sum. Maximum-weight closure is
//! classically solved with one s-t minimum cut, which this crate computes
//! with Dinic's algorithm.
//!
//! * [`FlowNetwork`] — capacity graph with [`FlowNetwork::max_flow`] (Dinic)
//!   and [`FlowNetwork::min_cut`], plus capacity snapshot/restore for
//!   re-solving one network with different terminals.
//! * [`max_weight_closure`] — maximum-weight closed subset of a DAG.
//! * [`weight_closure_extremes`] — both extremes (the weights and their
//!   negation) from one shared network, two Dinic runs.
//!
//! # Example
//!
//! ```
//! use gpd_flow::FlowNetwork;
//!
//! let mut net = FlowNetwork::new(4);
//! let (s, t) = (0, 3);
//! net.add_edge(s, 1, 3);
//! net.add_edge(s, 2, 2);
//! net.add_edge(1, t, 2);
//! net.add_edge(2, t, 3);
//! net.add_edge(1, 2, 5);
//! assert_eq!(net.max_flow(s, t), 5);
//! ```

mod closure;
mod dinic;

pub use closure::{max_weight_closure, weight_closure_extremes, Closure};
pub use dinic::FlowNetwork;
