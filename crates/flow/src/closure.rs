//! Maximum-weight closure (project selection).
//!
//! A *closure* of a directed graph is a vertex set `S` that is closed under
//! successors: `u ∈ S` and `u → v` imply `v ∈ S`. Consistent cuts of a
//! computation are exactly the closures of the reversed event DAG, which is
//! how `Possibly(Σxᵢ relop K)` detection lands here: choosing the cut that
//! maximizes (or minimizes) the sum is choosing a maximum-weight closure.

use crate::dinic::FlowNetwork;

/// The result of [`max_weight_closure`]: the optimal closure and its total
/// weight.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Closure {
    /// Total weight of the selected vertices (0 when the empty closure is
    /// optimal).
    pub weight: i64,
    /// The selected vertices, in increasing order.
    pub members: Vec<usize>,
}

/// Computes a maximum-weight closure of the graph on `weights.len()`
/// vertices whose closure constraints are given by `edges`: for each
/// `(u, v)`, membership of `u` forces membership of `v`.
///
/// Solved with one s-t min cut (the classic "project selection" reduction):
/// positive-weight vertices hang off the source, negative-weight vertices
/// feed the sink, constraint edges get infinite capacity, and the source
/// side of a minimum cut is an optimal closure.
///
/// The empty set is always a closure, so the returned weight is ≥ 0.
///
/// # Panics
///
/// Panics if an edge endpoint is out of range.
///
/// # Example
///
/// ```
/// use gpd_flow::max_weight_closure;
///
/// // Taking vertex 0 (worth 5) forces vertex 1 (costing 2): net +3.
/// let c = max_weight_closure(&[5, -2], &[(0, 1)]);
/// assert_eq!(c.weight, 3);
/// assert_eq!(c.members, vec![0, 1]);
/// ```
pub fn max_weight_closure(weights: &[i64], edges: &[(usize, usize)]) -> Closure {
    let n = weights.len();
    for &(u, v) in edges {
        assert!(u < n && v < n, "edge ({u}, {v}) out of range {n}");
    }

    // Vertices 0..n, source n, sink n+1.
    let (s, t) = (n, n + 1);
    let mut net = FlowNetwork::new(n + 2);
    let mut positive_total = 0i64;
    for (v, &w) in weights.iter().enumerate() {
        if w > 0 {
            net.add_edge(s, v, w);
            positive_total += w;
        } else if w < 0 {
            net.add_edge(v, t, -w);
        }
    }
    for &(u, v) in edges {
        net.add_infinite_edge(u, v);
    }

    let cut_value = if n == 0 { 0 } else { net.max_flow(s, t) };
    let weight = positive_total - cut_value;
    let members: Vec<usize> = if n == 0 {
        Vec::new()
    } else {
        net.min_cut(s).into_iter().filter(|&v| v < n).collect()
    };

    debug_assert_eq!(
        members.iter().map(|&v| weights[v]).sum::<i64>(),
        weight,
        "closure weight mismatch"
    );
    Closure { weight, members }
}

/// Computes a maximum-weight closure for `weights` **and** for the
/// negated weights — i.e. both extremes of the weighted-closure problem
/// — sharing one flow network between the two Dinic runs.
///
/// The callers that need both extremes (exact-sum `Definitely`, the
/// min/max sweep of a bench row) previously built the project-selection
/// network twice; the vertex set and the infinite constraint edges are
/// identical in both orientations, so this builds them once with two
/// terminal pairs, solves `s⁺-t⁺`, rewinds the residual capacities, and
/// solves `s⁻-t⁻`. Each run's unused terminal pair is flow-inert: its
/// source has no incoming residual arcs and its sink no outgoing ones.
///
/// Returns `(max_closure, negated_max_closure)`; the second member is
/// the maximum-weight closure of `-weights` (whose `weight` is the
/// negated minimum achievable by any closure of `weights`).
///
/// # Panics
///
/// Panics if an edge endpoint is out of range.
///
/// # Example
///
/// ```
/// use gpd_flow::weight_closure_extremes;
///
/// let (max, neg) = weight_closure_extremes(&[5, -2], &[(0, 1)]);
/// assert_eq!(max.weight, 3); // take both vertices
/// assert_eq!(neg.weight, 2); // closure {1} minimizes at −2
/// assert_eq!(neg.members, vec![1]);
/// ```
pub fn weight_closure_extremes(weights: &[i64], edges: &[(usize, usize)]) -> (Closure, Closure) {
    let n = weights.len();
    for &(u, v) in edges {
        assert!(u < n && v < n, "edge ({u}, {v}) out of range {n}");
    }

    // Vertices 0..n plus two terminal pairs: (s⁺, t⁺) solve the weights
    // as given, (s⁻, t⁻) solve their negation.
    let (s_max, t_max, s_min, t_min) = (n, n + 1, n + 2, n + 3);
    let mut net = FlowNetwork::new(n + 4);
    let mut positive_total = 0i64;
    let mut negative_total = 0i64;
    for (v, &w) in weights.iter().enumerate() {
        if w > 0 {
            net.add_edge(s_max, v, w);
            net.add_edge(v, t_min, w);
            positive_total += w;
        } else if w < 0 {
            net.add_edge(v, t_max, -w);
            net.add_edge(s_min, v, -w);
            negative_total += -w;
        }
    }
    for &(u, v) in edges {
        net.add_infinite_edge(u, v);
    }

    if n == 0 {
        let empty = Closure {
            weight: 0,
            members: Vec::new(),
        };
        return (empty.clone(), empty);
    }

    let extract = |net: &mut FlowNetwork, s: usize, t: usize, total: i64, ws: &[i64]| {
        let cut_value = net.max_flow(s, t);
        let members: Vec<usize> = net.min_cut(s).into_iter().filter(|&v| v < n).collect();
        let weight = total - cut_value;
        debug_assert_eq!(
            members.iter().map(|&v| ws[v]).sum::<i64>(),
            weight,
            "closure weight mismatch"
        );
        Closure { weight, members }
    };

    let saved = net.capacities();
    let max = extract(&mut net, s_max, t_max, positive_total, weights);
    net.restore_capacities(&saved);
    let negated: Vec<i64> = weights.iter().map(|&w| -w).collect();
    let neg = extract(&mut net, s_min, t_min, negative_total, &negated);
    (max, neg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn is_closed(members: &[usize], edges: &[(usize, usize)]) -> bool {
        let set: std::collections::HashSet<usize> = members.iter().copied().collect();
        edges
            .iter()
            .all(|&(u, v)| !set.contains(&u) || set.contains(&v))
    }

    #[test]
    fn empty_graph() {
        let c = max_weight_closure(&[], &[]);
        assert_eq!(c.weight, 0);
        assert!(c.members.is_empty());
    }

    #[test]
    fn all_negative_yields_empty_closure() {
        let c = max_weight_closure(&[-1, -5], &[]);
        assert_eq!(c.weight, 0);
        assert!(c.members.is_empty());
    }

    #[test]
    fn all_positive_yields_full_closure() {
        let c = max_weight_closure(&[2, 3, 4], &[(0, 1), (1, 2)]);
        assert_eq!(c.weight, 9);
        assert_eq!(c.members, vec![0, 1, 2]);
    }

    #[test]
    fn profitable_dependency_is_taken() {
        let c = max_weight_closure(&[5, -2], &[(0, 1)]);
        assert_eq!(c.weight, 3);
        assert_eq!(c.members, vec![0, 1]);
    }

    #[test]
    fn unprofitable_dependency_is_skipped() {
        let c = max_weight_closure(&[5, -7], &[(0, 1)]);
        assert_eq!(c.weight, 0);
        assert!(c.members.is_empty());
    }

    #[test]
    fn independent_vertices_selected_individually() {
        let c = max_weight_closure(&[4, -1, 3], &[]);
        assert_eq!(c.weight, 7);
        assert_eq!(c.members, vec![0, 2]);
    }

    #[test]
    fn chain_of_dependencies() {
        // 0 needs 1 needs 2: 6 - 1 - 2 = 3 > 0, take all.
        let c = max_weight_closure(&[6, -1, -2], &[(0, 1), (1, 2)]);
        assert_eq!(c.weight, 3);
        assert_eq!(c.members, vec![0, 1, 2]);
        // Middle element alone can also be taken with its own suffix.
        let c2 = max_weight_closure(&[-6, 5, -2], &[(0, 1), (1, 2)]);
        assert_eq!(c2.weight, 3);
        assert_eq!(c2.members, vec![1, 2]);
    }

    #[test]
    fn matches_brute_force_on_random_instances() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        for _ in 0..60 {
            let n = rng.gen_range(1..9);
            let weights: Vec<i64> = (0..n).map(|_| rng.gen_range(-6..=6)).collect();
            let mut edges = Vec::new();
            for u in 0..n {
                for v in 0..n {
                    if u != v && rng.gen_bool(0.25) {
                        edges.push((u, v));
                    }
                }
            }
            // Brute force over all subsets.
            let mut best = 0i64;
            for mask in 0u32..(1 << n) {
                let members: Vec<usize> = (0..n).filter(|&v| mask >> v & 1 == 1).collect();
                if is_closed(&members, &edges) {
                    best = best.max(members.iter().map(|&v| weights[v]).sum());
                }
            }
            let c = max_weight_closure(&weights, &edges);
            assert_eq!(c.weight, best, "weights {weights:?} edges {edges:?}");
            assert!(is_closed(&c.members, &edges));
        }
    }

    #[test]
    fn extremes_empty_graph() {
        let (max, neg) = weight_closure_extremes(&[], &[]);
        assert_eq!(max.weight, 0);
        assert_eq!(neg.weight, 0);
        assert!(max.members.is_empty() && neg.members.is_empty());
    }

    #[test]
    fn extremes_match_two_single_sided_solves() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(424242);
        for _ in 0..80 {
            let n = rng.gen_range(0..10);
            let weights: Vec<i64> = (0..n).map(|_| rng.gen_range(-7..=7)).collect();
            let mut edges = Vec::new();
            for u in 0..n {
                for v in 0..n {
                    if u != v && rng.gen_bool(0.3) {
                        edges.push((u, v));
                    }
                }
            }
            let (max, neg) = weight_closure_extremes(&weights, &edges);
            let negated: Vec<i64> = weights.iter().map(|&w| -w).collect();
            let max_ref = max_weight_closure(&weights, &edges);
            let neg_ref = max_weight_closure(&negated, &edges);
            // Optimal weights must agree exactly; the members are some
            // optimal closure each, independently valid.
            assert_eq!(max.weight, max_ref.weight, "weights {weights:?}");
            assert_eq!(neg.weight, neg_ref.weight, "weights {weights:?}");
            assert!(is_closed(&max.members, &edges));
            assert!(is_closed(&neg.members, &edges));
            assert_eq!(
                max.members.iter().map(|&v| weights[v]).sum::<i64>(),
                max.weight
            );
            assert_eq!(
                neg.members.iter().map(|&v| negated[v]).sum::<i64>(),
                neg.weight
            );
        }
    }
}
