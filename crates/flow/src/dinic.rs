//! Dinic's maximum-flow algorithm with minimum-cut extraction.

/// Sentinel capacity treated as unbounded.
pub(crate) const INF_CAP: i64 = i64::MAX / 4;

#[derive(Debug, Clone)]
struct Edge {
    to: u32,
    cap: i64,
    // Index of the reverse edge in `edges`.
    rev: u32,
}

/// A directed flow network on vertices `0..n` with integer capacities.
///
/// Supports repeated edge insertion, then [`max_flow`](Self::max_flow)
/// (which consumes residual capacity in place) and
/// [`min_cut`](Self::min_cut) on the resulting residual graph.
///
/// # Example
///
/// ```
/// use gpd_flow::FlowNetwork;
///
/// let mut net = FlowNetwork::new(3);
/// net.add_edge(0, 1, 4);
/// net.add_edge(1, 2, 2);
/// assert_eq!(net.max_flow(0, 2), 2);
/// assert_eq!(net.min_cut(0), vec![0, 1]); // source side of the cut
/// ```
#[derive(Debug, Clone)]
pub struct FlowNetwork {
    adj: Vec<Vec<u32>>,
    edges: Vec<Edge>,
}

impl FlowNetwork {
    /// Creates a network with `n` vertices and no edges.
    pub fn new(n: usize) -> Self {
        FlowNetwork {
            adj: vec![Vec::new(); n],
            edges: Vec::new(),
        }
    }

    /// The number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.adj.len()
    }

    /// Adds a directed edge `u → v` with capacity `cap` (and its zero-
    /// capacity residual reverse edge).
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range or `cap < 0`.
    pub fn add_edge(&mut self, u: usize, v: usize, cap: i64) {
        let n = self.vertex_count();
        assert!(u < n && v < n, "edge ({u}, {v}) out of range {n}");
        assert!(cap >= 0, "negative capacity {cap}");
        let e = self.edges.len() as u32;
        self.edges.push(Edge {
            to: v as u32,
            cap,
            rev: e + 1,
        });
        self.edges.push(Edge {
            to: u as u32,
            cap: 0,
            rev: e,
        });
        self.adj[u].push(e);
        self.adj[v].push(e + 1);
    }

    /// Adds an effectively-unbounded edge `u → v`.
    pub fn add_infinite_edge(&mut self, u: usize, v: usize) {
        self.add_edge(u, v, INF_CAP);
    }

    /// Computes the maximum flow from `s` to `t`, mutating residual
    /// capacities in place. Dinic's algorithm: O(V²E), and O(E √V) on the
    /// unit-capacity graphs produced by matchings.
    ///
    /// # Panics
    ///
    /// Panics if `s == t` or either is out of range.
    pub fn max_flow(&mut self, s: usize, t: usize) -> i64 {
        let n = self.vertex_count();
        assert!(s < n && t < n && s != t, "invalid terminals ({s}, {t})");
        let mut total = 0i64;
        loop {
            let level = self.bfs_levels(s);
            if level[t] == u32::MAX {
                return total;
            }
            let mut iter = vec![0usize; n];
            loop {
                let pushed = self.dfs_push(s, t, INF_CAP, &level, &mut iter);
                if pushed == 0 {
                    break;
                }
                total += pushed;
            }
        }
    }

    fn bfs_levels(&self, s: usize) -> Vec<u32> {
        let mut level = vec![u32::MAX; self.vertex_count()];
        level[s] = 0;
        let mut queue = std::collections::VecDeque::from([s]);
        while let Some(u) = queue.pop_front() {
            for &ei in &self.adj[u] {
                let e = &self.edges[ei as usize];
                if e.cap > 0 && level[e.to as usize] == u32::MAX {
                    level[e.to as usize] = level[u] + 1;
                    queue.push_back(e.to as usize);
                }
            }
        }
        level
    }

    fn dfs_push(
        &mut self,
        u: usize,
        t: usize,
        limit: i64,
        level: &[u32],
        iter: &mut [usize],
    ) -> i64 {
        if u == t {
            return limit;
        }
        while iter[u] < self.adj[u].len() {
            let ei = self.adj[u][iter[u]] as usize;
            let (to, cap) = (self.edges[ei].to as usize, self.edges[ei].cap);
            if cap > 0 && level[to] == level[u] + 1 {
                let pushed = self.dfs_push(to, t, limit.min(cap), level, iter);
                if pushed > 0 {
                    self.edges[ei].cap -= pushed;
                    let rev = self.edges[ei].rev as usize;
                    self.edges[rev].cap += pushed;
                    return pushed;
                }
            }
            iter[u] += 1;
        }
        0
    }

    /// Snapshots every edge's residual capacity, so the network can be
    /// rewound with [`restore_capacities`](Self::restore_capacities) and
    /// solved again for different terminals without rebuilding the
    /// adjacency structure.
    pub fn capacities(&self) -> Vec<i64> {
        self.edges.iter().map(|e| e.cap).collect()
    }

    /// Restores residual capacities saved by
    /// [`capacities`](Self::capacities). The edge set must be unchanged
    /// since the snapshot.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot length does not match the edge count.
    pub fn restore_capacities(&mut self, saved: &[i64]) {
        assert_eq!(
            saved.len(),
            self.edges.len(),
            "capacity snapshot does not match edge count"
        );
        for (e, &cap) in self.edges.iter_mut().zip(saved) {
            e.cap = cap;
        }
    }

    /// After [`max_flow`](Self::max_flow), returns the source side of a
    /// minimum cut: every vertex still reachable from `s` in the residual
    /// graph, in increasing order.
    pub fn min_cut(&self, s: usize) -> Vec<usize> {
        let level = self.bfs_levels(s);
        (0..self.vertex_count())
            .filter(|&v| level[v] != u32::MAX)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_edge() {
        let mut net = FlowNetwork::new(2);
        net.add_edge(0, 1, 7);
        assert_eq!(net.max_flow(0, 1), 7);
    }

    #[test]
    fn bottleneck_on_path() {
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 10);
        net.add_edge(1, 2, 3);
        net.add_edge(2, 3, 10);
        assert_eq!(net.max_flow(0, 3), 3);
    }

    #[test]
    fn classic_textbook_network() {
        // CLRS figure: max flow 23.
        let mut net = FlowNetwork::new(6);
        let edges = [
            (0, 1, 16),
            (0, 2, 13),
            (1, 2, 10),
            (2, 1, 4),
            (1, 3, 12),
            (3, 2, 9),
            (2, 4, 14),
            (4, 3, 7),
            (3, 5, 20),
            (4, 5, 4),
        ];
        for (u, v, c) in edges {
            net.add_edge(u, v, c);
        }
        assert_eq!(net.max_flow(0, 5), 23);
    }

    #[test]
    fn disconnected_terminals_have_zero_flow() {
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 5);
        net.add_edge(2, 3, 5);
        assert_eq!(net.max_flow(0, 3), 0);
        assert_eq!(net.min_cut(0), vec![0, 1]);
    }

    #[test]
    fn min_cut_capacity_equals_max_flow() {
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 3);
        net.add_edge(0, 2, 2);
        net.add_edge(1, 3, 2);
        net.add_edge(2, 3, 3);
        net.add_edge(1, 2, 100);
        let flow = net.max_flow(0, 3);
        assert_eq!(flow, 5);
        let cut = net.min_cut(0);
        assert!(cut.contains(&0));
        assert!(!cut.contains(&3));
    }

    #[test]
    fn infinite_edges_are_never_cut() {
        let mut net = FlowNetwork::new(3);
        net.add_infinite_edge(0, 1);
        net.add_edge(1, 2, 4);
        assert_eq!(net.max_flow(0, 2), 4);
    }

    #[test]
    #[should_panic(expected = "invalid terminals")]
    fn same_source_and_sink_panics() {
        FlowNetwork::new(2).max_flow(1, 1);
    }

    #[test]
    #[should_panic(expected = "negative capacity")]
    fn negative_capacity_panics() {
        FlowNetwork::new(2).add_edge(0, 1, -1);
    }

    #[test]
    fn matches_brute_force_on_random_small_networks() {
        use rand::{Rng, SeedableRng};

        // Brute force: enumerate all s-t cuts and take the minimum
        // capacity (max-flow = min-cut).
        fn brute_min_cut(n: usize, edges: &[(usize, usize, i64)]) -> i64 {
            let mut best = i64::MAX;
            for mask in 0u32..(1 << n) {
                if mask & 1 == 0 || mask >> (n - 1) & 1 == 1 {
                    continue; // s must be inside, t outside
                }
                let cap: i64 = edges
                    .iter()
                    .filter(|&&(u, v, _)| mask >> u & 1 == 1 && mask >> v & 1 == 0)
                    .map(|&(_, _, c)| c)
                    .sum();
                best = best.min(cap);
            }
            best
        }

        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for _ in 0..40 {
            let n = rng.gen_range(2..7);
            let mut edges = Vec::new();
            for u in 0..n {
                for v in 0..n {
                    if u != v && rng.gen_bool(0.4) {
                        edges.push((u, v, rng.gen_range(0..8i64)));
                    }
                }
            }
            let mut net = FlowNetwork::new(n);
            for &(u, v, c) in &edges {
                net.add_edge(u, v, c);
            }
            assert_eq!(net.max_flow(0, n - 1), brute_min_cut(n, &edges));
        }
    }
}
