//! Exhaustive satisfiability oracle for cross-checking.

use crate::cnf::Cnf;

/// Finds a satisfying assignment by enumerating all `2^n` assignments.
/// Intended as a test oracle for the DPLL solver and the detection
/// reductions.
///
/// # Panics
///
/// Panics if the formula has more than 25 variables (the enumeration would
/// not terminate in reasonable time).
///
/// # Example
///
/// ```
/// use gpd_sat::{brute_force, Cnf, Lit};
///
/// let cnf = Cnf::new(1, vec![vec![Lit::neg(0)].into()]);
/// assert_eq!(brute_force(&cnf), Some(vec![false]));
/// ```
pub fn brute_force(cnf: &Cnf) -> Option<Vec<bool>> {
    let n = cnf.num_vars();
    assert!(n <= 25, "brute force limited to 25 variables, got {n}");
    (0u32..1 << n)
        .map(|mask| (0..n).map(|v| mask >> v & 1 == 1).collect::<Vec<bool>>())
        .find(|a| cnf.eval(a))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnf::Lit;

    #[test]
    fn finds_first_model_in_mask_order() {
        // x0 ∨ x1: first satisfying mask is x0=true, x1=false.
        let cnf = Cnf::new(2, vec![vec![Lit::pos(0), Lit::pos(1)].into()]);
        assert_eq!(brute_force(&cnf), Some(vec![true, false]));
    }

    #[test]
    fn unsat_returns_none() {
        let cnf = Cnf::new(1, vec![vec![Lit::pos(0)].into(), vec![Lit::neg(0)].into()]);
        assert_eq!(brute_force(&cnf), None);
    }

    #[test]
    fn zero_vars_trivially_sat() {
        assert_eq!(brute_force(&Cnf::new(0, vec![])), Some(vec![]));
    }

    #[test]
    #[should_panic(expected = "limited to 25 variables")]
    fn too_many_variables_panics() {
        brute_force(&Cnf::new(26, vec![]));
    }
}
