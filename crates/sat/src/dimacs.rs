//! DIMACS CNF interchange format.

use crate::cnf::{Clause, Cnf, Lit};

/// Error produced by [`parse_dimacs`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseDimacsError {
    message: String,
}

impl ParseDimacsError {
    fn new(message: impl Into<String>) -> Self {
        ParseDimacsError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for ParseDimacsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid DIMACS input: {}", self.message)
    }
}

impl std::error::Error for ParseDimacsError {}

/// Parses a formula in DIMACS CNF format (`c` comment lines, one
/// `p cnf <vars> <clauses>` header, then zero-terminated clauses).
///
/// # Errors
///
/// Returns [`ParseDimacsError`] on a missing/malformed header, unparsable
/// or out-of-range literals, an unterminated clause, or a clause-count
/// mismatch.
///
/// # Example
///
/// ```
/// let cnf = gpd_sat::parse_dimacs("p cnf 2 1\n1 -2 0\n").unwrap();
/// assert_eq!(cnf.num_vars(), 2);
/// assert_eq!(cnf.clauses().len(), 1);
/// ```
pub fn parse_dimacs(input: &str) -> Result<Cnf, ParseDimacsError> {
    let mut header: Option<(u32, usize)> = None;
    let mut clauses: Vec<Clause> = Vec::new();
    let mut current: Vec<Lit> = Vec::new();

    for line in input.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        if let Some(rest) = line.strip_prefix('p') {
            if header.is_some() {
                return Err(ParseDimacsError::new("duplicate header"));
            }
            let parts: Vec<&str> = rest.split_whitespace().collect();
            if parts.len() != 3 || parts[0] != "cnf" {
                return Err(ParseDimacsError::new(format!("bad header line {line:?}")));
            }
            let vars: u32 = parts[1]
                .parse()
                .map_err(|_| ParseDimacsError::new(format!("bad variable count {:?}", parts[1])))?;
            let count: usize = parts[2]
                .parse()
                .map_err(|_| ParseDimacsError::new(format!("bad clause count {:?}", parts[2])))?;
            header = Some((vars, count));
            continue;
        }
        let (num_vars, _) = header.ok_or_else(|| ParseDimacsError::new("clause before header"))?;
        for tok in line.split_whitespace() {
            let v: i64 = tok
                .parse()
                .map_err(|_| ParseDimacsError::new(format!("bad literal {tok:?}")))?;
            if v == 0 {
                clauses.push(Clause::new(std::mem::take(&mut current)));
            } else {
                let var = v.unsigned_abs() - 1;
                if var >= num_vars as u64 {
                    return Err(ParseDimacsError::new(format!(
                        "literal {v} out of range (header declares {num_vars} variables)"
                    )));
                }
                current.push(if v > 0 {
                    Lit::pos(var as u32)
                } else {
                    Lit::neg(var as u32)
                });
            }
        }
    }

    let (num_vars, count) = header.ok_or_else(|| ParseDimacsError::new("missing header"))?;
    if !current.is_empty() {
        return Err(ParseDimacsError::new("unterminated clause"));
    }
    if clauses.len() != count {
        return Err(ParseDimacsError::new(format!(
            "header declares {count} clauses but {} found",
            clauses.len()
        )));
    }
    Ok(Cnf::new(num_vars, clauses))
}

/// Serializes a formula to DIMACS CNF format.
///
/// # Example
///
/// ```
/// use gpd_sat::{to_dimacs, parse_dimacs, Cnf, Lit};
///
/// let cnf = Cnf::new(2, vec![vec![Lit::pos(0), Lit::neg(1)].into()]);
/// assert_eq!(parse_dimacs(&to_dimacs(&cnf)).unwrap(), cnf);
/// ```
pub fn to_dimacs(cnf: &Cnf) -> String {
    let mut out = format!("p cnf {} {}\n", cnf.num_vars(), cnf.clauses().len());
    for clause in cnf.clauses() {
        for lit in clause.lits() {
            let v = lit.var() as i64 + 1;
            let signed = if lit.is_positive() { v } else { -v };
            out.push_str(&signed.to_string());
            out.push(' ');
        }
        out.push_str("0\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_comments_and_blank_lines() {
        let input = "c a comment\n\np cnf 3 2\n1 2 0\nc mid comment\n-3 0\n";
        let cnf = parse_dimacs(input).unwrap();
        assert_eq!(cnf.num_vars(), 3);
        assert_eq!(cnf.clauses().len(), 2);
        assert_eq!(cnf.clauses()[1].lits(), &[Lit::neg(2)]);
    }

    #[test]
    fn clause_spanning_lines() {
        let cnf = parse_dimacs("p cnf 2 1\n1\n-2\n0\n").unwrap();
        assert_eq!(cnf.clauses()[0].len(), 2);
    }

    #[test]
    fn roundtrip() {
        let cnf = Cnf::new(
            4,
            vec![
                vec![Lit::pos(0), Lit::neg(3)].into(),
                vec![Lit::neg(1), Lit::pos(2), Lit::pos(3)].into(),
            ],
        );
        assert_eq!(parse_dimacs(&to_dimacs(&cnf)).unwrap(), cnf);
    }

    #[test]
    fn error_cases() {
        assert!(parse_dimacs("").is_err());
        assert!(parse_dimacs("1 2 0").is_err());
        assert!(parse_dimacs("p cnf 1 1\n2 0\n").is_err());
        assert!(parse_dimacs("p cnf 1 1\n1\n").is_err());
        assert!(parse_dimacs("p cnf 1 2\n1 0\n").is_err());
        assert!(parse_dimacs("p cnf x 1\n1 0\n").is_err());
        assert!(parse_dimacs("p cnf 1 1\np cnf 1 1\n1 0\n").is_err());
        assert!(parse_dimacs("p cnf 1 1\nz 0\n").is_err());
    }

    #[test]
    fn error_display_is_informative() {
        let err = parse_dimacs("p cnf 1 1\n5 0\n").unwrap_err();
        assert!(err.to_string().contains("out of range"));
    }
}
