//! CNF formula representation.

/// A literal: a boolean variable (indexed from 0) or its negation.
///
/// # Example
///
/// ```
/// use gpd_sat::Lit;
///
/// let l = Lit::neg(3);
/// assert_eq!(l.var(), 3);
/// assert!(!l.is_positive());
/// assert_eq!(l.negated(), Lit::pos(3));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit {
    var: u32,
    positive: bool,
}

impl Lit {
    /// The positive literal of variable `var`.
    pub fn pos(var: u32) -> Self {
        Lit {
            var,
            positive: true,
        }
    }

    /// The negative literal of variable `var`.
    pub fn neg(var: u32) -> Self {
        Lit {
            var,
            positive: false,
        }
    }

    /// The underlying variable index.
    pub fn var(self) -> u32 {
        self.var
    }

    /// Whether this is the positive literal.
    pub fn is_positive(self) -> bool {
        self.positive
    }

    /// The complementary literal.
    pub fn negated(self) -> Lit {
        Lit {
            var: self.var,
            positive: !self.positive,
        }
    }

    /// Evaluates the literal under a variable assignment.
    ///
    /// # Panics
    ///
    /// Panics if the variable is out of the assignment's range.
    pub fn eval(self, assignment: &[bool]) -> bool {
        assignment[self.var as usize] == self.positive
    }
}

impl std::fmt::Debug for Lit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self)
    }
}

impl std::fmt::Display for Lit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.positive {
            write!(f, "x{}", self.var)
        } else {
            write!(f, "¬x{}", self.var)
        }
    }
}

/// A disjunction of literals.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Clause {
    lits: Vec<Lit>,
}

impl Clause {
    /// Creates a clause from literals.
    pub fn new(lits: Vec<Lit>) -> Self {
        Clause { lits }
    }

    /// The literals of the clause.
    pub fn lits(&self) -> &[Lit] {
        &self.lits
    }

    /// The number of literals.
    pub fn len(&self) -> usize {
        self.lits.len()
    }

    /// Whether the clause is empty (unsatisfiable).
    pub fn is_empty(&self) -> bool {
        self.lits.is_empty()
    }

    /// Evaluates the clause under an assignment.
    pub fn eval(&self, assignment: &[bool]) -> bool {
        self.lits.iter().any(|l| l.eval(assignment))
    }

    /// Whether the clause has at least one positive and at least one
    /// negative literal, or has fewer than three literals — the paper's
    /// *non-monotone* condition on a single clause.
    pub fn is_non_monotone(&self) -> bool {
        self.lits.len() < 3
            || (self.lits.iter().any(|l| l.is_positive())
                && self.lits.iter().any(|l| !l.is_positive()))
    }
}

impl From<Vec<Lit>> for Clause {
    fn from(lits: Vec<Lit>) -> Self {
        Clause::new(lits)
    }
}

impl std::fmt::Debug for Clause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "(")?;
        for (i, l) in self.lits.iter().enumerate() {
            if i > 0 {
                write!(f, " ∨ ")?;
            }
            write!(f, "{l}")?;
        }
        write!(f, ")")
    }
}

/// A CNF formula: a conjunction of [`Clause`]s over variables
/// `0..num_vars`.
///
/// # Example
///
/// ```
/// use gpd_sat::{Cnf, Lit};
///
/// let cnf = Cnf::new(2, vec![vec![Lit::pos(0), Lit::neg(1)].into()]);
/// assert!(cnf.eval(&[true, true]));
/// assert!(!cnf.eval(&[false, true]));
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Cnf {
    num_vars: u32,
    clauses: Vec<Clause>,
}

impl Cnf {
    /// Creates a formula.
    ///
    /// # Panics
    ///
    /// Panics if a clause mentions a variable `>= num_vars`.
    pub fn new(num_vars: u32, clauses: Vec<Clause>) -> Self {
        for c in &clauses {
            for l in c.lits() {
                assert!(l.var() < num_vars, "literal {l} out of range {num_vars}");
            }
        }
        Cnf { num_vars, clauses }
    }

    /// The number of variables.
    pub fn num_vars(&self) -> u32 {
        self.num_vars
    }

    /// The clauses.
    pub fn clauses(&self) -> &[Clause] {
        &self.clauses
    }

    /// Evaluates the formula under an assignment.
    ///
    /// # Panics
    ///
    /// Panics if the assignment has fewer than `num_vars` entries.
    pub fn eval(&self, assignment: &[bool]) -> bool {
        assert!(
            assignment.len() >= self.num_vars as usize,
            "assignment too short"
        );
        self.clauses.iter().all(|c| c.eval(assignment))
    }

    /// Whether every clause satisfies the paper's non-monotone condition
    /// (the precondition of the Theorem 1 reduction).
    pub fn is_non_monotone(&self) -> bool {
        self.clauses.iter().all(Clause::is_non_monotone)
    }

    /// Whether every clause has at most `k` literals.
    pub fn max_clause_len(&self) -> usize {
        self.clauses.iter().map(Clause::len).max().unwrap_or(0)
    }
}

impl std::fmt::Debug for Cnf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Cnf[{} vars]", self.num_vars)?;
        for c in &self.clauses {
            write!(f, " {c:?}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_accessors() {
        let p = Lit::pos(7);
        assert!(p.is_positive());
        assert_eq!(p.var(), 7);
        assert_eq!(p.negated(), Lit::neg(7));
        assert_eq!(p.negated().negated(), p);
    }

    #[test]
    fn literal_eval() {
        assert!(Lit::pos(0).eval(&[true]));
        assert!(!Lit::pos(0).eval(&[false]));
        assert!(Lit::neg(0).eval(&[false]));
    }

    #[test]
    fn clause_eval_is_disjunction() {
        let c = Clause::new(vec![Lit::pos(0), Lit::neg(1)]);
        assert!(c.eval(&[true, true]));
        assert!(c.eval(&[false, false]));
        assert!(!c.eval(&[false, true]));
    }

    #[test]
    fn empty_clause_is_false() {
        let c = Clause::new(vec![]);
        assert!(!c.eval(&[]));
        assert!(c.is_empty());
    }

    #[test]
    fn non_monotone_condition() {
        // Short clauses are always fine.
        assert!(Clause::new(vec![Lit::pos(0), Lit::pos(1)]).is_non_monotone());
        // Mixed 3-clause is fine.
        assert!(Clause::new(vec![Lit::pos(0), Lit::pos(1), Lit::neg(2)]).is_non_monotone());
        // All-positive or all-negative 3-clause is not.
        assert!(!Clause::new(vec![Lit::pos(0), Lit::pos(1), Lit::pos(2)]).is_non_monotone());
        assert!(!Clause::new(vec![Lit::neg(0), Lit::neg(1), Lit::neg(2)]).is_non_monotone());
    }

    #[test]
    fn cnf_eval_is_conjunction() {
        let cnf = Cnf::new(2, vec![vec![Lit::pos(0)].into(), vec![Lit::neg(1)].into()]);
        assert!(cnf.eval(&[true, false]));
        assert!(!cnf.eval(&[true, true]));
        assert!(!cnf.eval(&[false, false]));
    }

    #[test]
    fn empty_cnf_is_true() {
        let cnf = Cnf::new(0, vec![]);
        assert!(cnf.eval(&[]));
        assert!(cnf.is_non_monotone());
        assert_eq!(cnf.max_clause_len(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_literal_panics() {
        Cnf::new(1, vec![vec![Lit::pos(1)].into()]);
    }

    #[test]
    fn display_forms() {
        assert_eq!(format!("{}", Lit::pos(2)), "x2");
        assert_eq!(format!("{}", Lit::neg(2)), "¬x2");
        let c = Clause::new(vec![Lit::pos(0), Lit::neg(1)]);
        assert_eq!(format!("{c:?}"), "(x0 ∨ ¬x1)");
    }
}
