//! Satisfiability-preserving formula transformations.
//!
//! The Theorem 1 reduction requires its input to be a *non-monotone 3-CNF*
//! formula: every clause has at most three literals, and every clause with
//! exactly three literals contains at least one positive and one negative
//! literal. The paper notes that arbitrary 3-CNF can be brought into this
//! form; [`to_non_monotone`] implements exactly that construction, and
//! [`to_three_cnf`] handles arbitrary clause widths first.

use crate::cnf::{Clause, Cnf, Lit};

/// Splits clauses longer than three literals with the standard fresh-
/// variable chaining: `(l₁ ∨ l₂ ∨ … ∨ lₖ)` becomes
/// `(l₁ ∨ l₂ ∨ y₁) ∧ (¬y₁ ∨ l₃ ∨ y₂) ∧ … ∧ (¬yₖ₋₃ ∨ lₖ₋₁ ∨ lₖ)`.
/// The result is equisatisfiable with the input and every model of the
/// result restricts to a model of the input.
///
/// # Example
///
/// ```
/// use gpd_sat::{to_three_cnf, Cnf, Lit};
///
/// let wide = Cnf::new(4, vec![
///     vec![Lit::pos(0), Lit::pos(1), Lit::pos(2), Lit::pos(3)].into(),
/// ]);
/// let three = to_three_cnf(&wide);
/// assert!(three.max_clause_len() <= 3);
/// ```
pub fn to_three_cnf(cnf: &Cnf) -> Cnf {
    let mut next_var = cnf.num_vars();
    let mut clauses = Vec::new();
    for clause in cnf.clauses() {
        let lits = clause.lits();
        if lits.len() <= 3 {
            clauses.push(clause.clone());
            continue;
        }
        // First clause keeps two original literals plus a fresh chain var.
        let mut y = next_var;
        next_var += 1;
        clauses.push(Clause::new(vec![lits[0], lits[1], Lit::pos(y)]));
        for &l in &lits[2..lits.len() - 2] {
            let y_next = next_var;
            next_var += 1;
            clauses.push(Clause::new(vec![Lit::neg(y), l, Lit::pos(y_next)]));
            y = y_next;
        }
        clauses.push(Clause::new(vec![
            Lit::neg(y),
            lits[lits.len() - 2],
            lits[lits.len() - 1],
        ]));
    }
    Cnf::new(next_var, clauses)
}

/// Rewrites a 3-CNF formula into the paper's **non-monotone** form.
///
/// Each all-positive clause `(x₁ ∨ x₂ ∨ x₃)` becomes
/// `(x₁ ∨ x₂ ∨ ¬y) ∧ (y ∨ x₃) ∧ (¬y ∨ ¬x₃)` for a fresh variable `y`: the
/// latter two clauses force `y = ¬x₃` in any satisfying assignment, so the
/// first clause is equivalent to the original. All-negative clauses are
/// handled symmetrically with `y = ¬x₃` replaced by `y = x₃`'s complement
/// (`(¬x₁ ∨ ¬x₂ ∨ y)` with `y ⇔ ¬x₃`). The result is equisatisfiable and
/// the original variables keep their indices and values.
///
/// # Panics
///
/// Panics if some clause has more than three literals (run
/// [`to_three_cnf`] first).
///
/// # Example
///
/// ```
/// use gpd_sat::{to_non_monotone, brute_force, Cnf, Lit};
///
/// let monotone = Cnf::new(3, vec![
///     vec![Lit::pos(0), Lit::pos(1), Lit::pos(2)].into(),
/// ]);
/// let nm = to_non_monotone(&monotone);
/// assert!(nm.is_non_monotone());
/// assert!(brute_force(&nm).is_some());
/// ```
pub fn to_non_monotone(cnf: &Cnf) -> Cnf {
    assert!(
        cnf.max_clause_len() <= 3,
        "input must be 3-CNF; found a clause with {} literals",
        cnf.max_clause_len()
    );
    let mut next_var = cnf.num_vars();
    let mut clauses = Vec::new();
    for clause in cnf.clauses() {
        if clause.is_non_monotone() {
            clauses.push(clause.clone());
            continue;
        }
        // Monotone 3-clause (all same polarity). Pin a fresh variable
        // y ⇔ ¬x₃ (x₃ = the last literal's variable) and substitute for
        // the last literal with the polarity opposite the clause's, which
        // makes the 3-clause mixed while the pin clauses stay binary.
        let lits = clause.lits();
        let (l1, l2, l3) = (lits[0], lits[1], lits[2]);
        let y = next_var;
        next_var += 1;
        let replacement = if l3.is_positive() {
            Lit::neg(y) // ¬y ≡ x₃ given y ⇔ ¬x₃
        } else {
            Lit::pos(y) // y ≡ ¬x₃
        };
        clauses.push(Clause::new(vec![l1, l2, replacement]));
        // y ⇔ ¬x₃: (y ∨ x₃) ∧ (¬y ∨ ¬x₃).
        clauses.push(Clause::new(vec![Lit::pos(y), Lit::pos(l3.var())]));
        clauses.push(Clause::new(vec![Lit::neg(y), Lit::neg(l3.var())]));
    }
    Cnf::new(next_var, clauses)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::brute_force;
    use crate::gen::random_cnf;
    use rand::{Rng, SeedableRng};

    #[test]
    fn short_clauses_pass_through() {
        let f = Cnf::new(2, vec![vec![Lit::pos(0), Lit::neg(1)].into()]);
        assert_eq!(to_three_cnf(&f), f);
        assert_eq!(to_non_monotone(&f), f);
    }

    #[test]
    fn wide_clause_is_split() {
        let f = Cnf::new(5, vec![(0..5).map(Lit::pos).collect::<Vec<_>>().into()]);
        let t = to_three_cnf(&f);
        assert!(t.max_clause_len() <= 3);
        assert_eq!(t.clauses().len(), 3);
        assert!(t.num_vars() > f.num_vars());
    }

    #[test]
    fn all_positive_clause_becomes_non_monotone() {
        let f = Cnf::new(3, vec![vec![Lit::pos(0), Lit::pos(1), Lit::pos(2)].into()]);
        let nm = to_non_monotone(&f);
        assert!(nm.is_non_monotone());
        assert_eq!(nm.clauses().len(), 3);
        assert_eq!(nm.num_vars(), 4);
    }

    #[test]
    fn all_negative_clause_becomes_non_monotone() {
        let f = Cnf::new(3, vec![vec![Lit::neg(0), Lit::neg(1), Lit::neg(2)].into()]);
        let nm = to_non_monotone(&f);
        assert!(nm.is_non_monotone());
    }

    #[test]
    #[should_panic(expected = "must be 3-CNF")]
    fn wide_input_to_non_monotone_panics() {
        let f = Cnf::new(4, vec![(0..4).map(Lit::pos).collect::<Vec<_>>().into()]);
        to_non_monotone(&f);
    }

    #[test]
    fn models_of_original_extend_to_transformed() {
        // For every model of the original, some extension satisfies the
        // transformed formula, and conversely restrictions are models.
        let f = Cnf::new(
            3,
            vec![
                vec![Lit::pos(0), Lit::pos(1), Lit::pos(2)].into(),
                vec![Lit::neg(0), Lit::neg(1), Lit::neg(2)].into(),
            ],
        );
        let nm = to_non_monotone(&f);
        for mask in 0u32..8 {
            let a: Vec<bool> = (0..3).map(|v| mask >> v & 1 == 1).collect();
            if f.eval(&a) {
                // Extend: fresh y variables are forced to ¬l₃ / the pinned value.
                let mut found = false;
                for ext in 0u32..1 << (nm.num_vars() - 3) {
                    let mut full = a.clone();
                    for b in 0..(nm.num_vars() - 3) {
                        full.push(ext >> b & 1 == 1);
                    }
                    if nm.eval(&full) {
                        found = true;
                        break;
                    }
                }
                assert!(found, "model {a:?} does not extend");
            }
        }
    }

    #[test]
    fn equisatisfiable_on_random_formulas() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(77);
        for _ in 0..100 {
            let n = rng.gen_range(3..7u32);
            let m = rng.gen_range(1..10);
            let f = random_cnf(&mut rng, n, m, 3);
            let nm = to_non_monotone(&f);
            assert!(nm.is_non_monotone());
            assert_eq!(
                brute_force(&f).is_some(),
                brute_force(&nm).is_some(),
                "{f:?}"
            );
        }
    }

    #[test]
    fn three_cnf_split_is_equisatisfiable() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(78);
        for _ in 0..50 {
            let n = rng.gen_range(5..8u32);
            let m = rng.gen_range(1..6);
            let f = random_cnf(&mut rng, n, m, 5);
            let t = to_three_cnf(&f);
            assert!(t.max_clause_len() <= 3);
            assert_eq!(
                brute_force(&f).is_some(),
                brute_force(&t).is_some(),
                "{f:?}"
            );
        }
    }
}
