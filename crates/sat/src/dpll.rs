//! A DPLL satisfiability solver.

use crate::cnf::{Cnf, Lit};

/// Decides satisfiability of `cnf` and returns a model (one `bool` per
/// variable) if one exists.
///
/// Classic DPLL: unit propagation, the pure-literal rule, then branching
/// on the first unassigned variable of the shortest open clause.
/// Exponential in the worst case — the formulas used by the reduction
/// experiments are small — but complete.
///
/// # Example
///
/// ```
/// use gpd_sat::{Cnf, Lit, solve};
///
/// let unsat = Cnf::new(1, vec![vec![Lit::pos(0)].into(), vec![Lit::neg(0)].into()]);
/// assert!(solve(&unsat).is_none());
/// ```
pub fn solve(cnf: &Cnf) -> Option<Vec<bool>> {
    let n = cnf.num_vars() as usize;
    let mut assignment: Vec<Option<bool>> = vec![None; n];
    if dpll(cnf, &mut assignment) {
        // Unconstrained variables default to false.
        Some(assignment.into_iter().map(|a| a.unwrap_or(false)).collect())
    } else {
        None
    }
}

/// State of a clause under a partial assignment.
enum ClauseState {
    Satisfied,
    Conflict,
    Unit(Lit),
    Open,
}

fn clause_state(lits: &[Lit], assignment: &[Option<bool>]) -> ClauseState {
    let mut unassigned = None;
    let mut unassigned_count = 0;
    for &l in lits {
        match assignment[l.var() as usize] {
            Some(v) if v == l.is_positive() => return ClauseState::Satisfied,
            Some(_) => {}
            None => {
                unassigned = Some(l);
                unassigned_count += 1;
            }
        }
    }
    match unassigned_count {
        0 => ClauseState::Conflict,
        1 => ClauseState::Unit(unassigned.expect("counted one unassigned literal")),
        _ => ClauseState::Open,
    }
}

fn dpll(cnf: &Cnf, assignment: &mut Vec<Option<bool>>) -> bool {
    // Unit propagation to fixpoint.
    let mut trail: Vec<u32> = Vec::new();
    loop {
        let mut changed = false;
        let mut conflict = false;
        for clause in cnf.clauses() {
            match clause_state(clause.lits(), assignment) {
                ClauseState::Conflict => {
                    conflict = true;
                    break;
                }
                ClauseState::Unit(l) => {
                    assignment[l.var() as usize] = Some(l.is_positive());
                    trail.push(l.var());
                    changed = true;
                }
                _ => {}
            }
        }
        if conflict {
            for v in trail {
                assignment[v as usize] = None;
            }
            return false;
        }
        if !changed {
            break;
        }
    }

    // Pure-literal elimination: a variable occurring with one polarity in
    // the open clauses can be fixed to that polarity.
    let n = assignment.len();
    let mut pos_seen = vec![false; n];
    let mut neg_seen = vec![false; n];
    for clause in cnf.clauses() {
        if matches!(
            clause_state(clause.lits(), assignment),
            ClauseState::Satisfied
        ) {
            continue;
        }
        for &l in clause.lits() {
            if assignment[l.var() as usize].is_none() {
                if l.is_positive() {
                    pos_seen[l.var() as usize] = true;
                } else {
                    neg_seen[l.var() as usize] = true;
                }
            }
        }
    }
    for v in 0..n {
        if assignment[v].is_none() && (pos_seen[v] ^ neg_seen[v]) {
            assignment[v] = Some(pos_seen[v]);
            trail.push(v as u32);
        }
    }

    // Branch on an unassigned variable from the shortest open clause.
    let mut branch: Option<u32> = None;
    let mut best_len = usize::MAX;
    let mut all_satisfied = true;
    for clause in cnf.clauses() {
        match clause_state(clause.lits(), assignment) {
            ClauseState::Satisfied => {}
            ClauseState::Conflict => {
                for v in trail {
                    assignment[v as usize] = None;
                }
                return false;
            }
            _ => {
                all_satisfied = false;
                let open: Vec<Lit> = clause
                    .lits()
                    .iter()
                    .copied()
                    .filter(|l| assignment[l.var() as usize].is_none())
                    .collect();
                if open.len() < best_len {
                    best_len = open.len();
                    branch = Some(open[0].var());
                }
            }
        }
    }
    if all_satisfied {
        return true;
    }
    let v = branch.expect("an open clause has an unassigned literal") as usize;
    for value in [true, false] {
        assignment[v] = Some(value);
        if dpll(cnf, assignment) {
            return true;
        }
    }
    assignment[v] = None;
    for v in trail {
        assignment[v as usize] = None;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::brute_force;
    use crate::cnf::Clause;

    fn cnf(n: u32, clauses: &[&[i32]]) -> Cnf {
        // Positive integers are positive literals (1-based), negative are
        // negated, mirroring DIMACS.
        let clauses = clauses
            .iter()
            .map(|c| {
                Clause::new(
                    c.iter()
                        .map(|&l| {
                            let var = l.unsigned_abs() - 1;
                            if l > 0 {
                                Lit::pos(var)
                            } else {
                                Lit::neg(var)
                            }
                        })
                        .collect(),
                )
            })
            .collect();
        Cnf::new(n, clauses)
    }

    #[test]
    fn empty_formula_is_sat() {
        assert!(solve(&cnf(0, &[])).is_some());
    }

    #[test]
    fn empty_clause_is_unsat() {
        assert!(solve(&cnf(1, &[&[]])).is_none());
    }

    #[test]
    fn unit_clauses_propagate() {
        let f = cnf(3, &[&[1], &[-1, 2], &[-2, 3]]);
        let m = solve(&f).unwrap();
        assert_eq!(m, vec![true, true, true]);
    }

    #[test]
    fn contradiction_is_unsat() {
        assert!(solve(&cnf(1, &[&[1], &[-1]])).is_none());
    }

    #[test]
    fn pigeonhole_two_in_one_is_unsat() {
        // Two pigeons, one hole: p1 ∧ p2 ∧ (¬p1 ∨ ¬p2).
        assert!(solve(&cnf(2, &[&[1], &[2], &[-1, -2]])).is_none());
    }

    #[test]
    fn model_satisfies_formula() {
        let f = cnf(4, &[&[1, 2], &[-1, 3], &[-3, -2, 4], &[-4, 1]]);
        let m = solve(&f).unwrap();
        assert!(f.eval(&m));
    }

    #[test]
    fn agrees_with_brute_force_on_random_formulas() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(12345);
        for _ in 0..200 {
            let n = rng.gen_range(1..8u32);
            let m = rng.gen_range(0..12);
            let clauses: Vec<Clause> = (0..m)
                .map(|_| {
                    let k = rng.gen_range(1..4);
                    Clause::new(
                        (0..k)
                            .map(|_| {
                                let v = rng.gen_range(0..n);
                                if rng.gen_bool(0.5) {
                                    Lit::pos(v)
                                } else {
                                    Lit::neg(v)
                                }
                            })
                            .collect(),
                    )
                })
                .collect();
            let f = Cnf::new(n, clauses);
            let dpll_sat = solve(&f).is_some();
            let brute_sat = brute_force(&f).is_some();
            assert_eq!(dpll_sat, brute_sat, "{f:?}");
            if let Some(m) = solve(&f) {
                assert!(f.eval(&m), "{f:?}");
            }
        }
    }
}
