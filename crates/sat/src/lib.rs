//! Boolean satisfiability toolkit.
//!
//! The paper's central hardness result (Theorem 1) reduces **non-monotone
//! 3-SAT** — CNF where every clause has at most three literals and every
//! three-literal clause mixes at least one positive and one negative
//! literal — to singular 2-CNF predicate detection. Validating that
//! reduction end-to-end requires a SAT solver and the formula
//! transformations the paper sketches; this crate provides them:
//!
//! * [`Cnf`], [`Clause`], [`Lit`] — formula representation with
//!   evaluation.
//! * [`solve`] — a DPLL solver (unit propagation + pure-literal rule).
//! * [`brute_force`] — an exhaustive oracle for cross-checking on small
//!   inputs.
//! * [`to_three_cnf`] / [`to_non_monotone`] — the clause-splitting and the
//!   paper's §3.1 non-monotonization, both satisfiability-preserving.
//! * [`random_cnf`] — seeded random formula generation for experiments.
//! * [`parse_dimacs`] / [`to_dimacs`] — interchange format.
//!
//! # Example
//!
//! ```
//! use gpd_sat::{Cnf, Lit, solve};
//!
//! // (x0 ∨ x1) ∧ (¬x0) is satisfied by x0=false, x1=true.
//! let cnf = Cnf::new(2, vec![
//!     vec![Lit::pos(0), Lit::pos(1)].into(),
//!     vec![Lit::neg(0)].into(),
//! ]);
//! let model = solve(&cnf).expect("satisfiable");
//! assert!(cnf.eval(&model));
//! ```

mod brute;
mod cnf;
mod dimacs;
mod dpll;
mod gen;
mod transform;

pub use brute::brute_force;
pub use cnf::{Clause, Cnf, Lit};
pub use dimacs::{parse_dimacs, to_dimacs, ParseDimacsError};
pub use dpll::solve;
pub use gen::random_cnf;
pub use transform::{to_non_monotone, to_three_cnf};
