//! Seeded random CNF generation for experiments.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::cnf::{Clause, Cnf, Lit};

/// Generates a random CNF with `num_vars` variables and `num_clauses`
/// clauses of exactly `clause_len` *distinct* variables, each literal
/// negated with probability ½.
///
/// The classic hard regime for 3-SAT is `num_clauses ≈ 4.27 · num_vars`,
/// which the E3 reduction experiment uses.
///
/// # Panics
///
/// Panics if `clause_len` is 0 or exceeds `num_vars`.
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let f = gpd_sat::random_cnf(&mut rng, 10, 20, 3);
/// assert_eq!(f.num_vars(), 10);
/// assert_eq!(f.clauses().len(), 20);
/// ```
pub fn random_cnf<R: Rng>(
    rng: &mut R,
    num_vars: u32,
    num_clauses: usize,
    clause_len: usize,
) -> Cnf {
    assert!(clause_len >= 1, "clauses need at least one literal");
    assert!(
        clause_len <= num_vars as usize,
        "clause length {clause_len} exceeds variable count {num_vars}"
    );
    let vars: Vec<u32> = (0..num_vars).collect();
    let clauses = (0..num_clauses)
        .map(|_| {
            let chosen: Vec<u32> = vars.choose_multiple(rng, clause_len).copied().collect();
            Clause::new(
                chosen
                    .into_iter()
                    .map(|v| {
                        if rng.gen_bool(0.5) {
                            Lit::pos(v)
                        } else {
                            Lit::neg(v)
                        }
                    })
                    .collect(),
            )
        })
        .collect();
    Cnf::new(num_vars, clauses)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn produces_requested_shape() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let f = random_cnf(&mut rng, 8, 15, 3);
        assert_eq!(f.num_vars(), 8);
        assert_eq!(f.clauses().len(), 15);
        for c in f.clauses() {
            assert_eq!(c.len(), 3);
            // Variables within a clause are distinct.
            let mut vars: Vec<u32> = c.lits().iter().map(|l| l.var()).collect();
            vars.sort_unstable();
            vars.dedup();
            assert_eq!(vars.len(), 3);
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let f1 = random_cnf(&mut rand::rngs::StdRng::seed_from_u64(9), 6, 10, 2);
        let f2 = random_cnf(&mut rand::rngs::StdRng::seed_from_u64(9), 6, 10, 2);
        assert_eq!(f1, f2);
    }

    #[test]
    #[should_panic(expected = "exceeds variable count")]
    fn clause_longer_than_vars_panics() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        random_cnf(&mut rng, 2, 1, 3);
    }
}
