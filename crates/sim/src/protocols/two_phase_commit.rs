//! Two-phase commit: coordinator + participants.
//!
//! The paper's example of a `Definitely` question is verifying "the
//! commit point of a transaction": when the transaction commits, every
//! run must pass through a global state where **all** participants are
//! simultaneously prepared — a definitely-true conjunctive predicate.
//! When some participant votes no, that state never occurs.

use rand::Rng;

use crate::kernel::{Context, Process};

/// Protocol messages. Process 0 is the coordinator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommitMsg {
    /// Coordinator → participant: please vote.
    Prepare,
    /// Participant → coordinator: the vote.
    Vote {
        /// `true` to commit.
        yes: bool,
    },
    /// Coordinator → participant: global decision.
    Decision {
        /// `true`: commit; `false`: abort.
        commit: bool,
    },
}

/// Coordinator or participant of a two-phase commit.
#[derive(Debug, Clone)]
pub struct TwoPhaseCommit {
    is_coordinator: bool,
    /// Probability a participant votes no (decided with the seeded rng).
    abort_probability: f64,
    prepared: bool,
    committed: bool,
    aborted: bool,
    yes_votes: usize,
    votes_seen: usize,
    decided: bool,
}

impl TwoPhaseCommit {
    /// A coordinator (process 0) plus `n − 1` participants, each voting
    /// no with probability `abort_probability`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or the probability is outside `[0, 1]`.
    pub fn transaction(n: usize, abort_probability: f64) -> Vec<TwoPhaseCommit> {
        assert!(
            n >= 2,
            "two-phase commit needs a coordinator and a participant"
        );
        assert!(
            (0.0..=1.0).contains(&abort_probability),
            "probability {abort_probability} out of range"
        );
        (0..n)
            .map(|p| TwoPhaseCommit {
                is_coordinator: p == 0,
                abort_probability,
                prepared: false,
                committed: false,
                aborted: false,
                yes_votes: 0,
                votes_seen: 0,
                decided: false,
            })
            .collect()
    }

    /// Whether this node ended committed.
    pub fn committed(&self) -> bool {
        self.committed
    }

    /// Whether this node ended aborted.
    pub fn aborted(&self) -> bool {
        self.aborted
    }
}

impl Process for TwoPhaseCommit {
    type Msg = CommitMsg;

    fn on_start(&mut self, ctx: &mut Context<'_, CommitMsg>) {
        if self.is_coordinator {
            for q in 1..ctx.process_count() {
                ctx.send(q, CommitMsg::Prepare);
            }
        }
    }

    fn on_message(&mut self, from: usize, msg: CommitMsg, ctx: &mut Context<'_, CommitMsg>) {
        match msg {
            CommitMsg::Prepare => {
                let yes = !ctx.rng().gen_bool(self.abort_probability);
                if yes {
                    self.prepared = true;
                } else {
                    self.aborted = true;
                }
                ctx.send(from, CommitMsg::Vote { yes });
            }
            CommitMsg::Vote { yes } => {
                self.votes_seen += 1;
                self.yes_votes += yes as usize;
                if self.votes_seen == ctx.process_count() - 1 && !self.decided {
                    self.decided = true;
                    let commit = self.yes_votes == self.votes_seen;
                    if commit {
                        self.committed = true;
                    } else {
                        self.aborted = true;
                    }
                    for q in 1..ctx.process_count() {
                        ctx.send(q, CommitMsg::Decision { commit });
                    }
                }
            }
            CommitMsg::Decision { commit } => {
                self.prepared = false;
                if commit {
                    self.committed = true;
                } else {
                    self.aborted = true;
                }
            }
        }
    }

    fn bool_vars(&self) -> Vec<(&'static str, bool)> {
        vec![
            ("prepared", self.prepared),
            ("committed", self.committed),
            ("aborted", self.aborted),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{SimConfig, Simulation};

    #[test]
    fn unanimous_yes_commits_everywhere() {
        let sim = Simulation::new(TwoPhaseCommit::transaction(4, 0.0), SimConfig::new(1));
        let (trace, procs) = sim.run_with_processes();
        assert!(procs.iter().all(|p| p.committed() && !p.aborted()));
        // After quiescence nobody is still prepared.
        let prepared = trace.bool_var("prepared").unwrap();
        let final_cut = trace.computation.final_cut();
        assert!((0..4).all(|p| !prepared.value_at(&final_cut, p)));
    }

    #[test]
    fn any_no_vote_aborts_everywhere() {
        let sim = Simulation::new(TwoPhaseCommit::transaction(4, 1.0), SimConfig::new(2));
        let (_, procs) = sim.run_with_processes();
        assert!(procs.iter().all(|p| p.aborted() && !p.committed()));
    }

    #[test]
    fn atomicity_holds_across_seeds() {
        for seed in 0..10 {
            let sim = Simulation::new(TwoPhaseCommit::transaction(5, 0.3), SimConfig::new(seed));
            let (_, procs) = sim.run_with_processes();
            let committed = procs.iter().filter(|p| p.committed()).count();
            let aborted = procs.iter().filter(|p| p.aborted()).count();
            assert!(
                committed == procs.len() || aborted >= 1 && committed == 0,
                "seed {seed}: mixed outcome ({committed} committed, {aborted} aborted)"
            );
        }
    }

    #[test]
    fn committed_run_passes_all_prepared_simultaneously() {
        // The commit point: on a committing run, some consistent cut has
        // every participant prepared at once (exhaustive check).
        let sim = Simulation::new(TwoPhaseCommit::transaction(3, 0.0), SimConfig::new(3));
        let trace = sim.run();
        let prepared = trace.bool_var("prepared").unwrap();
        let witness = trace
            .computation
            .consistent_cuts()
            .any(|cut| (1..3).all(|p| prepared.value_at(&cut, p)));
        assert!(witness);
    }
}
