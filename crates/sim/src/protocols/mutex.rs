//! Ricart–Agrawala distributed mutual exclusion, with an optional injected
//! safety bug.
//!
//! This is the paper's motivating debugging scenario: "when debugging a
//! distributed mutual exclusion algorithm, detecting concurrent accesses
//! to a shared resource is useful". The exposed boolean `in_cs` lets the
//! `gpd` crate ask `Possibly(in_cs₀ ∧ in_cs₁)` — which must be false for
//! the correct protocol and (usually) true for the buggy one, even when no
//! actual simultaneous access happened in the observed interleaving.

use crate::kernel::{Context, Process};

/// Ricart–Agrawala protocol messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MutexMsg {
    /// Request for the critical section, with the sender's Lamport
    /// timestamp.
    Request {
        /// Lamport timestamp of the request.
        ts: u64,
    },
    /// Permission grant.
    Reply,
}

/// One Ricart–Agrawala participant.
#[derive(Debug, Clone)]
pub struct RicartAgrawala {
    clock: u64,
    requesting: bool,
    in_cs: bool,
    request_ts: u64,
    replies_pending: usize,
    deferred: Vec<usize>,
    rounds_left: u32,
    cs_entries: u32,
    /// The injected bug: when set, the process grants every request
    /// immediately — even while inside the critical section.
    buggy: bool,
}

impl RicartAgrawala {
    /// A group of `n` correct processes, each entering the critical
    /// section `rounds` times.
    pub fn group(n: usize, rounds: u32) -> Vec<RicartAgrawala> {
        Self::group_with_bug(n, rounds, false)
    }

    /// Like [`group`](Self::group); `buggy` injects the
    /// grant-while-in-CS safety bug into every process.
    pub fn group_with_bug(n: usize, rounds: u32, buggy: bool) -> Vec<RicartAgrawala> {
        (0..n)
            .map(|_| RicartAgrawala {
                clock: 0,
                requesting: false,
                in_cs: false,
                request_ts: 0,
                replies_pending: 0,
                deferred: Vec::new(),
                rounds_left: rounds,
                cs_entries: 0,
                buggy,
            })
            .collect()
    }

    /// How many times this process entered the critical section.
    pub fn cs_entries(&self) -> u32 {
        self.cs_entries
    }

    fn request(&mut self, ctx: &mut Context<'_, MutexMsg>) {
        self.requesting = true;
        self.clock += 1;
        self.request_ts = self.clock;
        self.replies_pending = ctx.process_count() - 1;
        for q in 0..ctx.process_count() {
            if q != ctx.me() {
                ctx.send(
                    q,
                    MutexMsg::Request {
                        ts: self.request_ts,
                    },
                );
            }
        }
        if self.replies_pending == 0 {
            self.enter(ctx);
        }
    }

    fn enter(&mut self, ctx: &mut Context<'_, MutexMsg>) {
        self.in_cs = true;
        self.cs_entries += 1;
        // Leave the critical section after a short stay.
        ctx.set_timer(3);
    }

    fn release(&mut self, ctx: &mut Context<'_, MutexMsg>) {
        self.in_cs = false;
        self.requesting = false;
        for q in std::mem::take(&mut self.deferred) {
            ctx.send(q, MutexMsg::Reply);
        }
        if self.rounds_left > 0 {
            ctx.set_timer(2 + ctx.me() as u64);
        }
    }

    /// Whether our outstanding request has priority over `(ts, from)`.
    fn has_priority(&self, ts: u64, from: usize, me: usize) -> bool {
        (self.request_ts, me) < (ts, from)
    }
}

impl Process for RicartAgrawala {
    type Msg = MutexMsg;

    fn on_start(&mut self, ctx: &mut Context<'_, MutexMsg>) {
        if self.rounds_left > 0 {
            ctx.set_timer(1 + ctx.me() as u64);
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, MutexMsg>) {
        if self.in_cs {
            self.release(ctx);
        } else if !self.requesting && self.rounds_left > 0 {
            self.rounds_left -= 1;
            self.request(ctx);
        }
    }

    fn on_message(&mut self, from: usize, msg: MutexMsg, ctx: &mut Context<'_, MutexMsg>) {
        match msg {
            MutexMsg::Request { ts } => {
                self.clock = self.clock.max(ts) + 1;
                let defer = !self.buggy
                    && (self.in_cs || (self.requesting && self.has_priority(ts, from, ctx.me())));
                if defer {
                    self.deferred.push(from);
                } else {
                    ctx.send(from, MutexMsg::Reply);
                }
            }
            MutexMsg::Reply => {
                if self.requesting && !self.in_cs {
                    self.replies_pending -= 1;
                    if self.replies_pending == 0 {
                        self.enter(ctx);
                    }
                }
            }
        }
    }

    fn bool_vars(&self) -> Vec<(&'static str, bool)> {
        vec![("in_cs", self.in_cs), ("requesting", self.requesting)]
    }

    fn int_vars(&self) -> Vec<(&'static str, i64)> {
        vec![("cs_entries", self.cs_entries as i64)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{SimConfig, Simulation};

    /// Exhaustively checks whether any consistent cut has two processes
    /// in the critical section at once.
    fn violation_possible(trace: &crate::kernel::SimTrace) -> bool {
        let in_cs = trace.bool_var("in_cs").unwrap();
        trace.computation.consistent_cuts().any(|cut| {
            (0..trace.computation.process_count())
                .filter(|&p| in_cs.value_at(&cut, p))
                .count()
                >= 2
        })
    }

    #[test]
    fn correct_protocol_completes_all_rounds() {
        let sim = Simulation::new(RicartAgrawala::group(3, 2), SimConfig::new(5));
        let (trace, procs) = sim.run_with_processes();
        for p in &procs {
            assert_eq!(p.cs_entries(), 2);
            assert!(!p.in_cs);
        }
        let entries = trace.int_var("cs_entries").unwrap();
        assert_eq!(entries.sum_at(&trace.computation.final_cut()), 6);
    }

    #[test]
    fn correct_protocol_has_no_possible_violation() {
        let sim = Simulation::new(RicartAgrawala::group(3, 1), SimConfig::new(5));
        let trace = sim.run();
        assert!(!violation_possible(&trace));
    }

    #[test]
    fn buggy_protocol_admits_a_violation_cut() {
        // With immediate grants, two processes can hold the CS in some
        // consistent cut. Search a few seeds: the bug is a race, not a
        // certainty, but detection is about *possibility* and the buggy
        // runs here do contain a violating cut.
        let found = (0..10).any(|seed| {
            let sim = Simulation::new(
                RicartAgrawala::group_with_bug(3, 1, true),
                SimConfig::new(seed),
            );
            violation_possible(&sim.run())
        });
        assert!(found, "no seed produced a possible violation");
    }

    #[test]
    fn single_process_enters_immediately() {
        let sim = Simulation::new(RicartAgrawala::group(1, 3), SimConfig::new(0));
        let (_, procs) = sim.run_with_processes();
        assert_eq!(procs[0].cs_entries(), 3);
    }
}
