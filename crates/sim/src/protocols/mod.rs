//! Ready-made protocols exercising the paper's motivating scenarios.

mod bank;
mod election;
mod mutex;
mod token_ring;
mod two_phase_commit;
mod voting;

pub use bank::{BankBranch, BankMsg};
pub use election::{ChangRoberts, ElectionMsg};
pub use mutex::{MutexMsg, RicartAgrawala};
pub use token_ring::{TokenMsg, TokenRing};
pub use two_phase_commit::{CommitMsg, TwoPhaseCommit};
pub use voting::{VoteMsg, Voter};
