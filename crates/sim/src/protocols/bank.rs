//! Bank branches wiring money to each other.
//!
//! Transfers move arbitrary amounts, so the exposed `balance` variable has
//! **unbounded per-event increments** — the §4.1 NP-hard regime for exact
//! sums, but still polynomial for the inequality predicates
//! `Possibly(Σ balance relop K)` that the flow-based algorithm answers
//! (e.g. "could the total visible money ever drop below K?").

use rand::Rng;

use crate::kernel::{Context, Process};

/// A wire transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BankMsg {
    /// Amount being transferred.
    pub amount: i64,
}

/// One bank branch.
#[derive(Debug, Clone)]
pub struct BankBranch {
    balance: i64,
    transfers_left: u32,
    max_amount: i64,
}

impl BankBranch {
    /// `n` branches, each starting with `initial_balance` and initiating
    /// `transfers` outgoing transfers of up to `max_amount` each.
    ///
    /// # Panics
    ///
    /// Panics if `initial_balance < 0` or `max_amount <= 0`.
    pub fn network(
        n: usize,
        initial_balance: i64,
        transfers: u32,
        max_amount: i64,
    ) -> Vec<BankBranch> {
        assert!(initial_balance >= 0, "negative initial balance");
        assert!(max_amount > 0, "transfers need a positive maximum");
        (0..n)
            .map(|_| BankBranch {
                balance: initial_balance,
                transfers_left: transfers,
                max_amount,
            })
            .collect()
    }

    /// This branch's current balance.
    pub fn balance(&self) -> i64 {
        self.balance
    }

    fn maybe_transfer(&mut self, ctx: &mut Context<'_, BankMsg>) {
        if self.transfers_left == 0 || ctx.process_count() < 2 {
            return;
        }
        self.transfers_left -= 1;
        let others = ctx.process_count() - 1;
        let mut to = ctx.rng().gen_range(0..others);
        if to >= ctx.me() {
            to += 1;
        }
        let cap = self.balance.min(self.max_amount);
        if cap > 0 {
            let amount = ctx.rng().gen_range(1..=cap);
            self.balance -= amount;
            ctx.send(to, BankMsg { amount });
        }
        if self.transfers_left > 0 {
            let pause = ctx.rng().gen_range(1..6);
            ctx.set_timer(pause);
        }
    }
}

impl Process for BankBranch {
    type Msg = BankMsg;

    fn on_start(&mut self, ctx: &mut Context<'_, BankMsg>) {
        if self.transfers_left > 0 && ctx.process_count() > 1 {
            let pause = ctx.rng().gen_range(1..6);
            ctx.set_timer(pause);
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, BankMsg>) {
        self.maybe_transfer(ctx);
    }

    fn on_message(&mut self, _from: usize, msg: BankMsg, _ctx: &mut Context<'_, BankMsg>) {
        self.balance += msg.amount;
    }

    fn int_vars(&self) -> Vec<(&'static str, i64)> {
        vec![("balance", self.balance)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{SimConfig, Simulation};

    #[test]
    fn money_is_conserved_at_quiescence() {
        let sim = Simulation::new(BankBranch::network(4, 100, 3, 40), SimConfig::new(31));
        let (trace, procs) = sim.run_with_processes();
        let total: i64 = procs.iter().map(|b| b.balance()).sum();
        assert_eq!(total, 400, "no money minted or destroyed");
        let balance = trace.int_var("balance").unwrap();
        assert_eq!(balance.sum_at(&trace.computation.final_cut()), 400);
    }

    #[test]
    fn balances_never_go_negative() {
        let trace = Simulation::new(BankBranch::network(3, 50, 5, 60), SimConfig::new(32)).run();
        let balance = trace.int_var("balance").unwrap();
        for t in balance.tracks() {
            assert!(t.iter().all(|&b| b >= 0));
        }
    }

    #[test]
    fn transfers_produce_large_increments() {
        let trace = Simulation::new(BankBranch::network(3, 100, 4, 50), SimConfig::new(33)).run();
        let balance = trace.int_var("balance").unwrap();
        assert!(
            !balance.is_unit_step(),
            "bank traffic should exercise the unbounded-increment regime"
        );
    }

    #[test]
    fn intermediate_sums_can_dip_below_total() {
        // Money in flight is visible on no branch: some consistent cut
        // has Σ balance < 400 whenever at least one transfer happened.
        let trace = Simulation::new(BankBranch::network(4, 100, 2, 30), SimConfig::new(34)).run();
        let balance = trace.int_var("balance").unwrap();
        let dip = trace
            .computation
            .consistent_cuts()
            .any(|cut| balance.sum_at(&cut) < 400);
        assert!(dip);
    }

    #[test]
    fn single_branch_stays_put() {
        let (_, procs) = Simulation::new(BankBranch::network(1, 10, 3, 5), SimConfig::new(0))
            .run_with_processes();
        assert_eq!(procs[0].balance(), 10);
    }
}
