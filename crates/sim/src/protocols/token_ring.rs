//! Tokens circulating on a unidirectional ring.
//!
//! Each process holds zero or more tokens and forwards one to its ring
//! successor after a random pause. The exposed integer variable `tokens`
//! changes by exactly ±1 per event, so the run is a perfect input for the
//! paper's §4.2 polynomial `Possibly(Σ tokens = K)` detection: token
//! conservation means the sum should equal the initial token count at
//! *every* consistent cut — unless the injected duplication bug strikes.

use rand::Rng;

use crate::kernel::{Context, Process};

/// Message carrying one token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TokenMsg;

/// One ring member.
#[derive(Debug, Clone)]
pub struct TokenRing {
    held: i64,
    hops_left: u32,
    /// Every `duplicate_every`-th forward also mints a spurious token
    /// (0 = never): the injected conservation bug.
    duplicate_every: u32,
    forwards: u32,
}

impl TokenRing {
    /// A ring of `n` correct members, the first `tokens` of which start
    /// with one token each; each token makes roughly `3 n` hops.
    ///
    /// # Panics
    ///
    /// Panics if `tokens > n` or `n == 0`.
    pub fn ring(n: usize, tokens: usize) -> Vec<TokenRing> {
        Self::ring_with_bug(n, tokens, 0)
    }

    /// Like [`ring`](Self::ring), but every `duplicate_every`-th forward
    /// by a member duplicates the token (0 disables the bug).
    ///
    /// # Panics
    ///
    /// Panics if `tokens > n` or `n == 0`.
    pub fn ring_with_bug(n: usize, tokens: usize, duplicate_every: u32) -> Vec<TokenRing> {
        assert!(n > 0, "ring needs at least one member");
        assert!(tokens <= n, "cannot place {tokens} tokens on {n} members");
        (0..n)
            .map(|p| TokenRing {
                held: (p < tokens) as i64,
                hops_left: 3 * n as u32,
                duplicate_every,
                forwards: 0,
            })
            .collect()
    }

    fn forward(&mut self, ctx: &mut Context<'_, TokenMsg>) {
        if self.held == 0 || self.hops_left == 0 {
            return;
        }
        self.held -= 1;
        self.hops_left -= 1;
        let next = (ctx.me() + 1) % ctx.process_count();
        ctx.send(next, TokenMsg);
        self.forwards += 1;
        if self.duplicate_every != 0 && self.forwards.is_multiple_of(self.duplicate_every) {
            // Injected bug: the token is also "kept".
            self.held += 1;
        }
    }
}

impl Process for TokenRing {
    type Msg = TokenMsg;

    fn on_start(&mut self, ctx: &mut Context<'_, TokenMsg>) {
        if self.held > 0 && ctx.process_count() > 1 {
            let pause = ctx.rng().gen_range(1..5);
            ctx.set_timer(pause);
        }
    }

    fn on_message(&mut self, _from: usize, _msg: TokenMsg, ctx: &mut Context<'_, TokenMsg>) {
        self.held += 1;
        if ctx.process_count() > 1 {
            self.forward(ctx);
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, TokenMsg>) {
        if ctx.process_count() > 1 {
            self.forward(ctx);
        }
    }

    fn int_vars(&self) -> Vec<(&'static str, i64)> {
        vec![("tokens", self.held)]
    }

    fn bool_vars(&self) -> Vec<(&'static str, bool)> {
        vec![("has_token", self.held > 0)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{SimConfig, Simulation};

    #[test]
    fn tokens_are_conserved_without_the_bug() {
        let trace = Simulation::new(TokenRing::ring(5, 2), SimConfig::new(4)).run();
        let tokens = trace.int_var("tokens").unwrap();
        // In-flight tokens make intermediate sums dip below 2, but the
        // final cut (quiescence) must hold exactly 2.
        assert_eq!(tokens.sum_at(&trace.computation.final_cut()), 2);
        assert!(tokens.is_unit_step(), "token counts move by at most 1");
        assert!(trace.computation.messages().len() >= 2);
    }

    #[test]
    fn duplication_bug_inflates_the_sum() {
        let trace = Simulation::new(TokenRing::ring_with_bug(5, 2, 3), SimConfig::new(4)).run();
        let tokens = trace.int_var("tokens").unwrap();
        assert!(
            tokens.sum_at(&trace.computation.final_cut()) > 2,
            "the bug should mint extra tokens"
        );
    }

    #[test]
    fn has_token_tracks_held_count() {
        let trace = Simulation::new(TokenRing::ring(3, 1), SimConfig::new(7)).run();
        let held = trace.int_var("tokens").unwrap();
        let has = trace.bool_var("has_token").unwrap();
        for p in 0..3 {
            for s in 0..=trace.computation.events_on(p) {
                assert_eq!(
                    has.value_in_state(p, s as u32),
                    held.value_in_state(p, s as u32) > 0
                );
            }
        }
    }

    #[test]
    fn single_member_ring_stays_quiet() {
        let trace = Simulation::new(TokenRing::ring(1, 1), SimConfig::new(1)).run();
        assert!(trace.computation.messages().is_empty());
    }

    #[test]
    #[should_panic(expected = "cannot place")]
    fn too_many_tokens_panics() {
        TokenRing::ring(2, 3);
    }
}
