//! Distributed voting: every process casts a yes/no vote and broadcasts
//! it.
//!
//! The exposed booleans feed the §4.3 majority predicates: *absence of a
//! simple majority* is `Possibly(Σ voted_yes = ⌈n/2⌉ − …)`-style exact-sum
//! detection, and "everyone agrees" is the symmetric *all-equal*
//! predicate.

use rand::Rng;

use crate::kernel::{Context, Process};

/// A broadcast ballot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VoteMsg {
    /// The vote being announced.
    pub yes: bool,
}

/// One voter.
#[derive(Debug, Clone)]
pub struct Voter {
    /// Probability of voting yes (decided at start, seeded).
    yes_probability: f64,
    voted: bool,
    voted_yes: bool,
    yes_seen: i64,
    votes_seen: i64,
}

impl Voter {
    /// An electorate of `n` voters, each voting yes independently with
    /// probability `yes_probability`.
    ///
    /// # Panics
    ///
    /// Panics if the probability is outside `[0, 1]`.
    pub fn electorate(n: usize, yes_probability: f64) -> Vec<Voter> {
        assert!(
            (0.0..=1.0).contains(&yes_probability),
            "probability {yes_probability} out of range"
        );
        (0..n)
            .map(|_| Voter {
                yes_probability,
                voted: false,
                voted_yes: false,
                yes_seen: 0,
                votes_seen: 0,
            })
            .collect()
    }

    /// This voter's ballot, if cast.
    pub fn ballot(&self) -> Option<bool> {
        self.voted.then_some(self.voted_yes)
    }
}

impl Process for Voter {
    type Msg = VoteMsg;

    fn on_start(&mut self, ctx: &mut Context<'_, VoteMsg>) {
        // Deliberate: vote after a random pause so ballots interleave.
        let pause = ctx.rng().gen_range(1..8);
        ctx.set_timer(pause);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, VoteMsg>) {
        if self.voted {
            return;
        }
        self.voted = true;
        self.voted_yes = ctx.rng().gen_bool(self.yes_probability);
        self.yes_seen += self.voted_yes as i64;
        self.votes_seen += 1;
        for q in 0..ctx.process_count() {
            if q != ctx.me() {
                ctx.send(
                    q,
                    VoteMsg {
                        yes: self.voted_yes,
                    },
                );
            }
        }
    }

    fn on_message(&mut self, _from: usize, msg: VoteMsg, _ctx: &mut Context<'_, VoteMsg>) {
        self.yes_seen += msg.yes as i64;
        self.votes_seen += 1;
    }

    fn bool_vars(&self) -> Vec<(&'static str, bool)> {
        vec![("voted_yes", self.voted_yes), ("voted", self.voted)]
    }

    fn int_vars(&self) -> Vec<(&'static str, i64)> {
        vec![("yes_seen", self.yes_seen), ("votes_seen", self.votes_seen)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{SimConfig, Simulation};

    #[test]
    fn everyone_votes_and_tallies_agree() {
        let n = 5;
        let sim = Simulation::new(Voter::electorate(n, 0.5), SimConfig::new(21));
        let (trace, procs) = sim.run_with_processes();
        let yes_total = procs.iter().filter(|v| v.ballot() == Some(true)).count() as i64;
        for v in &procs {
            assert!(v.ballot().is_some());
            assert_eq!(v.votes_seen, n as i64, "every ballot reaches everyone");
            assert_eq!(v.yes_seen, yes_total);
        }
        // The recorded voted_yes variable matches the final ballots.
        let vy = trace.bool_var("voted_yes").unwrap();
        let final_cut = trace.computation.final_cut();
        let recorded: i64 = (0..n).map(|p| vy.value_at(&final_cut, p) as i64).sum();
        assert_eq!(recorded, yes_total);
    }

    #[test]
    fn extreme_probabilities_are_unanimous() {
        let (_, yes) =
            Simulation::new(Voter::electorate(4, 1.0), SimConfig::new(3)).run_with_processes();
        assert!(yes.iter().all(|v| v.ballot() == Some(true)));
        let (_, no) =
            Simulation::new(Voter::electorate(4, 0.0), SimConfig::new(3)).run_with_processes();
        assert!(no.iter().all(|v| v.ballot() == Some(false)));
    }

    #[test]
    fn voted_starts_false_everywhere() {
        let trace = Simulation::new(Voter::electorate(3, 0.5), SimConfig::new(4)).run();
        let voted = trace.bool_var("voted").unwrap();
        for p in 0..3 {
            assert!(!voted.value_in_state(p, 0));
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_probability_panics() {
        Voter::electorate(2, 1.5);
    }
}
