//! Chang–Roberts leader election on a unidirectional ring.
//!
//! Exposes `is_leader`, feeding the paper's §4.3 symmetric predicates:
//! "not exactly one leader" is `¬(Σ is_leader = 1)`, i.e. the complement
//! of a single exact-sum predicate.

use crate::kernel::{Context, Process};

/// Election messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ElectionMsg {
    /// Candidacy of the process with the given identifier.
    Elect {
        /// Candidate identifier.
        uid: u64,
    },
    /// Announcement that the election finished.
    Elected {
        /// The winner's identifier.
        uid: u64,
    },
}

/// One ring member.
#[derive(Debug, Clone)]
pub struct ChangRoberts {
    uid: u64,
    participant: bool,
    is_leader: bool,
    leader_uid: Option<u64>,
}

impl ChangRoberts {
    /// A ring with the given (distinct) identifiers; every member
    /// initiates.
    ///
    /// # Panics
    ///
    /// Panics if identifiers repeat.
    pub fn ring(uids: &[u64]) -> Vec<ChangRoberts> {
        let mut sorted = uids.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), uids.len(), "identifiers must be distinct");
        uids.iter()
            .map(|&uid| ChangRoberts {
                uid,
                participant: false,
                is_leader: false,
                leader_uid: None,
            })
            .collect()
    }

    /// The elected leader's identifier, once known to this member.
    pub fn leader_uid(&self) -> Option<u64> {
        self.leader_uid
    }
}

impl Process for ChangRoberts {
    type Msg = ElectionMsg;

    fn on_start(&mut self, ctx: &mut Context<'_, ElectionMsg>) {
        if ctx.process_count() == 1 {
            self.is_leader = true;
            self.leader_uid = Some(self.uid);
            return;
        }
        self.participant = true;
        let next = (ctx.me() + 1) % ctx.process_count();
        ctx.send(next, ElectionMsg::Elect { uid: self.uid });
    }

    fn on_message(&mut self, _from: usize, msg: ElectionMsg, ctx: &mut Context<'_, ElectionMsg>) {
        let next = (ctx.me() + 1) % ctx.process_count();
        match msg {
            ElectionMsg::Elect { uid } => {
                if uid > self.uid {
                    self.participant = true;
                    ctx.send(next, ElectionMsg::Elect { uid });
                } else if uid < self.uid {
                    if !self.participant {
                        self.participant = true;
                        ctx.send(next, ElectionMsg::Elect { uid: self.uid });
                    }
                    // Otherwise swallow: our own (higher) candidacy is
                    // already circulating.
                } else {
                    // Our uid came full circle: we win.
                    self.is_leader = true;
                    self.leader_uid = Some(self.uid);
                    ctx.send(next, ElectionMsg::Elected { uid: self.uid });
                }
            }
            ElectionMsg::Elected { uid } => {
                if uid != self.uid {
                    self.leader_uid = Some(uid);
                    self.participant = false;
                    ctx.send(next, ElectionMsg::Elected { uid });
                }
            }
        }
    }

    fn bool_vars(&self) -> Vec<(&'static str, bool)> {
        vec![
            ("is_leader", self.is_leader),
            ("knows_leader", self.leader_uid.is_some()),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{SimConfig, Simulation};

    #[test]
    fn highest_uid_wins() {
        let sim = Simulation::new(ChangRoberts::ring(&[3, 7, 1, 5]), SimConfig::new(8));
        let (trace, procs) = sim.run_with_processes();
        assert!(procs[1].is_leader);
        for (i, p) in procs.iter().enumerate() {
            assert_eq!(p.leader_uid(), Some(7), "member {i}");
            assert_eq!(p.is_leader, i == 1);
        }
        // In the final cut exactly one is_leader holds.
        let leader = trace.bool_var("is_leader").unwrap();
        let final_cut = trace.computation.final_cut();
        let leaders = (0..4).filter(|&p| leader.value_at(&final_cut, p)).count();
        assert_eq!(leaders, 1);
    }

    #[test]
    fn all_members_learn_the_leader() {
        let sim = Simulation::new(ChangRoberts::ring(&[10, 20, 30]), SimConfig::new(1));
        let trace = sim.run();
        let knows = trace.bool_var("knows_leader").unwrap();
        let final_cut = trace.computation.final_cut();
        assert!((0..3).all(|p| knows.value_at(&final_cut, p)));
    }

    #[test]
    fn singleton_ring_elects_itself() {
        let sim = Simulation::new(ChangRoberts::ring(&[42]), SimConfig::new(0));
        let (_, procs) = sim.run_with_processes();
        assert!(procs[0].is_leader);
        assert_eq!(procs[0].leader_uid(), Some(42));
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn duplicate_uids_panic() {
        ChangRoberts::ring(&[1, 1]);
    }
}
