//! A deterministic discrete-event simulator for asynchronous
//! message-passing systems.
//!
//! Predicate detection is an *offline* analysis: it consumes a recorded
//! computation. This crate produces realistic computations to analyse — it
//! plays the role of the instrumented distributed system whose traces the
//! paper assumes. The simulator implements exactly the paper's model:
//! processes with no shared memory or clock, reliable but **non-FIFO**
//! channels, and unbounded (randomized, seeded) message delays.
//! A [`FaultPlan`] optionally degrades the channel below the paper's
//! model — seeded message loss, duplication, jitter-aggravated
//! reordering, and process crashes — to exercise how the detection
//! pipeline (trace parsing, online monitoring) tolerates adversarial
//! input; faulty runs are exactly as reproducible as fault-free ones.
//!
//! Every handler invocation becomes one event in the recorded
//! [`Computation`](gpd_computation::Computation); message deliveries add
//! the causal edges; the values of the variables a protocol exposes are
//! recorded per local state, ready for the detection algorithms in `gpd`.
//!
//! A small protocol library exercises the paper's motivating scenarios:
//!
//! * [`protocols::TokenRing`] — circulating tokens (±1-step sum
//!   predicates: "exactly k tokens").
//! * [`protocols::RicartAgrawala`] — mutual exclusion, with an optional
//!   injected safety bug (conjunctive predicate debugging).
//! * [`protocols::ChangRoberts`] — ring leader election (symmetric
//!   predicates: "not exactly one leader").
//! * [`protocols::Voter`] — distributed voting (majority predicates).
//! * [`protocols::BankBranch`] — money transfers with arbitrary amounts
//!   (relational predicates with unbounded increments).
//!
//! # Example
//!
//! ```
//! use gpd_sim::{SimConfig, Simulation};
//! use gpd_sim::protocols::TokenRing;
//!
//! let sim = Simulation::new(TokenRing::ring(4, 2), SimConfig::new(42));
//! let trace = sim.run();
//! assert!(trace.computation.event_count() > 0);
//! let tokens = trace.int_var("tokens").unwrap();
//! // Tokens are conserved: the initial sum is 2.
//! assert_eq!(tokens.sum_at(&trace.computation.initial_cut()), 2);
//! ```

mod kernel;
pub mod protocols;
pub mod streams;

pub use kernel::{Context, FaultPlan, MissingVariable, Process, SimConfig, SimTrace, Simulation};
pub use streams::{local_streams, LocalStreams};
